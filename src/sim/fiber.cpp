#include "sim/fiber.hpp"

#include <cstdint>

#include "common/panic.hpp"

namespace plus {
namespace sim {

namespace {

/** Fiber currently executing (single-threaded simulator). */
Fiber* currentFiber = nullptr;

} // namespace

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : body_(std::move(body)), stack_(new char[stack_bytes])
{
    PLUS_ASSERT(body_, "fiber needs a body");
    if (getcontext(&context_) != 0) {
        PLUS_PANIC("getcontext failed");
    }
    context_.uc_stack.ss_sp = stack_.get();
    context_.uc_stack.ss_size = stack_bytes;
    context_.uc_link = nullptr; // we always swap back explicitly

    // makecontext only passes ints; split the pointer into two halves.
    auto self = reinterpret_cast<std::uintptr_t>(this);
    auto hi = static_cast<unsigned>(self >> 32);
    auto lo = static_cast<unsigned>(self & 0xffffffffu);
    makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline),
                2, hi, lo);
}

Fiber::~Fiber() = default;

void
Fiber::trampoline(unsigned hi, unsigned lo)
{
    auto self = reinterpret_cast<Fiber*>(
        (static_cast<std::uintptr_t>(hi) << 32) |
        static_cast<std::uintptr_t>(lo));
    self->run();
}

void
Fiber::run()
{
    body_();
    finished_ = true;
    // Return control to the resumer for the last time. The context swap
    // never comes back here.
    Fiber* self = currentFiber;
    currentFiber = nullptr;
    swapcontext(&self->context_, &self->returnContext_);
    PLUS_PANIC("resumed a finished fiber");
}

void
Fiber::resume()
{
    PLUS_ASSERT(!finished_, "resume of a finished fiber");
    PLUS_ASSERT(currentFiber == nullptr,
                "nested fiber resume is not supported");
    started_ = true;
    currentFiber = this;
    if (swapcontext(&returnContext_, &context_) != 0) {
        PLUS_PANIC("swapcontext into fiber failed");
    }
}

void
Fiber::yield()
{
    Fiber* self = currentFiber;
    PLUS_ASSERT(self != nullptr, "yield outside any fiber");
    currentFiber = nullptr;
    if (swapcontext(&self->context_, &self->returnContext_) != 0) {
        PLUS_PANIC("swapcontext out of fiber failed");
    }
    // Resumed again: restore the current-fiber marker.
    currentFiber = self;
}

Fiber*
Fiber::current()
{
    return currentFiber;
}

} // namespace sim
} // namespace plus
