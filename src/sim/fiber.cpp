#include "sim/fiber.hpp"

#include <cstdint>

#include "common/panic.hpp"

// When built with AddressSanitizer, every stack switch must be announced
// so ASan tracks the fake-stack of the context being entered; otherwise
// ucontext switches look like wild stack changes and produce false
// positives (or crashes with detect_stack_use_after_return).
#if defined(__SANITIZE_ADDRESS__)
#define PLUS_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PLUS_ASAN_FIBERS 1
#endif
#endif

#if defined(PLUS_ASAN_FIBERS)
#include <sanitizer/common_interface_defs.h>
#endif

// Under ThreadSanitizer every ucontext switch must likewise be announced
// (__tsan_switch_to_fiber), or accesses made by different fibers on the
// same domain thread are misattributed to one stack and reported as
// races. The annotations also establish happens-before across the
// switch, which is exactly the semantics a cooperative fiber has.
#if defined(__SANITIZE_THREAD__)
#define PLUS_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PLUS_TSAN_FIBERS 1
#endif
#endif

#if defined(PLUS_TSAN_FIBERS)
#include <sanitizer/tsan_interface.h>
#endif

namespace plus {
namespace sim {

namespace {

/** Fiber currently executing on this thread (one domain per thread). */
// pluslint: allow(R4) -- per-host-thread bookkeeping for the fiber
// switch itself; a fiber never migrates between domain threads, so this
// cannot leak state across domains.
thread_local Fiber* currentFiber = nullptr;

/** Thrown from yield() to unwind a fiber being cancelled. */
struct Cancelled {};

void
startSwitch(void** fake_stack_save, const void* bottom, std::size_t size)
{
#if defined(PLUS_ASAN_FIBERS)
    __sanitizer_start_switch_fiber(fake_stack_save, bottom, size);
#else
    (void)fake_stack_save;
    (void)bottom;
    (void)size;
#endif
}

void
finishSwitch(void* fake_stack_save, const void** bottom_old,
             std::size_t* size_old)
{
#if defined(PLUS_ASAN_FIBERS)
    __sanitizer_finish_switch_fiber(fake_stack_save, bottom_old, size_old);
#else
    (void)fake_stack_save;
    (void)bottom_old;
    (void)size_old;
#endif
}

void*
tsanCreateFiber()
{
#if defined(PLUS_TSAN_FIBERS)
    return __tsan_create_fiber(0);
#else
    return nullptr;
#endif
}

void
tsanDestroyFiber(void* fiber)
{
#if defined(PLUS_TSAN_FIBERS)
    if (fiber != nullptr) {
        __tsan_destroy_fiber(fiber);
    }
#else
    (void)fiber;
#endif
}

void*
tsanCurrentFiber()
{
#if defined(PLUS_TSAN_FIBERS)
    return __tsan_get_current_fiber();
#else
    return nullptr;
#endif
}

/** Announce the swapcontext about to happen; call right before it. */
void
tsanSwitchTo(void* fiber)
{
#if defined(PLUS_TSAN_FIBERS)
    if (fiber != nullptr) {
        __tsan_switch_to_fiber(fiber, 0);
    }
#else
    (void)fiber;
#endif
}

} // namespace

Fiber::Fiber(std::function<void()> body, std::size_t stack_bytes)
    : body_(std::move(body)), stack_(new char[stack_bytes]),
      stackBytes_(stack_bytes)
{
    PLUS_ASSERT(body_, "fiber needs a body");
    if (getcontext(&context_) != 0) {
        PLUS_PANIC("getcontext failed");
    }
    context_.uc_stack.ss_sp = stack_.get();
    context_.uc_stack.ss_size = stack_bytes;
    context_.uc_link = nullptr; // we always swap back explicitly

    // makecontext only passes ints; split the pointer into two halves.
    auto self = reinterpret_cast<std::uintptr_t>(this);
    auto hi = static_cast<unsigned>(self >> 32);
    auto lo = static_cast<unsigned>(self & 0xffffffffu);
    makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline),
                2, hi, lo);
    tsanFiber_ = tsanCreateFiber();
}

Fiber::~Fiber()
{
    cancel();
    tsanDestroyFiber(tsanFiber_);
}

void
Fiber::trampoline(unsigned hi, unsigned lo)
{
    auto self = reinterpret_cast<Fiber*>(
        (static_cast<std::uintptr_t>(hi) << 32) |
        static_cast<std::uintptr_t>(lo));
    // First activation: no fake stack to restore; learn the resumer
    // stack's bounds for the switches back.
    finishSwitch(nullptr, &self->returnBottom_, &self->returnSize_);
    self->run();
}

void
Fiber::run()
{
    try {
        body_();
    } catch (const Cancelled&) {
        // Destructor-driven unwind; nobody is waiting for a result.
    } catch (...) {
        // Unwinding across swapcontext is undefined behaviour; park the
        // exception and let resume() rethrow it on the resumer's stack.
        pending_ = std::current_exception();
    }
    finished_ = true;
    // Return control to the resumer for the last time. The context swap
    // never comes back here; a null fake-stack save tells ASan to destroy
    // this fiber's fake stack.
    Fiber* self = currentFiber;
    currentFiber = nullptr;
    startSwitch(nullptr, self->returnBottom_, self->returnSize_);
    tsanSwitchTo(self->tsanReturn_);
    swapcontext(&self->context_, &self->returnContext_);
    PLUS_PANIC("resumed a finished fiber");
}

void
Fiber::switchIn()
{
    PLUS_ASSERT(!finished_, "resume of a finished fiber");
    PLUS_ASSERT(currentFiber == nullptr,
                "nested fiber resume is not supported");
    started_ = true;
    currentFiber = this;
    void* resumer_fake_stack = nullptr;
    startSwitch(&resumer_fake_stack, stack_.get(), stackBytes_);
    tsanReturn_ = tsanCurrentFiber();
    tsanSwitchTo(tsanFiber_);
    if (swapcontext(&returnContext_, &context_) != 0) {
        PLUS_PANIC("swapcontext into fiber failed");
    }
    finishSwitch(resumer_fake_stack, nullptr, nullptr);
}

void
Fiber::resume()
{
    switchIn();
    if (pending_) {
        std::exception_ptr pending = std::move(pending_);
        pending_ = nullptr;
        std::rethrow_exception(pending);
    }
}

void
Fiber::cancel()
{
    if (!started_ || finished_) {
        return;
    }
    cancelling_ = true;
    // A body that swallows the cancellation and yields again is resumed
    // until it finishes; any exception it raises while unwinding is
    // discarded (we are in a destructor).
    while (!finished_) {
        switchIn();
    }
    pending_ = nullptr;
}

void
Fiber::yield()
{
    Fiber* self = currentFiber;
    PLUS_ASSERT(self != nullptr, "yield outside any fiber");
    currentFiber = nullptr;
    startSwitch(&self->fiberFakeStack_, self->returnBottom_,
                self->returnSize_);
    tsanSwitchTo(self->tsanReturn_);
    if (swapcontext(&self->context_, &self->returnContext_) != 0) {
        PLUS_PANIC("swapcontext out of fiber failed");
    }
    // Resumed again: restore the current-fiber marker and refresh the
    // resumer-stack bounds (the resumer may differ between activations).
    finishSwitch(self->fiberFakeStack_, &self->returnBottom_,
                 &self->returnSize_);
    currentFiber = self;
    if (self->cancelling_) {
        throw Cancelled{};
    }
}

Fiber*
Fiber::current()
{
    return currentFiber;
}

} // namespace sim
} // namespace plus
