/**
 * @file
 * Small-buffer-optimised event callback.
 *
 * `sim::Event` replaces `std::function<void()>` on the engine's hot
 * path. Captures up to kInlineBytes are stored inline in the event
 * record itself (no heap allocation per scheduled event); larger or
 * throwing-move callables fall back to a single heap cell. Unlike
 * `std::function`, Event is move-only and therefore accepts move-only
 * captures (`std::unique_ptr`, pooled pointers), which is what lets
 * the network and protocol layers hand message ownership straight to
 * the scheduler instead of copying through `shared_ptr` workarounds.
 */

#ifndef PLUS_SIM_EVENT_HPP_
#define PLUS_SIM_EVENT_HPP_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "common/panic.hpp"

namespace plus {
namespace sim {

/** Move-only type-erased `void()` callable with inline storage. */
class Event
{
  public:
    /** Capture budget before the heap fallback kicks in. */
    static constexpr std::size_t kInlineBytes = 48;

    Event() noexcept : ops_(nullptr) {}

    /** Type-erase any void-invocable @p fn (implicit, like function). */
    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<!std::is_same_v<D, Event> &&
                                          std::is_invocable_r_v<void, D&>>>
    Event(F&& fn) // NOLINT(google-explicit-constructor)
    {
        if constexpr (fitsInline<D>()) {
            ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
            ops_ = &kInlineOps<D>;
        } else {
            // NOLINTNEXTLINE(cppcoreguidelines-owning-memory)
            D* cell = new D(std::forward<F>(fn));
            std::memcpy(storage_, &cell, sizeof(cell));
            ops_ = &kHeapOps<D>;
        }
    }

    Event(Event&& other) noexcept : ops_(other.ops_)
    {
        if (ops_ != nullptr) {
            ops_->relocate(storage_, other.storage_);
            other.ops_ = nullptr;
        }
    }

    Event&
    operator=(Event&& other) noexcept
    {
        if (this != &other) {
            reset();
            ops_ = other.ops_;
            if (ops_ != nullptr) {
                ops_->relocate(storage_, other.storage_);
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;

    ~Event() { reset(); }

    /** True when a callable is held. */
    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /** Invoke the callable (must be non-empty). */
    void
    operator()()
    {
        PLUS_ASSERT(ops_ != nullptr, "invoking an empty Event");
        ops_->invoke(storage_);
    }

    /** Drop the held callable, leaving the Event empty. */
    void
    reset() noexcept
    {
        if (ops_ != nullptr) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops {
        void (*invoke)(void*);
        /** Move the callable dst <- src and destroy src. */
        void (*relocate)(void*, void*) noexcept;
        void (*destroy)(void*) noexcept;
    };

    template <typename D>
    static constexpr bool
    fitsInline()
    {
        return sizeof(D) <= kInlineBytes &&
               alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<D>;
    }

    template <typename D>
    static constexpr Ops kInlineOps{
        /*invoke=*/[](void* p) { (*std::launder(static_cast<D*>(p)))(); },
        /*relocate=*/
        [](void* dst, void* src) noexcept {
            D* from = std::launder(static_cast<D*>(src));
            ::new (dst) D(std::move(*from));
            from->~D();
        },
        /*destroy=*/
        [](void* p) noexcept { std::launder(static_cast<D*>(p))->~D(); },
    };

    template <typename D>
    static constexpr Ops kHeapOps{
        /*invoke=*/
        [](void* p) {
            D* cell = nullptr;
            std::memcpy(&cell, p, sizeof(cell));
            (*cell)();
        },
        /*relocate=*/
        [](void* dst, void* src) noexcept {
            std::memcpy(dst, src, sizeof(D*)); // ownership moves with it
        },
        /*destroy=*/
        [](void* p) noexcept {
            D* cell = nullptr;
            std::memcpy(&cell, p, sizeof(cell));
            delete cell; // NOLINT(cppcoreguidelines-owning-memory)
        },
    };

    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    const Ops* ops_;
};

} // namespace sim
} // namespace plus

#endif // PLUS_SIM_EVENT_HPP_
