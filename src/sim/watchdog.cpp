#include "sim/watchdog.hpp"

#include "common/panic.hpp"

namespace plus {
namespace sim {

Watchdog::Watchdog(Engine& engine, Cycles window, ProgressFn progress,
                   DumpFn dump)
    : engine_(engine), window_(window), progress_(std::move(progress)),
      dump_(std::move(dump))
{
    PLUS_ASSERT(window_ > 0, "watchdog window must be positive");
    PLUS_ASSERT(progress_, "watchdog needs a progress counter");
}

void
Watchdog::arm()
{
    cancelNow();
    lastProgress_ = progress_();
    pending_ = engine_.scheduleDaemon(window_, [this] { check(); });
}

void
Watchdog::stop()
{
    if (pending_ != kInvalidEvent) {
        stopRequested_.store(true, std::memory_order_release);
    }
}

void
Watchdog::cancelNow()
{
    if (pending_ != kInvalidEvent) {
        engine_.cancel(pending_);
        pending_ = kInvalidEvent;
    }
    stopRequested_.store(false, std::memory_order_relaxed);
}

void
Watchdog::check()
{
    pending_ = kInvalidEvent;
    if (stopRequested_.exchange(false, std::memory_order_acquire)) {
        return; // stop() arrived since the last check; go quiet
    }
    const std::uint64_t current = progress_();
    if (current == lastProgress_) {
        if (engine_.pendingEvents() == 0) {
            // The run drained on its own; nothing to watch any more.
            return;
        }
        // A full window of dispatched events with zero useful work:
        // livelock or deadlock. Diagnose instead of hanging.
        stallWindows_ += 1;
        PLUS_PANIC("watchdog: no forward progress in ", window_,
                   " cycles (now ", engine_.now(), ", ",
                   engine_.pendingEvents(), " events pending)",
                   dump_ ? dump_() : std::string());
    }
    lastProgress_ = current;
    if (engine_.pendingEvents() == 0) {
        // Nothing left to watch; stay quiet until re-armed.
        return;
    }
    pending_ = engine_.scheduleDaemon(window_, [this] { check(); });
}

} // namespace sim
} // namespace plus
