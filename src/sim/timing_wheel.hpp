/**
 * @file
 * Hierarchical timing wheel over the event slab.
 *
 * Eleven levels of 64 slots cover the full 64-bit cycle space. An
 * event due at `when` is filed at the level of the highest bit block
 * in which `when` differs from the wheel cursor (level 0 when equal),
 * in slot `(when >> 6*level) & 63` — so short delays (link hops,
 * cache latencies, CM service times) go straight into the near wheel
 * and insertion, cancellation and dispatch are all O(1). When the
 * cursor reaches a higher-level slot its whole list cascades down in
 * order; see docs/PERF.md for the determinism argument. All events
 * with equal `when` always share one level-0 slot; that slot's list is
 * kept sorted by the canonical EventKey tiebreak (schedWhen, key2), so
 * dispatch realises the same partition-independent total order as the
 * heap oracle and the parallel backend. Machine-context schedules
 * carry monotonically increasing keys, so the tail-scan insertion is
 * O(1) for them; node-context ties scan only their own cycle's list.
 *
 * One wrinkle keeps `runUntil()` honest: probing for "is the next
 * event past the limit" may legitimately advance the cursor beyond
 * `Engine::now()` (the cursor tracks dispatch *lower bounds*, not
 * executed time). An event subsequently scheduled between now and the
 * cursor would be mis-filed, so such events are parked in a tiny
 * (when, seq)-ordered pre-cursor heap that is always drained first.
 */

#ifndef PLUS_SIM_TIMING_WHEEL_HPP_
#define PLUS_SIM_TIMING_WHEEL_HPP_

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/event_slab.hpp"

namespace plus {
namespace sim {

/** Time-ordered container of slab records; the Engine's wheel backend. */
class TimingWheel
{
  public:
    static constexpr unsigned kSlotBits = 6;
    static constexpr unsigned kSlots = 1U << kSlotBits;       // 64
    static constexpr unsigned kLevels =
        (64 + kSlotBits - 1) / kSlotBits;                     // 11

    explicit TimingWheel(EventSlab& slab);

    /** File record @p idx by its EventKey (sets home + links). */
    void insert(std::uint32_t idx);

    /** Unlink record @p idx (O(1); pre-cursor entries go stale lazily). */
    void remove(std::uint32_t idx);

    /**
     * Unlink and return the next record in EventKey order whose due
     * cycle is <= @p limit, cascading higher levels as the cursor
     * advances; kNilRecord when none qualifies. The cursor never
     * advances past @p limit.
     */
    std::uint32_t extractNext(Cycles limit);

    Cycles cursor() const { return cursor_; }

    /** Higher-level slot lists redistributed so far. */
    std::uint64_t cascades() const { return cascades_; }

  private:
    struct PreEntry {
        EventKey key;
        std::uint32_t idx;
        std::uint32_t gen;
    };

    static unsigned levelOf(Cycles when, Cycles cursor);
    unsigned cursorSlot(unsigned level) const;
    Cycles lowerBound(unsigned level, unsigned slot) const;

    void fileAt(std::uint32_t idx, Cycles when);
    void unlink(std::uint32_t idx, unsigned home);
    std::uint32_t popPre(Cycles limit);

    EventSlab& slab_;
    std::uint32_t heads_[kLevels * kSlots];
    std::uint32_t tails_[kLevels * kSlots];
    std::uint64_t pending_[kLevels] = {};  ///< occupied-slot bitmap per level
    std::uint32_t levelMask_ = 0;          ///< non-empty levels
    Cycles cursor_ = 0;
    std::uint64_t cascades_ = 0;
    /** Min-heap on EventKey of events filed below the cursor. */
    std::vector<PreEntry> pre_;
};

} // namespace sim
} // namespace plus

#endif // PLUS_SIM_TIMING_WHEEL_HPP_
