#include "sim/engine.hpp"

#include <cstdlib>
#include <string_view>

#include "common/log.hpp"
#include "common/panic.hpp"

namespace plus {
namespace sim {

namespace {

EngineImpl
implFromEnv()
{
    const char* env = std::getenv("PLUS_ENGINE");
    if (env != nullptr && std::string_view(env) == "heap") {
        return EngineImpl::Heap;
    }
    return EngineImpl::Wheel;
}

} // namespace

Engine::Engine() : Engine(implFromEnv()) {}

Engine::Engine(EngineImpl impl) : impl_(impl)
{
    Log::instance().setClock([this] { return now(); });
}

Engine::~Engine()
{
    Log::instance().setClock(nullptr);
}

EventId
Engine::schedule(Cycles delay, Event fn)
{
    return scheduleAt(now_ + delay, std::move(fn));
}

EventId
Engine::scheduleAt(Cycles when, Event fn)
{
    return scheduleImpl(when, std::move(fn), false);
}

EventId
Engine::scheduleDaemon(Cycles delay, Event fn)
{
    return scheduleImpl(now_ + delay, std::move(fn), true);
}

EventId
Engine::scheduleImpl(Cycles when, Event fn, bool daemon)
{
    PLUS_ASSERT(when >= now_, "scheduling into the past: ", when, " < ",
                now_);
    PLUS_ASSERT(fn, "scheduling a null event");
    const std::uint32_t idx = slab_.allocate();
    EventRecord& rec = slab_[idx];
    rec.fn = std::move(fn);
    rec.when = when;
    rec.seq = nextSeq_++;
    rec.daemon = daemon;
    const EventId id =
        (static_cast<EventId>(rec.gen) << 32U) | static_cast<EventId>(idx);
    if (impl_ == EngineImpl::Wheel) {
        wheel_.insert(idx);
    } else {
        rec.home = EventRecord::kHomeHeap;
        heap_.push(HeapEntry{when, rec.seq, idx, rec.gen});
    }
    ++pending_;
    if (daemon) {
        ++daemonPending_;
    }
    ++scheduledTotal_;
    return id;
}

bool
Engine::cancel(EventId id)
{
    if (id == kInvalidEvent) {
        return false;
    }
    const auto idx = static_cast<std::uint32_t>(id & 0xffffffffU);
    const auto gen = static_cast<std::uint32_t>(id >> 32U);
    if (gen == 0 || idx >= slab_.size()) {
        return false;
    }
    EventRecord& rec = slab_[idx];
    if (rec.gen != gen || rec.home == EventRecord::kHomeFree) {
        return false; // already fired, already cancelled, or recycled
    }
    if (impl_ == EngineImpl::Wheel) {
        wheel_.remove(idx);
    }
    // Heap backend: the HeapEntry goes stale and is skipped on pop
    // (the generation bump below invalidates it).
    if (rec.daemon) {
        --daemonPending_;
    }
    slab_.free(idx);
    --pending_;
    ++cancelledTotal_;
    return true;
}

std::uint32_t
Engine::nextFromHeap(Cycles limit)
{
    while (!heap_.empty()) {
        const HeapEntry top = heap_.top();
        const EventRecord& rec = slab_[top.idx];
        if (rec.gen != top.gen || rec.home != EventRecord::kHomeHeap) {
            heap_.pop(); // cancelled; the record was already recycled
            continue;
        }
        if (top.when > limit) {
            return kNilRecord;
        }
        heap_.pop();
        return top.idx;
    }
    return kNilRecord;
}

bool
Engine::dispatchNext(Cycles limit)
{
    const std::uint32_t idx = impl_ == EngineImpl::Wheel
                                  ? wheel_.extractNext(limit)
                                  : nextFromHeap(limit);
    if (idx == kNilRecord) {
        return false;
    }
    EventRecord& rec = slab_[idx];
    const Cycles when = rec.when;
    Event fn = std::move(rec.fn);
    if (rec.daemon) {
        --daemonPending_;
    }
    // Free before invoking: the callback may reschedule into this very
    // slot, and cancel() of the now-fired id must report false.
    slab_.free(idx);
    --pending_;
    now_ = when;
    ++executed_;
    fn();
    return true;
}

void
Engine::run()
{
    // Daemon events execute interleaved with ordinary work but must not
    // keep the loop spinning on their own, so the exit check looks at
    // the ordinary count, not the raw queue.
    stopping_ = false;
    while (!stopping_ && pending_ > daemonPending_ &&
           dispatchNext(~Cycles{0})) {
    }
}

void
Engine::runUntil(Cycles limit)
{
    stopping_ = false;
    while (!stopping_ && pending_ > daemonPending_ &&
           dispatchNext(limit)) {
    }
}

bool
Engine::step()
{
    return dispatchNext(~Cycles{0});
}

EngineStats
Engine::stats() const
{
    EngineStats s;
    s.scheduled = scheduledTotal_;
    s.executed = executed_;
    s.cancelled = cancelledTotal_;
    s.cascades = wheel_.cascades();
    s.slabLive = slab_.live();
    s.slabHighWater = slab_.highWater();
    s.slabSlots = slab_.size();
    return s;
}

} // namespace sim
} // namespace plus
