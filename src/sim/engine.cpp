#include "sim/engine.hpp"

#include <algorithm>
#include <string_view>

#include "common/config.hpp"
#include "common/log.hpp"
#include "common/panic.hpp"
#include "sim/parallel.hpp"
#include "telemetry/prof.hpp"

namespace plus {
namespace sim {

EngineImpl
implFromEnv()
{
    const char* env = envRead("PLUS_ENGINE");
    if (env != nullptr) {
        const std::string_view name(env);
        if (name == "heap") {
            return EngineImpl::Heap;
        }
        if (name == "parallel") {
            return EngineImpl::Parallel;
        }
    }
    return EngineImpl::Wheel;
}

namespace {

constexpr std::uint32_t kIdxMask = (1U << kEventIdxBits) - 1;

} // namespace

Engine::Engine() : Engine(implFromEnv()) {}

Engine::Engine(EngineImpl impl) : impl_(impl)
{
    Log::instance().setClock([this] { return now(); });
}

Engine::~Engine()
{
    par_.reset(); // join workers before members they reference go away
    Log::instance().setClock(nullptr);
}

void
Engine::configure(unsigned nodes, unsigned threads, unsigned domains)
{
    PLUS_ASSERT(pending_ == 0 && executed_ == 0,
                "configure() must precede any scheduling");
    PLUS_ASSERT(nodes < kMachineLane, "too many node lanes: ", nodes);
    nodes_ = nodes;
    threads_ = threads == 0 ? 1 : threads;
    if (nodes_ == 0 || threads_ > nodes_) {
        threads_ = nodes_ == 0 ? 1 : nodes_;
    }
    if (threads_ >= kGlobalDomain) {
        threads_ = kGlobalDomain - 1; // domain tags leave 63 for machine
    }
    const unsigned max_domains =
        nodes_ == 0 ? 1 : std::min(nodes_, kGlobalDomain - 1);
    if (domains == 0) {
        // Auto: up to 4 domains per thread. Threads own domains
        // round-robin, so the extra granularity load-balances skewed
        // meshes without extra barriers.
        const unsigned per_thread =
            std::max(1U, std::min(4U, max_domains / threads_));
        domains = threads_ * per_thread;
    }
    PLUS_ASSERT(domains <= max_domains, "domain count ", domains,
                " exceeds min(nodes, ", kGlobalDomain - 1, ") = ",
                max_domains);
    PLUS_ASSERT(domains % threads_ == 0, "domain count ", domains,
                " is not a multiple of the thread count ", threads_);
    domains_ = domains;
    initStep_.assign(nodes_, 0);
    execStep_.assign(nodes_, 0);
    par_.reset();
    if (impl_ == EngineImpl::Parallel && threads_ > 1 && domains_ >= 2) {
        par_ = std::make_unique<ParallelEngine>(*this, threads_, domains_);
    }
    if (par_ == nullptr) {
        domains_ = 1; // serial: the whole node space is one domain
    }
}

void
Engine::setLookaheadMatrix(std::vector<Cycles> flat)
{
    if (par_ == nullptr) {
        return; // serial backends have no windows to bound
    }
    PLUS_ASSERT(flat.size() ==
                    static_cast<std::size_t>(domains_) * domains_,
                "lookahead matrix must be domains^2 = ",
                static_cast<std::size_t>(domains_) * domains_,
                " entries, got ", flat.size());
    for (unsigned i = 0; i < domains_; ++i) {
        for (unsigned j = 0; j < domains_; ++j) {
            if (i != j && flat[i * domains_ + j] == 0) {
                PLUS_FATAL("lookahead matrix entry [", i, "][", j,
                           "] is 0: no conservative window could ever "
                           "open between those domains; the network's "
                           "cross-node floor must be >= 1 cycle (set "
                           "perHopCycles >= 1, or fixedCycles >= 1 on "
                           "the ideal network)");
            }
        }
    }
    par_->setLookaheadMatrix(std::move(flat));
}

std::uint64_t
Engine::makeKey2()
{
    SchedCtx& c = curCtx();
    if (c.node == kMachineLane) {
        PLUS_ASSERT(machineSeq_ != 0xffffffffU,
                    "machine-context key space exhausted");
        return (std::uint64_t{kMachineLane} << 48U) |
               (std::uint64_t{machineSeq_++} << 16U);
    }
    if (c.init) {
        // withNodeContext() seeding: a persistent per-node counter in
        // the step field; child 0xffff keeps the space disjoint from
        // executed-event children.
        return (std::uint64_t{c.node} << 48U) |
               (std::uint64_t{initStep_[c.node]++} << 16U) | 0xffffU;
    }
    PLUS_ASSERT(c.child != 0xffffU,
                "event scheduled too many children for its key space");
    return (std::uint64_t{c.node} << 48U) |
           (std::uint64_t{c.step} << 16U) | c.child++;
}

EventId
Engine::scheduleForNode(NodeId node, Cycles delay, Event fn)
{
    if (nodes_ == 0) {
        // Unconfigured engine (unit tests driving one subsystem
        // directly): a single machine lane serialises everything.
        return scheduleImpl(now() + delay, std::move(fn), false,
                            kMachineLane);
    }
    PLUS_ASSERT(node < nodes_, "scheduleForNode(", node,
                ") outside configured lanes (", nodes_, ")");
    return scheduleImpl(now() + delay, std::move(fn), false,
                        static_cast<std::uint16_t>(node));
}

void
Engine::scheduleMachine(Cycles delay, Event fn)
{
    PLUS_ASSERT(delay >= lookahead_ || curCtx().node == kMachineLane,
                "machine-lane schedule from node context needs delay >= "
                "lookahead (", delay, " < ", lookahead_, ")");
    scheduleImpl(now() + delay, std::move(fn), false, kMachineLane);
}

EventId
Engine::scheduleDaemon(Cycles delay, Event fn)
{
    PLUS_ASSERT(curCtx().node == kMachineLane,
                "daemon events are machine-lane only");
    return scheduleImpl(now() + delay, std::move(fn), true, kMachineLane);
}

EventId
Engine::scheduleImpl(Cycles when, Event fn, bool daemon,
                     std::uint16_t lane)
{
    PLUS_ASSERT(fn, "scheduling a null event");
    if (par_ != nullptr) {
        return par_->schedule(when, std::move(fn), daemon, lane);
    }
    PLUS_ASSERT(when >= now_, "scheduling into the past: ", when, " < ",
                now_);
    const std::uint32_t idx = slab_.allocate();
    PLUS_ASSERT(idx <= kIdxMask, "event slab exceeds EventId index space");
    EventRecord& rec = slab_[idx];
    rec.fn = std::move(fn);
    rec.when = when;
    rec.schedWhen = now_;
    rec.key2 = makeKey2();
    rec.lane = lane;
    rec.daemon = daemon;
    const EventId id =
        (static_cast<EventId>(rec.gen) << 32U) | static_cast<EventId>(idx);
    if (impl_ == EngineImpl::Heap) {
        rec.home = EventRecord::kHomeHeap;
        heap_.push(HeapEntry{rec.key(), idx, rec.gen});
    } else {
        wheel_.insert(idx);
    }
    ++pending_;
    if (daemon) {
        ++daemonPending_;
    }
    ++scheduledTotal_;
    return id;
}

bool
Engine::cancel(EventId id)
{
    if (id == kInvalidEvent) {
        return false;
    }
    const auto low = static_cast<std::uint32_t>(id & 0xffffffffU);
    const auto gen = static_cast<std::uint32_t>(id >> 32U);
    const std::uint32_t domain = low >> kEventIdxBits;
    const std::uint32_t idx = low & kIdxMask;
    if (gen == 0) {
        return false;
    }
    if (par_ != nullptr) {
        return par_->cancel(domain, idx, gen);
    }
    if (domain != 0 || idx >= slab_.size()) {
        return false;
    }
    EventRecord& rec = slab_[idx];
    if (rec.gen != gen || rec.home == EventRecord::kHomeFree) {
        return false; // already fired, already cancelled, or recycled
    }
    if (impl_ != EngineImpl::Heap) {
        wheel_.remove(idx);
    }
    // Heap backend: the HeapEntry goes stale and is skipped on pop
    // (the generation bump below invalidates it).
    if (rec.daemon) {
        --daemonPending_;
    }
    slab_.free(idx);
    --pending_;
    ++cancelledTotal_;
    return true;
}

std::uint32_t
Engine::nextFromHeap(Cycles limit)
{
    while (!heap_.empty()) {
        const HeapEntry top = heap_.top();
        const EventRecord& rec = slab_[top.idx];
        if (rec.gen != top.gen || rec.home != EventRecord::kHomeHeap) {
            heap_.pop(); // cancelled; the record was already recycled
            continue;
        }
        if (top.key.when > limit) {
            return kNilRecord;
        }
        heap_.pop();
        return top.idx;
    }
    return kNilRecord;
}

void
Engine::enterEventContext(const EventRecord& rec, SchedCtx& ctx)
{
    ctx.node = rec.lane;
    ctx.child = 0;
    ctx.emit = 0;
    ctx.init = false;
    if (rec.lane != kMachineLane) {
        ctx.step = ++execStep_[rec.lane];
    }
}

bool
Engine::dispatchNext(Cycles limit)
{
    const std::uint32_t idx = impl_ == EngineImpl::Heap
                                  ? nextFromHeap(limit)
                                  : wheel_.extractNext(limit);
    if (idx == kNilRecord) {
        return false;
    }
    EventRecord& rec = slab_[idx];
    const Cycles when = rec.when;
    Event fn = std::move(rec.fn);
    if (rec.daemon) {
        --daemonPending_;
    }
    enterEventContext(rec, ctx_);
    // Free before invoking: the callback may reschedule into this very
    // slot, and cancel() of the now-fired id must report false.
    slab_.free(idx);
    --pending_;
    now_ = when;
    ++executed_;
    fn();
    ctx_.node = kMachineLane;
    ctx_.init = false;
    return true;
}

void
Engine::run()
{
    runUntil(~Cycles{0});
}

void
Engine::runUntil(Cycles limit)
{
    stopping_.store(false, std::memory_order_relaxed);
    if (par_ != nullptr) {
        par_->run(limit);
        return;
    }
    const prof::RunTimer prof_run;
    const prof::ScopedPhase prof_scope(prof::Phase::EngineRun);
    // Daemon events execute interleaved with ordinary work but must not
    // keep the loop spinning on their own, so the exit check looks at
    // the ordinary count, not the raw queue.
    while (!stopping_.load(std::memory_order_relaxed) &&
           pending_ > daemonPending_ && dispatchNext(limit)) {
    }
}

bool
Engine::step()
{
    PLUS_ASSERT(par_ == nullptr,
                "step() is not supported on the parallel backend");
    return dispatchNext(~Cycles{0});
}

std::size_t
Engine::pendingEvents() const
{
    std::size_t n = pending_ - daemonPending_;
    if (par_ != nullptr) {
        n += par_->domainPending();
    }
    return n;
}

std::uint64_t
Engine::executedEvents() const
{
    std::uint64_t n = executed_;
    if (par_ != nullptr) {
        n += par_->domainExecuted();
    }
    return n;
}

Engine::SchedCtx&
Engine::parCtx()
{
    SchedCtx* bound = par_->boundCtx();
    return bound != nullptr ? *bound : ctx_;
}

Cycles
Engine::parNow() const
{
    return par_->boundNow(now_);
}

void
Engine::deferParallel(Event fn)
{
    par_->defer(std::move(fn));
}

EngineStats
Engine::stats() const
{
    EngineStats s;
    s.scheduled = scheduledTotal_;
    s.executed = executed_;
    s.cancelled = cancelledTotal_;
    s.cascades = wheel_.cascades();
    s.slabLive = slab_.live();
    s.slabHighWater = slab_.highWater();
    s.slabSlots = slab_.size();
    if (par_ != nullptr) {
        par_->addStats(s);
    }
    return s;
}

} // namespace sim
} // namespace plus
