#include "sim/engine.hpp"

#include "common/log.hpp"
#include "common/panic.hpp"

namespace plus {
namespace sim {

Engine::Engine()
{
    Log::instance().setClock([this] { return now(); });
}

Engine::~Engine()
{
    Log::instance().setClock(nullptr);
}

EventId
Engine::schedule(Cycles delay, std::function<void()> fn)
{
    return scheduleAt(now_ + delay, std::move(fn));
}

EventId
Engine::scheduleAt(Cycles when, std::function<void()> fn)
{
    PLUS_ASSERT(when >= now_, "scheduling into the past: ", when, " < ",
                now_);
    PLUS_ASSERT(fn, "scheduling a null event");
    const EventId id = nextId_++;
    queue_.push(Record{when, nextSeq_++, id, std::move(fn)});
    return id;
}

bool
Engine::cancel(EventId id)
{
    if (id == kInvalidEvent || id >= nextId_) {
        return false;
    }
    // Lazy cancellation: remember the id; skip the record when popped.
    const bool inserted = cancelledIds_.insert(id).second;
    if (inserted) {
        ++cancelled_;
    }
    return inserted;
}

bool
Engine::dispatchNext(Cycles limit)
{
    while (!queue_.empty()) {
        const Record& top = queue_.top();
        if (top.when > limit) {
            return false;
        }
        if (cancelledIds_.erase(top.id)) {
            --cancelled_;
            queue_.pop();
            continue;
        }
        // Move the closure out before popping so it can reschedule freely.
        Record record = std::move(const_cast<Record&>(top));
        queue_.pop();
        now_ = record.when;
        ++executed_;
        record.fn();
        return true;
    }
    return false;
}

void
Engine::run()
{
    stopping_ = false;
    while (!stopping_ && dispatchNext(~Cycles{0})) {
    }
}

void
Engine::runUntil(Cycles limit)
{
    stopping_ = false;
    while (!stopping_ && dispatchNext(limit)) {
    }
}

bool
Engine::step()
{
    return dispatchNext(~Cycles{0});
}

} // namespace sim
} // namespace plus
