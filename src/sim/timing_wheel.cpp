#include "sim/timing_wheel.hpp"

#include <algorithm>
#include <bit>

#include "common/panic.hpp"

namespace plus {
namespace sim {

namespace {

/** Heap comparator: std::*_heap keeps the EventKey minimum at [0]. */
constexpr auto kPreLater = [](const auto& a, const auto& b) {
    return b.key < a.key;
};

/** Key tiebreak within one level-0 slot (equal `when` by invariant). */
bool
tieLess(const EventRecord& a, const EventRecord& b)
{
    if (a.schedWhen != b.schedWhen) {
        return a.schedWhen < b.schedWhen;
    }
    return a.key2 < b.key2;
}

} // namespace

TimingWheel::TimingWheel(EventSlab& slab) : slab_(slab)
{
    std::fill(std::begin(heads_), std::end(heads_), kNilRecord);
    std::fill(std::begin(tails_), std::end(tails_), kNilRecord);
}

unsigned
TimingWheel::levelOf(Cycles when, Cycles cursor)
{
    const Cycles differing = when ^ cursor;
    if (differing == 0) {
        return 0;
    }
    return static_cast<unsigned>(std::bit_width(differing) - 1) / kSlotBits;
}

unsigned
TimingWheel::cursorSlot(unsigned level) const
{
    return static_cast<unsigned>(cursor_ >> (kSlotBits * level)) &
           (kSlots - 1);
}

Cycles
TimingWheel::lowerBound(unsigned level, unsigned slot) const
{
    const unsigned aboveBits = kSlotBits * (level + 1);
    const Cycles base =
        aboveBits >= 64 ? 0 : (cursor_ >> aboveBits) << aboveBits;
    return base | (static_cast<Cycles>(slot) << (kSlotBits * level));
}

void
TimingWheel::insert(std::uint32_t idx)
{
    EventRecord& rec = slab_[idx];
    if (rec.when < cursor_) {
        // runUntil() probing advanced the cursor past now(); park the
        // event in the pre-cursor heap (always drained before the
        // wheel, so global EventKey order is preserved).
        rec.home = EventRecord::kHomePre;
        pre_.push_back(PreEntry{rec.key(), idx, rec.gen});
        std::push_heap(pre_.begin(), pre_.end(), kPreLater);
        return;
    }
    fileAt(idx, rec.when);
}

void
TimingWheel::fileAt(std::uint32_t idx, Cycles when)
{
    EventRecord& rec = slab_[idx];
    const unsigned level = levelOf(when, cursor_);
    const unsigned slot =
        static_cast<unsigned>(when >> (kSlotBits * level)) & (kSlots - 1);
    const unsigned home = level * kSlots + slot;

    rec.home = static_cast<std::uint16_t>(home);
    if (tails_[home] == kNilRecord) {
        rec.next = kNilRecord;
        rec.prev = kNilRecord;
        heads_[home] = idx;
        tails_[home] = idx;
        pending_[level] |= Cycles{1} << slot;
        levelMask_ |= 1U << level;
        return;
    }
    if (level > 0) {
        // Higher levels are unordered staging: the cascade refiles the
        // whole list and level 0 re-sorts it, so O(1) append is fine.
        rec.next = kNilRecord;
        rec.prev = tails_[home];
        slab_[tails_[home]].next = idx;
        tails_[home] = idx;
        return;
    }
    // Level-0 slots hold exactly one timestamp and are dispatched
    // head-first, so keep the list sorted by the EventKey tiebreak.
    // Scan from the tail: machine-context keys arrive in ascending
    // order (O(1)), node-context ties only scan their own cycle.
    std::uint32_t at = tails_[home];
    while (at != kNilRecord && tieLess(rec, slab_[at])) {
        at = slab_[at].prev;
    }
    if (at == kNilRecord) {
        rec.prev = kNilRecord;
        rec.next = heads_[home];
        slab_[heads_[home]].prev = idx;
        heads_[home] = idx;
        return;
    }
    rec.prev = at;
    rec.next = slab_[at].next;
    slab_[at].next = idx;
    if (rec.next == kNilRecord) {
        tails_[home] = idx;
    } else {
        slab_[rec.next].prev = idx;
    }
}

void
TimingWheel::unlink(std::uint32_t idx, unsigned home)
{
    EventRecord& rec = slab_[idx];
    if (rec.prev != kNilRecord) {
        slab_[rec.prev].next = rec.next;
    } else {
        heads_[home] = rec.next;
    }
    if (rec.next != kNilRecord) {
        slab_[rec.next].prev = rec.prev;
    } else {
        tails_[home] = rec.prev;
    }
    if (heads_[home] == kNilRecord) {
        const unsigned level = home / kSlots;
        pending_[level] &= ~(Cycles{1} << (home % kSlots));
        if (pending_[level] == 0) {
            levelMask_ &= ~(1U << level);
        }
    }
}

void
TimingWheel::remove(std::uint32_t idx)
{
    const EventRecord& rec = slab_[idx];
    if (rec.home == EventRecord::kHomePre) {
        // Lazy: the heap entry goes stale and is skipped on pop (the
        // caller frees the record, which bumps its generation).
        return;
    }
    PLUS_ASSERT(rec.home < kLevels * kSlots, "removing unfiled record ",
                idx);
    unlink(idx, rec.home);
}

std::uint32_t
TimingWheel::popPre(Cycles limit)
{
    while (!pre_.empty()) {
        const PreEntry top = pre_.front();
        const EventRecord& rec = slab_[top.idx];
        const bool stale =
            rec.gen != top.gen || rec.home != EventRecord::kHomePre;
        if (!stale && top.key.when > limit) {
            return kNilRecord;
        }
        std::pop_heap(pre_.begin(), pre_.end(), kPreLater);
        pre_.pop_back();
        if (!stale) {
            return top.idx;
        }
    }
    return kNilRecord;
}

std::uint32_t
TimingWheel::extractNext(Cycles limit)
{
    // Events below the cursor strictly precede everything on the
    // wheel (pre.when < cursor_ <= wheel lower bounds).
    if (!pre_.empty()) {
        const std::uint32_t idx = popPre(limit);
        if (idx != kNilRecord) {
            return idx;
        }
        if (!pre_.empty()) {
            return kNilRecord; // valid pre entry beyond the limit
        }
    }

    for (;;) {
        int bestLevel = -1;
        Cycles bestLb = 0;
        for (std::uint32_t mask = levelMask_; mask != 0;
             mask &= mask - 1) {
            const unsigned level =
                static_cast<unsigned>(std::countr_zero(mask));
            // Invariant: every occupied slot sits at or after the
            // cursor's position within its level, so the mask below
            // never erases the whole bitmap.
            const std::uint64_t ahead =
                pending_[level] & (~std::uint64_t{0} << cursorSlot(level));
            PLUS_ASSERT(ahead != 0, "wheel slot behind cursor at level ",
                        level);
            const unsigned slot =
                static_cast<unsigned>(std::countr_zero(ahead));
            const Cycles lb = lowerBound(level, slot);
            if (bestLevel < 0 || lb < bestLb) {
                bestLevel = static_cast<int>(level);
                bestLb = lb;
            }
        }
        if (bestLevel < 0 || bestLb > limit) {
            return kNilRecord; // empty, or next event past the limit
        }

        cursor_ = bestLb;
        const unsigned level = static_cast<unsigned>(bestLevel);
        const unsigned home =
            level * kSlots +
            (static_cast<unsigned>(bestLb >> (kSlotBits * level)) &
             (kSlots - 1));
        if (level == 0) {
            // Level-0 slots hold exactly one timestamp; pop the head.
            const std::uint32_t idx = heads_[home];
            unlink(idx, home);
            return idx;
        }

        // Cascade: refile the whole slot list (in order) now that the
        // cursor entered its window; everything lands strictly lower.
        ++cascades_;
        std::uint32_t idx = heads_[home];
        heads_[home] = kNilRecord;
        tails_[home] = kNilRecord;
        pending_[level] &= ~(Cycles{1} << (home % kSlots));
        if (pending_[level] == 0) {
            levelMask_ &= ~(1U << level);
        }
        while (idx != kNilRecord) {
            const std::uint32_t next = slab_[idx].next;
            fileAt(idx, slab_[idx].when);
            idx = next;
        }
    }
}

} // namespace sim
} // namespace plus
