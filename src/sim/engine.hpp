/**
 * @file
 * Discrete-event simulation engine.
 *
 * The whole PLUS machine is simulated by one single-threaded event
 * loop. Components schedule closures at future cycles; ties are
 * broken by insertion order so runs are fully deterministic.
 *
 * Internally events live in a slab of reusable records (no per-event
 * heap allocation: the callable is a `sim::Event` with inline capture
 * storage) ordered by a hierarchical timing wheel — O(1) schedule,
 * cancel and dispatch for the short fixed delays that dominate the
 * simulation. The pre-wheel `std::priority_queue` backend is kept
 * behind `PLUS_ENGINE=heap` as a determinism oracle: both backends
 * execute events in identical (when, seq) order, and CI diffs their
 * bench output byte-for-byte (see docs/PERF.md).
 */

#ifndef PLUS_SIM_ENGINE_HPP_
#define PLUS_SIM_ENGINE_HPP_

#include <cstdint>
#include <queue>
#include <vector>

#include "common/types.hpp"
#include "sim/event.hpp"
#include "sim/event_slab.hpp"
#include "sim/timing_wheel.hpp"

namespace plus {
namespace sim {

/**
 * Handle identifying a scheduled event, usable for cancellation.
 * Encodes (generation << 32 | slab slot); stale handles — including
 * those of events that already fired — are rejected in O(1).
 */
using EventId = std::uint64_t;

/** Sentinel meaning "no event". */
inline constexpr EventId kInvalidEvent = 0;

/** Which event-queue backend an Engine runs on. */
enum class EngineImpl {
    Wheel, ///< hierarchical timing wheel (default)
    Heap,  ///< legacy priority queue, kept as a determinism oracle
};

/** Counters describing engine health (exported as sim.* metrics). */
struct EngineStats {
    std::uint64_t scheduled = 0;    ///< events ever scheduled
    std::uint64_t executed = 0;     ///< events dispatched
    std::uint64_t cancelled = 0;    ///< successful cancel() calls
    std::uint64_t cascades = 0;     ///< wheel slot redistributions
    std::size_t slabLive = 0;       ///< records currently allocated
    std::size_t slabHighWater = 0;  ///< peak simultaneous records
    std::size_t slabSlots = 0;      ///< slab capacity (bounded by peak)
};

/** The event loop: a time-ordered queue of closures. */
class Engine
{
  public:
    /** Backend chosen by the PLUS_ENGINE env var ("heap" | "wheel"). */
    Engine();
    explicit Engine(EngineImpl impl);
    ~Engine();

    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    /** Current simulated time in cycles. */
    Cycles now() const { return now_; }

    /** Schedule @p fn to run @p delay cycles from now. */
    EventId schedule(Cycles delay, Event fn);

    /** Schedule @p fn at absolute cycle @p when (must be >= now). */
    EventId scheduleAt(Cycles when, Event fn);

    /**
     * Schedule a daemon event (cf. Unix daemon threads): it executes
     * like any other event while ordinary work remains, but does not
     * keep the loop alive — run()/runUntil() return once only daemon
     * events are pending, without executing them or advancing now().
     * For periodic observers (the forward-progress watchdog) that must
     * never stretch a run to their own next deadline. Excluded from
     * pendingEvents(); cancel() works normally.
     */
    EventId scheduleDaemon(Cycles delay, Event fn);

    /**
     * Cancel a previously scheduled event.
     * @return true if the event was pending and is now cancelled;
     *         false for invalid ids and events that already fired.
     */
    bool cancel(EventId id);

    /** Run until the queue is empty or stop() is called. */
    void run();

    /**
     * Run until simulated time would exceed @p limit; events at exactly
     * @p limit still execute. now() stays at the last executed event's
     * time (it does not fast-forward to the limit).
     */
    void runUntil(Cycles limit);

    /** Execute at most one event. @return false if the queue was empty. */
    bool step();

    /** Request that run() return after the current event. */
    void stop() { stopping_ = true; }

    /**
     * Number of ordinary events pending (exact; cancelled events leave,
     * daemon events never count — they represent no work of their own).
     */
    std::size_t pendingEvents() const { return pending_ - daemonPending_; }

    /** Total events executed since construction. */
    std::uint64_t executedEvents() const { return executed_; }

    /** The backend this engine runs on. */
    EngineImpl impl() const { return impl_; }

    /** Engine health counters for telemetry. */
    EngineStats stats() const;

  private:
    struct HeapEntry {
        Cycles when;
        std::uint64_t seq;
        std::uint32_t idx;
        std::uint32_t gen;
    };

    struct HeapLater {
        bool
        operator()(const HeapEntry& a, const HeapEntry& b) const
        {
            // Earliest time first; FIFO among equal times.
            if (a.when != b.when) {
                return a.when > b.when;
            }
            return a.seq > b.seq;
        }
    };

    EventId scheduleImpl(Cycles when, Event fn, bool daemon);
    bool dispatchNext(Cycles limit);
    std::uint32_t nextFromHeap(Cycles limit);

    EventSlab slab_;
    TimingWheel wheel_{slab_};
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLater>
        heap_;
    EngineImpl impl_;
    Cycles now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t scheduledTotal_ = 0;
    std::uint64_t cancelledTotal_ = 0;
    std::size_t pending_ = 0;
    std::size_t daemonPending_ = 0;
    bool stopping_ = false;
};

} // namespace sim
} // namespace plus

#endif // PLUS_SIM_ENGINE_HPP_
