/**
 * @file
 * Discrete-event simulation engine.
 *
 * The whole PLUS machine is simulated by one single-threaded event loop.
 * Components schedule closures at future cycles; ties are broken by
 * insertion order so runs are fully deterministic.
 */

#ifndef PLUS_SIM_ENGINE_HPP_
#define PLUS_SIM_ENGINE_HPP_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"

namespace plus {
namespace sim {

/** Handle identifying a scheduled event, usable for cancellation. */
using EventId = std::uint64_t;

/** Sentinel meaning "no event". */
inline constexpr EventId kInvalidEvent = 0;

/** The event loop: a time-ordered queue of closures. */
class Engine
{
  public:
    Engine();
    ~Engine();

    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    /** Current simulated time in cycles. */
    Cycles now() const { return now_; }

    /** Schedule @p fn to run @p delay cycles from now. */
    EventId schedule(Cycles delay, std::function<void()> fn);

    /** Schedule @p fn at absolute cycle @p when (must be >= now). */
    EventId scheduleAt(Cycles when, std::function<void()> fn);

    /**
     * Cancel a previously scheduled event.
     * @return true if the event was pending and is now cancelled.
     */
    bool cancel(EventId id);

    /** Run until the queue is empty or stop() is called. */
    void run();

    /**
     * Run until simulated time would exceed @p limit; events at exactly
     * @p limit still execute. now() stays at the last executed event's
     * time (it does not fast-forward to the limit).
     */
    void runUntil(Cycles limit);

    /** Execute at most one event. @return false if the queue was empty. */
    bool step();

    /** Request that run() return after the current event. */
    void stop() { stopping_ = true; }

    /** Number of events pending (including cancelled-but-unpopped). */
    std::size_t pendingEvents() const { return queue_.size() - cancelled_; }

    /** Total events executed since construction. */
    std::uint64_t executedEvents() const { return executed_; }

  private:
    struct Record {
        Cycles when;
        std::uint64_t seq;
        EventId id;
        std::function<void()> fn;
    };

    struct Later {
        bool
        operator()(const Record& a, const Record& b) const
        {
            // Earliest time first; FIFO among equal times.
            if (a.when != b.when) {
                return a.when > b.when;
            }
            return a.seq > b.seq;
        }
    };

    bool dispatchNext(Cycles limit);

    std::priority_queue<Record, std::vector<Record>, Later> queue_;
    /** Ids of cancelled events awaiting lazy removal. */
    std::unordered_set<EventId> cancelledIds_;
    std::size_t cancelled_ = 0;
    Cycles now_ = 0;
    std::uint64_t nextSeq_ = 0;
    EventId nextId_ = 1;
    std::uint64_t executed_ = 0;
    bool stopping_ = false;
};

} // namespace sim
} // namespace plus

#endif // PLUS_SIM_ENGINE_HPP_
