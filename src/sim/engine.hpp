/**
 * @file
 * Discrete-event simulation engine.
 *
 * The whole PLUS machine is simulated by an event loop. Components
 * schedule closures at future cycles; ties are broken by a canonical
 * *partition-independent* key derived from the scheduling context
 * (see sim::EventKey), so runs are fully deterministic and every
 * backend realises the same total order.
 *
 * Internally events live in a slab of reusable records (no per-event
 * heap allocation: the callable is a `sim::Event` with inline capture
 * storage) ordered by a hierarchical timing wheel — O(1) schedule,
 * cancel and dispatch for the short fixed delays that dominate the
 * simulation. The pre-wheel `std::priority_queue` backend is kept
 * behind `PLUS_ENGINE=heap` as a determinism oracle, and
 * `PLUS_ENGINE=parallel` runs a conservatively synchronised
 * multi-threaded backend (one timing wheel per spatial domain, window
 * bound = min pending key + lookahead) that must execute the exact
 * same event order — CI diffs all three byte-for-byte (docs/PERF.md).
 *
 * Scheduling contexts and lanes: every event carries a *lane* — the
 * node it executes at, or kMachineLane for machine-level work. The
 * lane decides the scheduling context its callback runs under (which
 * keys the callback's own schedules) and, under the parallel backend,
 * which domain dispatches it. Plain schedule() inherits the current
 * lane; scheduleForNode()/scheduleMachine() override it, and
 * withNodeContext() brackets machine-side code that seeds events into
 * a node's lane (processor start, page-copy kickoff).
 */

#ifndef PLUS_SIM_ENGINE_HPP_
#define PLUS_SIM_ENGINE_HPP_

#include <atomic>
#include <cstdint>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "sim/event.hpp"
#include "sim/event_slab.hpp"
#include "sim/timing_wheel.hpp"

namespace plus {
namespace sim {

class ParallelEngine;

/**
 * Handle identifying a scheduled event, usable for cancellation.
 * Encodes (generation << 32 | domain << 26 | slab slot); stale
 * handles — including those of events that already fired — are
 * rejected in O(1). Cross-domain schedules under the parallel backend
 * return kInvalidEvent (they cannot be cancelled; no caller needs to).
 */
using EventId = std::uint64_t;

/** Sentinel meaning "no event". */
inline constexpr EventId kInvalidEvent = 0;

/** Bit layout of EventId below the generation. */
inline constexpr unsigned kEventIdxBits = 26;
inline constexpr unsigned kEventDomainBits = 6;
/** Domain tag for the global (machine) lane in EventIds. */
inline constexpr std::uint32_t kGlobalDomain =
    (1U << kEventDomainBits) - 1;

/** Which event-queue backend an Engine runs on. */
enum class EngineImpl {
    Wheel,    ///< hierarchical timing wheel (default)
    Heap,     ///< legacy priority queue, kept as a determinism oracle
    Parallel, ///< conservative multi-threaded wheels (PLUS_ENGINE=parallel)
};

/** The backend named by PLUS_ENGINE (Wheel when unset/unknown). */
EngineImpl implFromEnv();

/** Counters describing engine health (exported as sim.* metrics). */
struct EngineStats {
    std::uint64_t scheduled = 0;    ///< events ever scheduled
    std::uint64_t executed = 0;     ///< events dispatched
    std::uint64_t cancelled = 0;    ///< successful cancel() calls
    std::uint64_t cascades = 0;     ///< wheel slot redistributions
    std::uint64_t windows = 0;      ///< parallel per-domain event windows
    std::uint64_t batches = 0;      ///< parallel window batches (barriers)
    std::uint64_t mailed = 0;       ///< cross-domain mailbox handoffs
    std::size_t slabLive = 0;       ///< records currently allocated
    std::size_t slabHighWater = 0;  ///< peak simultaneous records
    std::size_t slabSlots = 0;      ///< slab capacity (bounded by peak)
};

/** The event loop: a time-ordered queue of closures. */
class Engine
{
  public:
    /** Backend chosen by PLUS_ENGINE ("heap" | "wheel" | "parallel"). */
    Engine();
    explicit Engine(EngineImpl impl);
    ~Engine();

    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    /**
     * Current simulated time in cycles. Under the parallel backend a
     * worker thread sees its own domain's clock (and, during deferred
     * side-effect replay, the emitting event's time), so observers and
     * telemetry stamp identically to the serial backends.
     */
    Cycles
    now() const
    {
        return par_ == nullptr ? now_ : parNow();
    }

    /**
     * Declare the node-lane space, worker-thread count and spatial
     * domain count. Must be called before any withNodeContext()/
     * scheduleForNode() use; the Machine calls it right after
     * constructing the engine. @p threads is clamped to [1, nodes] and
     * only matters to the parallel backend. @p domains is the number
     * of contiguous spatial domains the node space is split into
     * (threads own domains round-robin; 0 = auto, up to 4 per thread);
     * it must be a multiple of the thread count and at most
     * min(nodes, 62).
     */
    void configure(unsigned nodes, unsigned threads,
                   unsigned domains = 0);

    /**
     * Global conservative lookahead floor: the minimum cross-node
     * latency of the network. Lower-bounds every lookahead-matrix
     * entry, caps a batch when node->machine mail may be in flight
     * (see setNodeMachineMailHint) and is the delay the Machine
     * applies to node-triggered machine ops so they execute
     * stop-the-world. Must be >= 1 before a parallel run with more
     * than one domain.
     */
    void setLookahead(Cycles lookahead) { lookahead_ = lookahead; }
    Cycles lookahead() const { return lookahead_; }

    /**
     * Distance-aware lookahead matrix for the parallel backend:
     * @p flat is a domains() x domains() row-major matrix where entry
     * [src][dst] lower-bounds the delay any chain of events takes to
     * carry work from a node of domain src to a node of domain dst
     * (Network::crossNodeFloor of the minimum hop distance between
     * the domains' node ranges). Entries must be >= 1 off-diagonal
     * and satisfy the triangle inequality (automatic for floors that
     * are monotone + subadditive in distance). Installed by the
     * Machine at partition time; without it the parallel backend
     * falls back to a uniform matrix of lookahead(). No-op on serial
     * backends.
     */
    void setLookaheadMatrix(std::vector<Cycles> flat);

    /**
     * Hint: may node-lane events currently schedule machine-lane work
     * (scheduleMachine from node context)? While true the parallel
     * backend caps every batch at `global min + lookahead` so a
     * machine-lane event created mid-batch still executes
     * stop-the-world in key order; while false batches stretch to the
     * next already-known machine event, which is where the batching
     * win comes from. Defaults to true (always safe); the Machine
     * drops it while no page copies are in flight and competitive
     * replication is unarmed — the only two node->machine producers.
     */
    void setNodeMachineMailHint(bool on) { nodeMachineMailHint_ = on; }
    bool nodeMachineMailHint() const { return nodeMachineMailHint_; }

    unsigned nodes() const { return nodes_; }
    unsigned threads() const { return threads_; }
    /** Spatial domain count resolved by configure() (1 when serial). */
    unsigned domains() const { return domains_; }

    /** The domain owning node lane @p lane under the resolved split. */
    unsigned
    domainOfLane(unsigned lane) const
    {
        return nodes_ == 0
                   ? 0
                   : static_cast<unsigned>(
                         (static_cast<std::uint64_t>(lane) * domains_) /
                         nodes_);
    }

    /** Schedule @p fn to run @p delay cycles from now. */
    EventId
    schedule(Cycles delay, Event fn)
    {
        return scheduleImpl(now() + delay, std::move(fn), false,
                            curCtx().node);
    }

    /** Schedule @p fn at absolute cycle @p when (must be >= now). */
    EventId
    scheduleAt(Cycles when, Event fn)
    {
        return scheduleImpl(when, std::move(fn), false, curCtx().node);
    }

    /**
     * Schedule a daemon event (cf. Unix daemon threads): it executes
     * like any other event while ordinary work remains, but does not
     * keep the loop alive — run()/runUntil() return once only daemon
     * events are pending, without executing them or advancing now().
     * For periodic observers (the forward-progress watchdog) that must
     * never stretch a run to their own next deadline. Excluded from
     * pendingEvents(); cancel() works normally. Machine lane only.
     */
    EventId scheduleDaemon(Cycles delay, Event fn);

    /**
     * Schedule @p fn into node @p node's lane. The key still comes
     * from the *current* context (deterministic regardless of
     * partitioning); only the execution lane is overridden. Under the
     * parallel backend a cross-domain target goes through a mailbox
     * and returns kInvalidEvent; the delay must then be at least the
     * lookahead (network hop latencies guarantee this).
     */
    EventId scheduleForNode(NodeId node, Cycles delay, Event fn);

    /**
     * Schedule machine-lane work from node context. Under the parallel
     * backend machine-lane events execute stop-the-world between
     * windows; @p delay must be >= lookahead() so the event lands
     * beyond the current window bound. The serial backends execute it
     * identically (same key, same order), so behaviour never forks.
     */
    void scheduleMachine(Cycles delay, Event fn);

    /**
     * Run machine-side code in node @p node's scheduling context, so
     * the events it seeds (processor dispatch, page-copy service) get
     * node-deterministic keys and land in the node's lane.
     */
    template <typename F>
    auto
    withNodeContext(NodeId node, F&& f)
    {
        PLUS_ASSERT(node < nodes_, "node context ", node,
                    " outside configured lanes (", nodes_, ")");
        SchedCtx& c = curCtx();
        const SchedCtx saved = c;
        c.node = static_cast<std::uint16_t>(node);
        c.init = true;
        struct Restore {
            SchedCtx& c;
            const SchedCtx& saved;
            ~Restore() { c = saved; }
        } restore{c, saved};
        return std::forward<F>(f)();
    }

    /**
     * Run @p fn "now" from the perspective of observable side effects.
     * On the serial backends (and outside parallel windows) this is an
     * immediate inline call. Inside a parallel window the closure is
     * buffered and replayed by the coordinator in global key order
     * with now() overridden to the emitting event's time — this is how
     * checker hooks, telemetry and shared statistics stay byte-
     * identical to serial execution without any locking.
     */
    void
    defer(Event fn)
    {
        if (par_ == nullptr) {
            fn();
        } else {
            deferParallel(std::move(fn));
        }
    }

    /**
     * Cancel a previously scheduled event.
     * @return true if the event was pending and is now cancelled;
     *         false for invalid ids and events that already fired.
     */
    bool cancel(EventId id);

    /** Run until the queue is empty or stop() is called. */
    void run();

    /**
     * Run until simulated time would exceed @p limit; events at exactly
     * @p limit still execute. now() stays at the last executed event's
     * time (it does not fast-forward to the limit).
     */
    void runUntil(Cycles limit);

    /** Execute at most one event. @return false if the queue was empty.
     *  Serial backends only. */
    bool step();

    /**
     * Request that run() return. Serial backends return after the
     * current event; the parallel backend finishes the current window
     * first (stop() is the one asynchronous entry point, so this is
     * the one place wall-clock parallelism is allowed to show).
     */
    void stop() { stopping_.store(true, std::memory_order_relaxed); }

    /**
     * Number of ordinary events pending (exact; cancelled events leave,
     * daemon events never count — they represent no work of their own).
     */
    std::size_t pendingEvents() const;

    /** Total events executed since construction. */
    std::uint64_t executedEvents() const;

    /** The backend this engine runs on. */
    EngineImpl impl() const { return impl_; }

    /**
     * Whether the multi-threaded parallel backend is actually live
     * (Parallel impl, configured with more than one domain). The
     * Machine uses this to interpose the deferring observer wrappers
     * only when worker threads exist.
     */
    bool parallelActive() const { return par_ != nullptr; }

    /** Engine health counters for telemetry. */
    EngineStats stats() const;

    /** Executing lane: a node id, or kMachineLane in machine context. */
    std::uint16_t currentLane() const { return curCtx().node; }

    /**
     * Index for per-lane statistic shards: the executing node, or
     * nodes() for machine context. Two events never execute in the
     * same lane concurrently, so lane-sharded counters need no atomics
     * and their totals are exact in every backend.
     */
    std::size_t
    shardIndex() const
    {
        const std::uint16_t lane = curCtx().node;
        return lane == kMachineLane ? nodes_ : lane;
    }

    /** Context events are scheduled from; the source of EventKeys. */
    struct SchedCtx {
        std::uint16_t node = kMachineLane; ///< ambient lane
        std::uint32_t step = 0;            ///< executing event's step
        std::uint16_t child = 0;           ///< next child index
        std::uint16_t emit = 0;            ///< next deferred-effect index
        bool init = false;                 ///< inside withNodeContext()
    };

  private:
    friend class ParallelEngine;

    struct HeapEntry {
        EventKey key;
        std::uint32_t idx;
        std::uint32_t gen;
    };

    struct HeapLater {
        bool
        operator()(const HeapEntry& a, const HeapEntry& b) const
        {
            return b.key < a.key;
        }
    };

    EventId scheduleImpl(Cycles when, Event fn, bool daemon,
                         std::uint16_t lane);
    /** Canonical key tiebreak from the current scheduling context. */
    std::uint64_t makeKey2();
    /** Set the dispatch context for a record about to execute. */
    void enterEventContext(const EventRecord& rec, SchedCtx& ctx);
    bool dispatchNext(Cycles limit);
    std::uint32_t nextFromHeap(Cycles limit);

    SchedCtx&
    curCtx()
    {
        return par_ == nullptr ? ctx_ : parCtx();
    }

    const SchedCtx&
    curCtx() const
    {
        return const_cast<Engine*>(this)->curCtx();
    }

    SchedCtx& parCtx();
    Cycles parNow() const;
    void deferParallel(Event fn);

    EventSlab slab_;
    TimingWheel wheel_{slab_};
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLater>
        heap_;
    EngineImpl impl_;
    Cycles now_ = 0;
    Cycles lookahead_ = 0;
    unsigned nodes_ = 0;
    unsigned threads_ = 1;
    unsigned domains_ = 1;
    bool nodeMachineMailHint_ = true;
    SchedCtx ctx_;
    std::uint32_t machineSeq_ = 0;
    std::vector<std::uint32_t> initStep_;
    std::vector<std::uint32_t> execStep_;
    std::uint64_t executed_ = 0;
    std::uint64_t scheduledTotal_ = 0;
    std::uint64_t cancelledTotal_ = 0;
    std::size_t pending_ = 0;
    std::size_t daemonPending_ = 0;
    std::atomic<bool> stopping_{false};
    std::unique_ptr<ParallelEngine> par_;
};

} // namespace sim
} // namespace plus

#endif // PLUS_SIM_ENGINE_HPP_
