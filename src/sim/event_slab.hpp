/**
 * @file
 * Slab allocator for engine event records.
 *
 * Event records live in fixed 256-slot chunks that are never moved or
 * freed while the engine is alive, so raw indices stay valid across
 * growth and callbacks may schedule freely mid-dispatch. A free list
 * threaded through the records makes allocate/free O(1), and a
 * generation counter per slot lets `Engine::cancel()` reject stale
 * `EventId`s without any tombstone bookkeeping. Under AddressSanitizer
 * the callable storage of freed records is poisoned so use-after-free
 * of a dead event trips the sanitizer stage of CI.
 */

#ifndef PLUS_SIM_EVENT_SLAB_HPP_
#define PLUS_SIM_EVENT_SLAB_HPP_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/panic.hpp"
#include "common/types.hpp"
#include "sim/event.hpp"

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PLUS_SIM_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define PLUS_SIM_ASAN 1
#endif

#ifdef PLUS_SIM_ASAN
#include <sanitizer/asan_interface.h>
#define PLUS_SIM_POISON(addr, size) ASAN_POISON_MEMORY_REGION(addr, size)
#define PLUS_SIM_UNPOISON(addr, size) ASAN_UNPOISON_MEMORY_REGION(addr, size)
#else
#define PLUS_SIM_POISON(addr, size) ((void)0)
#define PLUS_SIM_UNPOISON(addr, size) ((void)0)
#endif

namespace plus {
namespace sim {

/** Null link / "no record" index. */
inline constexpr std::uint32_t kNilRecord = 0xffffffffU;

/**
 * Execution lane of an event: the node whose context it runs in, or
 * kMachineLane for machine-level events (config scripts, watchdog,
 * page-management ops). Lanes drive two things: the scheduling context
 * an event executes under (which in turn keys its children), and —
 * under the parallel backend — which spatial domain dispatches it.
 */
inline constexpr std::uint16_t kMachineLane = 0xffff;

/**
 * Canonical, partition-independent dispatch key. Events execute in
 * ascending (when, schedWhen, key2) order in *every* backend; the key
 * is derived purely from the scheduling context (which node/machine
 * scheduled it, that context's execution step, and a per-context child
 * counter), never from global insertion order, so the serial wheel,
 * the heap oracle and every parallel partitioning realise the same
 * total order. `key2` packs `schedNode:16 | step:32 | child:16`.
 */
struct EventKey {
    Cycles when = 0;       ///< due cycle
    Cycles schedWhen = 0;  ///< cycle the schedule() call happened
    std::uint64_t key2 = 0;

    friend constexpr bool
    operator<(const EventKey& a, const EventKey& b)
    {
        if (a.when != b.when) {
            return a.when < b.when;
        }
        if (a.schedWhen != b.schedWhen) {
            return a.schedWhen < b.schedWhen;
        }
        return a.key2 < b.key2;
    }
};

/** One scheduled (or free) event: callable + timing + intrusive links. */
struct EventRecord {
    /** `home` for a record on the slab free list. */
    static constexpr std::uint16_t kHomeFree = 0xffff;
    /** `home` for a record parked in the pre-cursor heap. */
    static constexpr std::uint16_t kHomePre = 0xfffe;
    /** `home` for a record owned by the legacy heap backend. */
    static constexpr std::uint16_t kHomeHeap = 0xfffd;

    Event fn;                           ///< poisoned while the slot is free
    Cycles when = 0;                    ///< absolute due cycle
    Cycles schedWhen = 0;               ///< cycle it was scheduled at
    std::uint64_t key2 = 0;             ///< context tiebreak (see EventKey)
    std::uint32_t gen = 1;              ///< bumped on free; never 0
    std::uint32_t next = kNilRecord;    ///< slot list / free list link
    std::uint32_t prev = kNilRecord;    ///< slot list back link
    std::uint16_t home = kHomeFree;     ///< wheel slot index or kHome*
    std::uint16_t lane = kMachineLane;  ///< executing node or kMachineLane
    bool daemon = false;                ///< does not keep run() alive

    EventKey key() const { return EventKey{when, schedWhen, key2}; }
};

/** Chunked, address-stable pool of EventRecords with a free list. */
class EventSlab
{
  public:
    static constexpr unsigned kChunkShift = 8;
    static constexpr unsigned kChunkSize = 1U << kChunkShift;

    EventSlab() = default;
    EventSlab(const EventSlab&) = delete;
    EventSlab& operator=(const EventSlab&) = delete;

    ~EventSlab()
    {
        // Records on the free list have poisoned callable storage;
        // unpoison before the chunk destructors touch them.
#ifdef PLUS_SIM_ASAN
        for (auto& chunk : chunks_) {
            PLUS_SIM_UNPOISON(chunk.get(), kChunkSize * sizeof(EventRecord));
        }
#endif
    }

    /** Grab a free record (unpoisoned, `fn` empty, `gen` valid). */
    std::uint32_t
    allocate()
    {
        if (freeHead_ == kNilRecord) {
            grow();
        }
        const std::uint32_t idx = freeHead_;
        EventRecord& rec = record(idx);
        PLUS_SIM_UNPOISON(&rec.fn, sizeof(rec.fn));
        freeHead_ = rec.next;
        rec.next = kNilRecord;
        rec.prev = kNilRecord;
        if (++live_ > highWater_) {
            highWater_ = live_;
        }
        return idx;
    }

    /**
     * Return @p idx to the free list: destroy the callable, bump the
     * generation (invalidating every outstanding EventId for the
     * slot), and poison the callable storage.
     */
    void
    free(std::uint32_t idx)
    {
        EventRecord& rec = record(idx);
        PLUS_ASSERT(rec.home != EventRecord::kHomeFree,
                    "double free of event record ", idx);
        rec.fn.reset();
        if (++rec.gen == 0) {
            rec.gen = 1; // keep "gen 0" meaning "never a valid id"
        }
        rec.home = EventRecord::kHomeFree;
        rec.prev = kNilRecord;
        rec.next = freeHead_;
        freeHead_ = idx;
        --live_;
        PLUS_SIM_POISON(&rec.fn, sizeof(rec.fn));
    }

    EventRecord&
    operator[](std::uint32_t idx)
    {
        return record(idx);
    }

    const EventRecord&
    operator[](std::uint32_t idx) const
    {
        return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
    }

    /** Total slots ever created (live + free). */
    std::size_t size() const { return chunks_.size() * kChunkSize; }

    /** Records currently allocated. */
    std::size_t live() const { return live_; }

    /** Peak simultaneous live records. */
    std::size_t highWater() const { return highWater_; }

  private:
    EventRecord&
    record(std::uint32_t idx)
    {
        return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
    }

    void
    grow()
    {
        PLUS_ASSERT(chunks_.size() < (kNilRecord >> kChunkShift),
                    "event slab exhausted");
        const auto base =
            static_cast<std::uint32_t>(chunks_.size() * kChunkSize);
        chunks_.push_back(std::make_unique<EventRecord[]>(kChunkSize));
        EventRecord* chunk = chunks_.back().get();
        // Thread the new records onto the free list in ascending
        // order and poison their (empty) callable storage.
        for (unsigned i = kChunkSize; i-- > 0;) {
            chunk[i].next = freeHead_;
            freeHead_ = base + i;
            PLUS_SIM_POISON(&chunk[i].fn, sizeof(chunk[i].fn));
        }
    }

    std::vector<std::unique_ptr<EventRecord[]>> chunks_;
    std::uint32_t freeHead_ = kNilRecord;
    std::size_t live_ = 0;
    std::size_t highWater_ = 0;
};

} // namespace sim
} // namespace plus

#endif // PLUS_SIM_EVENT_SLAB_HPP_
