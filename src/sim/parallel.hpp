/**
 * @file
 * Conservative-parallel engine backend (PLUS_ENGINE=parallel).
 *
 * The mesh is partitioned into contiguous per-thread spatial domains,
 * each with its own event slab and timing wheel. Execution proceeds in
 * synchronisation windows: the coordinator (the thread that called
 * run()) computes a conservative bound
 *
 *     B = min(min pending key + lookahead, next machine-lane key)
 *
 * where the lookahead is the minimum cross-node network latency, then
 * every domain executes its events with key < B concurrently. Because
 * any event an executing event can still create lands at least
 * `lookahead` cycles in the future — and cross-*node* work can only be
 * created through the network, whose hop latency is the lookahead
 * floor even under fault-injected delays (delays only add) — no
 * domain can receive work inside the open window: classic conservative
 * PDES à la Chandy/Misra null-message lookahead, with a barrier
 * instead of null messages.
 *
 * Cross-domain schedules ride single-writer mailboxes (one vector per
 * (source domain, destination) pair, written only by the source
 * thread during a window, drained only by the coordinator between
 * windows — the barrier provides the happens-before edge). Machine-
 * lane events live in the host engine's own slab/wheel and execute
 * stop-the-world between windows, so config scripts, the watchdog and
 * page-management ops see a quiescent machine exactly as they do
 * serially.
 *
 * Determinism: events carry partition-independent keys (sim::EventKey)
 * and every side effect visible outside a domain — checker hooks,
 * telemetry, shared statistics — is routed through Engine::defer(),
 * buffered per domain, and replayed by the coordinator in global key
 * order with now() overridden to the emitting event's time. The
 * result is byte-identical output to the serial wheel at any thread
 * count; parallelism changes wall-clock only (docs/PERF.md has the
 * full argument).
 */

#ifndef PLUS_SIM_PARALLEL_HPP_
#define PLUS_SIM_PARALLEL_HPP_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "sim/engine.hpp"
#include "sim/event_slab.hpp"
#include "sim/timing_wheel.hpp"

namespace plus {
namespace sim {

/** Multi-threaded window scheduler behind Engine (impl == Parallel). */
class ParallelEngine
{
  public:
    ParallelEngine(Engine& host, unsigned threads);
    ~ParallelEngine();

    ParallelEngine(const ParallelEngine&) = delete;
    ParallelEngine& operator=(const ParallelEngine&) = delete;

    /** Route a schedule from Engine; see Engine::scheduleImpl. */
    EventId schedule(Cycles when, Event fn, bool daemon,
                     std::uint16_t lane);
    bool cancel(std::uint32_t domain, std::uint32_t idx,
                std::uint32_t gen);
    void run(Cycles limit);
    void defer(Event fn);

    /** Scheduling context of the calling thread's domain, if bound. */
    Engine::SchedCtx* boundCtx();
    /** Domain-local clock of the calling thread, else @p hostNow. */
    Cycles boundNow(Cycles hostNow) const;

    std::size_t domainPending() const;
    std::uint64_t domainExecuted() const;
    void addStats(EngineStats& s) const;

    unsigned
    domainOf(std::uint16_t lane) const
    {
        return static_cast<unsigned>(
            (static_cast<std::uint64_t>(lane) * domainCount_) /
            host_.nodes_);
    }

  private:
    /** A cross-domain (or worker-to-machine) scheduled event in flight. */
    struct Mail {
        Cycles when;
        Cycles schedWhen;
        std::uint64_t key2;
        std::uint16_t lane;
        Event fn;
    };

    /** A buffered side effect awaiting key-ordered replay. */
    struct Deferred {
        EventKey key;       ///< emitting event
        std::uint32_t emit; ///< emission index within that event
        Event fn;
    };

    struct alignas(64) Domain {
        Domain(unsigned index, unsigned domains);

        unsigned index;
        EventSlab slab;
        TimingWheel wheel{slab};
        Cycles now = 0;
        Engine::SchedCtx ctx;
        EventKey curKey{};
        std::size_t pending = 0;
        std::uint64_t executed = 0;
        std::uint64_t scheduled = 0;
        std::uint64_t cancelled = 0;
        std::uint64_t mailed = 0;
        /** [dst domain] node mail; [domainCount] = machine lane. */
        std::vector<std::vector<Mail>> outbox;
        std::vector<Deferred> deferred;
        std::exception_ptr error;
        EventKey errorKey{};
    };

    enum class Cmd { Window, Exit };

    void startWorkers();
    void shutdownWorkers();
    void workerLoop(unsigned index);
    void executeWindow(Domain& d, EventKey bound);
    void awaitArrivals();
    void signal(Cmd cmd);
    void awaitEpoch(std::uint64_t& seen);
    void replayDeferred();
    void drainMail();
    void insertMail(Domain& d, Mail m);
    void rethrowWorkerError();
    bool peek(TimingWheel& wheel, EventSlab& slab, EventKey& out);
    EventId insertDomain(Domain& d, Cycles when, Event fn,
                         Cycles schedWhen, std::uint64_t key2,
                         std::uint16_t lane);

    Engine& host_;
    unsigned domainCount_;
    std::vector<std::unique_ptr<Domain>> domains_;
    /** Next pending key per domain, maintained inside a round. */
    std::vector<EventKey> domainNext_;
    std::vector<char> domainHasNext_;
    std::uint64_t windows_ = 0;

    // Round gate: workers park by incrementing arrived_ and waiting
    // for an epoch bump; the coordinator waits for all arrivals, does
    // the stop-the-world phase, then publishes cmd_/bound_ and bumps
    // the epoch. arrived_ is reset by signal(), not by the wait, so a
    // run can end with workers parked and the next run picks them up.
    std::vector<std::thread> workers_;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<unsigned> arrived_{0};
    std::atomic<int> sleepers_{0};
    std::mutex gateMutex_;
    std::condition_variable gateCv_;
    Cmd cmd_ = Cmd::Window;
    EventKey bound_{};
};

} // namespace sim
} // namespace plus

#endif // PLUS_SIM_PARALLEL_HPP_
