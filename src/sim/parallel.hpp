/**
 * @file
 * Conservative-parallel engine backend (PLUS_ENGINE=parallel).
 *
 * The mesh is partitioned into D contiguous spatial domains (D a
 * multiple of the thread count W; threads own domains round-robin),
 * each with its own event slab and timing wheel. Execution proceeds in
 * *batches* of asynchronous per-domain windows: inside a batch every
 * thread repeatedly
 *
 *   1. for each owned domain, folds the inbox floor F[d] into the
 *      published value P[d] and wipes it (CAS back to "none"),
 *   2. drains its incoming mail rings,
 *   3. snapshots min(P[u], F[u]) for every domain — two passes,
 *      elementwise min (see below),
 *   4. for each owned domain d executes events with
 *          key < B_d = min over all u (snap[u] + L[u][d])
 *      — the u == d term uses the matrix diagonal, which holds the
 *      minimum round trip min over u != d of L[d][u] + L[u][d], so a
 *      window never outruns mail its own execution reflects back at
 *      it through a peer — additionally capped by d's own snapshotted
 *      inbox floor (mail addressed to d gets no lookahead leg) and by
 *      the batch bound (next machine-lane key, the run limit, and —
 *      while node->machine mail may exist — the machine-mail floor),
 *      and
 *   5. republishes P[d] (release) from a real wheel peek,
 *
 * with no barrier between iterations. L is the per-domain-pair
 * lookahead matrix: Network::crossNodeFloor() of the minimum hop
 * distance between the two domains' node ranges, installed by the
 * Machine at partition time. Because the floor is monotone and
 * subadditive in distance, L satisfies the triangle inequality, and
 * any *chain* of cross-domain events from u to d accumulates at least
 * L[u][d] cycles. A published P alone is not enough to make that
 * argument sound, though: once a sender has executed the chain root
 * and republished a higher P, the mail may still sit unread in an
 * intermediate domain's ring while that domain's P says "idle". The
 * inbox floor F closes the hole — a sender CAS-mins F[dst] (release)
 * *after* making the mail visible and *before* republishing its own
 * P, so at any reader either the sender's old P or the destination's
 * floor covers mail in flight. The two-pass snapshot (read F then P
 * per domain, two sweeps, take the elementwise min) catches the
 * handoff races in both directions: a raised P observed in pass one
 * guarantees the floor CAS is visible by pass two, and a wiped floor
 * guarantees the owner's pre-wipe fold of P is visible (docs/PERF.md
 * derives this). Threads park (arrive at the barrier) only when every
 * owned domain's next key has reached the batch bound and no peer can
 * still mail below it; between batches the coordinator replays
 * deferred side effects below the global cutoff, executes machine-lane
 * events stop-the-world, and opens the next batch. The barrier itself
 * is a sense-reversing centralized spin gate (epoch counter +
 * cache-line-padded flags, spin-then-yield) with the old
 * mutex/condition_variable path kept only as the deep-idle fallback.
 *
 * Cross-domain schedules ride single-producer/single-consumer mail
 * rings (one per (source thread, destination thread) pair, with a
 * mutexed spill vector for overflow) and are drained by the receiving
 * thread *during* the batch; machine-lane events live in the host
 * engine's slab/wheel and execute stop-the-world between batches, so
 * config scripts, the watchdog and page-management ops see a quiescent
 * machine exactly as they do serially.
 *
 * Determinism: events carry partition-independent keys (sim::EventKey)
 * and every side effect visible outside a domain — checker hooks,
 * telemetry, shared statistics — is routed through Engine::defer(),
 * buffered per domain, and replayed by the coordinator in global key
 * order (below the cutoff no domain has yet reached) with now()
 * overridden to the emitting event's time. The result is
 * byte-identical output to the serial wheel at any thread and domain
 * count; parallelism changes wall-clock only (docs/PERF.md has the
 * full argument).
 */

#ifndef PLUS_SIM_PARALLEL_HPP_
#define PLUS_SIM_PARALLEL_HPP_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "sim/engine.hpp"
#include "sim/event_slab.hpp"
#include "sim/timing_wheel.hpp"

namespace plus {
namespace sim {

/** Multi-threaded batched window scheduler behind Engine (Parallel). */
class ParallelEngine
{
  public:
    ParallelEngine(Engine& host, unsigned threads, unsigned domains);
    ~ParallelEngine();

    ParallelEngine(const ParallelEngine&) = delete;
    ParallelEngine& operator=(const ParallelEngine&) = delete;

    /** Route a schedule from Engine; see Engine::scheduleImpl. */
    EventId schedule(Cycles when, Event fn, bool daemon,
                     std::uint16_t lane);
    bool cancel(std::uint32_t domain, std::uint32_t idx,
                std::uint32_t gen);
    void run(Cycles limit);
    void defer(Event fn);

    /** Install the domain-pair lookahead matrix (see Engine). */
    void setLookaheadMatrix(std::vector<Cycles> flat);

    /** Scheduling context of the calling thread's domain, if bound. */
    Engine::SchedCtx* boundCtx();
    /** Domain-local clock of the calling thread, else @p hostNow. */
    Cycles boundNow(Cycles hostNow) const;

    std::size_t domainPending() const;
    std::uint64_t domainExecuted() const;
    void addStats(EngineStats& s) const;

    unsigned
    domainOf(std::uint16_t lane) const
    {
        return static_cast<unsigned>(
            (static_cast<std::uint64_t>(lane) * domainCount_) /
            host_.nodes_);
    }

  private:
    /** A cross-domain (or worker-to-machine) scheduled event in flight. */
    struct Mail {
        Cycles when = 0;
        Cycles schedWhen = 0;
        std::uint64_t key2 = 0;
        std::uint16_t lane = 0;
        Event fn;
    };

    /** A buffered side effect awaiting key-ordered replay. */
    struct Deferred {
        EventKey key;       ///< emitting event
        std::uint32_t emit; ///< emission index within that event
        Event fn;
    };

    /**
     * SPSC mail ring for one (source thread, destination thread) pair.
     * The producer writes slots then releases tail_; the consumer
     * acquires tail_, moves slots out and releases head_. A full ring
     * spills into a mutexed vector (spillCount_ lets the consumer skip
     * the lock when empty). Drained mid-batch by the owning thread and
     * residually by the coordinator at the barrier.
     */
    struct alignas(64) MailRing {
        static constexpr std::uint32_t kSlots = 256;

        alignas(64) std::atomic<std::uint32_t> head{0};
        alignas(64) std::atomic<std::uint32_t> tail{0};
        alignas(64) std::array<Mail, kSlots> slot;
        std::mutex spillMutex;
        std::vector<Mail> spill;
        std::atomic<std::uint32_t> spillCount{0};

        void push(Mail m);
        /** Deliver every queued mail to @p sink; true if any arrived. */
        template <typename Sink>
        bool
        drainInto(Sink&& sink)
        {
            bool any = false;
            const std::uint32_t t = tail.load(std::memory_order_acquire);
            std::uint32_t h = head.load(std::memory_order_relaxed);
            while (h != t) {
                sink(std::move(slot[h % kSlots]));
                ++h;
                any = true;
            }
            head.store(h, std::memory_order_release);
            if (spillCount.load(std::memory_order_acquire) > 0) {
                std::vector<Mail> taken;
                {
                    const std::lock_guard<std::mutex> lock(spillMutex);
                    taken.swap(spill);
                    spillCount.store(0, std::memory_order_relaxed);
                }
                for (Mail& m : taken) {
                    sink(std::move(m));
                    any = true;
                }
            }
            return any;
        }
    };

    /** Cache-line-padded published min pending `when` of one domain. */
    struct alignas(64) PubMin {
        std::atomic<Cycles> when{0};
    };

    struct alignas(64) Domain {
        explicit Domain(unsigned index);

        unsigned index;
        EventSlab slab;
        TimingWheel wheel{slab};
        Cycles now = 0;
        Engine::SchedCtx ctx;
        EventKey curKey{};
        std::size_t pending = 0;
        std::uint64_t executed = 0;
        std::uint64_t scheduled = 0;
        std::uint64_t cancelled = 0;
        std::uint64_t mailed = 0;
        std::uint64_t windows = 0;
        /** Machine-lane mail, drained only at the barrier. */
        std::vector<Mail> machineBox;
        /** Key-sorted (execution order) side effects awaiting replay. */
        std::vector<Deferred> deferred;
        std::exception_ptr error;
        EventKey errorKey{};
    };

    enum class Cmd { Batch, Exit };

    void startWorkers();
    void shutdownWorkers();
    void workerLoop(unsigned index);
    void batchLoop(unsigned threadIndex);
    void executeWindow(Domain& d, EventKey bound, unsigned threadIndex);
    void awaitArrivals();
    void signal(Cmd cmd);
    void awaitEpoch(std::uint64_t& seen);
    void replayDeferred(const EventKey& cutoff);
    void drainResidualMail();
    void insertMail(Domain& d, Mail m);
    void rethrowWorkerError();
    bool peek(TimingWheel& wheel, EventSlab& slab, EventKey& out);
    EventId insertDomain(Domain& d, Cycles when, Event fn,
                         Cycles schedWhen, std::uint64_t key2,
                         std::uint16_t lane);
    void ensureMatrix();
    void finalizeMatrix();
    MailRing& ringTo(unsigned srcThread, unsigned dstThread);
    void noteMailFloor(unsigned dst, Cycles when);
    void foldMailFloor(unsigned index);
    bool drainIncoming(unsigned threadIndex);

    /** L[src * domainCount_ + dst]; see setLookaheadMatrix. */
    Cycles
    matrixAt(unsigned src, unsigned dst) const
    {
        return matrix_[src * domainCount_ + dst];
    }

    Engine& host_;
    unsigned threadCount_;
    unsigned domainCount_;
    std::vector<std::unique_ptr<Domain>> domains_;
    std::vector<Cycles> matrix_;
    Cycles matrixMin_ = 0; ///< min off-diagonal entry (hint-cap floor)
    /** Published min pending `when` per domain (~0 = none). */
    std::vector<PubMin> pub_;
    /**
     * Inbox floor per destination domain (~0 = none): min `when` of
     * cross-domain mail made visible (ring push or sibling wheel
     * insert) but possibly not yet reflected in the owner's published
     * P. Senders CAS-min it (release) after the mail write; the owner
     * folds it into P and wipes it at the top of each batch iteration.
     */
    std::vector<PubMin> floor_;
    /** Mail rings, indexed [src thread * threads + dst thread]. */
    std::vector<std::unique_ptr<MailRing>> rings_;
    /** Next pending key per domain, maintained between batches. */
    std::vector<EventKey> domainNext_;
    std::vector<char> domainHasNext_;
    std::uint64_t batches_ = 0;

    // Batch parameters: written by the coordinator between batches
    // (before the epoch bump), read-only to workers inside one.
    EventKey batchGk_{};     ///< next machine-lane key (kMax if none)
    Cycles batchCapWhen_ = 0; ///< min(gk.when, limit + 1)
    Cycles batchLimit_ = 0;   ///< run limit
    bool batchHint_ = true;   ///< node->machine mail possible?

    /** Min `when` of machine mail created this batch (~0 = none). */
    alignas(64) std::atomic<Cycles> machineMailMin_{~Cycles{0}};
    /** Ends the batch early (stop(), error, deferred overflow). */
    alignas(64) std::atomic<bool> batchBreak_{false};

    // Batch gate: workers park by incrementing arrived_ and spinning
    // on an epoch bump (sense-reversal generalized to a counter); the
    // coordinator waits for all arrivals, does the stop-the-world
    // phase, then publishes the batch parameters and bumps the epoch.
    // arrived_ is reset by signal(), not by the wait, so a run can end
    // with workers parked and the next run picks them up. Flags are
    // cache-line padded so spinning never bounces a written line; the
    // mutex/cv pair is only the deep-idle slow path (machine-heavy
    // stop-the-world phases, idle engines between runs).
    std::vector<std::thread> workers_;
    alignas(64) std::atomic<std::uint64_t> epoch_{0};
    alignas(64) std::atomic<unsigned> arrived_{0};
    alignas(64) std::atomic<int> sleepers_{0};
    std::mutex gateMutex_;
    std::condition_variable gateCv_;
    Cmd cmd_ = Cmd::Batch;
};

} // namespace sim
} // namespace plus

#endif // PLUS_SIM_PARALLEL_HPP_
