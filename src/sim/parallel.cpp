#include "sim/parallel.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/panic.hpp"
#include "telemetry/prof.hpp"

namespace plus {
namespace sim {

namespace {

/**
 * Per-thread binding to the domain currently executing a window.
 * Unbound (owner == nullptr) means machine context: the coordinator
 * between batches, or any thread of a different engine.
 */
struct Bind {
    const void* owner = nullptr;
    void* domain = nullptr;
    unsigned thread = 0;
};

// pluslint: allow(R4) -- worker->domain binding for the thread running
// right now; set once per window by the owning engine and never read
// across threads, so it cannot carry state between runs.
thread_local Bind t_bind; // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#endif
}

constexpr std::uint32_t kIdxMask = (1U << kEventIdxBits) - 1;

constexpr Cycles kNever = ~Cycles{0};

constexpr EventKey kMaxKey{kNever, kNever, ~std::uint64_t{0}};

/** a + b clamped to the top of the cycle space. */
inline Cycles
satAdd(Cycles a, Cycles b)
{
    return a >= kNever - b ? kNever : a + b;
}

/**
 * Deferred side effects buffered per thread before the batch is forced
 * to a barrier for a replay drain (bounds replay-buffer memory; the
 * batch simply reopens afterwards).
 */
constexpr std::size_t kDeferredBreak = 131072;

} // namespace

void
ParallelEngine::MailRing::push(Mail m)
{
    const std::uint32_t h = head.load(std::memory_order_acquire);
    const std::uint32_t t = tail.load(std::memory_order_relaxed);
    if (t - h < kSlots) {
        slot[t % kSlots] = std::move(m);
        tail.store(t + 1, std::memory_order_release);
        return;
    }
    {
        const std::lock_guard<std::mutex> lock(spillMutex);
        spill.push_back(std::move(m));
    }
    spillCount.fetch_add(1, std::memory_order_release);
}

ParallelEngine::Domain::Domain(unsigned idx) : index(idx) {}

ParallelEngine::ParallelEngine(Engine& host, unsigned threads,
                               unsigned domains)
    : host_(host), threadCount_(threads), domainCount_(domains)
{
    PLUS_ASSERT(threadCount_ >= 2, "parallel engine needs >= 2 threads");
    PLUS_ASSERT(domainCount_ >= 2 && domainCount_ < kGlobalDomain,
                "parallel engine needs 2..", kGlobalDomain - 1,
                " domains, got ", domainCount_);
    PLUS_ASSERT(domainCount_ % threadCount_ == 0,
                "domain count must be a multiple of the thread count");
    PLUS_ASSERT(host_.nodes_ >= domainCount_,
                "fewer nodes than domains");
    domains_.reserve(domainCount_);
    for (unsigned i = 0; i < domainCount_; ++i) {
        domains_.push_back(std::make_unique<Domain>(i));
    }
    pub_ = std::vector<PubMin>(domainCount_);
    floor_ = std::vector<PubMin>(domainCount_);
    for (unsigned i = 0; i < domainCount_; ++i) {
        floor_[i].when.store(kNever, std::memory_order_relaxed);
    }
    rings_.reserve(static_cast<std::size_t>(threadCount_) * threadCount_);
    for (unsigned i = 0;
         i < static_cast<unsigned>(threadCount_ * threadCount_); ++i) {
        rings_.push_back(std::make_unique<MailRing>());
    }
    domainNext_.assign(domainCount_, EventKey{});
    domainHasNext_.assign(domainCount_, 0);
}

ParallelEngine::~ParallelEngine()
{
    shutdownWorkers();
}

ParallelEngine::MailRing&
ParallelEngine::ringTo(unsigned srcThread, unsigned dstThread)
{
    return *rings_[srcThread * threadCount_ + dstThread];
}

void
ParallelEngine::noteMailFloor(unsigned dst, Cycles when)
{
    // Called by the sender AFTER the mail is visible (ring push or
    // direct sibling wheel insert) and before the sender's own P is
    // republished. The release pairs with the acquire loads in the
    // two-pass snapshot and in foldMailFloor: a reader that observes
    // this floor also observes the mail.
    Cycles cur = floor_[dst].when.load(std::memory_order_relaxed);
    while (when < cur &&
           !floor_[dst].when.compare_exchange_weak(
               cur, when, std::memory_order_release,
               std::memory_order_relaxed)) {
    }
}

void
ParallelEngine::foldMailFloor(unsigned index)
{
    // Owner side, top of each batch iteration: lower the published P
    // under the floor *first*, then wipe the floor. The CAS fails if
    // a sender lowered the floor concurrently, in which case we fold
    // again — so a wiped floor always implies the fold is published
    // (readers load the floor before P, acquiring the wipe and hence
    // the fold). The mail itself is guaranteed drainable: its write
    // precedes the floor CAS we observed.
    Cycles f = floor_[index].when.load(std::memory_order_acquire);
    while (f != kNever) {
        if (f < pub_[index].when.load(std::memory_order_relaxed)) {
            pub_[index].when.store(f, std::memory_order_release);
        }
        if (floor_[index].when.compare_exchange_weak(
                f, kNever, std::memory_order_acq_rel,
                std::memory_order_acquire)) {
            break;
        }
    }
}

void
ParallelEngine::setLookaheadMatrix(std::vector<Cycles> flat)
{
    matrix_ = std::move(flat);
    finalizeMatrix();
}

void
ParallelEngine::finalizeMatrix()
{
    matrixMin_ = kNever;
    for (unsigned i = 0; i < domainCount_; ++i) {
        for (unsigned j = 0; j < domainCount_; ++j) {
            if (i != j) {
                matrixMin_ = std::min(matrixMin_, matrixAt(i, j));
            }
        }
    }
    // Diagonal = minimum round trip: the soonest a domain's own
    // execution can come back at it through any other domain (the
    // triangle inequality makes longer reflection paths no shorter).
    // The window bound includes the u == i term with this value, so a
    // window never runs past the earliest self-generated reflection.
    for (unsigned i = 0; i < domainCount_; ++i) {
        Cycles rt = kNever;
        for (unsigned u = 0; u < domainCount_; ++u) {
            if (u != i) {
                rt = std::min(rt,
                              satAdd(matrixAt(i, u), matrixAt(u, i)));
            }
        }
        matrix_[static_cast<std::size_t>(i) * domainCount_ + i] = rt;
    }
}

void
ParallelEngine::ensureMatrix()
{
    if (!matrix_.empty()) {
        return;
    }
    // No matrix installed (raw Engine users): fall back to a uniform
    // matrix of the global lookahead — the pre-matrix behaviour.
    matrix_.assign(
        static_cast<std::size_t>(domainCount_) * domainCount_,
        host_.lookahead_);
    finalizeMatrix();
}

void
ParallelEngine::startWorkers()
{
    if (!workers_.empty()) {
        return;
    }
    workers_.reserve(threadCount_ - 1);
    for (unsigned i = 1; i < threadCount_; ++i) {
        workers_.emplace_back([this, i] { workerLoop(i); });
    }
}

void
ParallelEngine::shutdownWorkers()
{
    if (workers_.empty()) {
        return;
    }
    awaitArrivals();
    signal(Cmd::Exit);
    for (std::thread& t : workers_) {
        t.join();
    }
    workers_.clear();
}

void
ParallelEngine::workerLoop(unsigned index)
{
    if (prof::enabled()) {
        char name[16];
        std::snprintf(name, sizeof(name), "worker%u", index);
        prof::setThreadLabel(name);
    }
    std::uint64_t seen = 0;
    for (;;) {
        {
            const prof::ScopedPhase wait(prof::Phase::ParBarrier);
            arrived_.fetch_add(1, std::memory_order_release);
            awaitEpoch(seen);
        }
        if (cmd_ == Cmd::Exit) {
            return;
        }
        batchLoop(index);
    }
}

void
ParallelEngine::awaitArrivals()
{
    const unsigned want = static_cast<unsigned>(workers_.size());
    for (int spin = 0;
         arrived_.load(std::memory_order_acquire) < want; ++spin) {
        if (spin < 4096) {
            cpuRelax();
        } else {
            std::this_thread::yield();
        }
    }
}

void
ParallelEngine::signal(Cmd cmd)
{
    cmd_ = cmd;
    arrived_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    if (sleepers_.load(std::memory_order_acquire) > 0) {
        const std::lock_guard<std::mutex> lock(gateMutex_);
        gateCv_.notify_all();
    }
}

void
ParallelEngine::awaitEpoch(std::uint64_t& seen)
{
    const std::uint64_t target = seen + 1;
    for (int spin = 0; spin < 20000; ++spin) {
        if (epoch_.load(std::memory_order_acquire) >= target) {
            seen = target;
            return;
        }
        cpuRelax();
    }
    for (int spin = 0; spin < 256; ++spin) {
        if (epoch_.load(std::memory_order_acquire) >= target) {
            seen = target;
            return;
        }
        std::this_thread::yield();
    }
    std::unique_lock<std::mutex> lock(gateMutex_);
    sleepers_.fetch_add(1, std::memory_order_release);
    gateCv_.wait(lock, [&] {
        return epoch_.load(std::memory_order_acquire) >= target;
    });
    sleepers_.fetch_sub(1, std::memory_order_release);
    seen = target;
}

Engine::SchedCtx*
ParallelEngine::boundCtx()
{
    if (t_bind.owner != this) {
        return nullptr;
    }
    return &static_cast<Domain*>(t_bind.domain)->ctx;
}

Cycles
ParallelEngine::boundNow(Cycles hostNow) const
{
    if (t_bind.owner != this) {
        return hostNow;
    }
    return static_cast<const Domain*>(t_bind.domain)->now;
}

void
ParallelEngine::defer(Event fn)
{
    if (t_bind.owner != this) {
        fn(); // machine context: side effects are already in key order
        return;
    }
    Domain& d = *static_cast<Domain*>(t_bind.domain);
    d.deferred.push_back(
        Deferred{d.curKey, d.ctx.emit++, std::move(fn)});
}

EventId
ParallelEngine::insertDomain(Domain& d, Cycles when, Event fn,
                             Cycles schedWhen, std::uint64_t key2,
                             std::uint16_t lane)
{
    const std::uint32_t idx = d.slab.allocate();
    PLUS_ASSERT(idx <= kIdxMask, "event slab exceeds EventId index space");
    EventRecord& rec = d.slab[idx];
    rec.fn = std::move(fn);
    rec.when = when;
    rec.schedWhen = schedWhen;
    rec.key2 = key2;
    rec.lane = lane;
    rec.daemon = false;
    d.wheel.insert(idx);
    ++d.pending;
    ++d.scheduled;
    return (static_cast<EventId>(rec.gen) << 32U) |
           (static_cast<EventId>(d.index) << kEventIdxBits) |
           static_cast<EventId>(idx);
}

EventId
ParallelEngine::schedule(Cycles when, Event fn, bool daemon,
                         std::uint16_t lane)
{
    if (t_bind.owner == this) {
        // Worker context, inside a window of a batch.
        Domain& d = *static_cast<Domain*>(t_bind.domain);
        PLUS_ASSERT(when >= d.now, "scheduling into the past: ", when,
                    " < ", d.now);
        PLUS_ASSERT(!daemon, "daemon events are machine-lane only");
        const Cycles schedWhen = d.now;
        const std::uint64_t key2 = host_.makeKey2();
        if (lane == kMachineLane) {
            PLUS_ASSERT(batchHint_,
                        "node->machine mail created while the machine-"
                        "mail hint is off; call Engine::"
                        "setNodeMachineMailHint(true) before arming "
                        "this producer");
            d.machineBox.push_back(
                Mail{when, schedWhen, key2, lane, std::move(fn)});
            ++d.mailed;
            // Publish the floor so concurrent bound computations cap
            // their windows below this event (release pairs with the
            // acquire load at the top of each batch iteration).
            Cycles cur = machineMailMin_.load(std::memory_order_relaxed);
            while (when < cur &&
                   !machineMailMin_.compare_exchange_weak(
                       cur, when, std::memory_order_release,
                       std::memory_order_relaxed)) {
            }
            return kInvalidEvent;
        }
        const unsigned dst = domainOf(lane);
        if (dst == d.index) {
            return insertDomain(d, when, std::move(fn), schedWhen, key2,
                                lane);
        }
        PLUS_ASSERT(when >= satAdd(d.now, matrixAt(d.index, dst)),
                    "cross-domain schedule below the lookahead-matrix "
                    "floor: ", when, " < ", d.now, " + ",
                    matrixAt(d.index, dst));
        ++d.mailed;
        const unsigned dstThread = dst % threadCount_;
        if (dstThread == t_bind.thread) {
            // A sibling domain of this very thread: insert directly.
            // Its bound this iteration was computed from our published
            // P, which is <= d.now, so the mail lands at or beyond the
            // sibling's window bound — never inside it. The floor
            // still must drop: other threads may have snapshotted the
            // sibling's P before this insert lowered its wheel.
            insertDomain(*domains_[dst], when, std::move(fn), schedWhen,
                         key2, lane);
            noteMailFloor(dst, when);
            return kInvalidEvent;
        }
        ringTo(t_bind.thread, dstThread)
            .push(Mail{when, schedWhen, key2, lane, std::move(fn)});
        noteMailFloor(dst, when);
        return kInvalidEvent;
    }

    // Machine context: the world is stopped, insert directly.
    PLUS_ASSERT(when >= host_.now_, "scheduling into the past: ", when,
                " < ", host_.now_);
    const Cycles schedWhen = host_.now_;
    const std::uint64_t key2 = host_.makeKey2();
    if (lane != kMachineLane) {
        PLUS_ASSERT(!daemon, "daemon events are machine-lane only");
        Domain& d = *domains_[domainOf(lane)];
        const EventId id =
            insertDomain(d, when, std::move(fn), schedWhen, key2, lane);
        const EventKey key{when, schedWhen, key2};
        if (domainHasNext_[d.index] == 0 || key < domainNext_[d.index]) {
            domainNext_[d.index] = key;
            domainHasNext_[d.index] = 1;
        }
        return id;
    }
    const std::uint32_t idx = host_.slab_.allocate();
    PLUS_ASSERT(idx <= kIdxMask, "event slab exceeds EventId index space");
    EventRecord& rec = host_.slab_[idx];
    rec.fn = std::move(fn);
    rec.when = when;
    rec.schedWhen = schedWhen;
    rec.key2 = key2;
    rec.lane = kMachineLane;
    rec.daemon = daemon;
    host_.wheel_.insert(idx);
    ++host_.pending_;
    if (daemon) {
        ++host_.daemonPending_;
    }
    ++host_.scheduledTotal_;
    return (static_cast<EventId>(rec.gen) << 32U) |
           (static_cast<EventId>(kGlobalDomain) << kEventIdxBits) |
           static_cast<EventId>(idx);
}

bool
ParallelEngine::cancel(std::uint32_t domain, std::uint32_t idx,
                       std::uint32_t gen)
{
    if (domain == kGlobalDomain) {
        PLUS_ASSERT(t_bind.owner != this,
                    "machine-lane cancel from a worker window");
        if (idx >= host_.slab_.size()) {
            return false;
        }
        EventRecord& rec = host_.slab_[idx];
        if (rec.gen != gen || rec.home == EventRecord::kHomeFree) {
            return false;
        }
        host_.wheel_.remove(idx);
        if (rec.daemon) {
            --host_.daemonPending_;
        }
        host_.slab_.free(idx);
        --host_.pending_;
        ++host_.cancelledTotal_;
        return true;
    }
    if (domain >= domainCount_) {
        return false;
    }
    Domain& d = *domains_[domain];
    PLUS_ASSERT(t_bind.owner != this || t_bind.domain == &d,
                "cross-domain cancel");
    if (idx >= d.slab.size()) {
        return false;
    }
    EventRecord& rec = d.slab[idx];
    if (rec.gen != gen || rec.home == EventRecord::kHomeFree) {
        return false;
    }
    d.wheel.remove(idx);
    d.slab.free(idx);
    --d.pending;
    ++d.cancelled;
    return true;
}

bool
ParallelEngine::peek(TimingWheel& wheel, EventSlab& slab, EventKey& out)
{
    const std::uint32_t idx = wheel.extractNext(~Cycles{0});
    if (idx == kNilRecord) {
        return false;
    }
    out = slab[idx].key();
    wheel.insert(idx);
    return true;
}

void
ParallelEngine::replayDeferred(const EventKey& cutoff)
{
    // Each domain executes in key order, so its deferred vector is
    // sorted and the replayable part is a prefix. Splice the prefixes
    // out, merge-sort them globally, replay. Entries at or above the
    // cutoff (a key some domain has not yet reached, or the next
    // machine-lane event) stay buffered for a later barrier — they
    // may still be overtaken by smaller-key effects.
    std::vector<Deferred> all;
    for (auto& dp : domains_) {
        auto& v = dp->deferred;
        std::size_t n = 0;
        while (n < v.size() && v[n].key < cutoff) {
            ++n;
        }
        if (n == 0) {
            continue;
        }
        all.insert(all.end(),
                   std::make_move_iterator(v.begin()),
                   std::make_move_iterator(v.begin() +
                                           static_cast<std::ptrdiff_t>(n)));
        v.erase(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(n));
    }
    if (all.empty()) {
        return;
    }
    std::sort(all.begin(), all.end(),
              [](const Deferred& a, const Deferred& b) {
                  if (a.key < b.key) {
                      return true;
                  }
                  if (b.key < a.key) {
                      return false;
                  }
                  return a.emit < b.emit;
              });
    // Replay with now() tracking the emitting event, so checker trace
    // entries and telemetry stamps match the serial backends exactly.
    const Cycles saved = host_.now_;
    for (Deferred& e : all) {
        host_.now_ = e.key.when;
        e.fn();
    }
    host_.now_ = std::max(saved, all.back().key.when);
}

void
ParallelEngine::insertMail(Domain& d, Mail m)
{
    const std::uint32_t idx = d.slab.allocate();
    PLUS_ASSERT(idx <= kIdxMask, "event slab exceeds EventId index space");
    EventRecord& rec = d.slab[idx];
    rec.fn = std::move(m.fn);
    rec.when = m.when;
    rec.schedWhen = m.schedWhen;
    rec.key2 = m.key2;
    rec.lane = m.lane;
    rec.daemon = false;
    d.wheel.insert(idx);
    ++d.pending;
    ++d.scheduled;
}

bool
ParallelEngine::drainIncoming(unsigned threadIndex)
{
    bool any = false;
    for (unsigned src = 0; src < threadCount_; ++src) {
        any |= ringTo(src, threadIndex).drainInto([this](Mail m) {
            insertMail(*domains_[domainOf(m.lane)], std::move(m));
        });
    }
    return any;
}

void
ParallelEngine::drainResidualMail()
{
    // Between batches: mail addressed to parked threads (sent after
    // their final ring drain) plus the machine-lane boxes. The barrier
    // provides the happens-before edge, so plain drains suffice.
    for (unsigned t = 0; t < threadCount_; ++t) {
        drainIncoming(t);
    }
    for (auto& dp : domains_) {
        for (Mail& m : dp->machineBox) {
            const std::uint32_t idx = host_.slab_.allocate();
            PLUS_ASSERT(idx <= kIdxMask,
                        "event slab exceeds EventId index space");
            EventRecord& rec = host_.slab_[idx];
            rec.fn = std::move(m.fn);
            rec.when = m.when;
            rec.schedWhen = m.schedWhen;
            rec.key2 = m.key2;
            rec.lane = kMachineLane;
            rec.daemon = false;
            host_.wheel_.insert(idx);
            ++host_.pending_;
            ++host_.scheduledTotal_;
        }
        dp->machineBox.clear();
    }
}

void
ParallelEngine::rethrowWorkerError()
{
    int bad = -1;
    for (unsigned i = 0; i < domainCount_; ++i) {
        if (domains_[i]->error == nullptr) {
            continue;
        }
        if (bad < 0 ||
            domains_[i]->errorKey < domains_[bad]->errorKey) {
            bad = static_cast<int>(i);
        }
    }
    if (bad < 0) {
        return;
    }
    // The erroring domain executed the same per-domain prefix the
    // serial engine would have, so the minimum-key error is exactly
    // the one a serial run hits first. Drop the batch's buffered
    // side effects and in-flight mail — the serial run never gets to
    // them either — so a caught error leaves no stale replay state.
    const std::exception_ptr err = domains_[bad]->error;
    for (unsigned t = 0; t < threadCount_; ++t) {
        for (unsigned s = 0; s < threadCount_; ++s) {
            ringTo(s, t).drainInto([](Mail) {});
        }
    }
    for (auto& dp : domains_) {
        dp->error = nullptr;
        dp->deferred.clear();
        dp->machineBox.clear();
    }
    shutdownWorkers();
    std::rethrow_exception(err);
}

void
ParallelEngine::executeWindow(Domain& d, EventKey bound,
                              unsigned threadIndex)
{
    t_bind = Bind{this, &d, threadIndex};
    try {
        for (;;) {
            const std::uint32_t idx = d.wheel.extractNext(bound.when);
            if (idx == kNilRecord) {
                break;
            }
            EventRecord& rec = d.slab[idx];
            if (!(rec.key() < bound)) {
                d.wheel.insert(idx); // at the bound cycle, past the key
                break;
            }
            Event fn = std::move(rec.fn);
            d.curKey = rec.key();
            host_.enterEventContext(rec, d.ctx);
            d.slab.free(idx);
            --d.pending;
            d.now = rec.when;
            ++d.executed;
            fn();
        }
    } catch (...) {
        d.error = std::current_exception();
        d.errorKey = d.curKey;
    }
    d.ctx.node = kMachineLane;
    t_bind = Bind{};
}

void
ParallelEngine::batchLoop(unsigned threadIndex)
{
    const bool profiling = prof::enabled();
    const EventKey limitKey =
        batchLimit_ == kNever ? kMaxKey
                              : EventKey{batchLimit_ + 1, 0, 0};
    // Park bound: once an owned domain's next key reaches this and no
    // peer can mail below it, the domain is done for the batch. The
    // machine-mail floor joins at its live value each iteration (it
    // only decreases, which keeps already-satisfied park conditions
    // satisfied).
    EventKey parkKey = batchGk_;
    if (limitKey < parkKey) {
        parkKey = limitKey;
    }
    std::vector<Cycles> snap(domainCount_);
    std::vector<Cycles> floorSnap(domainCount_);
    for (;;) {
        if (host_.stopping_.load(std::memory_order_relaxed)) {
            batchBreak_.store(true, std::memory_order_release);
        }
        const bool breaking =
            batchBreak_.load(std::memory_order_acquire);
        // Fold the inbox floors of our own domains into their
        // published P and wipe them, so everything already visible in
        // our rings stays covered while we drain it into the wheels.
        for (unsigned i = threadIndex; i < domainCount_;
             i += threadCount_) {
            foldMailFloor(i);
        }
        bool progress = false;
        {
            const prof::ScopedPhase drain(prof::Phase::ParDrain);
            progress = drainIncoming(threadIndex);
        }
        // Two-pass snapshot, elementwise min, floor before P within a
        // pass. Pass two closes the sender handoff (mail write, floor
        // CAS, P raise — in that order with releases): a raised P seen
        // in pass one means the floor CAS is visible by pass two. The
        // floor-then-P order closes the owner handoff (fold P, wipe
        // floor): a wiped floor means the folded P is visible.
        for (int pass = 0; pass < 2; ++pass) {
            for (unsigned u = 0; u < domainCount_; ++u) {
                const Cycles f =
                    floor_[u].when.load(std::memory_order_acquire);
                const Cycles p =
                    pub_[u].when.load(std::memory_order_acquire);
                const Cycles v = std::min(f, p);
                snap[u] = pass == 0 ? v : std::min(snap[u], v);
                floorSnap[u] =
                    pass == 0 ? f : std::min(floorSnap[u], f);
            }
        }
        const Cycles mm =
            machineMailMin_.load(std::memory_order_acquire);
        Cycles minAll = kNever;
        for (unsigned u = 0; u < domainCount_; ++u) {
            minAll = std::min(minAll, snap[u]);
        }
        const Cycles parkCapWhen =
            std::min(std::min(batchCapWhen_, mm), parkKey.when);
        const EventKey mmKey{mm, 0, 0};
        bool allParked = true;
        std::size_t deferredTotal = 0;
        for (unsigned i = threadIndex; i < domainCount_;
             i += threadCount_) {
            Domain& d = *domains_[i];
            // Per-domain conservative bound: the closest any peer's
            // pending work can reach us, capped by the batch bound.
            // Every u contributes, including u == i: the diagonal is
            // the minimum round trip (finalizeMatrix), so the window
            // cannot outrun mail its own execution reflects back here
            // through a peer.
            Cycles crossWhen = kNever;
            for (unsigned u = 0; u < domainCount_; ++u) {
                crossWhen = std::min(
                    crossWhen, satAdd(snap[u], matrixAt(u, i)));
            }
            // Own inbox floor: mail addressed to this very domain gets
            // no lookahead leg, so the peer terms above do not cover it
            // once the sender has raised its P (the pass-two snapshot
            // guarantees the floor is visible in exactly that case).
            // The fold at the top of the iteration only covers mail
            // whose floor CAS was visible then; anything CASed between
            // the fold and the snapshot must cap the window directly.
            crossWhen = std::min(crossWhen, floorSnap[i]);
            EventKey bound{crossWhen, 0, 0};
            if (batchGk_ < bound) {
                bound = batchGk_;
            }
            if (limitKey < bound) {
                bound = limitKey;
            }
            if (batchHint_) {
                // Node->machine mail may appear at any point >= some
                // executing event + the global lookahead; cap the
                // window so such an event still runs stop-the-world
                // in key order. Both terms are needed: minAll covers
                // mail a peer is creating right now (its P is still
                // at or below the creating event), machineMailMin_
                // covers mail already published.
                const EventKey hintKey{
                    std::min(satAdd(minAll, host_.lookahead_), mm), 0,
                    0};
                if (hintKey < bound) {
                    bound = hintKey;
                }
            }
            EventKey nk;
            bool has = peek(d.wheel, d.slab, nk);
            if (!breaking && has && nk < bound) {
                const std::uint64_t e0 = d.executed;
                const std::uint64_t m0 = d.mailed;
                {
                    const prof::ScopedPhase work(prof::Phase::ParWork);
                    executeWindow(d, bound, threadIndex);
                }
                ++d.windows;
                if (profiling) {
                    prof::noteWindow(d.now - nk.when + 1,
                                     d.executed - e0, d.mailed - m0);
                }
                has = peek(d.wheel, d.slab, nk);
                progress = true;
            }
            pub_[i].when.store(has ? nk.when : kNever,
                               std::memory_order_release);
            if (d.error != nullptr) {
                batchBreak_.store(true, std::memory_order_release);
            }
            deferredTotal += d.deferred.size();
            // Park check for this domain: own work has reached the
            // batch bound and no peer (by its snapshotted P and the
            // pair floor) can still mail below it.
            if (has && nk < parkKey && nk < mmKey) {
                allParked = false;
                continue;
            }
            if (floor_[i].when.load(std::memory_order_acquire) <
                parkCapWhen) {
                // Undrained mail below the cap: stay for one more
                // iteration so the fold/drain above picks it up.
                allParked = false;
                continue;
            }
            for (unsigned u = 0; u < domainCount_; ++u) {
                if (u != i &&
                    satAdd(snap[u], matrixAt(u, i)) < parkCapWhen) {
                    allParked = false;
                    break;
                }
            }
        }
        if (breaking) {
            return;
        }
        if (deferredTotal > kDeferredBreak) {
            batchBreak_.store(true, std::memory_order_release);
            return;
        }
        if (allParked) {
            return;
        }
        if (!progress) {
            // Nothing moved this iteration: someone else holds the
            // global minimum. Back off briefly before re-snapshotting.
            const prof::ScopedPhase wait(prof::Phase::ParBarrier);
            for (int spin = 0; spin < 64; ++spin) {
                cpuRelax();
            }
            std::this_thread::yield();
        }
    }
}

void
ParallelEngine::run(Cycles limit)
{
    PLUS_ASSERT(host_.lookahead_ >= 1,
                "parallel run needs a lookahead >= 1 cycle (set from the "
                "network's minimum cross-node latency)");
    ensureMatrix();
    startWorkers();
    const prof::RunTimer prof_run;
    const bool profiling = prof::enabled();
    std::uint64_t prevWindows = 0;
    std::uint64_t prevExecuted = 0;
    bool batchOpen = false;
    if (profiling) {
        prof::setThreadLabel("coord");
        prof::noteLookahead(host_.lookahead_);
        for (const auto& dp : domains_) {
            prevWindows += dp->windows;
        }
        prevExecuted = domainExecuted();
    }
    for (;;) {
        {
            const prof::ScopedPhase wait(prof::Phase::ParBarrier);
            awaitArrivals();
        }
        if (batchOpen) {
            batchOpen = false;
            if (profiling) {
                std::uint64_t w = 0;
                for (const auto& dp : domains_) {
                    w += dp->windows;
                }
                const std::uint64_t e = domainExecuted();
                prof::noteBatch(w - prevWindows, e - prevExecuted);
                prevWindows = w;
                prevExecuted = e;
            }
        }
        rethrowWorkerError();
        {
            const prof::ScopedPhase drain(prof::Phase::ParDrain);
            drainResidualMail();
        }
        for (unsigned i = 0; i < domainCount_; ++i) {
            Domain& d = *domains_[i];
            domainHasNext_[i] =
                peek(d.wheel, d.slab, domainNext_[i]) ? 1 : 0;
        }
        if (host_.stopping_.load(std::memory_order_relaxed)) {
            const prof::ScopedPhase replay(prof::Phase::ParReplay);
            replayDeferred(kMaxKey);
            break;
        }

        // Stop-the-world: execute machine-lane events that precede
        // every domain event, exactly as the serial loop would, each
        // preceded by the deferred effects below its key.
        bool done = false;
        for (;;) {
            std::size_t ordinary =
                host_.pending_ - host_.daemonPending_;
            for (const auto& dp : domains_) {
                ordinary += dp->pending;
            }
            if (ordinary == 0) {
                done = true;
                break;
            }
            EventKey dmin = kMaxKey;
            bool anyDomain = false;
            for (unsigned i = 0; i < domainCount_; ++i) {
                if (domainHasNext_[i] != 0 &&
                    (!anyDomain || domainNext_[i] < dmin)) {
                    dmin = domainNext_[i];
                    anyDomain = true;
                }
            }
            EventKey gk{};
            const bool hasGlobal = peek(host_.wheel_, host_.slab_, gk);
            EventKey m = dmin;
            if (hasGlobal && (!anyDomain || gk < dmin)) {
                m = gk;
            }
            PLUS_ASSERT(anyDomain || hasGlobal,
                        "pending work but no pending events");
            if (m.when > limit) {
                done = true;
                break;
            }
            if (hasGlobal && (!anyDomain || gk < dmin)) {
                {
                    const prof::ScopedPhase replay(
                        prof::Phase::ParReplay);
                    replayDeferred(gk);
                }
                const prof::ScopedPhase mach(prof::Phase::ParMachine);
                host_.dispatchNext(limit);
                continue;
            }

            // Domains lead: flush effects below the batch floor, then
            // open a batch of asynchronous windows up to the next
            // machine event / limit.
            {
                const prof::ScopedPhase replay(prof::Phase::ParReplay);
                replayDeferred(dmin);
            }
            for (unsigned i = 0; i < domainCount_; ++i) {
                pub_[i].when.store(domainHasNext_[i] != 0
                                       ? domainNext_[i].when
                                       : kNever,
                                   std::memory_order_relaxed);
                // Quiescent: residual mail is drained, so stale floors
                // from the previous batch can be cleared outright.
                floor_[i].when.store(kNever, std::memory_order_relaxed);
            }
            machineMailMin_.store(kNever, std::memory_order_relaxed);
            batchBreak_.store(false, std::memory_order_relaxed);
            batchGk_ = hasGlobal ? gk : kMaxKey;
            batchLimit_ = limit;
            batchCapWhen_ =
                std::min(hasGlobal ? gk.when : kNever, satAdd(limit, 1));
            batchHint_ = host_.nodeMachineMailHint_;
            ++batches_;
            batchOpen = true;
            signal(Cmd::Batch);
            batchLoop(0);
            break;
        }
        if (done) {
            const prof::ScopedPhase replay(prof::Phase::ParReplay);
            replayDeferred(kMaxKey);
            break;
        }
    }
    // now() after a run is the last executed event's time.
    for (const auto& dp : domains_) {
        host_.now_ = std::max(host_.now_, dp->now);
    }
}

std::size_t
ParallelEngine::domainPending() const
{
    std::size_t n = 0;
    for (const auto& dp : domains_) {
        n += dp->pending;
    }
    return n;
}

std::uint64_t
ParallelEngine::domainExecuted() const
{
    std::uint64_t n = 0;
    for (const auto& dp : domains_) {
        n += dp->executed;
    }
    return n;
}

void
ParallelEngine::addStats(EngineStats& s) const
{
    s.batches = batches_;
    for (const auto& dp : domains_) {
        s.windows += dp->windows;
        s.scheduled += dp->scheduled;
        s.executed += dp->executed;
        s.cancelled += dp->cancelled;
        s.cascades += dp->wheel.cascades();
        s.mailed += dp->mailed;
        s.slabLive += dp->slab.live();
        s.slabHighWater += dp->slab.highWater();
        s.slabSlots += dp->slab.size();
    }
}

} // namespace sim
} // namespace plus
