#include "sim/parallel.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/panic.hpp"
#include "telemetry/prof.hpp"

namespace plus {
namespace sim {

namespace {

/**
 * Per-thread binding to the domain currently executing a window.
 * Unbound (owner == nullptr) means machine context: the coordinator
 * between windows, or any thread of a different engine.
 */
struct Bind {
    const void* owner = nullptr;
    void* domain = nullptr;
};

// pluslint: allow(R4) -- worker->domain binding for the thread running
// right now; set once per window by the owning engine and never read
// across threads, so it cannot carry state between runs.
thread_local Bind t_bind; // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#endif
}

constexpr std::uint32_t kIdxMask = (1U << kEventIdxBits) - 1;

constexpr EventKey kMaxKey{~Cycles{0}, ~Cycles{0}, ~std::uint64_t{0}};

} // namespace

ParallelEngine::Domain::Domain(unsigned idx, unsigned domains)
    : index(idx), outbox(domains + 1)
{
}

ParallelEngine::ParallelEngine(Engine& host, unsigned threads)
    : host_(host), domainCount_(threads)
{
    PLUS_ASSERT(domainCount_ >= 2 && domainCount_ < kGlobalDomain,
                "parallel engine needs 2..", kGlobalDomain - 1,
                " domains, got ", domainCount_);
    PLUS_ASSERT(host_.nodes_ >= domainCount_,
                "fewer nodes than domains");
    domains_.reserve(domainCount_);
    for (unsigned i = 0; i < domainCount_; ++i) {
        domains_.push_back(std::make_unique<Domain>(i, domainCount_));
    }
    domainNext_.assign(domainCount_, EventKey{});
    domainHasNext_.assign(domainCount_, 0);
}

ParallelEngine::~ParallelEngine()
{
    shutdownWorkers();
}

void
ParallelEngine::startWorkers()
{
    if (!workers_.empty()) {
        return;
    }
    workers_.reserve(domainCount_ - 1);
    for (unsigned i = 1; i < domainCount_; ++i) {
        workers_.emplace_back([this, i] { workerLoop(i); });
    }
}

void
ParallelEngine::shutdownWorkers()
{
    if (workers_.empty()) {
        return;
    }
    awaitArrivals();
    signal(Cmd::Exit);
    for (std::thread& t : workers_) {
        t.join();
    }
    workers_.clear();
}

void
ParallelEngine::workerLoop(unsigned index)
{
    if (prof::enabled()) {
        char name[16];
        std::snprintf(name, sizeof(name), "worker%u", index);
        prof::setThreadLabel(name);
    }
    Domain& d = *domains_[index];
    std::uint64_t seen = 0;
    for (;;) {
        {
            const prof::ScopedPhase wait(prof::Phase::ParBarrier);
            arrived_.fetch_add(1, std::memory_order_release);
            awaitEpoch(seen);
        }
        if (cmd_ == Cmd::Exit) {
            return;
        }
        const prof::ScopedPhase work(prof::Phase::ParWork);
        executeWindow(d, bound_);
    }
}

void
ParallelEngine::awaitArrivals()
{
    const unsigned want = static_cast<unsigned>(workers_.size());
    for (int spin = 0;
         arrived_.load(std::memory_order_acquire) < want; ++spin) {
        if (spin < 4096) {
            cpuRelax();
        } else {
            std::this_thread::yield();
        }
    }
}

void
ParallelEngine::signal(Cmd cmd)
{
    cmd_ = cmd;
    arrived_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    if (sleepers_.load(std::memory_order_acquire) > 0) {
        const std::lock_guard<std::mutex> lock(gateMutex_);
        gateCv_.notify_all();
    }
}

void
ParallelEngine::awaitEpoch(std::uint64_t& seen)
{
    const std::uint64_t target = seen + 1;
    for (int spin = 0; spin < 20000; ++spin) {
        if (epoch_.load(std::memory_order_acquire) >= target) {
            seen = target;
            return;
        }
        cpuRelax();
    }
    for (int spin = 0; spin < 256; ++spin) {
        if (epoch_.load(std::memory_order_acquire) >= target) {
            seen = target;
            return;
        }
        std::this_thread::yield();
    }
    std::unique_lock<std::mutex> lock(gateMutex_);
    sleepers_.fetch_add(1, std::memory_order_release);
    gateCv_.wait(lock, [&] {
        return epoch_.load(std::memory_order_acquire) >= target;
    });
    sleepers_.fetch_sub(1, std::memory_order_release);
    seen = target;
}

Engine::SchedCtx*
ParallelEngine::boundCtx()
{
    if (t_bind.owner != this) {
        return nullptr;
    }
    return &static_cast<Domain*>(t_bind.domain)->ctx;
}

Cycles
ParallelEngine::boundNow(Cycles hostNow) const
{
    if (t_bind.owner != this) {
        return hostNow;
    }
    return static_cast<const Domain*>(t_bind.domain)->now;
}

void
ParallelEngine::defer(Event fn)
{
    if (t_bind.owner != this) {
        fn(); // machine context: side effects are already in key order
        return;
    }
    Domain& d = *static_cast<Domain*>(t_bind.domain);
    d.deferred.push_back(
        Deferred{d.curKey, d.ctx.emit++, std::move(fn)});
}

EventId
ParallelEngine::insertDomain(Domain& d, Cycles when, Event fn,
                             Cycles schedWhen, std::uint64_t key2,
                             std::uint16_t lane)
{
    const std::uint32_t idx = d.slab.allocate();
    PLUS_ASSERT(idx <= kIdxMask, "event slab exceeds EventId index space");
    EventRecord& rec = d.slab[idx];
    rec.fn = std::move(fn);
    rec.when = when;
    rec.schedWhen = schedWhen;
    rec.key2 = key2;
    rec.lane = lane;
    rec.daemon = false;
    d.wheel.insert(idx);
    ++d.pending;
    ++d.scheduled;
    return (static_cast<EventId>(rec.gen) << 32U) |
           (static_cast<EventId>(d.index) << kEventIdxBits) |
           static_cast<EventId>(idx);
}

EventId
ParallelEngine::schedule(Cycles when, Event fn, bool daemon,
                         std::uint16_t lane)
{
    if (t_bind.owner == this) {
        // Worker context, inside a window.
        Domain& d = *static_cast<Domain*>(t_bind.domain);
        PLUS_ASSERT(when >= d.now, "scheduling into the past: ", when,
                    " < ", d.now);
        PLUS_ASSERT(!daemon, "daemon events are machine-lane only");
        const Cycles schedWhen = d.now;
        const std::uint64_t key2 = host_.makeKey2();
        if (lane == kMachineLane) {
            d.outbox[domainCount_].push_back(
                Mail{when, schedWhen, key2, lane, std::move(fn)});
            ++d.mailed;
            return kInvalidEvent;
        }
        const unsigned dst = domainOf(lane);
        if (dst == d.index) {
            return insertDomain(d, when, std::move(fn), schedWhen, key2,
                                lane);
        }
        PLUS_ASSERT(when >= d.now + host_.lookahead_,
                    "cross-domain schedule below the lookahead: ", when,
                    " < ", d.now, " + ", host_.lookahead_);
        d.outbox[dst].push_back(
            Mail{when, schedWhen, key2, lane, std::move(fn)});
        ++d.mailed;
        return kInvalidEvent;
    }

    // Machine context: the world is stopped, insert directly.
    PLUS_ASSERT(when >= host_.now_, "scheduling into the past: ", when,
                " < ", host_.now_);
    const Cycles schedWhen = host_.now_;
    const std::uint64_t key2 = host_.makeKey2();
    if (lane != kMachineLane) {
        PLUS_ASSERT(!daemon, "daemon events are machine-lane only");
        Domain& d = *domains_[domainOf(lane)];
        const EventId id =
            insertDomain(d, when, std::move(fn), schedWhen, key2, lane);
        const EventKey key{when, schedWhen, key2};
        if (domainHasNext_[d.index] == 0 || key < domainNext_[d.index]) {
            domainNext_[d.index] = key;
            domainHasNext_[d.index] = 1;
        }
        return id;
    }
    const std::uint32_t idx = host_.slab_.allocate();
    PLUS_ASSERT(idx <= kIdxMask, "event slab exceeds EventId index space");
    EventRecord& rec = host_.slab_[idx];
    rec.fn = std::move(fn);
    rec.when = when;
    rec.schedWhen = schedWhen;
    rec.key2 = key2;
    rec.lane = kMachineLane;
    rec.daemon = daemon;
    host_.wheel_.insert(idx);
    ++host_.pending_;
    if (daemon) {
        ++host_.daemonPending_;
    }
    ++host_.scheduledTotal_;
    return (static_cast<EventId>(rec.gen) << 32U) |
           (static_cast<EventId>(kGlobalDomain) << kEventIdxBits) |
           static_cast<EventId>(idx);
}

bool
ParallelEngine::cancel(std::uint32_t domain, std::uint32_t idx,
                       std::uint32_t gen)
{
    if (domain == kGlobalDomain) {
        PLUS_ASSERT(t_bind.owner != this,
                    "machine-lane cancel from a worker window");
        if (idx >= host_.slab_.size()) {
            return false;
        }
        EventRecord& rec = host_.slab_[idx];
        if (rec.gen != gen || rec.home == EventRecord::kHomeFree) {
            return false;
        }
        host_.wheel_.remove(idx);
        if (rec.daemon) {
            --host_.daemonPending_;
        }
        host_.slab_.free(idx);
        --host_.pending_;
        ++host_.cancelledTotal_;
        return true;
    }
    if (domain >= domainCount_) {
        return false;
    }
    Domain& d = *domains_[domain];
    PLUS_ASSERT(t_bind.owner != this || t_bind.domain == &d,
                "cross-domain cancel");
    if (idx >= d.slab.size()) {
        return false;
    }
    EventRecord& rec = d.slab[idx];
    if (rec.gen != gen || rec.home == EventRecord::kHomeFree) {
        return false;
    }
    d.wheel.remove(idx);
    d.slab.free(idx);
    --d.pending;
    ++d.cancelled;
    return true;
}

bool
ParallelEngine::peek(TimingWheel& wheel, EventSlab& slab, EventKey& out)
{
    const std::uint32_t idx = wheel.extractNext(~Cycles{0});
    if (idx == kNilRecord) {
        return false;
    }
    out = slab[idx].key();
    wheel.insert(idx);
    return true;
}

void
ParallelEngine::replayDeferred()
{
    std::vector<Deferred> all;
    for (auto& dp : domains_) {
        if (dp->deferred.empty()) {
            continue;
        }
        all.insert(all.end(),
                   std::make_move_iterator(dp->deferred.begin()),
                   std::make_move_iterator(dp->deferred.end()));
        dp->deferred.clear();
    }
    if (all.empty()) {
        return;
    }
    std::sort(all.begin(), all.end(),
              [](const Deferred& a, const Deferred& b) {
                  if (a.key < b.key) {
                      return true;
                  }
                  if (b.key < a.key) {
                      return false;
                  }
                  return a.emit < b.emit;
              });
    // Replay with now() tracking the emitting event, so checker trace
    // entries and telemetry stamps match the serial backends exactly.
    const Cycles saved = host_.now_;
    for (Deferred& e : all) {
        host_.now_ = e.key.when;
        e.fn();
    }
    host_.now_ = std::max(saved, all.back().key.when);
}

void
ParallelEngine::insertMail(Domain& d, Mail m)
{
    const std::uint32_t idx = d.slab.allocate();
    PLUS_ASSERT(idx <= kIdxMask, "event slab exceeds EventId index space");
    EventRecord& rec = d.slab[idx];
    rec.fn = std::move(m.fn);
    rec.when = m.when;
    rec.schedWhen = m.schedWhen;
    rec.key2 = m.key2;
    rec.lane = m.lane;
    rec.daemon = false;
    d.wheel.insert(idx);
    ++d.pending;
    ++d.scheduled;
}

void
ParallelEngine::drainMail()
{
    for (auto& sp : domains_) {
        Domain& src = *sp;
        for (unsigned dst = 0; dst < domainCount_; ++dst) {
            auto& box = src.outbox[dst];
            if (box.empty()) {
                continue;
            }
            for (Mail& m : box) {
                insertMail(*domains_[dst], std::move(m));
            }
            box.clear();
        }
        auto& machineBox = src.outbox[domainCount_];
        for (Mail& m : machineBox) {
            const std::uint32_t idx = host_.slab_.allocate();
            PLUS_ASSERT(idx <= kIdxMask,
                        "event slab exceeds EventId index space");
            EventRecord& rec = host_.slab_[idx];
            rec.fn = std::move(m.fn);
            rec.when = m.when;
            rec.schedWhen = m.schedWhen;
            rec.key2 = m.key2;
            rec.lane = kMachineLane;
            rec.daemon = false;
            host_.wheel_.insert(idx);
            ++host_.pending_;
            ++host_.scheduledTotal_;
        }
        machineBox.clear();
    }
}

void
ParallelEngine::rethrowWorkerError()
{
    int bad = -1;
    for (unsigned i = 0; i < domainCount_; ++i) {
        if (domains_[i]->error == nullptr) {
            continue;
        }
        if (bad < 0 ||
            domains_[i]->errorKey < domains_[bad]->errorKey) {
            bad = static_cast<int>(i);
        }
    }
    if (bad < 0) {
        return;
    }
    // The erroring domains executed the same per-domain prefix the
    // serial engine would have, so the minimum-key error is exactly
    // the one a serial run hits first.
    const std::exception_ptr err = domains_[bad]->error;
    for (auto& dp : domains_) {
        dp->error = nullptr;
    }
    shutdownWorkers();
    std::rethrow_exception(err);
}

void
ParallelEngine::executeWindow(Domain& d, EventKey bound)
{
    t_bind = Bind{this, &d};
    try {
        for (;;) {
            const std::uint32_t idx = d.wheel.extractNext(bound.when);
            if (idx == kNilRecord) {
                break;
            }
            EventRecord& rec = d.slab[idx];
            if (!(rec.key() < bound)) {
                d.wheel.insert(idx); // at the bound cycle, past the key
                break;
            }
            Event fn = std::move(rec.fn);
            d.curKey = rec.key();
            host_.enterEventContext(rec, d.ctx);
            d.slab.free(idx);
            --d.pending;
            d.now = rec.when;
            ++d.executed;
            fn();
        }
    } catch (...) {
        d.error = std::current_exception();
        d.errorKey = d.curKey;
    }
    d.ctx.node = kMachineLane;
    t_bind = Bind{};
}

void
ParallelEngine::run(Cycles limit)
{
    PLUS_ASSERT(host_.lookahead_ >= 1,
                "parallel run needs a lookahead >= 1 cycle (set from the "
                "network's minimum cross-node latency)");
    startWorkers();
    const prof::RunTimer prof_run;
    const bool profiling = prof::enabled();
    // Per-window stats deltas: dp->executed/mailed are plain fields the
    // coordinator may only read after awaitArrivals() (workers publish
    // via the arrived_ release/acquire pair).
    const auto mailedNow = [this] {
        std::uint64_t n = 0;
        for (const auto& dp : domains_) {
            n += dp->mailed;
        }
        return n;
    };
    std::uint64_t prevExecuted = 0;
    std::uint64_t prevMailed = 0;
    std::uint64_t openWidth = 0;
    bool windowOpen = false;
    if (profiling) {
        prof::setThreadLabel("coord");
        prof::noteLookahead(host_.lookahead_);
        prevExecuted = domainExecuted();
        prevMailed = mailedNow();
    }
    for (;;) {
        {
            const prof::ScopedPhase wait(prof::Phase::ParBarrier);
            awaitArrivals();
        }
        if (windowOpen) {
            const std::uint64_t e = domainExecuted();
            const std::uint64_t m = mailedNow();
            prof::noteWindow(openWidth, e - prevExecuted, m - prevMailed);
            prevExecuted = e;
            prevMailed = m;
            windowOpen = false;
        }
        rethrowWorkerError();
        {
            const prof::ScopedPhase replay(prof::Phase::ParReplay);
            replayDeferred();
        }
        {
            const prof::ScopedPhase drain(prof::Phase::ParDrain);
            drainMail();
        }
        if (host_.stopping_.load(std::memory_order_relaxed)) {
            break;
        }

        for (unsigned i = 0; i < domainCount_; ++i) {
            Domain& d = *domains_[i];
            domainHasNext_[i] =
                peek(d.wheel, d.slab, domainNext_[i]) ? 1 : 0;
        }

        // Stop-the-world: execute machine-lane events that precede
        // every domain event, exactly as the serial loop would.
        bool done = false;
        for (;;) {
            std::size_t ordinary =
                host_.pending_ - host_.daemonPending_;
            for (const auto& dp : domains_) {
                ordinary += dp->pending;
            }
            if (ordinary == 0) {
                done = true;
                break;
            }
            EventKey dmin = kMaxKey;
            bool anyDomain = false;
            for (unsigned i = 0; i < domainCount_; ++i) {
                if (domainHasNext_[i] != 0 &&
                    (!anyDomain || domainNext_[i] < dmin)) {
                    dmin = domainNext_[i];
                    anyDomain = true;
                }
            }
            EventKey gk{};
            const bool hasGlobal = peek(host_.wheel_, host_.slab_, gk);
            EventKey m = dmin;
            if (hasGlobal && (!anyDomain || gk < dmin)) {
                m = gk;
            }
            PLUS_ASSERT(anyDomain || hasGlobal,
                        "pending work but no pending events");
            if (m.when > limit) {
                done = true;
                break;
            }
            if (hasGlobal && (!anyDomain || gk < dmin)) {
                const prof::ScopedPhase mach(prof::Phase::ParMachine);
                host_.dispatchNext(limit);
                continue;
            }

            // Conservative window bound: nothing executed inside the
            // window can create work below min + lookahead, and the
            // next machine-lane event caps it from above.
            EventKey bound{dmin.when >= ~Cycles{0} - host_.lookahead_
                               ? ~Cycles{0}
                               : dmin.when + host_.lookahead_,
                           0, 0};
            if (hasGlobal && gk < bound) {
                bound = gk;
            }
            if (limit != ~Cycles{0} &&
                EventKey{limit + 1, 0, 0} < bound) {
                bound = EventKey{limit + 1, 0, 0};
            }
            bound_ = bound;
            ++windows_;
            if (profiling) {
                openWidth = bound.when - dmin.when;
                windowOpen = true;
            }
            signal(Cmd::Window);
            {
                const prof::ScopedPhase work(prof::Phase::ParWork);
                executeWindow(*domains_[0], bound);
            }
            break;
        }
        if (done) {
            break;
        }
    }
    // now() after a run is the last executed event's time.
    for (const auto& dp : domains_) {
        host_.now_ = std::max(host_.now_, dp->now);
    }
}

std::size_t
ParallelEngine::domainPending() const
{
    std::size_t n = 0;
    for (const auto& dp : domains_) {
        n += dp->pending;
    }
    return n;
}

std::uint64_t
ParallelEngine::domainExecuted() const
{
    std::uint64_t n = 0;
    for (const auto& dp : domains_) {
        n += dp->executed;
    }
    return n;
}

void
ParallelEngine::addStats(EngineStats& s) const
{
    s.windows = windows_;
    for (const auto& dp : domains_) {
        s.scheduled += dp->scheduled;
        s.executed += dp->executed;
        s.cancelled += dp->cancelled;
        s.cascades += dp->wheel.cascades();
        s.mailed += dp->mailed;
        s.slabLive += dp->slab.live();
        s.slabHighWater += dp->slab.highWater();
        s.slabSlots += dp->slab.size();
    }
}

} // namespace sim
} // namespace plus
