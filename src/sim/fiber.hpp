/**
 * @file
 * Cooperative user-level fibers for execution-driven simulation.
 *
 * The PLUS simulator, like the authors' original, is driven by application
 * code: each simulated thread runs real C++ on its own stack and yields to
 * the event loop whenever it performs an operation with simulated cost.
 * Fibers are built on POSIX ucontext; the simulation is single-OS-threaded,
 * so no locking is needed.
 */

#ifndef PLUS_SIM_FIBER_HPP_
#define PLUS_SIM_FIBER_HPP_

#include <ucontext.h>

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>

namespace plus {
namespace sim {

/**
 * One cooperative fiber. resume() runs it until it calls Fiber::yield()
 * or its body returns; control then comes back to the resumer.
 */
class Fiber
{
  public:
    /**
     * @param body   Code to run on the fiber's stack.
     * @param stack_bytes  Stack size; must comfortably hold the deepest
     *                     application call chain.
     */
    Fiber(std::function<void()> body, std::size_t stack_bytes);

    /**
     * A started-but-unfinished fiber is cancelled on destruction: it is
     * resumed with a cancellation flag that makes yield() throw, so the
     * body unwinds and destructors of objects on the fiber stack run
     * (the stack itself is just a byte array — without the unwind, any
     * heap references parked on it would leak).
     */
    ~Fiber();

    Fiber(const Fiber&) = delete;
    Fiber& operator=(const Fiber&) = delete;

    /**
     * Transfer control into the fiber. Must not be called from inside any
     * fiber other than the scheduler context, and not on a finished fiber.
     *
     * An exception escaping the fiber body is captured on the fiber stack
     * and rethrown here, on the resumer's stack, after the fiber is marked
     * finished — unwinding across a context switch is undefined behaviour.
     */
    void resume();

    /** True once the fiber body has returned. */
    bool finished() const { return finished_; }

    /**
     * Yield from inside the currently running fiber back to its resumer.
     * Must be called on a fiber's stack.
     */
    static void yield();

    /** The fiber currently executing, or nullptr on the scheduler stack. */
    static Fiber* current();

  private:
    static void trampoline(unsigned hi, unsigned lo);
    void run();
    void switchIn();
    void cancel();

    std::function<void()> body_;
    std::unique_ptr<char[]> stack_;
    std::size_t stackBytes_;
    ucontext_t context_;
    ucontext_t returnContext_;
    bool started_ = false;
    bool finished_ = false;
    bool cancelling_ = false;
    /** Exception that escaped the body, rethrown by resume(). */
    std::exception_ptr pending_;

    // AddressSanitizer fake-stack bookkeeping (unused otherwise).
    void* fiberFakeStack_ = nullptr;
    const void* returnBottom_ = nullptr;
    std::size_t returnSize_ = 0;

    // ThreadSanitizer fiber contexts (unused outside PLUS_TSAN builds):
    // this fiber's __tsan_create_fiber handle, and the resumer's handle
    // captured at each switch-in so yield/finish can switch back.
    void* tsanFiber_ = nullptr;
    void* tsanReturn_ = nullptr;
};

} // namespace sim
} // namespace plus

#endif // PLUS_SIM_FIBER_HPP_
