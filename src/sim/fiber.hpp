/**
 * @file
 * Cooperative user-level fibers for execution-driven simulation.
 *
 * The PLUS simulator, like the authors' original, is driven by application
 * code: each simulated thread runs real C++ on its own stack and yields to
 * the event loop whenever it performs an operation with simulated cost.
 * Fibers are built on POSIX ucontext; the simulation is single-OS-threaded,
 * so no locking is needed.
 */

#ifndef PLUS_SIM_FIBER_HPP_
#define PLUS_SIM_FIBER_HPP_

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>

namespace plus {
namespace sim {

/**
 * One cooperative fiber. resume() runs it until it calls Fiber::yield()
 * or its body returns; control then comes back to the resumer.
 */
class Fiber
{
  public:
    /**
     * @param body   Code to run on the fiber's stack.
     * @param stack_bytes  Stack size; must comfortably hold the deepest
     *                     application call chain.
     */
    Fiber(std::function<void()> body, std::size_t stack_bytes);
    ~Fiber();

    Fiber(const Fiber&) = delete;
    Fiber& operator=(const Fiber&) = delete;

    /**
     * Transfer control into the fiber. Must not be called from inside any
     * fiber other than the scheduler context, and not on a finished fiber.
     */
    void resume();

    /** True once the fiber body has returned. */
    bool finished() const { return finished_; }

    /**
     * Yield from inside the currently running fiber back to its resumer.
     * Must be called on a fiber's stack.
     */
    static void yield();

    /** The fiber currently executing, or nullptr on the scheduler stack. */
    static Fiber* current();

  private:
    static void trampoline(unsigned hi, unsigned lo);
    void run();

    std::function<void()> body_;
    std::unique_ptr<char[]> stack_;
    ucontext_t context_;
    ucontext_t returnContext_;
    bool started_ = false;
    bool finished_ = false;
};

} // namespace sim
} // namespace plus

#endif // PLUS_SIM_FIBER_HPP_
