/**
 * @file
 * Forward-progress watchdog for the event loop.
 *
 * Hangs in a discrete-event simulator are silent: the engine happily
 * dispatches retransmit timers or polling events forever while the
 * workload makes no progress. The watchdog turns that into a diagnosis:
 * armed with a progress counter (core::Machine supplies packets
 * delivered + processor operations retired), it checks once per window
 * that the counter moved. A full window with no progress while other
 * events are still pending means livelock or deadlock — the watchdog
 * panics with a caller-supplied dump (recent telemetry, the checker's
 * event trace, engine state).
 *
 * Disarmed (the default and the state after stop()), the watchdog
 * schedules nothing at all, so it cannot perturb event order or
 * timing — the same cannot-observe-cannot-disturb contract as the
 * check observers. While armed its check events do execute, but they
 * only read counters; they never touch protocol state. Checks are
 * daemon events (Engine::scheduleDaemon), so an armed watchdog never
 * keeps an otherwise-finished run alive: once its check is all that
 * remains, run()/runUntil() return without executing it.
 */

#ifndef PLUS_SIM_WATCHDOG_HPP_
#define PLUS_SIM_WATCHDOG_HPP_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "common/types.hpp"
#include "sim/engine.hpp"

namespace plus {
namespace sim {

/** Panics when a progress counter stalls for a full window. */
class Watchdog
{
  public:
    /** Monotone counter of useful work (any unit; only deltas matter). */
    using ProgressFn = std::function<std::uint64_t()>;

    /** Renders the diagnostic appended to the panic message. */
    using DumpFn = std::function<std::string()>;

    Watchdog(Engine& engine, Cycles window, ProgressFn progress,
             DumpFn dump);

    Watchdog(const Watchdog&) = delete;
    Watchdog& operator=(const Watchdog&) = delete;

    ~Watchdog() { cancelNow(); }

    /** Schedule the first check, one window from now (re-arm allowed). */
    void arm();

    /**
     * Request quiet. Safe from any context, including node-context
     * events on a parallel worker thread (where cancelling a machine-
     * lane event outright is forbidden): the pending check fires once
     * more as a no-op and disarms itself — identically in every
     * backend, so event order never forks on the stop path.
     */
    void stop();

    /**
     * Cancel the pending check immediately. Machine context only (the
     * Machine calls it once a run has returned, and on teardown).
     */
    void cancelNow();

    bool armed() const { return pending_ != kInvalidEvent; }

    /** Windows that ended with no progress but pending work (so far). */
    std::uint64_t stallWindows() const { return stallWindows_; }

  private:
    void check();

    Engine& engine_;
    Cycles window_;
    ProgressFn progress_;
    DumpFn dump_;
    EventId pending_ = kInvalidEvent;
    std::atomic<bool> stopRequested_{false};
    std::uint64_t lastProgress_ = 0;
    std::uint64_t stallWindows_ = 0;
};

} // namespace sim
} // namespace plus

#endif // PLUS_SIM_WATCHDOG_HPP_
