/**
 * @file
 * Interconnection-network models.
 *
 * The network moves opaque packets between coherence managers. Two models
 * share one interface:
 *
 *  - MeshNetwork: a 2-D mesh with dimension-order routing, wormhole-style
 *    cut-through switching, and finite link bandwidth. Each directed link
 *    is a busy-until resource: a packet reserves it for its serialization
 *    time, so heavy update traffic queues and the "system flooded with
 *    update requests" effect of Section 2.5 is visible.
 *  - IdealNetwork: applies the zero-load latency formula with no
 *    contention; used for ablation.
 *
 * Zero-load one-way latency is fixedCycles + perHopCycles * hops, which
 * with the defaults (10, 2) reproduces the paper's measured 24-cycle
 * adjacent-node round trip and +4 cycles per extra hop.
 */

#ifndef PLUS_NET_NETWORK_HPP_
#define PLUS_NET_NETWORK_HPP_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "check/hooks.hpp"
#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "net/topology.hpp"

namespace plus {
namespace sim {
class Engine;
} // namespace sim

namespace net {

/** Base class for protocol-defined packet contents. */
struct Payload {
    virtual ~Payload() = default;

    /**
     * Deep copy, needed by the reliable-delivery layer to keep a
     * retransmittable frame while the original rides the wire (packets
     * own their payload via unique_ptr). Defaults to null so payload
     * types outside the protocol need not implement it; the reliable
     * layer panics if asked to carry an uncloneable payload.
     */
    virtual std::unique_ptr<Payload> clone() const { return nullptr; }
};

/**
 * A message in flight between two nodes. Field order keeps the struct at
 * 32 bytes so a send closure (this + Packet + a cycle stamp) still fits
 * sim::Event's inline capture buffer.
 */
struct Packet {
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    /** Payload size in bytes, excluding the link-level header. */
    unsigned payloadBytes = 0;
    /**
     * Sender's classification (a proto::MsgType value), carried opaquely
     * for telemetry attribution; 0xff when unclassified. The network
     * itself never interprets it.
     */
    std::uint8_t msgClass = 0xff;

    // --- Link-layer envelope (net::LinkLayer; inert when faults off) ----

    /** 0 = raw (reliable layer off), else a LinkCtl value. */
    std::uint8_t linkCtl = 0;
    /** Cleared when the fault injector corrupted the payload in flight. */
    bool crcOk = true;
    /** Per-(src,dst) sequence number of a data frame. */
    std::uint32_t linkSeq = 0;
    /** Cumulative acknowledgement carried by an ack frame. */
    std::uint32_t linkAck = 0;

    std::unique_ptr<Payload> payload;
};

/** Values of Packet::linkCtl. */
enum LinkCtl : std::uint8_t {
    kLinkRaw = 0,  ///< not under reliable delivery
    kLinkData = 1, ///< sequenced data frame
    kLinkAck = 2,  ///< cumulative acknowledgement
};

/** msgClass of link-layer ack packets (never seen by protocol code). */
constexpr std::uint8_t kLinkAckClass = 0xfe;

/**
 * Aggregate network statistics. Counters only: internally they are
 * lane-sharded (delivery executes on the destination node's lane, which
 * under the parallel backend is a worker thread), and stats() sums the
 * shards — exact in every backend, no atomics. The latency/queueing
 * distributions live on Network as order-sensitive histograms, updated
 * through Engine::defer() so their record streams stay byte-identical
 * to serial execution; read them via latencyHistogram()/
 * queueingHistogram().
 */
struct NetworkStats {
    std::uint64_t packets = 0;
    std::uint64_t payloadBytes = 0;
    std::uint64_t totalHops = 0;
    /** Packets discarded by the fault layer (any DropReason). */
    std::uint64_t dropped = 0;
    /** Hop retries forced by a full router input buffer. */
    std::uint64_t backpressureStalls = 0;
};

/** Per-node packet sink. */
using DeliveryHandler = std::function<void(Packet)>;

class FaultInjector;
class LinkLayer;

/** Common interface of the two network models. */
class Network
{
  public:
    Network(sim::Engine& engine, const Topology& topology,
            const NetworkConfig& config);
    virtual ~Network();

    Network(const Network&) = delete;
    Network& operator=(const Network&) = delete;

    /** Register the receiver for packets addressed to @p node. */
    void setDeliveryHandler(NodeId node, DeliveryHandler handler);

    /**
     * Mirror deliveries (and, on the mesh, per-link occupancy) into the
     * telemetry tracer. Null (the default) disables: the hot path then
     * pays one branch per event, like the check observers.
     */
    void setTelemetryObserver(check::NetObserver* observer)
    {
        telemetry_ = observer;
    }

    /**
     * Provide the event-trace renderer used when the reliable layer
     * panics (retransmit-budget exhaustion); wired by core::Machine.
     */
    void setTraceDumper(std::function<std::string()> dumper)
    {
        traceDumper_ = std::move(dumper);
    }

    /**
     * Arm fault injection and the reliable-delivery layer (always
     * together: an unreliable fabric without recovery would break the
     * protocol's FIFO assumptions). Call once, before any traffic.
     * With @p arm_script false the fault script is not scheduled yet;
     * the caller arms it later via faultInjector()->scheduleScript()
     * (core::Machine does so at the first run(), making script cycles
     * relative to the workload start instead of machine boot).
     */
    void enableFaults(const FaultConfig& fault, bool arm_script = true);

    /** The armed injector, or null when faults are off. */
    FaultInjector* faultInjector() { return injector_.get(); }

    /** The armed reliable layer, or null when faults are off. */
    LinkLayer* linkLayer() { return link_.get(); }

    /**
     * Send a packet from its source node at the current cycle. src == dst
     * is rejected: local traffic never enters the network. When the
     * reliable layer is armed the packet is sequenced and tracked for
     * retransmission first; otherwise this goes straight to the model's
     * inject() — one branch, the usual disabled-observer cost.
     */
    void send(Packet packet);

    const Topology& topology() const { return topology_; }

    /** Aggregate counters: the sum over all lane shards. */
    NetworkStats stats() const;

    /** End-to-end latency per delivered packet, cycles. */
    const Histogram& latencyHistogram() const { return latency_; }

    /** Cycles spent queued behind busy links (contention only). */
    const Histogram& queueingHistogram() const { return queueing_; }

    /** Zero-load one-way latency for a given hop count. */
    Cycles
    zeroLoadLatency(unsigned hops) const
    {
        return config_.fixedCycles + config_.perHopCycles * hops;
    }

    /**
     * The smallest delay with which this model ever schedules an event
     * onto a *different* node's lane — the parallel backend's
     * conservative lookahead. Every internal cross-node schedule
     * (scheduleForNode) must keep its delay >= this bound.
     */
    virtual Cycles minCrossNodeLatency() const = 0;

    /**
     * The smallest accumulated delay any chain of events can take to
     * carry work across @p hops mesh hops — the per-distance lookahead
     * floor the parallel backend builds its domain-pair matrix from at
     * partition time. Monotone and subadditive in @p hops (floor(a) +
     * floor(b) >= floor(a + b)), so the per-hop schedules of a routed
     * path never undercut the end-to-end floor; fault-injected delays
     * only add. Must be >= 1 for hops >= 1 (MachineConfig::validate()
     * rejects configurations that would yield zero entries).
     */
    virtual Cycles crossNodeFloor(unsigned hops) const = 0;

    /** Cycles a packet of the given payload occupies one link. */
    Cycles serializationCycles(unsigned payload_bytes) const;

  protected:
    friend class LinkLayer;

    /** Put a packet on the wire (the model's raw, lossy path). */
    virtual void inject(Packet packet) = 0;

    /**
     * Physical arrival at the destination router. Routes through the
     * reliable layer when armed (sequencing, dedup, acks); otherwise
     * hands straight up to the protocol.
     */
    void deliver(Packet packet, unsigned hops, Cycles injected_at,
                 Cycles queueing);

    /** Protocol-visible delivery: stats, telemetry, the node handler. */
    void deliverUp(Packet packet, unsigned hops, Cycles injected_at,
                   Cycles queueing);

    /** Count a fault-layer discard and mirror it into telemetry. */
    void noteDrop(NodeId src, NodeId dst, std::uint8_t msg_class,
                  unsigned bytes, check::DropReason reason);

    /** The executing lane's shard index (last shard = machine). */
    std::size_t shardIx() const;

    /** The executing lane's counter shard. */
    NetworkStats& shard() { return statShards_[shardIx()]; }

    /** One shard per node lane plus one for machine context, padded so
     *  two workers never bounce a cache line. */
    struct alignas(64) StatShard : NetworkStats {
    };

    sim::Engine& engine_;
    Topology topology_;
    NetworkConfig config_;
    std::vector<StatShard> statShards_;
    Histogram latency_;
    Histogram queueing_;
    std::vector<DeliveryHandler> handlers_;
    check::NetObserver* telemetry_ = nullptr;
    std::function<std::string()> traceDumper_;
    std::unique_ptr<FaultInjector> injector_;
    std::unique_ptr<LinkLayer> link_;
};

/** Contention-free model: latency formula only. */
class IdealNetwork : public Network
{
  public:
    using Network::Network;

    /** Delivery is the only cross-node schedule: one-hop zero load. */
    Cycles minCrossNodeLatency() const override
    {
        return zeroLoadLatency(1);
    }

    /** Packets are delivered end-to-end in one schedule at zero load. */
    Cycles crossNodeFloor(unsigned hops) const override
    {
        return zeroLoadLatency(hops);
    }

  protected:
    void inject(Packet packet) override;
};

/**
 * 2-D mesh with per-link busy-until bandwidth accounting and hop-by-hop
 * cut-through forwarding.
 */
class MeshNetwork : public Network
{
  public:
    MeshNetwork(sim::Engine& engine, const Topology& topology,
                const NetworkConfig& config);

    /** Busy cycles accumulated on the most utilized link. */
    Cycles maxLinkBusyCycles() const;

    /** Hops advance via scheduleForNode with delay >= perHopCycles. */
    Cycles minCrossNodeLatency() const override
    {
        return config_.perHopCycles;
    }

    /** Each of the @p hops forwarding events costs >= perHopCycles. */
    Cycles crossNodeFloor(unsigned hops) const override
    {
        return config_.perHopCycles * hops;
    }

  protected:
    void inject(Packet packet) override;

  private:
    /** Directed link between adjacent routers. */
    struct Link {
        Cycles freeAt = 0;
        Cycles busyCycles = 0;
    };

    /** State threaded through the hop-by-hop events. */
    struct Transit {
        Packet packet;
        Cycles injectedAt = 0;
        Cycles queueing = 0;
        unsigned hops = 0;
        NodeId at = kInvalidNode;
    };

    /** Transit recycling, sharded by lane like the stat counters. */
    struct alignas(64) TransitShard {
        /** Owning pool; recycled through free. */
        std::vector<std::unique_ptr<Transit>> pool;
        std::vector<Transit*> free;
    };

    Link& linkBetween(NodeId from, NodeId to);
    void hop(Transit* transit);

    /**
     * Grab a pooled transit so every in-flight packet costs one pool
     * hit instead of a shared_ptr allocation per send. A transit is
     * released into the *releasing* lane's shard (delivery happens on
     * the destination's lane), so the pools drift with traffic but
     * stay thread-private.
     */
    Transit* acquireTransit();
    void releaseTransit(Transit* transit);

    /**
     * key = from * nodes + to, adjacent pairs only. Fully populated at
     * construction so hop-time lookups are const finds — each directed
     * link's state is then only ever written from its source router's
     * lane, which makes the map safe under the parallel backend.
     */
    std::unordered_map<std::uint64_t, Link> links_;
    std::vector<TransitShard> transitShards_;
};

/** Factory honouring NetworkConfig::ideal. */
std::unique_ptr<Network> makeNetwork(sim::Engine& engine,
                                     const Topology& topology,
                                     const NetworkConfig& config);

} // namespace net
} // namespace plus

#endif // PLUS_NET_NETWORK_HPP_
