/**
 * @file
 * Deterministic fault injection for the interconnection network.
 *
 * The injector sits between Network::send() and hop delivery (see
 * net::LinkLayer): every frame put on the wire asks it for a Fate —
 * deliver, drop, corrupt, duplicate, or delay — rolled from the
 * injector's own seeded xoshiro256** stream, independent of workload
 * randomness, so a fault schedule replays exactly under both engine
 * backends. On top of the probabilistic fates it tracks link and router
 * liveness, mutated by a scripted schedule (FaultScriptEntry) or by
 * tests directly; the mesh consults liveness at every hop so a packet
 * already in flight dies at the killed link, exactly like real hardware.
 *
 * Everything here is reached only when FaultConfig::enabled armed the
 * subsystem; fault-free runs never construct an injector and pay one
 * null-pointer branch per packet (the check-observer contract, see
 * docs/ROBUSTNESS.md).
 */

#ifndef PLUS_NET_FAULT_INJECTOR_HPP_
#define PLUS_NET_FAULT_INJECTOR_HPP_

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/topology.hpp"

namespace plus {
namespace sim {
class Engine;
} // namespace sim

namespace net {

struct Packet;

/** What happens to one frame put on the wire. */
enum class Fate : std::uint8_t {
    Deliver,   ///< pass through untouched
    Drop,      ///< silently lost
    Corrupt,   ///< delivered with crcOk cleared (dropped at the receiver)
    Duplicate, ///< delivered twice
    Delay,     ///< held back a uniform [1, maxDelayCycles] extra cycles
};

/**
 * Injected-fault counters (exported as net.fault.* metrics). Sharded by
 * executing lane internally (fates are rolled on whichever node's lane
 * transmits the frame) and summed by FaultInjector::stats().
 */
struct FaultStats {
    std::uint64_t dropped = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t delayed = 0;
    std::uint64_t linkKills = 0;
    std::uint64_t nodeKills = 0;
    std::uint64_t nodeCrashes = 0;
};

/** Seeded fault source plus link/router liveness (see file comment). */
class FaultInjector
{
  public:
    FaultInjector(sim::Engine& engine, const Topology& topology,
                  const FaultConfig& config);

    /** Roll the fate of one frame (consumes one RNG draw). */
    Fate fateFor(const Packet& packet);

    /** Extra cycles for a Fate::Delay frame (consumes one RNG draw). */
    Cycles delayFor();

    /**
     * Schedule the config's script entries as engine events, each at
     * now() + entry.at. Idempotent — the second and later calls are
     * no-ops, so core::Machine can defer arming to the first run()
     * (setup settles must not consume workload-relative faults) while
     * direct Network users keep arming at enableFaults().
     */
    void scheduleScript();

    bool nodeAlive(NodeId node) const { return !deadNodes_[node]; }

    /** True once a CrashNode entry permanently failed @p node. */
    bool nodeCrashed(NodeId node) const { return crashedNodes_[node] != 0; }

    /** Number of nodes the schedule has crashed so far. */
    std::size_t crashedCount() const { return crashedCount_; }

    bool
    linkAlive(NodeId a, NodeId b) const
    {
        return deadLinks_.empty() ||
               deadLinks_.find(linkKey(a, b)) == deadLinks_.end();
    }

    /** Kill (false) or revive (true) a router. */
    void setNodeAlive(NodeId node, bool alive);

    /**
     * Fail-stop crash of @p node: the router is killed and the node is
     * marked permanently crashed (setNodeAlive(node, true) on a crashed
     * node is rejected). Fires the crash handler, if installed, from the
     * same context as the script entry (machine lane). Idempotent.
     */
    void crashNode(NodeId node);

    /**
     * Invoked from machine context when a CrashNode schedule entry
     * fires; core::Machine wires this to the recovery manager so the
     * crash is acted on at its scheduled cycle, deterministically,
     * rather than only when a retransmit budget notices the silence.
     */
    void setCrashHandler(std::function<void(NodeId)> fn)
    {
        crashHandler_ = std::move(fn);
    }

    /** Kill (false) or revive (true) the undirected link a <-> b. */
    void setLinkAlive(NodeId a, NodeId b, bool alive);

    /**
     * Test hook: decide fates deterministically instead of rolling.
     * Return nullopt to fall through to the probabilistic roll.
     */
    void
    setFateOverride(std::function<std::optional<Fate>(const Packet&)> fn)
    {
        override_ = std::move(fn);
    }

    /** Aggregate counters: the sum over all lane shards. */
    FaultStats stats() const;

    const FaultConfig& config() const { return config_; }

  private:
    /** Order-independent key of the undirected link a <-> b. */
    static std::uint64_t
    linkKey(NodeId a, NodeId b)
    {
        if (a > b) {
            std::swap(a, b);
        }
        return (static_cast<std::uint64_t>(a) << 32) | b;
    }

    void apply(const FaultScriptEntry& entry);

    /** Counter shards, padded against false sharing between lanes. */
    struct alignas(64) StatShard : FaultStats {
    };

    /** The executing lane's shard index (last shard = machine). */
    std::size_t shardIx() const;
    FaultStats& shard() { return statShards_[shardIx()]; }

    sim::Engine& engine_;
    FaultConfig config_;
    /**
     * One independent xoshiro256** stream per lane, seeded from
     * FaultConfig::seed and the lane index. A frame's fate is rolled on
     * the lane that transmits it, and each lane's frames keep their
     * serial order in every backend, so a fault schedule replays
     * exactly — serial wheel, heap, or parallel.
     */
    std::vector<Xoshiro256> rngs_;
    std::vector<StatShard> statShards_;
    /**
     * Liveness is written from machine context only (scripted entries
     * and test hooks run stop-the-world under the parallel backend) and
     * read at every hop; the window barrier orders the two.
     */
    std::vector<char> deadNodes_;
    /** Permanently failed nodes: written under crashNode only, never
     *  cleared — a crashed node cannot be revived. */
    std::vector<char> crashedNodes_;
    std::size_t crashedCount_ = 0;
    std::unordered_set<std::uint64_t> deadLinks_;
    std::function<std::optional<Fate>(const Packet&)> override_;
    std::function<void(NodeId)> crashHandler_;
    bool scriptArmed_ = false;
};

} // namespace net
} // namespace plus

#endif // PLUS_NET_FAULT_INJECTOR_HPP_
