#include "net/reliable_link.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"
#include "common/panic.hpp"
#include "net/fault_injector.hpp"
#include "sim/engine.hpp"

namespace plus {
namespace net {

LinkLayer::LinkLayer(Network& network, sim::Engine& engine,
                     FaultInjector& injector, const FaultConfig& config)
    : net_(network), engine_(engine), injector_(injector), config_(config),
      srtt_(network.topology().nodes(), 0),
      rttvar_(network.topology().nodes(), 0),
      statShards_(network.topology().nodes() + 1),
      sender_(network.topology().nodes()),
      recv_(network.topology().nodes()),
      sealed_(network.topology().nodes(), 0)
{
    if (config_.retransmitTimeout != 0) {
        timeout_ = config_.retransmitTimeout;
    } else {
        // Derive a timeout that comfortably exceeds a contended round
        // trip across the diameter of the machine.
        const Topology& topo = net_.topology();
        unsigned diameter = 0;
        for (NodeId a = 0; a < topo.nodes(); ++a) {
            for (NodeId b = a + 1; b < topo.nodes(); ++b) {
                diameter = std::max(diameter, topo.distance(a, b));
            }
        }
        timeout_ = 16 * net_.zeroLoadLatency(diameter) +
                   4 * net_.serializationCycles(64);
    }
}

Packet
LinkLayer::clonePacket(const Packet& packet) const
{
    Packet copy;
    copy.src = packet.src;
    copy.dst = packet.dst;
    copy.payloadBytes = packet.payloadBytes;
    copy.msgClass = packet.msgClass;
    copy.linkCtl = packet.linkCtl;
    copy.crcOk = packet.crcOk;
    copy.linkSeq = packet.linkSeq;
    copy.linkAck = packet.linkAck;
    if (packet.payload) {
        copy.payload = packet.payload->clone();
        if (!copy.payload) {
            PLUS_PANIC("packet of class ", unsigned(packet.msgClass),
                       " carries an uncloneable payload; reliable "
                       "delivery needs Payload::clone()");
        }
    }
    return copy;
}

std::size_t
LinkLayer::shardIx() const
{
    const std::size_t ix = engine_.shardIndex();
    return ix < statShards_.size() ? ix : statShards_.size() - 1;
}

LinkStats
LinkLayer::stats() const
{
    LinkStats total;
    for (const StatShard& s : statShards_) {
        total.dataFrames += s.dataFrames;
        total.retransmits += s.retransmits;
        total.acksSent += s.acksSent;
        total.acksReceived += s.acksReceived;
        total.dupSuppressed += s.dupSuppressed;
        total.crcDrops += s.crcDrops;
        total.reordered += s.reordered;
        total.peerDeaths += s.peerDeaths;
        total.sealedDrops += s.sealedDrops;
    }
    return total;
}

void
LinkLayer::sendData(Packet packet)
{
    SenderChan& chan = sender_[packet.src][packet.dst];
    packet.linkCtl = kLinkData;
    packet.linkSeq = chan.nextSeq++;
    shard().dataFrames += 1;

    auto [it, inserted] =
        chan.unacked.emplace(packet.linkSeq, Unacked{});
    PLUS_ASSERT(inserted, "sequence number reused on channel ",
                packet.src, " -> ", packet.dst);
    it->second.frame = clonePacket(packet);
    it->second.sentAt = engine_.now();
    armTimer(packet.src, packet.dst, packet.linkSeq, it->second);

    transmit(std::move(packet));
}

void
LinkLayer::transmit(Packet packet)
{
    // A dead router loses everything it would send or receive; the
    // retransmit timer recovers the frame after a revival.
    if (!injector_.nodeAlive(packet.src) ||
        !injector_.nodeAlive(packet.dst)) {
        net_.noteDrop(packet.src, packet.dst, packet.msgClass,
                      packet.payloadBytes, check::DropReason::NodeDown);
        return;
    }

    switch (injector_.fateFor(packet)) {
      case Fate::Drop:
        net_.noteDrop(packet.src, packet.dst, packet.msgClass,
                      packet.payloadBytes, check::DropReason::Injected);
        return;
      case Fate::Corrupt:
        packet.crcOk = false;
        net_.inject(std::move(packet));
        return;
      case Fate::Duplicate: {
        Packet copy = clonePacket(packet);
        net_.inject(std::move(packet));
        net_.inject(std::move(copy));
        return;
      }
      case Fate::Delay: {
        const Cycles extra = injector_.delayFor();
        engine_.schedule(extra, [this, p = std::move(packet)]() mutable {
            net_.inject(std::move(p));
        });
        return;
      }
      case Fate::Deliver:
        net_.inject(std::move(packet));
        return;
      default:
        PLUS_PANIC("unknown packet fate");
    }
}

void
LinkLayer::receive(Packet packet, unsigned hops, Cycles injected_at,
                   Cycles queueing)
{
    if (!packet.crcOk) {
        // Corruption is detected, never consumed: a bad frame is a drop.
        shard().crcDrops += 1;
        net_.noteDrop(packet.src, packet.dst, packet.msgClass,
                      packet.payloadBytes, check::DropReason::Corrupt);
        return;
    }

    if (sealed_[packet.src]) {
        // The source crashed and its recovery epoch sealed: whatever it
        // still had in flight (delayed injections, duplicates) must
        // never reach the protocol again.
        shard().sealedDrops += 1;
        net_.noteDrop(packet.src, packet.dst, packet.msgClass,
                      packet.payloadBytes, check::DropReason::Sealed);
        return;
    }

    if (packet.linkCtl == kLinkAck) {
        handleAck(packet);
        return;
    }
    PLUS_ASSERT(packet.linkCtl == kLinkData,
                "raw packet on a reliable channel");

    const NodeId src = packet.src;
    const NodeId dst = packet.dst;
    ReceiverChan& chan = recv_[dst][src];

    if (packet.linkSeq <= chan.delivered) {
        // Already delivered: a duplicate (injected, or a retransmit
        // racing its own ack). Suppress it and repair the sender's view.
        shard().dupSuppressed += 1;
        net_.noteDrop(src, dst, packet.msgClass, packet.payloadBytes,
                      check::DropReason::Duplicate);
        sendAck(dst, src, chan.delivered);
        return;
    }

    if (packet.linkSeq > chan.delivered + 1) {
        // A gap: park the frame so the protocol keeps seeing FIFO
        // order, and re-ack the watermark so the sender can trim.
        shard().reordered += 1;
        chan.held.emplace(packet.linkSeq,
                          Held{std::move(packet), hops, injected_at,
                               queueing});
        sendAck(dst, src, chan.delivered);
        return;
    }

    // In order: deliver, then drain any parked successors.
    chan.delivered += 1;
    net_.deliverUp(std::move(packet), hops, injected_at, queueing);
    while (!chan.held.empty() &&
           chan.held.begin()->first == chan.delivered + 1) {
        auto node = chan.held.extract(chan.held.begin());
        chan.delivered += 1;
        Held& held = node.mapped();
        net_.deliverUp(std::move(held.packet), held.hops, held.injectedAt,
                       held.queueing);
    }
    sendAck(dst, src, chan.delivered);
}

void
LinkLayer::handleAck(const Packet& ack)
{
    shard().acksReceived += 1;
    // The data channel runs ack.dst -> ack.src (acks travel backwards),
    // so this executes on the data source's own lane.
    auto it = sender_[ack.dst].find(ack.src);
    if (it == sender_[ack.dst].end()) {
        return;
    }
    SenderChan& chan = it->second;
    bool progress = false;
    Cycles sample = 0;
    auto entry = chan.unacked.begin();
    while (entry != chan.unacked.end() && entry->first <= ack.linkAck) {
        if (entry->second.attempts == 0) {
            // Karn's rule: never sample a retransmitted frame — the ack
            // could belong to either transmission.
            sample = engine_.now() - entry->second.sentAt;
        }
        engine_.cancel(entry->second.timer);
        entry = chan.unacked.erase(entry);
        progress = true;
    }
    if (sample != 0) {
        sampleRtt(ack.dst, sample);
    }
    if (progress) {
        // The channel is moving: frames behind the acked ones are very
        // likely queued, not lost. Restart their clocks so a congested
        // stretch does not read as loss.
        for (auto& [seq, pending] : chan.unacked) {
            engine_.cancel(pending.timer);
            armTimer(ack.dst, ack.src, seq, pending);
        }
    }
}

void
LinkLayer::sampleRtt(NodeId src, Cycles sample)
{
    Cycles& srtt = srtt_[src];
    Cycles& rttvar = rttvar_[src];
    if (srtt == 0) {
        srtt = sample;
        rttvar = sample / 2;
        return;
    }
    const Cycles diff = sample > srtt ? sample - srtt : srtt - sample;
    rttvar = (3 * rttvar + diff) / 4;
    srtt = (7 * srtt + sample) / 8;
}

void
LinkLayer::sendAck(NodeId from, NodeId to, std::uint32_t cumulative)
{
    Packet ack;
    ack.src = from;
    ack.dst = to;
    ack.payloadBytes = 4;
    ack.msgClass = kLinkAckClass;
    ack.linkCtl = kLinkAck;
    ack.linkAck = cumulative;
    shard().acksSent += 1;
    transmit(std::move(ack));
}

void
LinkLayer::armTimer(NodeId src, NodeId dst, std::uint32_t seq,
                    Unacked& entry)
{
    const Cycles backoff =
        rto(src) << std::min<unsigned>(entry.attempts, config_.backoffCap);
    // Pinned to the sender's lane, not the caller's: frames can be sent
    // from machine context (page-copy engine, crash-recovery replays),
    // but the timer is cancelled from ack processing on node lanes — a
    // machine-lane timer would make that a cross-window cancel. The
    // backoff is at least one RTT, so it clears the cross-lane
    // lookahead bound.
    entry.timer = engine_.scheduleForNode(
        src, backoff, [this, src, dst, seq] { onTimeout(src, dst, seq); });
}

void
LinkLayer::onTimeout(NodeId src, NodeId dst, std::uint32_t seq)
{
    SenderChan& chan = sender_[src][dst];
    auto it = chan.unacked.find(seq);
    if (it == chan.unacked.end()) {
        return; // acked while the timer event was already dispatched
    }
    Unacked& entry = it->second;
    entry.attempts += 1;
    if (config_.maxRetransmits != 0 &&
        entry.attempts > config_.maxRetransmits) {
        if (config_.recover && injector_.nodeCrashed(dst)) {
            // Fail-stop silence, not a partition: the budget exhausting
            // toward a crashed peer is the crash-detection signal.
            // Abandon the channel (recovery aborts and replays its
            // operations) and report the death instead of panicking.
            PLUS_LOG(LogComponent::Net, "link ", src, " -> ", dst,
                     " detected peer death on frame ", seq);
            dropChannel(chan);
            shard().peerDeaths += 1;
            if (peerDeath_) {
                peerDeath_(dst);
            }
            return;
        }
        if (config_.recover && injector_.nodeCrashed(src)) {
            // The sender itself is dead; its leftover timers are noise.
            dropChannel(chan);
            return;
        }
        PLUS_PANIC("reliable link ", src, " -> ", dst, " gave up on frame ",
                   seq, " after ", config_.maxRetransmits,
                   " retransmits (permanent partition?)",
                   net_.traceDumper_ ? net_.traceDumper_() : std::string());
    }
    shard().retransmits += 1;
    if (net_.telemetry_) {
        net_.telemetry_->onRetransmit(src, dst, seq, entry.attempts);
    }
    PLUS_LOG(LogComponent::Net, "retransmit ", src, " -> ", dst, " seq ",
             seq, " attempt ", entry.attempts);
    transmit(clonePacket(entry.frame));
    armTimer(src, dst, seq, entry);
}

void
LinkLayer::dropChannel(SenderChan& chan)
{
    for (auto& [seq, pending] : chan.unacked) {
        (void)seq;
        engine_.cancel(pending.timer);
    }
    chan.unacked.clear();
}

void
LinkLayer::purgeNode(NodeId dead)
{
    // Machine context only: channel state is owned by per-node lanes,
    // and machine-lane events run stop-the-world between parallel
    // windows, so this surgery races with nothing.
    for (std::size_t src = 0; src < sender_.size(); ++src) {
        auto it = sender_[src].find(dead);
        if (it != sender_[src].end()) {
            dropChannel(it->second);
            sender_[src].erase(it);
        }
    }
    // pluslint: allow(R1) -- timer cancellation is order-independent.
    for (auto& [dst, chan] : sender_[dead]) {
        (void)dst;
        dropChannel(chan);
    }
    sender_[dead].clear();
    recv_[dead].clear();
    for (std::size_t dst = 0; dst < recv_.size(); ++dst) {
        recv_[dst].erase(dead);
    }
}

void
LinkLayer::sealNode(NodeId dead)
{
    sealed_[dead] = 1;
}

std::size_t
LinkLayer::inFlight() const
{
    std::size_t total = 0;
    for (const auto& per_src : sender_) {
        // pluslint: allow(R1) -- commutative sum; order-independent.
        for (const auto& [dst, chan] : per_src) {
            (void)dst;
            total += chan.unacked.size();
        }
    }
    return total;
}

} // namespace net
} // namespace plus
