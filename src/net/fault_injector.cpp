#include "net/fault_injector.hpp"

#include "common/log.hpp"
#include "common/panic.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace plus {
namespace net {

FaultInjector::FaultInjector(sim::Engine& engine, const Topology& topology,
                             const FaultConfig& config)
    : engine_(engine), config_(config),
      statShards_(topology.nodes() + 1),
      deadNodes_(topology.nodes(), 0),
      crashedNodes_(topology.nodes(), 0)
{
    // One stream per lane (nodes plus machine context), each seeded
    // from the config seed and its lane index so streams are mutually
    // independent but fully reproducible.
    rngs_.reserve(topology.nodes() + 1);
    for (std::size_t lane = 0; lane <= topology.nodes(); ++lane) {
        rngs_.emplace_back(config.seed +
                           0x9e3779b97f4a7c15ull * (lane + 1));
    }
}

std::size_t
FaultInjector::shardIx() const
{
    const std::size_t ix = engine_.shardIndex();
    return ix < statShards_.size() ? ix : statShards_.size() - 1;
}

FaultStats
FaultInjector::stats() const
{
    FaultStats total;
    for (const StatShard& s : statShards_) {
        total.dropped += s.dropped;
        total.corrupted += s.corrupted;
        total.duplicated += s.duplicated;
        total.delayed += s.delayed;
        total.linkKills += s.linkKills;
        total.nodeKills += s.nodeKills;
        total.nodeCrashes += s.nodeCrashes;
    }
    return total;
}

Fate
FaultInjector::fateFor(const Packet& packet)
{
    FaultStats& s = shard();
    if (override_) {
        if (std::optional<Fate> forced = override_(packet)) {
            switch (*forced) {
              case Fate::Drop: s.dropped += 1; break;
              case Fate::Corrupt: s.corrupted += 1; break;
              case Fate::Duplicate: s.duplicated += 1; break;
              case Fate::Delay: s.delayed += 1; break;
              default: break;
            }
            return *forced;
        }
    }
    // One roll, banded across the four fault probabilities, so a fate
    // schedule depends only on the frame sequence, not the rate split.
    const double roll = rngs_[shardIx()].uniform();
    double band = config_.dropRate;
    if (roll < band) {
        s.dropped += 1;
        return Fate::Drop;
    }
    band += config_.corruptRate;
    if (roll < band) {
        s.corrupted += 1;
        return Fate::Corrupt;
    }
    band += config_.duplicateRate;
    if (roll < band) {
        s.duplicated += 1;
        return Fate::Duplicate;
    }
    band += config_.delayRate;
    if (roll < band) {
        s.delayed += 1;
        return Fate::Delay;
    }
    return Fate::Deliver;
}

Cycles
FaultInjector::delayFor()
{
    return rngs_[shardIx()].range(1, config_.maxDelayCycles);
}

void
FaultInjector::scheduleScript()
{
    if (scriptArmed_) {
        return;
    }
    scriptArmed_ = true;
    // Entry cycles are relative to the arming point: core::Machine arms
    // at the first run() so setup work (allocation, replication,
    // settle()) cannot consume scripted faults meant for the workload.
    const Cycles base = engine_.now();
    for (const FaultScriptEntry& entry : config_.script) {
        engine_.scheduleAt(base + entry.at, [this, entry] { apply(entry); });
    }
}

void
FaultInjector::apply(const FaultScriptEntry& entry)
{
    switch (entry.kind) {
      case FaultScriptEntry::Kind::LinkDown:
        shard().linkKills += 1;
        setLinkAlive(entry.a, entry.b, false);
        break;
      case FaultScriptEntry::Kind::LinkUp:
        setLinkAlive(entry.a, entry.b, true);
        break;
      case FaultScriptEntry::Kind::NodeDown:
        shard().nodeKills += 1;
        setNodeAlive(entry.a, false);
        break;
      case FaultScriptEntry::Kind::NodeUp:
        setNodeAlive(entry.a, true);
        break;
      case FaultScriptEntry::Kind::CrashNode:
        crashNode(entry.a);
        break;
      default:
        PLUS_PANIC("unknown fault script entry");
    }
}

void
FaultInjector::crashNode(NodeId node)
{
    PLUS_ASSERT(node < crashedNodes_.size(), "crash of unknown node ", node);
    if (crashedNodes_[node]) {
        return; // fail-stop: a node dies at most once
    }
    crashedNodes_[node] = 1;
    crashedCount_ += 1;
    shard().nodeCrashes += 1;
    deadNodes_[node] = 1;
    PLUS_LOG(LogComponent::Net, "fault: node ", node,
             " crashed (fail-stop) at cycle ", engine_.now());
    if (crashHandler_) {
        crashHandler_(node);
    }
}

void
FaultInjector::setNodeAlive(NodeId node, bool alive)
{
    PLUS_ASSERT(node < deadNodes_.size(), "fault on unknown node ", node);
    PLUS_ASSERT(!(alive && crashedNodes_[node]),
                "node ", node, " is fail-stop crashed and cannot revive");
    deadNodes_[node] = alive ? 0 : 1;
    PLUS_LOG(LogComponent::Net, "fault: node ", node,
             alive ? " revived" : " killed", " at cycle ", engine_.now());
}

void
FaultInjector::setLinkAlive(NodeId a, NodeId b, bool alive)
{
    PLUS_ASSERT(a < deadNodes_.size() && b < deadNodes_.size(),
                "fault on unknown link ", a, " <-> ", b);
    if (alive) {
        deadLinks_.erase(linkKey(a, b));
    } else {
        deadLinks_.insert(linkKey(a, b));
    }
    PLUS_LOG(LogComponent::Net, "fault: link ", a, " <-> ", b,
             alive ? " revived" : " killed", " at cycle ", engine_.now());
}

} // namespace net
} // namespace plus
