#include "net/fault_injector.hpp"

#include "common/log.hpp"
#include "common/panic.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace plus {
namespace net {

FaultInjector::FaultInjector(sim::Engine& engine, const Topology& topology,
                             const FaultConfig& config)
    : engine_(engine), config_(config), rng_(config.seed),
      deadNodes_(topology.nodes(), 0)
{
}

Fate
FaultInjector::fateFor(const Packet& packet)
{
    if (override_) {
        if (std::optional<Fate> forced = override_(packet)) {
            switch (*forced) {
              case Fate::Drop: stats_.dropped += 1; break;
              case Fate::Corrupt: stats_.corrupted += 1; break;
              case Fate::Duplicate: stats_.duplicated += 1; break;
              case Fate::Delay: stats_.delayed += 1; break;
              default: break;
            }
            return *forced;
        }
    }
    // One roll, banded across the four fault probabilities, so a fate
    // schedule depends only on the frame sequence, not the rate split.
    const double roll = rng_.uniform();
    double band = config_.dropRate;
    if (roll < band) {
        stats_.dropped += 1;
        return Fate::Drop;
    }
    band += config_.corruptRate;
    if (roll < band) {
        stats_.corrupted += 1;
        return Fate::Corrupt;
    }
    band += config_.duplicateRate;
    if (roll < band) {
        stats_.duplicated += 1;
        return Fate::Duplicate;
    }
    band += config_.delayRate;
    if (roll < band) {
        stats_.delayed += 1;
        return Fate::Delay;
    }
    return Fate::Deliver;
}

Cycles
FaultInjector::delayFor()
{
    return rng_.range(1, config_.maxDelayCycles);
}

void
FaultInjector::scheduleScript()
{
    for (const FaultScriptEntry& entry : config_.script) {
        engine_.scheduleAt(entry.at, [this, entry] { apply(entry); });
    }
}

void
FaultInjector::apply(const FaultScriptEntry& entry)
{
    switch (entry.kind) {
      case FaultScriptEntry::Kind::LinkDown:
        stats_.linkKills += 1;
        setLinkAlive(entry.a, entry.b, false);
        break;
      case FaultScriptEntry::Kind::LinkUp:
        setLinkAlive(entry.a, entry.b, true);
        break;
      case FaultScriptEntry::Kind::NodeDown:
        stats_.nodeKills += 1;
        setNodeAlive(entry.a, false);
        break;
      case FaultScriptEntry::Kind::NodeUp:
        setNodeAlive(entry.a, true);
        break;
      default:
        PLUS_PANIC("unknown fault script entry");
    }
}

void
FaultInjector::setNodeAlive(NodeId node, bool alive)
{
    PLUS_ASSERT(node < deadNodes_.size(), "fault on unknown node ", node);
    deadNodes_[node] = alive ? 0 : 1;
    PLUS_LOG(LogComponent::Net, "fault: node ", node,
             alive ? " revived" : " killed", " at cycle ", engine_.now());
}

void
FaultInjector::setLinkAlive(NodeId a, NodeId b, bool alive)
{
    PLUS_ASSERT(a < deadNodes_.size() && b < deadNodes_.size(),
                "fault on unknown link ", a, " <-> ", b);
    if (alive) {
        deadLinks_.erase(linkKey(a, b));
    } else {
        deadLinks_.insert(linkKey(a, b));
    }
    PLUS_LOG(LogComponent::Net, "fault: link ", a, " <-> ", b,
             alive ? " revived" : " killed", " at cycle ", engine_.now());
}

} // namespace net
} // namespace plus
