#include "net/network.hpp"

#include <cmath>

#include "common/log.hpp"
#include "common/panic.hpp"
#include "sim/engine.hpp"

namespace plus {
namespace net {

Network::Network(sim::Engine& engine, const Topology& topology,
                 const NetworkConfig& config)
    : engine_(engine), topology_(topology), config_(config),
      handlers_(topology.nodes())
{
}

void
Network::setDeliveryHandler(NodeId node, DeliveryHandler handler)
{
    PLUS_ASSERT(node < handlers_.size(), "handler for unknown node");
    handlers_[node] = std::move(handler);
}

Cycles
Network::serializationCycles(unsigned payload_bytes) const
{
    const double bytes = config_.headerBytes + payload_bytes;
    return static_cast<Cycles>(std::ceil(bytes / config_.bytesPerCycle));
}

void
Network::deliver(Packet packet, unsigned hops, Cycles injected_at,
                 Cycles queueing)
{
    stats_.packets += 1;
    stats_.payloadBytes += packet.payloadBytes;
    stats_.totalHops += hops;
    stats_.latency.record(
        static_cast<double>(engine_.now() - injected_at));
    stats_.queueing.record(static_cast<double>(queueing));
    if (telemetry_) {
        telemetry_->onPacketDelivered(packet.src, packet.dst,
                                      packet.msgClass, packet.payloadBytes,
                                      hops, engine_.now() - injected_at,
                                      queueing);
    }

    const NodeId dst = packet.dst;
    PLUS_ASSERT(dst < handlers_.size() && handlers_[dst],
                "no delivery handler for node ", dst);
    handlers_[dst](std::move(packet));
}

void
IdealNetwork::send(Packet packet)
{
    PLUS_ASSERT(packet.src != packet.dst, "local traffic on the network");
    const unsigned hops = topology_.distance(packet.src, packet.dst);
    const Cycles injected_at = engine_.now();
    // sim::Event takes move-only captures, so the packet rides inline
    // in the event record — no allocation per send.
    engine_.schedule(zeroLoadLatency(hops),
                     [this, p = std::move(packet), hops,
                      injected_at]() mutable {
                         deliver(std::move(p), hops, injected_at, 0);
                     });
}

MeshNetwork::MeshNetwork(sim::Engine& engine, const Topology& topology,
                         const NetworkConfig& config)
    : Network(engine, topology, config)
{
}

MeshNetwork::Link&
MeshNetwork::linkBetween(NodeId from, NodeId to)
{
    PLUS_ASSERT(topology_.distance(from, to) == 1,
                "link between non-adjacent nodes ", from, " and ", to);
    const std::uint64_t key =
        static_cast<std::uint64_t>(from) * topology_.nodes() + to;
    return links_[key];
}

MeshNetwork::Transit*
MeshNetwork::acquireTransit()
{
    if (freeTransits_.empty()) {
        transitPool_.push_back(std::make_unique<Transit>());
        return transitPool_.back().get();
    }
    Transit* transit = freeTransits_.back();
    freeTransits_.pop_back();
    return transit;
}

void
MeshNetwork::releaseTransit(Transit* transit)
{
    transit->packet = Packet{};
    freeTransits_.push_back(transit);
}

void
MeshNetwork::send(Packet packet)
{
    PLUS_ASSERT(packet.src != packet.dst, "local traffic on the network");
    Transit* transit = acquireTransit();
    transit->injectedAt = engine_.now();
    transit->queueing = 0;
    transit->hops = 0;
    transit->at = packet.src;
    transit->packet = std::move(packet);
    // The fixed overhead covers the network interface and first-router
    // setup; the head then advances hop by hop.
    engine_.schedule(config_.fixedCycles,
                     [this, transit] { hop(transit); });
}

void
MeshNetwork::hop(Transit* transit)
{
    const NodeId dst = transit->packet.dst;
    if (transit->at == dst) {
        Packet packet = std::move(transit->packet);
        const unsigned hops = transit->hops;
        const Cycles injected_at = transit->injectedAt;
        const Cycles queueing = transit->queueing;
        // Recycle before delivering: the handler may send() again.
        releaseTransit(transit);
        deliver(std::move(packet), hops, injected_at, queueing);
        return;
    }

    const NodeId next = topology_.nextHop(transit->at, dst);
    Link& link = linkBetween(transit->at, next);
    const Cycles now = engine_.now();
    const Cycles start = std::max(now, link.freeAt);
    const Cycles wait = start - now;
    const Cycles serialization =
        serializationCycles(transit->packet.payloadBytes);
    link.freeAt = start + serialization;
    link.busyCycles += serialization;
    if (telemetry_) {
        telemetry_->onLinkBusy(transit->at, next,
                               transit->packet.msgClass,
                               transit->packet.payloadBytes, start,
                               serialization);
    }

    transit->queueing += wait;
    transit->hops += 1;
    transit->at = next;
    // Cut-through: the head moves on after the router latency; the tail
    // occupies the link for the serialization time behind it.
    engine_.schedule(wait + config_.perHopCycles,
                     [this, transit] { hop(transit); });
}

Cycles
MeshNetwork::maxLinkBusyCycles() const
{
    Cycles best = 0;
    for (const auto& [key, link] : links_) {
        (void)key;
        best = std::max(best, link.busyCycles);
    }
    return best;
}

std::unique_ptr<Network>
makeNetwork(sim::Engine& engine, const Topology& topology,
            const NetworkConfig& config)
{
    if (config.ideal) {
        return std::make_unique<IdealNetwork>(engine, topology, config);
    }
    return std::make_unique<MeshNetwork>(engine, topology, config);
}

} // namespace net
} // namespace plus
