#include "net/network.hpp"

#include <cmath>

#include "common/log.hpp"
#include "common/panic.hpp"
#include "net/fault_injector.hpp"
#include "net/reliable_link.hpp"
#include "sim/engine.hpp"
#include "telemetry/prof.hpp"

namespace plus {
namespace net {

Network::Network(sim::Engine& engine, const Topology& topology,
                 const NetworkConfig& config)
    : engine_(engine), topology_(topology), config_(config),
      statShards_(topology.nodes() + 1), handlers_(topology.nodes())
{
}

Network::~Network() = default;

std::size_t
Network::shardIx() const
{
    // An unconfigured engine (unit tests driving a Network directly)
    // reports machine context with nodes() == 0; clamp into our shards.
    const std::size_t ix = engine_.shardIndex();
    return ix < statShards_.size() ? ix : statShards_.size() - 1;
}

NetworkStats
Network::stats() const
{
    NetworkStats total;
    for (const StatShard& s : statShards_) {
        total.packets += s.packets;
        total.payloadBytes += s.payloadBytes;
        total.totalHops += s.totalHops;
        total.dropped += s.dropped;
        total.backpressureStalls += s.backpressureStalls;
    }
    return total;
}

void
Network::setDeliveryHandler(NodeId node, DeliveryHandler handler)
{
    PLUS_ASSERT(node < handlers_.size(), "handler for unknown node");
    handlers_[node] = std::move(handler);
}

Cycles
Network::serializationCycles(unsigned payload_bytes) const
{
    const double bytes = config_.headerBytes + payload_bytes;
    return static_cast<Cycles>(std::ceil(bytes / config_.bytesPerCycle));
}

void
Network::enableFaults(const FaultConfig& fault, bool arm_script)
{
    PLUS_ASSERT(fault.enabled, "enableFaults with a disabled config");
    PLUS_ASSERT(!injector_, "fault injection enabled twice");
    PLUS_ASSERT(stats().packets == 0,
                "enableFaults must precede all traffic");
    injector_ = std::make_unique<FaultInjector>(engine_, topology_, fault);
    link_ = std::make_unique<LinkLayer>(*this, engine_, *injector_, fault);
    if (arm_script) {
        injector_->scheduleScript();
    }
}

void
Network::send(Packet packet)
{
    PLUS_ASSERT(packet.src != packet.dst, "local traffic on the network");
    if (link_) {
        link_->sendData(std::move(packet));
        return;
    }
    inject(std::move(packet));
}

void
Network::deliver(Packet packet, unsigned hops, Cycles injected_at,
                 Cycles queueing)
{
    // A dead destination router consumes nothing (mid-flight kills; the
    // reliable layer's retransmission recovers the frame on revival).
    if (injector_ && !injector_->nodeAlive(packet.dst)) {
        noteDrop(packet.src, packet.dst, packet.msgClass,
                 packet.payloadBytes, check::DropReason::NodeDown);
        return;
    }
    if (link_) {
        link_->receive(std::move(packet), hops, injected_at, queueing);
        return;
    }
    deliverUp(std::move(packet), hops, injected_at, queueing);
}

void
Network::deliverUp(Packet packet, unsigned hops, Cycles injected_at,
                   Cycles queueing)
{
    const prof::ScopedPhase prof_scope(prof::Phase::NetDeliver);
    NetworkStats& s = shard();
    s.packets += 1;
    s.payloadBytes += packet.payloadBytes;
    s.totalHops += hops;
    // The histograms' running sums are order-sensitive (floating-point
    // accumulation); defer keeps the record stream in global key order
    // under the parallel backend and is an inline call otherwise.
    const Cycles latency = engine_.now() - injected_at;
    engine_.defer([this, latency, queueing] {
        latency_.record(static_cast<double>(latency));
        queueing_.record(static_cast<double>(queueing));
    });
    if (telemetry_) {
        telemetry_->onPacketDelivered(packet.src, packet.dst,
                                      packet.msgClass, packet.payloadBytes,
                                      hops, latency, queueing);
    }

    const NodeId dst = packet.dst;
    PLUS_ASSERT(dst < handlers_.size() && handlers_[dst],
                "no delivery handler for node ", dst);
    handlers_[dst](std::move(packet));
}

void
Network::noteDrop(NodeId src, NodeId dst, std::uint8_t msg_class,
                  unsigned bytes, check::DropReason reason)
{
    shard().dropped += 1;
    PLUS_LOG(LogComponent::Net, "drop ", src, " -> ", dst, " (",
             check::toString(reason), ")");
    if (telemetry_) {
        telemetry_->onPacketDropped(src, dst, msg_class, bytes, reason);
    }
}

void
IdealNetwork::inject(Packet packet)
{
    const Cycles latency =
        zeroLoadLatency(topology_.distance(packet.src, packet.dst));
    const Cycles injected_at = engine_.now();
    const NodeId dst = packet.dst;
    // sim::Event takes move-only captures, so the packet rides inline
    // in the event record — no allocation per send. hops is recomputed
    // at delivery to keep the capture within the inline budget.
    // Delivery executes on the destination's lane; latency >=
    // zeroLoadLatency(1) == minCrossNodeLatency() keeps the schedule
    // legal under the parallel backend's lookahead.
    engine_.scheduleForNode(dst, latency, [this, p = std::move(packet),
                                           injected_at]() mutable {
        const unsigned hops = topology_.distance(p.src, p.dst);
        deliver(std::move(p), hops, injected_at, 0);
    });
}

MeshNetwork::MeshNetwork(sim::Engine& engine, const Topology& topology,
                         const NetworkConfig& config)
    : Network(engine, topology, config),
      transitShards_(topology.nodes() + 1)
{
    // Populate every directed adjacent link up front: the map is never
    // mutated again, so concurrent hop-time lookups are const finds and
    // each Link is written only from its source router's lane.
    for (NodeId from = 0; from < topology.nodes(); ++from) {
        for (NodeId to = 0; to < topology.nodes(); ++to) {
            if (from != to && topology.distance(from, to) == 1) {
                links_.emplace(static_cast<std::uint64_t>(from) *
                                   topology.nodes() + to,
                               Link{});
            }
        }
    }
}

MeshNetwork::Link&
MeshNetwork::linkBetween(NodeId from, NodeId to)
{
    const std::uint64_t key =
        static_cast<std::uint64_t>(from) * topology_.nodes() + to;
    const auto it = links_.find(key);
    PLUS_ASSERT(it != links_.end(), "link between non-adjacent nodes ",
                from, " and ", to);
    return it->second;
}

MeshNetwork::Transit*
MeshNetwork::acquireTransit()
{
    TransitShard& shard = transitShards_[shardIx()];
    if (shard.free.empty()) {
        shard.pool.push_back(std::make_unique<Transit>());
        return shard.pool.back().get();
    }
    Transit* transit = shard.free.back();
    shard.free.pop_back();
    return transit;
}

void
MeshNetwork::releaseTransit(Transit* transit)
{
    transit->packet = Packet{};
    transitShards_[shardIx()].free.push_back(transit);
}

void
MeshNetwork::inject(Packet packet)
{
    Transit* transit = acquireTransit();
    transit->injectedAt = engine_.now();
    transit->queueing = 0;
    transit->hops = 0;
    transit->at = packet.src;
    transit->packet = std::move(packet);
    // The fixed overhead covers the network interface and first-router
    // setup; the head then advances hop by hop.
    engine_.schedule(config_.fixedCycles,
                     [this, transit] { hop(transit); });
}

void
MeshNetwork::hop(Transit* transit)
{
    const NodeId dst = transit->packet.dst;
    if (transit->at == dst) {
        Packet packet = std::move(transit->packet);
        const unsigned hops = transit->hops;
        const Cycles injected_at = transit->injectedAt;
        const Cycles queueing = transit->queueing;
        // Recycle before delivering: the handler may send() again.
        releaseTransit(transit);
        deliver(std::move(packet), hops, injected_at, queueing);
        return;
    }

    const NodeId next = topology_.nextHop(transit->at, dst);

    // Faults: a packet already in flight dies at a killed link or a
    // dead router, like the real fabric; the reliable layer's timers
    // recover it once the path heals.
    if (injector_ && (!injector_->linkAlive(transit->at, next) ||
                      !injector_->nodeAlive(transit->at) ||
                      !injector_->nodeAlive(next))) {
        const check::DropReason reason =
            injector_->linkAlive(transit->at, next)
                ? check::DropReason::NodeDown
                : check::DropReason::LinkDown;
        noteDrop(transit->at, next, transit->packet.msgClass,
                 transit->packet.payloadBytes, reason);
        releaseTransit(transit);
        return;
    }

    Link& link = linkBetween(transit->at, next);
    const Cycles now = engine_.now();
    const Cycles serialization =
        serializationCycles(transit->packet.payloadBytes);

    // Finite router input buffers: when the outgoing link's backlog
    // exceeds the buffer, the head stalls in place and retries after
    // one serialization quantum instead of reserving the link — the
    // Section 2.5 "flooded with update requests" effect as real
    // backpressure. Off (0) preserves the unbounded seed behavior.
    if (config_.routerBufferPackets != 0 && link.freeAt > now &&
        link.freeAt - now >
            config_.routerBufferPackets * serialization) {
        shard().backpressureStalls += 1;
        transit->queueing += serialization;
        engine_.schedule(serialization, [this, transit] { hop(transit); });
        return;
    }

    const Cycles start = std::max(now, link.freeAt);
    const Cycles wait = start - now;
    link.freeAt = start + serialization;
    link.busyCycles += serialization;
    if (telemetry_) {
        telemetry_->onLinkBusy(transit->at, next,
                               transit->packet.msgClass,
                               transit->packet.payloadBytes, start,
                               serialization);
    }

    transit->queueing += wait;
    transit->hops += 1;
    transit->at = next;
    // Cut-through: the head moves on after the router latency; the tail
    // occupies the link for the serialization time behind it. The next
    // hop executes on @p next's lane; wait + perHopCycles >=
    // minCrossNodeLatency() keeps the schedule inside the lookahead.
    engine_.scheduleForNode(next, wait + config_.perHopCycles,
                            [this, transit] { hop(transit); });
}

Cycles
MeshNetwork::maxLinkBusyCycles() const
{
    Cycles best = 0;
    // pluslint: allow(R1) -- max over all values; order-independent.
    for (const auto& [key, link] : links_) {
        (void)key;
        best = std::max(best, link.busyCycles);
    }
    return best;
}

std::unique_ptr<Network>
makeNetwork(sim::Engine& engine, const Topology& topology,
            const NetworkConfig& config)
{
    if (config.ideal) {
        return std::make_unique<IdealNetwork>(engine, topology, config);
    }
    return std::make_unique<MeshNetwork>(engine, topology, config);
}

} // namespace net
} // namespace plus
