/**
 * @file
 * Link-level reliable delivery over a lossy fabric.
 *
 * Armed together with net::FaultInjector (Network::enableFaults), the
 * LinkLayer makes every Network::send() survive injected loss without
 * the coherence managers noticing — the protocol's FIFO-per-(src,dst)
 * assumption (update chains, FrameFlush ordering) keeps holding:
 *
 *  - Sender side: each (src,dst) channel numbers data frames with a
 *    monotonically increasing sequence, keeps a clone of every
 *    unacknowledged frame, and retransmits on timeout with exponential
 *    backoff (rto << min(attempts, backoffCap)). The timeout adapts to
 *    the measured round trip (Jacobson srtt + 4 * rttvar, floored at
 *    the configured/derived base), and ack progress on a channel
 *    resets the surviving frames' timers — under congestion the
 *    round trip can exceed any static timeout by orders of magnitude,
 *    and without both measures nearly every frame would retransmit
 *    spuriously. A finite retransmit budget turns a permanent
 *    partition into a panic with the event trace instead of a silent
 *    hang (0 = retry forever and let the watchdog diagnose it).
 *  - Receiver side: frames with a CRC cleared by the injector are
 *    dropped (indistinguishable from loss); duplicates (seq <= the
 *    delivered watermark) are suppressed and re-acked; out-of-order
 *    frames wait in a reorder buffer so the protocol only ever sees
 *    the original send order. Acknowledgements are cumulative, so a
 *    lost ack is repaired by any later one.
 *
 * Ack frames (Packet::linkCtl == kLinkAck) are themselves unsequenced
 * and unreliable — cumulative acking makes their loss harmless — and
 * invisible to protocol statistics: NetworkStats and the delivery
 * handlers only ever observe in-order data frames, exactly once.
 */

#ifndef PLUS_NET_RELIABLE_LINK_HPP_
#define PLUS_NET_RELIABLE_LINK_HPP_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "net/network.hpp"

namespace plus {
namespace sim {
class Engine;
} // namespace sim

namespace net {

class FaultInjector;

/**
 * Reliable-layer counters (exported as net.link.* metrics). Lane-
 * sharded internally — sender-side counters bump on the source node's
 * lane, receiver-side ones on the destination's — and summed by
 * LinkLayer::stats(), so totals are exact in every engine backend
 * without atomics.
 */
struct LinkStats {
    std::uint64_t dataFrames = 0;    ///< sequenced frames first-sent
    std::uint64_t retransmits = 0;   ///< timeout-driven re-sends
    std::uint64_t acksSent = 0;      ///< cumulative acks emitted
    std::uint64_t acksReceived = 0;  ///< acks that reached the sender
    std::uint64_t dupSuppressed = 0; ///< duplicate data frames discarded
    std::uint64_t crcDrops = 0;      ///< frames dropped for a bad CRC
    std::uint64_t reordered = 0;     ///< frames parked out of order
    std::uint64_t peerDeaths = 0;    ///< budget exhaustions reported as crashes
    std::uint64_t sealedDrops = 0;   ///< frames from sealed crashed sources
};

/** Per-(src,dst) sequencing, ack/retransmit, dedup (see file comment). */
class LinkLayer
{
  public:
    LinkLayer(Network& network, sim::Engine& engine,
              FaultInjector& injector, const FaultConfig& config);

    /** Sequence, remember, and transmit a protocol packet. */
    void sendData(Packet packet);

    /** Physical arrival of any frame (from Network::deliver). */
    void receive(Packet packet, unsigned hops, Cycles injected_at,
                 Cycles queueing);

    /** Unacknowledged frames across all channels (0 = all delivered). */
    std::size_t inFlight() const;

    /** Aggregate counters: the sum over all lane shards. */
    LinkStats stats() const;

    /** The base retransmit timeout in use (config or latency-derived). */
    Cycles retransmitTimeout() const { return timeout_; }

    /**
     * Install the sink for peer-death signals. With FaultConfig::recover
     * armed, a retransmit budget exhausted toward a fail-stop-crashed
     * destination reports the death here instead of panicking (see
     * onTimeout); core::Machine wires this to proto::RecoveryManager.
     * The handler may fire more than once per dead node (every channel
     * toward it can exhaust) — the sink must be idempotent.
     */
    void
    setPeerDeathHandler(std::function<void(NodeId)> fn)
    {
        peerDeath_ = std::move(fn);
    }

    /**
     * Tear down every channel to or from @p dead: cancel retransmit
     * timers, drop unacknowledged clones and parked reorder-buffer
     * frames. Machine context only — the channels are owned by per-node
     * lanes, and machine-lane events run stop-the-world between
     * parallel windows.
     */
    void purgeNode(NodeId dead);

    /**
     * Seal @p dead after its recovery epoch: every frame still in
     * flight from it (delayed injections, duplicates) is dropped at the
     * receiver, so no message from a crashed node is ever processed
     * post-epoch (the checker's crashed-source invariant).
     */
    void sealNode(NodeId dead);

    /**
     * The adaptive timeout currently applied to frames @p src sends.
     * The RTT estimate is per source node: it is only ever updated on
     * the source's own lane, which keeps it race-free under the
     * parallel backend.
     */
    Cycles
    rto(NodeId src) const
    {
        return srtt_[src] == 0
                   ? timeout_
                   : std::max(timeout_, srtt_[src] + 4 * rttvar_[src]);
    }

  private:
    /** One unacknowledged frame awaiting its cumulative ack. */
    struct Unacked {
        Packet frame; ///< retransmittable clone
        unsigned attempts = 0;
        Cycles sentAt = 0;       ///< first transmission (RTT sampling)
        std::uint64_t timer = 0; ///< sim::EventId of the pending timeout
    };

    /** Sender half of one (src,dst) channel. */
    struct SenderChan {
        std::uint32_t nextSeq = 1;
        std::map<std::uint32_t, Unacked> unacked; ///< ordered by seq
    };

    /** A frame parked until the sequence gap before it fills. */
    struct Held {
        Packet packet;
        unsigned hops = 0;
        Cycles injectedAt = 0;
        Cycles queueing = 0;
    };

    /** Receiver half of one (src,dst) channel. */
    struct ReceiverChan {
        std::uint32_t delivered = 0; ///< in-order watermark
        std::map<std::uint32_t, Held> held;
    };

    /** Counter shards, padded against false sharing between lanes. */
    struct alignas(64) StatShard : LinkStats {
    };

    /** Deep-copy @p packet; panics on an uncloneable payload. */
    Packet clonePacket(const Packet& packet) const;

    /** Apply the injector's fate and hand the frame to the model. */
    void transmit(Packet packet);

    void handleAck(const Packet& ack);
    void sendAck(NodeId from, NodeId to, std::uint32_t cumulative);
    void onTimeout(NodeId src, NodeId dst, std::uint32_t seq);

    /** Cancel every pending timer in @p chan and forget its frames. */
    void dropChannel(SenderChan& chan);
    void armTimer(NodeId src, NodeId dst, std::uint32_t seq,
                  Unacked& entry);

    /** Fold one round-trip sample into @p src's srtt/rttvar estimate. */
    void sampleRtt(NodeId src, Cycles sample);

    /** The executing lane's shard index (last shard = machine). */
    std::size_t shardIx() const;
    LinkStats& shard() { return statShards_[shardIx()]; }

    Network& net_;
    sim::Engine& engine_;
    FaultInjector& injector_;
    FaultConfig config_;
    Cycles timeout_ = 0;
    /** Per-source smoothed round trip and mean deviation (Jacobson). */
    std::vector<Cycles> srtt_;
    std::vector<Cycles> rttvar_;
    std::vector<StatShard> statShards_;
    /**
     * Channel state sliced by the lane that owns it: sender_[src][dst]
     * is touched by sendData, timeouts and ack handling, all of which
     * execute on @p src's lane; recv_[dst][src] only by arrivals on
     * @p dst's lane. No channel structure is ever shared across lanes.
     */
    std::vector<std::unordered_map<NodeId, SenderChan>> sender_;
    std::vector<std::unordered_map<NodeId, ReceiverChan>> recv_;
    /** Crashed nodes whose recovery epoch has sealed (receive drops). */
    std::vector<char> sealed_;
    std::function<void(NodeId)> peerDeath_;
};

} // namespace net
} // namespace plus

#endif // PLUS_NET_RELIABLE_LINK_HPP_
