/**
 * @file
 * 2-D mesh topology: node coordinates, distances and dimension-order
 * routing, matching the Caltech mesh router used by the PLUS prototype
 * (five port pairs: processor + four mesh neighbours).
 */

#ifndef PLUS_NET_TOPOLOGY_HPP_
#define PLUS_NET_TOPOLOGY_HPP_

#include <vector>

#include "common/panic.hpp"
#include "common/types.hpp"

namespace plus {
namespace net {

/** Mesh coordinate. */
struct Coord {
    unsigned x = 0;
    unsigned y = 0;
    bool operator==(const Coord&) const = default;
};

/**
 * Rectangular mesh that may be partially filled on the last row (node
 * count need not be a perfect rectangle).
 */
class Topology
{
  public:
    Topology(unsigned nodes, unsigned width, unsigned height)
        : nodes_(nodes), width_(width), height_(height)
    {
        PLUS_ASSERT(width_ > 0 && height_ > 0, "degenerate mesh");
        PLUS_ASSERT(static_cast<std::uint64_t>(width_) * height_ >= nodes_,
                    "mesh smaller than node count");
    }

    unsigned nodes() const { return nodes_; }
    unsigned width() const { return width_; }
    unsigned height() const { return height_; }

    Coord
    coordOf(NodeId node) const
    {
        PLUS_ASSERT(node < nodes_, "node ", node, " out of range");
        return Coord{node % width_, node / width_};
    }

    NodeId
    nodeAt(Coord c) const
    {
        const NodeId id = c.y * width_ + c.x;
        PLUS_ASSERT(c.x < width_ && id < nodes_, "coord off mesh");
        return id;
    }

    /** Manhattan distance in hops. */
    unsigned
    distance(NodeId a, NodeId b) const
    {
        const Coord ca = coordOf(a);
        const Coord cb = coordOf(b);
        const unsigned dx = ca.x > cb.x ? ca.x - cb.x : cb.x - ca.x;
        const unsigned dy = ca.y > cb.y ? ca.y - cb.y : cb.y - ca.y;
        return dx + dy;
    }

    /**
     * Dimension-order (X then Y) next hop from @p at toward @p dst.
     * On a partially filled last row the X-first hop may not exist; the
     * route then detours in Y first (interior rows are always full, and
     * the destination's row always contains the destination's column,
     * so the detour stays minimal).
     * @pre at != dst.
     */
    NodeId
    nextHop(NodeId at, NodeId dst) const
    {
        PLUS_ASSERT(at != dst, "nextHop at destination");
        const Coord c = coordOf(at);
        const Coord d = coordOf(dst);
        if (c.x != d.x) {
            Coord step = c;
            step.x += (d.x > c.x) ? 1 : -1;
            if (exists(step)) {
                return nodeAt(step);
            }
        }
        Coord step = c;
        PLUS_ASSERT(c.y != d.y, "partial-row route with no Y way out");
        step.y += (d.y > c.y) ? 1 : -1;
        return nodeAt(step);
    }

    /** True if a coordinate names an existing node. */
    bool
    exists(Coord c) const
    {
        return c.x < width_ && c.y < height_ &&
               c.y * width_ + c.x < nodes_;
    }

    /** Full dimension-order route, excluding @p src, including @p dst. */
    std::vector<NodeId>
    route(NodeId src, NodeId dst) const
    {
        std::vector<NodeId> path;
        NodeId at = src;
        while (at != dst) {
            at = nextHop(at, dst);
            path.push_back(at);
        }
        return path;
    }

  private:
    unsigned nodes_;
    unsigned width_;
    unsigned height_;
};

} // namespace net
} // namespace plus

#endif // PLUS_NET_TOPOLOGY_HPP_
