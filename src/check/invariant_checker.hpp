/**
 * @file
 * Protocol-invariant checker: validates, on every instrumented event,
 * the ordering rules PLUS's correctness rests on (PAPER.md Sections 2.3
 * and 3.1):
 *
 *  - every write takes effect at the master copy before any replica;
 *  - a chain's effects walk the copy-list in order, with no skipped and
 *    no twice-updated copies;
 *  - a pending-write entry retires exactly once, and only after the last
 *    copy in the list acknowledged (or, for an interlocked operation with
 *    no memory effect, immediately);
 *  - a processor's read of a location with an in-flight write by the same
 *    processor is served only after that write completes;
 *  - a blocking fence completes only on an empty pending-writes cache.
 *
 * Any violation panics (PanicError) with the recent event history.
 *
 * Copy-list mutations by the OS (replication, deletion, migration) are
 * legal while chains are in flight; the checker tracks a generation
 * counter per page and relaxes the strict order check — but never the
 * master-first, no-duplicate or retire-once checks — for chains that
 * overlap a mutation.
 *
 * The checker is parameterized by the coherence protocol (setProtocol).
 * The chain-traversal invariants above hold under both protocols (an
 * invalidation chain walks the copy-list exactly like an update chain).
 * Under write-invalidate the checker additionally shadows per-copy word
 * validity from the onWordInvalidated/onWordRevalidated hooks and
 * enforces: no read is ever served from an invalidated word of a copy
 * (no-stale-read), and a chain stop at a non-master copy invalidates
 * rather than applies a value (single-writer: only the master holds
 * written data until re-fetched). Under write-update the invalidate-only
 * hooks themselves are violations — that protocol never invalidates.
 */

#ifndef PLUS_CHECK_INVARIANT_CHECKER_HPP_
#define PLUS_CHECK_INVARIANT_CHECKER_HPP_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/hooks.hpp"
#include "check/trace.hpp"
#include "common/types.hpp"

namespace plus {
namespace check {

/**
 * Which coherence protocol's invariants to enforce. Mirrors the resolved
 * plus::CoherenceProtocol; kept as a separate enum so check/ stays free
 * of the config layer.
 */
enum class ProtocolMode : std::uint8_t {
    WriteUpdate,
    WriteInvalidate,
};

/** Checks the protocol ordering invariants; see file comment. */
class InvariantChecker
{
  public:
    using Tag = std::uint32_t;

    /** Resolve a page's current copy-list (null if the page is gone). */
    using CopyListResolver =
        std::function<const mem::CopyList*(Vpn)>;

    explicit InvariantChecker(EventTrace* trace);

    void setCopyListResolver(CopyListResolver resolver)
    {
        resolve_ = std::move(resolver);
    }

    /** Select the invariant set to enforce (default: write-update). */
    void setProtocol(ProtocolMode mode) { mode_ = mode; }

    ProtocolMode protocol() const { return mode_; }

    /** The OS mutated the copy-list of @p vpn (splice, reorder, ...). */
    void copyListChanged(Vpn vpn);

    // --- recovery epochs --------------------------------------------------

    /** Node @p node fail-stop crashed (machine context, crash cycle). */
    void nodeCrashed(NodeId node);

    /**
     * Crash recovery for @p dead completed and its epoch @p epoch
     * sealed: from here on, processing any message it sent is fatal
     * (the crashed-source invariant, checked by messageProcessed).
     */
    void epochSealed(NodeId dead, std::uint64_t epoch);

    /** Recovery epochs sealed so far (0 = no crash recovered yet). */
    std::uint64_t epoch() const { return epoch_; }

    // --- event entry points (mirroring check::Observer) -------------------

    void pendingInsert(NodeId node, Tag tag, Vpn vpn, Addr word_offset);
    void writeIssued(NodeId node, Tag tag, Vpn vpn, Addr word_offset,
                     bool from_rmw);
    void pendingComplete(NodeId node, Tag tag);
    void pendingAborted(NodeId node, Tag tag, bool retried);
    void messageProcessed(NodeId src, NodeId dst, std::uint8_t msg_class);
    void chainApplied(ChainId chain, PhysPage copy, Vpn vpn,
                      Addr word_offset, unsigned words, NodeId originator,
                      Tag tag, bool tracked, bool at_master);
    void fenceComplete(NodeId node, bool pending_empty);
    void readServed(NodeId node, Vpn vpn, Addr word_offset);
    void copyListMutated(const mem::CopyList& list, const char* op);
    void wordInvalidated(NodeId node, Vpn vpn, Addr word_offset);
    void wordRevalidated(NodeId node, Vpn vpn, Addr word_offset);
    void localValueServed(NodeId node, Vpn vpn, Addr word_offset);

    // --- diagnostics ------------------------------------------------------

    /** Pending-write entries retired so far. */
    std::uint64_t writesRetired() const { return retired_; }

    /** Chains whose full list walk was verified. */
    std::uint64_t chainsCompleted() const { return chainsCompleted_; }

    /** In-flight operations crash recovery aborted or re-dispatched. */
    std::uint64_t opsAborted() const { return aborted_; }

    /** Entries currently in flight across all nodes (checker view). */
    std::uint64_t writesInFlight() const;

  private:
    struct Entry {
        Vpn vpn = 0;
        Addr wordOffset = 0;
        bool fromRmw = false;
        ChainId chain = 0;
        bool chainDone = false;
        /**
         * Crash recovery touched this entry (force-retire of a lost
         * page, or abort-and-retry against a repaired copy-list); the
         * retire-order check is relaxed for it, never retire-once.
         */
        bool aborted = false;
    };

    struct Chain {
        Vpn vpn = 0;
        NodeId originator = kInvalidNode;
        Tag tag = 0;
        bool tracked = false;
        /**
         * The chain belongs to (or overlaps) a crash-recovery epoch:
         * its originator's pending entry may retire before the walk
         * finishes, so an ownerless tail is tolerated.
         */
        bool orphaned = false;
        PhysPage lastCopy;
        std::uint64_t genAtStart = 0;
        std::vector<PhysPage> visited;
    };

    [[noreturn]] void violation(const std::string& message) const
    {
        trace_->violation(message);
    }

    std::uint64_t generation(Vpn vpn) const;
    const mem::CopyList* listOf(Vpn vpn) const;

    EventTrace* trace_;
    CopyListResolver resolve_;

    /** In-flight pending-write entries, per node, keyed by tag. */
    std::unordered_map<NodeId, std::unordered_map<Tag, Entry>> entries_;
    /** Open propagation chains by chain id. */
    std::unordered_map<ChainId, Chain> chains_;
    /** Copy-list mutation counters per page. */
    std::unordered_map<Vpn, std::uint64_t> generations_;

    ProtocolMode mode_ = ProtocolMode::WriteUpdate;
    /**
     * Write-invalidate shadow validity: word offsets currently invalid
     * at each node's copy of each page, maintained purely from the
     * onWordInvalidated/onWordRevalidated hooks (never from the copy's
     * memory, so a protocol bug cannot hide from the check).
     */
    std::unordered_map<NodeId,
                       std::unordered_map<Vpn, std::unordered_set<Addr>>>
        invalidWords_;

    /** Nodes reported fail-stop crashed (nodeCrashed). */
    std::unordered_set<NodeId> crashedNodes_;
    /** Crashed nodes whose recovery epoch sealed (see epochSealed). */
    std::unordered_set<NodeId> sealedNodes_;
    std::uint64_t epoch_ = 0;

    std::uint64_t retired_ = 0;
    std::uint64_t chainsCompleted_ = 0;
    std::uint64_t aborted_ = 0;
};

} // namespace check
} // namespace plus

#endif // PLUS_CHECK_INVARIANT_CHECKER_HPP_
