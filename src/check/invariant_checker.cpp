#include "check/invariant_checker.hpp"

#include <algorithm>

#include "common/panic.hpp"
#include "mem/copy_list.hpp"

namespace plus {
namespace check {

namespace {

using detail::concat;

} // namespace

InvariantChecker::InvariantChecker(EventTrace* trace) : trace_(trace)
{
    PLUS_ASSERT(trace_, "invariant checker needs an event trace");
}

std::uint64_t
InvariantChecker::generation(Vpn vpn) const
{
    auto it = generations_.find(vpn);
    return it == generations_.end() ? 0 : it->second;
}

const mem::CopyList*
InvariantChecker::listOf(Vpn vpn) const
{
    return resolve_ ? resolve_(vpn) : nullptr;
}

void
InvariantChecker::copyListChanged(Vpn vpn)
{
    generations_[vpn] += 1;
}

void
InvariantChecker::nodeCrashed(NodeId node)
{
    crashedNodes_.insert(node);
}

void
InvariantChecker::epochSealed(NodeId dead, std::uint64_t epoch)
{
    if (crashedNodes_.find(dead) == crashedNodes_.end()) {
        violation(concat("recovery epoch ", epoch, " sealed for n", dead,
                         " which never crashed"));
    }
    sealedNodes_.insert(dead);
    epoch_ = epoch;

    // Write off the dead node's own protocol state: its pending entries
    // can never retire (acks to it are dropped), and chains it
    // originated may finish their walk with no owner. Purging here is
    // what lets survivors reach writesInFlight() == 0 after recovery.
    auto it = entries_.find(dead);
    if (it != entries_.end()) {
        entries_.erase(it);
    }
    // pluslint: allow(R1) -- order-independent flagging; every chain is
    // visited exactly once and the flag writes commute.
    for (auto& [id, chain] : chains_) {
        if (chain.originator == dead) {
            chain.orphaned = true;
        }
    }
}

void
InvariantChecker::messageProcessed(NodeId src, NodeId dst,
                                   std::uint8_t msg_class)
{
    if (!sealedNodes_.empty() &&
        sealedNodes_.find(src) != sealedNodes_.end()) {
        violation(concat("n", dst, " processed a message of class ",
                         static_cast<unsigned>(msg_class),
                         " from crashed node n", src,
                         " after its recovery epoch sealed"));
    }
}

std::uint64_t
InvariantChecker::writesInFlight() const
{
    std::uint64_t total = 0;
    // pluslint: allow(R1) -- commutative sum; the visit order cannot
    // reach the total.
    for (const auto& [node, entries] : entries_) {
        (void)node;
        total += entries.size();
    }
    return total;
}

void
InvariantChecker::pendingInsert(NodeId node, Tag tag, Vpn vpn,
                                Addr word_offset)
{
    auto [it, inserted] = entries_[node].emplace(
        tag, Entry{vpn, word_offset, false, 0, false});
    (void)it;
    if (!inserted) {
        violation(concat("node ", node, " re-used in-flight write tag ",
                         tag));
    }
}

void
InvariantChecker::writeIssued(NodeId node, Tag tag, Vpn vpn,
                              Addr word_offset, bool from_rmw)
{
    auto nit = entries_.find(node);
    auto it = nit == entries_.end() ? decltype(nit->second.begin()){}
                                    : nit->second.find(tag);
    if (nit == entries_.end() || it == nit->second.end()) {
        violation(concat("node ", node, " issued write tag ", tag,
                         " without a pending-writes entry"));
    }
    if (it->second.vpn != vpn || it->second.wordOffset != word_offset) {
        violation(concat("node ", node, " write tag ", tag,
                         " issued for a different address than its "
                         "pending-writes entry"));
    }
    it->second.fromRmw = from_rmw;
}

void
InvariantChecker::chainApplied(ChainId chain, PhysPage copy, Vpn vpn,
                               Addr word_offset, unsigned words,
                               NodeId originator, Tag tag, bool tracked,
                               bool at_master)
{
    (void)word_offset;
    (void)words;
    const mem::CopyList* list = listOf(vpn);
    const std::uint64_t gen = generation(vpn);

    auto markTail = [&](Chain& c) {
        if (c.tracked) {
            auto nit = entries_.find(c.originator);
            auto eit = nit == entries_.end()
                           ? decltype(nit->second.end()){}
                           : nit->second.find(c.tag);
            if (nit == entries_.end() || eit == nit->second.end()) {
                // An orphaned chain's entry legally retired early: its
                // write was aborted by crash recovery and completed by
                // whichever acknowledgement arrived first.
                if (!c.orphaned) {
                    violation(concat("chain ", chain,
                                     " reached the copy-list tail but its "
                                     "originator n", c.originator,
                                     " holds no pending entry with tag ",
                                     c.tag));
                }
            } else {
                eit->second.chainDone = true;
            }
        }
        ++chainsCompleted_;
    };

    if (at_master) {
        if (chains_.count(chain)) {
            violation(concat("chain ", chain,
                             " applied at the master copy twice"));
        }
        if (!list || list->empty()) {
            violation(concat("chain ", chain, " applied on page ", vpn,
                             " which has no copy-list"));
        }
        if (!(list->master() == copy)) {
            violation(concat("write took effect at ", toString(copy),
                             " as chain head, but the master copy of page ",
                             vpn, " is ", toString(list->master())));
        }
        Chain c;
        c.vpn = vpn;
        c.originator = originator;
        c.tag = tag;
        c.tracked = tracked;
        c.lastCopy = copy;
        c.genAtStart = gen;
        c.visited.push_back(copy);
        if (tracked) {
            auto nit = entries_.find(originator);
            auto eit = nit == entries_.end() ? decltype(nit->second.end()){}
                                             : nit->second.find(tag);
            if (nit == entries_.end() || eit == nit->second.end()) {
                violation(concat("tracked chain ", chain,
                                 " started for n", originator, " tag ", tag,
                                 " with no pending-writes entry"));
            }
            if (eit->second.chain != 0) {
                violation(concat("pending entry n", originator, " tag ",
                                 tag, " re-used by a second chain"));
            }
            eit->second.chain = chain;
            // A re-dispatched (crash-aborted) write may race the old
            // chain's acknowledgement; its new chain tolerates an
            // ownerless tail.
            c.orphaned = eit->second.aborted;
        }
        const bool tail = !list->successorOf(copy).has_value();
        if (tail) {
            markTail(c);
            if (!tracked) {
                return; // fully verified; nothing retires it later
            }
        }
        chains_.emplace(chain, std::move(c));
        return;
    }

    auto cit = chains_.find(chain);
    if (cit == chains_.end()) {
        violation(concat("chain ", chain, " applied its effects at replica ",
                         toString(copy), " of page ", vpn,
                         " before (or without) the master copy"));
    }
    Chain& c = cit->second;
    if (c.vpn != vpn) {
        violation(concat("chain ", chain, " crossed from page ", c.vpn,
                         " to page ", vpn));
    }
    if (std::find(c.visited.begin(), c.visited.end(), copy) !=
        c.visited.end()) {
        violation(concat("chain ", chain, " applied twice at copy ",
                         toString(copy)));
    }
    if (mode_ == ProtocolMode::WriteInvalidate) {
        // Single-writer: a chain stop at a non-master copy must have
        // invalidated its words (onWordInvalidated precedes this event),
        // never applied the written values.
        auto nit = invalidWords_.find(copy.node);
        auto vit = nit == invalidWords_.end() ? decltype(nit->second.end()){}
                                              : nit->second.find(vpn);
        if (nit == invalidWords_.end() || vit == nit->second.end() ||
            vit->second.find(word_offset) == vit->second.end()) {
            violation(concat("write-invalidate chain ", chain,
                             " stopped at non-master copy ", toString(copy),
                             " of page ", vpn, " without invalidating word ",
                             word_offset,
                             " (values may only be applied at the master)"));
        }
    }
    // Strict list-order checking only while the list is unchanged since
    // the chain started; an OS splice mid-flight legally re-routes it.
    const bool strict = list != nullptr && c.genAtStart == gen;
    if (strict) {
        const auto expected = list->successorOf(c.lastCopy);
        if (!expected) {
            violation(concat("chain ", chain, " applied at ",
                             toString(copy),
                             " past the tail of the copy-list of page ",
                             vpn));
        }
        if (!(*expected == copy)) {
            violation(concat("copy-list propagation of chain ", chain,
                             " on page ", vpn, " skipped: expected ",
                             toString(*expected), " after ",
                             toString(c.lastCopy), " but got ",
                             toString(copy)));
        }
    }
    c.lastCopy = copy;
    c.visited.push_back(copy);
    const bool tail = list == nullptr ||
                      !list->successorOf(copy).has_value();
    if (tail) {
        markTail(c);
        if ((!c.tracked && strict) || c.orphaned) {
            chains_.erase(cit);
        }
    }
}

void
InvariantChecker::pendingAborted(NodeId node, Tag tag, bool retried)
{
    auto nit = entries_.find(node);
    auto it = nit == entries_.end() ? decltype(nit->second.begin()){}
                                    : nit->second.find(tag);
    if (nit == entries_.end() || it == nit->second.end()) {
        violation(concat("recovery aborted write tag ", tag, " on n", node,
                         " which is not in flight"));
    }
    Entry& entry = it->second;
    if (entry.chain != 0) {
        // The old chain may still be walking surviving copies; let it
        // finish without an owner instead of violating at its tail.
        auto cit = chains_.find(entry.chain);
        if (cit != chains_.end()) {
            cit->second.orphaned = true;
        }
    }
    entry.aborted = true;
    if (retried) {
        entry.chain = 0;
        entry.chainDone = false;
    }
    ++aborted_;
}

void
InvariantChecker::pendingComplete(NodeId node, Tag tag)
{
    auto nit = entries_.find(node);
    auto it = nit == entries_.end() ? decltype(nit->second.begin()){}
                                    : nit->second.find(tag);
    if (nit == entries_.end() || it == nit->second.end()) {
        violation(concat("node ", node, " retired write tag ", tag,
                         " which is not in flight (double retire?)"));
    }
    const Entry entry = it->second;
    if (entry.aborted) {
        // Crash recovery touched this entry: it retires on whichever
        // acknowledgement (old chain's or re-dispatched chain's)
        // arrives first. A chain still in flight dies tolerantly at
        // its own tail; retire-once stays fully enforced.
        if (entry.chain != 0 && entry.chainDone) {
            chains_.erase(entry.chain);
        } else if (entry.chain != 0) {
            auto cit = chains_.find(entry.chain);
            if (cit != chains_.end()) {
                cit->second.orphaned = true;
            }
        }
        nit->second.erase(it);
        ++retired_;
        return;
    }
    if (entry.chain != 0) {
        if (!entry.chainDone) {
            const auto cit = chains_.find(entry.chain);
            const bool relaxed =
                cit != chains_.end() &&
                cit->second.genAtStart != generation(entry.vpn);
            if (!relaxed) {
                violation(concat("node ", node, " retired write tag ", tag,
                                 " before the last copy of page ",
                                 entry.vpn, " acknowledged"));
            }
        }
        chains_.erase(entry.chain);
    } else if (!entry.fromRmw && mode_ != ProtocolMode::WriteInvalidate) {
        // Write-invalidate legally retires chainless: a write whose words
        // are already invalidated at every copy skips the chain entirely.
        violation(concat("node ", node, " retired write tag ", tag,
                         " which never took effect at the master copy"));
    }
    nit->second.erase(it);
    ++retired_;
}

void
InvariantChecker::fenceComplete(NodeId node, bool pending_empty)
{
    if (!pending_empty) {
        violation(concat("fence completed on n", node,
                         " with a non-empty pending-writes cache"));
    }
    auto nit = entries_.find(node);
    if (nit != entries_.end() && !nit->second.empty()) {
        violation(concat("fence completed on n", node, " with ",
                         nit->second.size(),
                         " write(s) still unretired (checker view)"));
    }
}

void
InvariantChecker::readServed(NodeId node, Vpn vpn, Addr word_offset)
{
    auto nit = entries_.find(node);
    if (nit == entries_.end()) {
        return;
    }
    for (const auto& [tag, entry] : nit->second) {
        if (entry.vpn == vpn && entry.wordOffset == word_offset) {
            violation(concat("read on n", node, " of page ", vpn,
                             " word ", word_offset,
                             " served while its own write (tag ", tag,
                             ") is still in flight"));
        }
    }
}

void
InvariantChecker::wordInvalidated(NodeId node, Vpn vpn, Addr word_offset)
{
    if (mode_ == ProtocolMode::WriteUpdate) {
        violation(concat("word invalidation reported for page ", vpn,
                         " word ", word_offset, " at n", node,
                         " under write-update, which never invalidates"));
    }
    invalidWords_[node][vpn].insert(word_offset);
}

void
InvariantChecker::wordRevalidated(NodeId node, Vpn vpn, Addr word_offset)
{
    if (mode_ == ProtocolMode::WriteUpdate) {
        violation(concat("word revalidation reported for page ", vpn,
                         " word ", word_offset, " at n", node,
                         " under write-update, which never invalidates"));
    }
    // Idempotent: concurrent re-fetches of the same word each revalidate.
    auto nit = invalidWords_.find(node);
    if (nit != invalidWords_.end()) {
        auto vit = nit->second.find(vpn);
        if (vit != nit->second.end()) {
            vit->second.erase(word_offset);
        }
    }
}

void
InvariantChecker::localValueServed(NodeId node, Vpn vpn, Addr word_offset)
{
    if (mode_ != ProtocolMode::WriteInvalidate) {
        return; // write-update never invalidates: every local serve is legal
    }
    auto nit = invalidWords_.find(node);
    if (nit == invalidWords_.end()) {
        return;
    }
    auto vit = nit->second.find(vpn);
    if (vit != nit->second.end() &&
        vit->second.find(word_offset) != vit->second.end()) {
        violation(concat("stale read: n", node, " served page ", vpn,
                         " word ", word_offset,
                         " from its own copy while the word is invalidated"));
    }
}

void
InvariantChecker::copyListMutated(const mem::CopyList& list, const char* op)
{
    const auto& copies = list.copies();
    for (std::size_t i = 0; i < copies.size(); ++i) {
        for (std::size_t j = i + 1; j < copies.size(); ++j) {
            if (copies[i].node == copies[j].node) {
                violation(concat("copy-list ", op,
                                 " left two copies on node ",
                                 copies[i].node));
            }
        }
    }
}

} // namespace check
} // namespace plus
