/**
 * @file
 * Happens-before data-race detector for simulated PLUS workloads.
 *
 * PLUS's memory model (Sections 3.1-3.2) makes ordinary writes weakly
 * ordered: a write returns immediately and propagates down the copy-list
 * in the background, and only fence()/writeFence() order it against later
 * operations. The synchronizing primitives are the delayed interlocked
 * operations (issue + verify) and the fences. Accordingly the detector
 * builds happens-before from exactly those edges:
 *
 *  - program order within one simulated thread;
 *  - an interlocked operation on word `a` is a release into `a` at issue
 *    and an acquire from `a` at verify (or at the synchronous rmw());
 *  - any word ever targeted by an interlocked operation is classified as
 *    a synchronization word: plain writes of it release into it (the
 *    spinlock unlock idiom, Figure 3-2) and plain reads of it acquire
 *    from it, and it is itself exempt from race checking;
 *  - a fence or write-fence publishes the thread's writes: releases
 *    propagate the *fenced-write watermark*, not the raw write count, so
 *    an unfenced write is never covered by a later release — exactly the
 *    missing-fence bug class of the paper's weak ordering.
 *
 * Vector clocks carry two components per thread: component 2t is thread
 * t's sync epoch and component 2t+1 its fenced-write watermark. Two plain
 * accesses to the same word race when neither happens-before the other
 * and at least one is a write.
 */

#ifndef PLUS_CHECK_RACE_DETECTOR_HPP_
#define PLUS_CHECK_RACE_DETECTOR_HPP_

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/trace.hpp"
#include "common/types.hpp"

namespace plus {
namespace check {

/** One reported data race (deduplicated per word address). */
struct Race {
    Addr addr = 0;
    ThreadId first = 0;
    ThreadId second = 0;
    std::string what;
};

/** Happens-before race detector; see file comment. */
class RaceDetector
{
  public:
    /**
     * @param trace        Event history, for panic reports.
     * @param panic_on_race  Panic at the first race instead of recording.
     */
    RaceDetector(EventTrace* trace, bool panic_on_race);

    // --- access stream (from node::Processor hooks) -----------------------

    void read(ThreadId tid, Addr vaddr);
    void write(ThreadId tid, Addr vaddr);
    void rmwIssue(ThreadId tid, Addr vaddr);
    void verifyDone(ThreadId tid, Addr vaddr);
    void fence(ThreadId tid);
    void writeFence(ThreadId tid);

    // --- results ----------------------------------------------------------

    const std::vector<Race>& races() const { return races_; }

    /** Words classified as synchronization variables so far. */
    std::size_t syncWords() const { return syncWords_; }

  private:
    using Clock = std::vector<std::uint64_t>;

    static constexpr ThreadId kInvalidThread =
        std::numeric_limits<ThreadId>::max();

    struct Epoch {
        ThreadId tid = kInvalidThread;
        std::uint64_t value = 0;
    };

    struct ThreadState {
        Clock clock;
        /** Plain writes issued so far. */
        std::uint64_t writeCount = 0;
        /** Writes covered by the latest fence (the published watermark). */
        std::uint64_t fencedWrites = 0;
    };

    struct WordState {
        bool sync = false;
        /** The sync word's clock L_a (empty unless sync). */
        Clock clock;
        Epoch lastWrite;
        /** Latest read epoch per reading thread. */
        std::vector<Epoch> reads;
    };

    ThreadState& thread(ThreadId tid);
    WordState& word(Addr vaddr);

    static void join(Clock& into, const Clock& from);
    static std::uint64_t component(const Clock& clock, std::size_t index);

    /** Has the write/read epoch of @p owner been observed by @p clock? */
    bool observed(const Clock& clock, const Epoch& epoch,
                  bool write_epoch) const;

    /** Release @p state's clock (with fenced watermark) into @p target. */
    void releaseInto(ThreadState& state, ThreadId tid, WordState& target);

    /** Turn @p word into a synchronization variable. */
    void classifySync(WordState& word);

    void report(Addr vaddr, ThreadId first, ThreadId second,
                const std::string& what);

    EventTrace* trace_;
    bool panicOnRace_;

    std::vector<ThreadState> threads_;
    std::unordered_map<Addr, WordState> words_;
    std::unordered_set<Addr> reported_;
    std::vector<Race> races_;
    std::size_t syncWords_ = 0;
};

} // namespace check
} // namespace plus

#endif // PLUS_CHECK_RACE_DETECTOR_HPP_
