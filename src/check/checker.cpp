#include "check/checker.hpp"

namespace plus {
namespace check {

namespace {

Event
makeEvent(EventKind kind, NodeId node, Vpn vpn, Addr word_offset,
          std::uint64_t a, std::uint64_t b)
{
    Event event;
    event.kind = kind;
    event.node = node;
    event.vpn = vpn;
    event.wordOffset = word_offset;
    event.a = a;
    event.b = b;
    return event;
}

} // namespace

Checker::Checker(const Options& options, const sim::Engine* engine)
    : options_(options), trace_(options.traceDepth, engine)
{
    if (options_.invariants) {
        invariants_ = std::make_unique<InvariantChecker>(&trace_);
    }
    if (options_.races) {
        races_ = std::make_unique<RaceDetector>(&trace_,
                                                options_.panicOnRace);
    }
}

void
Checker::setCopyListResolver(InvariantChecker::CopyListResolver resolver)
{
    if (invariants_) {
        invariants_->setCopyListResolver(std::move(resolver));
    }
}

void
Checker::onCopyListChanged(Vpn vpn)
{
    if (invariants_) {
        invariants_->copyListChanged(vpn);
    }
}

void
Checker::onNodeCrashed(NodeId node)
{
    trace_.record(makeEvent(EventKind::NodeCrashed, node, 0, 0, 0, 0));
    if (invariants_) {
        invariants_->nodeCrashed(node);
    }
}

void
Checker::onEpochSealed(NodeId dead, std::uint64_t epoch)
{
    trace_.record(makeEvent(EventKind::EpochSealed, dead, 0, 0, epoch, 0));
    if (invariants_) {
        invariants_->epochSealed(dead, epoch);
    }
}

void
Checker::onPendingInsert(NodeId node, std::uint32_t tag, Vpn vpn,
                         Addr word_offset)
{
    trace_.record(makeEvent(EventKind::PendingInsert, node, vpn,
                            word_offset, tag, 0));
    if (invariants_) {
        invariants_->pendingInsert(node, tag, vpn, word_offset);
    }
}

void
Checker::onPendingComplete(NodeId node, std::uint32_t tag)
{
    trace_.record(makeEvent(EventKind::PendingComplete, node, 0, 0, tag, 0));
    if (invariants_) {
        invariants_->pendingComplete(node, tag);
    }
}

void
Checker::onPendingAborted(NodeId node, std::uint32_t tag, bool retried)
{
    trace_.record(makeEvent(EventKind::PendingAborted, node, 0, 0, tag,
                            retried ? 1 : 0));
    if (invariants_) {
        invariants_->pendingAborted(node, tag, retried);
    }
}

void
Checker::onMessageProcessed(NodeId src, NodeId dst, std::uint8_t msg_class)
{
    // Not traced: one entry per delivered message would flush the
    // bounded ring of the events violations actually need.
    if (invariants_) {
        invariants_->messageProcessed(src, dst, msg_class);
    }
}

void
Checker::onWriteIssued(NodeId node, std::uint32_t tag, Vpn vpn,
                       Addr word_offset, bool from_rmw)
{
    trace_.record(makeEvent(EventKind::WriteIssued, node, vpn, word_offset,
                            tag, from_rmw ? 1 : 0));
    if (invariants_) {
        invariants_->writeIssued(node, tag, vpn, word_offset, from_rmw);
    }
}

void
Checker::onChainApplied(ChainId chain, PhysPage copy, Vpn vpn,
                        Addr word_offset, unsigned words, NodeId originator,
                        std::uint32_t tag, bool tracked, bool at_master)
{
    trace_.record(makeEvent(EventKind::ChainApplied, copy.node, vpn,
                            word_offset, tag, chain));
    if (invariants_) {
        invariants_->chainApplied(chain, copy, vpn, word_offset, words,
                                  originator, tag, tracked, at_master);
    }
}

void
Checker::onFenceComplete(NodeId node, bool pending_empty)
{
    trace_.record(makeEvent(EventKind::FenceComplete, node, 0, 0,
                            pending_empty ? 1 : 0, 0));
    if (invariants_) {
        invariants_->fenceComplete(node, pending_empty);
    }
}

void
Checker::onReadServed(NodeId node, Vpn vpn, Addr word_offset)
{
    trace_.record(makeEvent(EventKind::ReadServed, node, vpn, word_offset,
                            0, 0));
    if (invariants_) {
        invariants_->readServed(node, vpn, word_offset);
    }
}

void
Checker::onWordInvalidated(NodeId node, Vpn vpn, Addr word_offset)
{
    trace_.record(makeEvent(EventKind::WordInvalidated, node, vpn,
                            word_offset, 0, 0));
    if (invariants_) {
        invariants_->wordInvalidated(node, vpn, word_offset);
    }
}

void
Checker::onWordRevalidated(NodeId node, Vpn vpn, Addr word_offset)
{
    trace_.record(makeEvent(EventKind::WordRevalidated, node, vpn,
                            word_offset, 0, 0));
    if (invariants_) {
        invariants_->wordRevalidated(node, vpn, word_offset);
    }
}

void
Checker::onLocalValueServed(NodeId node, Vpn vpn, Addr word_offset)
{
    trace_.record(makeEvent(EventKind::LocalValueServed, node, vpn,
                            word_offset, 0, 0));
    if (invariants_) {
        invariants_->localValueServed(node, vpn, word_offset);
    }
}

void
Checker::onCopyListMutated(const mem::CopyList& list, const char* op)
{
    trace_.record(makeEvent(EventKind::CopyListMutated, kInvalidNode, 0, 0,
                            0, 0));
    if (invariants_) {
        invariants_->copyListMutated(list, op);
    }
}

void
Checker::onProcRead(NodeId node, ThreadId tid, Addr vaddr)
{
    trace_.record(makeEvent(EventKind::ProcRead, node, pageOf(vaddr),
                            wordOffsetOf(vaddr), tid, 0));
    if (races_) {
        races_->read(tid, vaddr);
    }
}

void
Checker::onProcWrite(NodeId node, ThreadId tid, Addr vaddr)
{
    trace_.record(makeEvent(EventKind::ProcWrite, node, pageOf(vaddr),
                            wordOffsetOf(vaddr), tid, 0));
    if (races_) {
        races_->write(tid, vaddr);
    }
}

void
Checker::onProcRmwIssue(NodeId node, ThreadId tid, Addr vaddr,
                        std::uint8_t op)
{
    trace_.record(makeEvent(EventKind::ProcRmwIssue, node, pageOf(vaddr),
                            wordOffsetOf(vaddr), tid, op));
    if (races_) {
        races_->rmwIssue(tid, vaddr);
    }
}

void
Checker::onProcVerify(NodeId node, ThreadId tid, Addr vaddr)
{
    trace_.record(makeEvent(EventKind::ProcVerify, node, pageOf(vaddr),
                            wordOffsetOf(vaddr), tid, 0));
    if (races_) {
        races_->verifyDone(tid, vaddr);
    }
}

void
Checker::onProcFence(NodeId node, ThreadId tid)
{
    trace_.record(makeEvent(EventKind::ProcFence, node, 0, 0, tid, 0));
    if (races_) {
        races_->fence(tid);
    }
}

void
Checker::onProcWriteFence(NodeId node, ThreadId tid)
{
    trace_.record(makeEvent(EventKind::ProcWriteFence, node, 0, 0, tid, 0));
    if (races_) {
        races_->writeFence(tid);
    }
}

void
Checker::onProcPageLost(NodeId node, ThreadId tid, Addr vaddr)
{
    trace_.record(makeEvent(EventKind::ProcPageLost, node, pageOf(vaddr),
                            wordOffsetOf(vaddr), tid, 0));
}

} // namespace check
} // namespace plus
