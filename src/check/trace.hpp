/**
 * @file
 * Bounded event trace kept by the checker: every instrumentation event is
 * recorded as a small fixed-size struct (no formatting on the hot path);
 * when an invariant is violated the ring is rendered into the panic
 * message so the report carries the full recent event history.
 */

#ifndef PLUS_CHECK_TRACE_HPP_
#define PLUS_CHECK_TRACE_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace plus {

namespace sim {
class Engine;
} // namespace sim

namespace check {

/** What a trace entry records. */
enum class EventKind : std::uint8_t {
    WriteIssued,
    PendingInsert,
    PendingComplete,
    ChainApplied,
    FenceComplete,
    ReadServed,
    CopyListMutated,
    ProcRead,
    ProcWrite,
    ProcRmwIssue,
    ProcVerify,
    ProcFence,
    ProcWriteFence,
    PendingAborted,
    ProcPageLost,
    NodeCrashed,
    EpochSealed,
    WordInvalidated,
    WordRevalidated,
    LocalValueServed,
};

const char* toString(EventKind kind);

/** One recorded instrumentation event (formatted lazily). */
struct Event {
    EventKind kind = EventKind::WriteIssued;
    Cycles when = 0;
    NodeId node = kInvalidNode;
    Vpn vpn = 0;
    Addr wordOffset = 0;
    /** Kind-specific extras: tag/tid in a, chain id/flags in b. */
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

/** Fixed-capacity ring of recent events. */
class EventTrace
{
  public:
    /** @param engine  Optional clock source for event timestamps. */
    EventTrace(unsigned depth, const sim::Engine* engine);

    void record(Event event);

    std::uint64_t recorded() const { return recorded_; }

    /** Render the retained events, oldest first, one per line. */
    std::string render() const;

    /**
     * Raise a checker violation: panics with @p message followed by the
     * rendered event history.
     */
    [[noreturn]] void violation(const std::string& message) const;

  private:
    std::vector<Event> ring_;
    std::size_t next_ = 0;
    std::uint64_t recorded_ = 0;
    const sim::Engine* engine_;
};

} // namespace check
} // namespace plus

#endif // PLUS_CHECK_TRACE_HPP_
