#include "check/trace.hpp"

#include <algorithm>
#include <sstream>

#include "common/panic.hpp"
#include "sim/engine.hpp"

namespace plus {
namespace check {

const char*
toString(EventKind kind)
{
    switch (kind) {
      case EventKind::WriteIssued: return "write-issued";
      case EventKind::PendingInsert: return "pending-insert";
      case EventKind::PendingComplete: return "pending-complete";
      case EventKind::ChainApplied: return "chain-applied";
      case EventKind::FenceComplete: return "fence-complete";
      case EventKind::ReadServed: return "read-served";
      case EventKind::CopyListMutated: return "copy-list-mutated";
      case EventKind::ProcRead: return "proc-read";
      case EventKind::ProcWrite: return "proc-write";
      case EventKind::ProcRmwIssue: return "proc-rmw-issue";
      case EventKind::ProcVerify: return "proc-verify";
      case EventKind::ProcFence: return "proc-fence";
      case EventKind::ProcWriteFence: return "proc-write-fence";
      case EventKind::PendingAborted: return "pending-aborted";
      case EventKind::ProcPageLost: return "proc-page-lost";
      case EventKind::NodeCrashed: return "node-crashed";
      case EventKind::EpochSealed: return "epoch-sealed";
      case EventKind::WordInvalidated: return "word-invalidated";
      case EventKind::WordRevalidated: return "word-revalidated";
      case EventKind::LocalValueServed: return "local-value-served";
      default: return "?";
    }
}

EventTrace::EventTrace(unsigned depth, const sim::Engine* engine)
    : ring_(std::max(1u, depth)), engine_(engine)
{
}

void
EventTrace::record(Event event)
{
    if (engine_) {
        event.when = engine_->now();
    }
    ring_[next_] = event;
    next_ = (next_ + 1) % ring_.size();
    ++recorded_;
}

std::string
EventTrace::render() const
{
    std::ostringstream os;
    const std::size_t kept = std::min<std::uint64_t>(recorded_,
                                                     ring_.size());
    os << "last " << kept << " of " << recorded_ << " events:\n";
    // Oldest retained entry first.
    std::size_t i = recorded_ < ring_.size() ? 0 : next_;
    for (std::size_t k = 0; k < kept; ++k) {
        const Event& e = ring_[i];
        os << "  [" << e.when << "] " << toString(e.kind) << " n" << e.node
           << " vpn=" << e.vpn << " off=" << e.wordOffset << " a=" << e.a
           << " b=" << e.b << "\n";
        i = (i + 1) % ring_.size();
    }
    return os.str();
}

void
EventTrace::violation(const std::string& message) const
{
    PLUS_PANIC("plus::check invariant violation: ", message, "\n",
               render());
}

} // namespace check
} // namespace plus
