/**
 * @file
 * Instrumentation hooks for the `plus::check` subsystem.
 *
 * The coherence manager, the pending-writes cache, the copy-list and the
 * processor each hold an observer pointer that is null by default: when no
 * checker is installed the hot path pays exactly one branch per event.
 * When a checker is installed (see check::Checker, wired by core::Machine
 * according to CheckConfig) every protocol and processor event is mirrored
 * into it, where the invariant checker and the happens-before race
 * detector validate the run as it unfolds.
 *
 * This header deliberately depends only on common/types.hpp so that every
 * layer (mem, proto, node) can include it without linking the checker
 * implementation.
 */

#ifndef PLUS_CHECK_HOOKS_HPP_
#define PLUS_CHECK_HOOKS_HPP_

#include <cstdint>

#include "common/types.hpp"

namespace plus {

namespace mem {
class CopyList;
} // namespace mem

namespace check {

/**
 * Identity of one write-propagation chain: the journey of one write's (or
 * one interlocked operation's) effects from the master copy down the
 * copy-list to the tail. Assigned by the master's coherence manager when
 * the chain starts and carried by every UpdateReq of the chain.
 */
using ChainId = std::uint64_t;

/** Observer of one node's pending-writes cache (proto::PendingWrites). */
class PendingWritesObserver
{
  public:
    virtual ~PendingWritesObserver() = default;

    /** A write occupied a pending-writes entry on @p node. */
    virtual void
    onPendingInsert(NodeId node, std::uint32_t tag, Vpn vpn,
                    Addr word_offset)
    {
        (void)node; (void)tag; (void)vpn; (void)word_offset;
    }

    /** The entry with @p tag retired (acknowledged or completed). */
    virtual void
    onPendingComplete(NodeId node, std::uint32_t tag)
    {
        (void)node; (void)tag;
    }
};

/** Observer of protocol milestones inside proto::CoherenceManager. */
class ProtoObserver
{
  public:
    virtual ~ProtoObserver() = default;

    /**
     * A write — or, when @p from_rmw, a tracked interlocked operation's
     * pseudo-write — was issued by @p node and entered its pending-writes
     * cache under @p tag. Qualifies the matching onPendingInsert().
     */
    virtual void
    onWriteIssued(NodeId node, std::uint32_t tag, Vpn vpn, Addr word_offset,
                  bool from_rmw)
    {
        (void)node; (void)tag; (void)vpn; (void)word_offset; (void)from_rmw;
    }

    /**
     * Chain @p chain applied its effects at @p copy of page @p vpn.
     * @p at_master is the applying manager's own belief that it acted as
     * the chain's head; the checker validates it against the copy-list.
     * @p tracked says the chain retires a pending-writes entry
     * (@p originator, @p tag) when its tail acknowledges.
     */
    virtual void
    onChainApplied(ChainId chain, PhysPage copy, Vpn vpn, Addr word_offset,
                   unsigned words, NodeId originator, std::uint32_t tag,
                   bool tracked, bool at_master)
    {
        (void)chain; (void)copy; (void)vpn; (void)word_offset; (void)words;
        (void)originator; (void)tag; (void)tracked; (void)at_master;
    }

    /**
     * A blocking fence completed on @p node; @p pending_empty reports the
     * pending-writes cache state at that instant (must be empty).
     */
    virtual void
    onFenceComplete(NodeId node, bool pending_empty)
    {
        (void)node; (void)pending_empty;
    }

    /**
     * A processor-side read was served on @p node after any conflicting
     * pending-write wait (must find no same-node write still in flight).
     */
    virtual void
    onReadServed(NodeId node, Vpn vpn, Addr word_offset)
    {
        (void)node; (void)vpn; (void)word_offset;
    }

    /**
     * The coherence manager of @p src handed a protocol message of
     * @p msg_class (a proto::MsgType value) to the network, bound for
     * @p dst. @p vpn attributes the traffic to a page when the message
     * addresses one (0 — the reserved null page — otherwise).
     */
    virtual void
    onMessageSent(NodeId src, NodeId dst, std::uint8_t msg_class,
                  unsigned bytes, Vpn vpn)
    {
        (void)src; (void)dst; (void)msg_class; (void)bytes; (void)vpn;
    }

    /**
     * The coherence manager of @p dst dispatched a delivered protocol
     * message of @p msg_class sent by @p src. Feeds the crashed-source
     * invariant: once @p src's recovery epoch has sealed, no message
     * from it may ever be processed again.
     */
    virtual void
    onMessageProcessed(NodeId src, NodeId dst, std::uint8_t msg_class)
    {
        (void)src; (void)dst; (void)msg_class;
    }

    /**
     * Crash recovery aborted the in-flight write (or tracked interlocked
     * pseudo-write) @p tag on @p node because its update chain touched
     * the dead node. When @p retried, the operation is re-dispatched
     * against the repaired copy-list under the same tag; otherwise its
     * page is lost and the entry force-retires without ever taking
     * effect at a master. The checker relaxes retire-once accordingly —
     * this is the only path allowed to do so.
     */
    virtual void
    onPendingAborted(NodeId node, std::uint32_t tag, bool retried)
    {
        (void)node; (void)tag; (void)retried;
    }

    /**
     * Write-invalidate only: an invalidation chain marked one word of
     * @p node's copy invalid. Fired before the matching onChainApplied()
     * at the same copy, so the checker sees that a non-master chain stop
     * invalidated rather than applied a value.
     */
    virtual void
    onWordInvalidated(NodeId node, Vpn vpn, Addr word_offset)
    {
        (void)node; (void)vpn; (void)word_offset;
    }

    /**
     * Write-invalidate only: a re-fetch from the master restored one word
     * of @p node's copy to the valid state (and applied the fetched value
     * to the copy's memory).
     */
    virtual void
    onWordRevalidated(NodeId node, Vpn vpn, Addr word_offset)
    {
        (void)node; (void)vpn; (void)word_offset;
    }

    /**
     * Write-invalidate only: the master copy on @p master saw page
     * @p vpn's writer change hands — @p to issued a write to a page
     * last written by @p from. Counted as CmStats::ownershipTransfers
     * and surfaced on the master's coherence-manager trace track.
     */
    virtual void
    onOwnershipTransfer(NodeId master, Vpn vpn, NodeId from, NodeId to)
    {
        (void)master; (void)vpn; (void)from; (void)to;
    }

    /**
     * A read on @p node was served from the node's own copy of the page
     * without consulting the master. Under write-invalidate the checker
     * verifies the served word was valid at the copy (no stale read);
     * write-update never invalidates, so every local serve is legal.
     */
    virtual void
    onLocalValueServed(NodeId node, Vpn vpn, Addr word_offset)
    {
        (void)node; (void)vpn; (void)word_offset;
    }
};

/**
 * Why the fault layer discarded a packet (see net::FaultInjector and
 * net::LinkLayer). Carried on NetObserver::onPacketDropped so telemetry
 * can render each fault kind distinctly.
 */
enum class DropReason : std::uint8_t {
    Injected,  ///< probabilistic or scripted drop at injection
    Corrupt,   ///< payload CRC failed at the receiver
    LinkDown,  ///< the packet reached a killed link
    NodeDown,  ///< the source or destination router is dead
    Duplicate, ///< suppressed by the reliable layer's sequence check
    Sealed,    ///< sent by a crashed node whose recovery epoch sealed
};

inline const char*
toString(DropReason reason)
{
    switch (reason) {
      case DropReason::Injected: return "injected";
      case DropReason::Corrupt: return "corrupt";
      case DropReason::LinkDown: return "link-down";
      case DropReason::NodeDown: return "node-down";
      case DropReason::Duplicate: return "duplicate";
      case DropReason::Sealed: return "sealed";
      default: return "?";
    }
}

/**
 * Observer of network-level packet movement (net::Network). Kept separate
 * from ProtoObserver because the network layer cannot name protocol types:
 * @p msg_class is the proto::MsgType value carried opaquely on the packet
 * (0xff when the sender did not classify it).
 */
class NetObserver
{
  public:
    virtual ~NetObserver() = default;

    /**
     * A packet reached its destination. @p latency is end-to-end cycles
     * from injection, of which @p queueing was spent behind busy links.
     */
    virtual void
    onPacketDelivered(NodeId src, NodeId dst, std::uint8_t msg_class,
                      unsigned bytes, unsigned hops, Cycles latency,
                      Cycles queueing)
    {
        (void)src; (void)dst; (void)msg_class; (void)bytes; (void)hops;
        (void)latency; (void)queueing;
    }

    /**
     * The directed mesh link @p from -> @p to was occupied for
     * @p duration cycles starting at @p start, serializing a packet of
     * class @p msg_class carrying @p bytes of payload.
     */
    virtual void
    onLinkBusy(NodeId from, NodeId to, std::uint8_t msg_class,
               unsigned bytes, Cycles start, Cycles duration)
    {
        (void)from; (void)to; (void)msg_class; (void)bytes; (void)start;
        (void)duration;
    }

    /**
     * The fault layer discarded a packet of @p msg_class travelling
     * @p src -> @p dst for @p reason. For LinkDown the pair names the
     * killed link's endpoints, not the packet's original route.
     */
    virtual void
    onPacketDropped(NodeId src, NodeId dst, std::uint8_t msg_class,
                    unsigned bytes, DropReason reason)
    {
        (void)src; (void)dst; (void)msg_class; (void)bytes; (void)reason;
    }

    /**
     * The reliable layer re-sent frame @p seq of channel @p src -> @p dst
     * after a timeout; this was retransmission attempt @p attempt (1 =
     * first re-send).
     */
    virtual void
    onRetransmit(NodeId src, NodeId dst, std::uint32_t seq,
                 unsigned attempt)
    {
        (void)src; (void)dst; (void)seq; (void)attempt;
    }
};

/** Observer of structural mutations of a mem::CopyList. */
class CopyListObserver
{
  public:
    virtual ~CopyListObserver() = default;

    /** The list changed via @p op (insert/append/remove/reorder). */
    virtual void
    onCopyListMutated(const mem::CopyList& list, const char* op)
    {
        (void)list; (void)op;
    }
};

/** Observer of application-level accesses inside node::Processor. */
class ProcObserver
{
  public:
    virtual ~ProcObserver() = default;

    /** Thread @p tid completed a coherent read of @p vaddr. */
    virtual void
    onProcRead(NodeId node, ThreadId tid, Addr vaddr)
    {
        (void)node; (void)tid; (void)vaddr;
    }

    /** Thread @p tid issued a coherent write of @p vaddr. */
    virtual void
    onProcWrite(NodeId node, ThreadId tid, Addr vaddr)
    {
        (void)node; (void)tid; (void)vaddr;
    }

    /** Thread @p tid issued an interlocked operation on @p vaddr. */
    virtual void
    onProcRmwIssue(NodeId node, ThreadId tid, Addr vaddr, std::uint8_t op)
    {
        (void)node; (void)tid; (void)vaddr; (void)op;
    }

    /** Thread @p tid consumed the delayed result of an op on @p vaddr. */
    virtual void
    onProcVerify(NodeId node, ThreadId tid, Addr vaddr)
    {
        (void)node; (void)tid; (void)vaddr;
    }

    /** Thread @p tid completed a full (blocking) fence. */
    virtual void
    onProcFence(NodeId node, ThreadId tid)
    {
        (void)node; (void)tid;
    }

    /** Thread @p tid armed the paper's non-blocking write fence. */
    virtual void
    onProcWriteFence(NodeId node, ThreadId tid)
    {
        (void)node; (void)tid;
    }

    /**
     * Thread @p tid accessed @p vaddr on a page whose every copy died
     * with a crashed node: the access completed degraded (reads return
     * the PageLost sentinel, writes are dropped) within bounded cycles
     * instead of retrying forever.
     */
    virtual void
    onProcPageLost(NodeId node, ThreadId tid, Addr vaddr)
    {
        (void)node; (void)tid; (void)vaddr;
    }

    /**
     * The processor on @p node just left a free interval: it had been
     * waiting since @p start for @p duration cycles with @p kind (a
     * node::StallKind value) as the recorded reason. Emitted when the
     * interval closes, so begin and end arrive together.
     */
    virtual void
    onProcStall(NodeId node, std::uint8_t kind, Cycles start,
                Cycles duration)
    {
        (void)node; (void)kind; (void)start; (void)duration;
    }
};

/** Convenience base implementing every hook family. */
class Observer : public PendingWritesObserver,
                 public ProtoObserver,
                 public CopyListObserver,
                 public ProcObserver
{
};

/**
 * Fan-out to two observers. Each instrumented subsystem holds a single
 * observer pointer (keeping the disabled cost at one branch per event);
 * when both the checker and the telemetry tracer are installed,
 * core::Machine interposes one of these.
 */
class TeeObserver final : public Observer
{
  public:
    TeeObserver(Observer* first, Observer* second)
        : a_(first), b_(second)
    {
    }

    void
    onPendingInsert(NodeId node, std::uint32_t tag, Vpn vpn,
                    Addr word_offset) override
    {
        tee(&Observer::onPendingInsert, node, tag, vpn, word_offset);
    }

    void
    onPendingComplete(NodeId node, std::uint32_t tag) override
    {
        tee(&Observer::onPendingComplete, node, tag);
    }

    void
    onWriteIssued(NodeId node, std::uint32_t tag, Vpn vpn, Addr word_offset,
                  bool from_rmw) override
    {
        tee(&Observer::onWriteIssued, node, tag, vpn, word_offset,
            from_rmw);
    }

    void
    onChainApplied(ChainId chain, PhysPage copy, Vpn vpn, Addr word_offset,
                   unsigned words, NodeId originator, std::uint32_t tag,
                   bool tracked, bool at_master) override
    {
        tee(&Observer::onChainApplied, chain, copy, vpn, word_offset,
            words, originator, tag, tracked, at_master);
    }

    void
    onFenceComplete(NodeId node, bool pending_empty) override
    {
        tee(&Observer::onFenceComplete, node, pending_empty);
    }

    void
    onReadServed(NodeId node, Vpn vpn, Addr word_offset) override
    {
        tee(&Observer::onReadServed, node, vpn, word_offset);
    }

    void
    onMessageSent(NodeId src, NodeId dst, std::uint8_t msg_class,
                  unsigned bytes, Vpn vpn) override
    {
        tee(&Observer::onMessageSent, src, dst, msg_class, bytes, vpn);
    }

    void
    onMessageProcessed(NodeId src, NodeId dst,
                       std::uint8_t msg_class) override
    {
        tee(&Observer::onMessageProcessed, src, dst, msg_class);
    }

    void
    onPendingAborted(NodeId node, std::uint32_t tag, bool retried) override
    {
        tee(&Observer::onPendingAborted, node, tag, retried);
    }

    void
    onWordInvalidated(NodeId node, Vpn vpn, Addr word_offset) override
    {
        tee(&Observer::onWordInvalidated, node, vpn, word_offset);
    }

    void
    onWordRevalidated(NodeId node, Vpn vpn, Addr word_offset) override
    {
        tee(&Observer::onWordRevalidated, node, vpn, word_offset);
    }

    void
    onOwnershipTransfer(NodeId master, Vpn vpn, NodeId from,
                        NodeId to) override
    {
        tee(&Observer::onOwnershipTransfer, master, vpn, from, to);
    }

    void
    onLocalValueServed(NodeId node, Vpn vpn, Addr word_offset) override
    {
        tee(&Observer::onLocalValueServed, node, vpn, word_offset);
    }

    void
    onCopyListMutated(const mem::CopyList& list, const char* op) override
    {
        tee(&Observer::onCopyListMutated, list, op);
    }

    void
    onProcRead(NodeId node, ThreadId tid, Addr vaddr) override
    {
        tee(&Observer::onProcRead, node, tid, vaddr);
    }

    void
    onProcWrite(NodeId node, ThreadId tid, Addr vaddr) override
    {
        tee(&Observer::onProcWrite, node, tid, vaddr);
    }

    void
    onProcRmwIssue(NodeId node, ThreadId tid, Addr vaddr,
                   std::uint8_t op) override
    {
        tee(&Observer::onProcRmwIssue, node, tid, vaddr, op);
    }

    void
    onProcVerify(NodeId node, ThreadId tid, Addr vaddr) override
    {
        tee(&Observer::onProcVerify, node, tid, vaddr);
    }

    void
    onProcFence(NodeId node, ThreadId tid) override
    {
        tee(&Observer::onProcFence, node, tid);
    }

    void
    onProcWriteFence(NodeId node, ThreadId tid) override
    {
        tee(&Observer::onProcWriteFence, node, tid);
    }

    void
    onProcPageLost(NodeId node, ThreadId tid, Addr vaddr) override
    {
        tee(&Observer::onProcPageLost, node, tid, vaddr);
    }

    void
    onProcStall(NodeId node, std::uint8_t kind, Cycles start,
                Cycles duration) override
    {
        tee(&Observer::onProcStall, node, kind, start, duration);
    }

  private:
    /**
     * Forward one hook to both observers through a member pointer: two
     * virtual calls per event, no per-event closure copies.
     */
    template <typename Hook, typename... Args>
    void
    tee(Hook hook, const Args&... args)
    {
        (a_->*hook)(args...);
        (b_->*hook)(args...);
    }

    Observer* a_;
    Observer* b_;
};

} // namespace check
} // namespace plus

#endif // PLUS_CHECK_HOOKS_HPP_
