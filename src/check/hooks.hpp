/**
 * @file
 * Instrumentation hooks for the `plus::check` subsystem.
 *
 * The coherence manager, the pending-writes cache, the copy-list and the
 * processor each hold an observer pointer that is null by default: when no
 * checker is installed the hot path pays exactly one branch per event.
 * When a checker is installed (see check::Checker, wired by core::Machine
 * according to CheckConfig) every protocol and processor event is mirrored
 * into it, where the invariant checker and the happens-before race
 * detector validate the run as it unfolds.
 *
 * This header deliberately depends only on common/types.hpp so that every
 * layer (mem, proto, node) can include it without linking the checker
 * implementation.
 */

#ifndef PLUS_CHECK_HOOKS_HPP_
#define PLUS_CHECK_HOOKS_HPP_

#include <cstdint>

#include "common/types.hpp"

namespace plus {

namespace mem {
class CopyList;
} // namespace mem

namespace check {

/**
 * Identity of one write-propagation chain: the journey of one write's (or
 * one interlocked operation's) effects from the master copy down the
 * copy-list to the tail. Assigned by the master's coherence manager when
 * the chain starts and carried by every UpdateReq of the chain.
 */
using ChainId = std::uint64_t;

/** Observer of one node's pending-writes cache (proto::PendingWrites). */
class PendingWritesObserver
{
  public:
    virtual ~PendingWritesObserver() = default;

    /** A write occupied a pending-writes entry on @p node. */
    virtual void
    onPendingInsert(NodeId node, std::uint32_t tag, Vpn vpn,
                    Addr word_offset)
    {
        (void)node; (void)tag; (void)vpn; (void)word_offset;
    }

    /** The entry with @p tag retired (acknowledged or completed). */
    virtual void
    onPendingComplete(NodeId node, std::uint32_t tag)
    {
        (void)node; (void)tag;
    }
};

/** Observer of protocol milestones inside proto::CoherenceManager. */
class ProtoObserver
{
  public:
    virtual ~ProtoObserver() = default;

    /**
     * A write — or, when @p from_rmw, a tracked interlocked operation's
     * pseudo-write — was issued by @p node and entered its pending-writes
     * cache under @p tag. Qualifies the matching onPendingInsert().
     */
    virtual void
    onWriteIssued(NodeId node, std::uint32_t tag, Vpn vpn, Addr word_offset,
                  bool from_rmw)
    {
        (void)node; (void)tag; (void)vpn; (void)word_offset; (void)from_rmw;
    }

    /**
     * Chain @p chain applied its effects at @p copy of page @p vpn.
     * @p at_master is the applying manager's own belief that it acted as
     * the chain's head; the checker validates it against the copy-list.
     * @p tracked says the chain retires a pending-writes entry
     * (@p originator, @p tag) when its tail acknowledges.
     */
    virtual void
    onChainApplied(ChainId chain, PhysPage copy, Vpn vpn, Addr word_offset,
                   unsigned words, NodeId originator, std::uint32_t tag,
                   bool tracked, bool at_master)
    {
        (void)chain; (void)copy; (void)vpn; (void)word_offset; (void)words;
        (void)originator; (void)tag; (void)tracked; (void)at_master;
    }

    /**
     * A blocking fence completed on @p node; @p pending_empty reports the
     * pending-writes cache state at that instant (must be empty).
     */
    virtual void
    onFenceComplete(NodeId node, bool pending_empty)
    {
        (void)node; (void)pending_empty;
    }

    /**
     * A processor-side read was served on @p node after any conflicting
     * pending-write wait (must find no same-node write still in flight).
     */
    virtual void
    onReadServed(NodeId node, Vpn vpn, Addr word_offset)
    {
        (void)node; (void)vpn; (void)word_offset;
    }
};

/** Observer of structural mutations of a mem::CopyList. */
class CopyListObserver
{
  public:
    virtual ~CopyListObserver() = default;

    /** The list changed via @p op (insert/append/remove/reorder). */
    virtual void
    onCopyListMutated(const mem::CopyList& list, const char* op)
    {
        (void)list; (void)op;
    }
};

/** Observer of application-level accesses inside node::Processor. */
class ProcObserver
{
  public:
    virtual ~ProcObserver() = default;

    /** Thread @p tid completed a coherent read of @p vaddr. */
    virtual void
    onProcRead(NodeId node, ThreadId tid, Addr vaddr)
    {
        (void)node; (void)tid; (void)vaddr;
    }

    /** Thread @p tid issued a coherent write of @p vaddr. */
    virtual void
    onProcWrite(NodeId node, ThreadId tid, Addr vaddr)
    {
        (void)node; (void)tid; (void)vaddr;
    }

    /** Thread @p tid issued an interlocked operation on @p vaddr. */
    virtual void
    onProcRmwIssue(NodeId node, ThreadId tid, Addr vaddr, std::uint8_t op)
    {
        (void)node; (void)tid; (void)vaddr; (void)op;
    }

    /** Thread @p tid consumed the delayed result of an op on @p vaddr. */
    virtual void
    onProcVerify(NodeId node, ThreadId tid, Addr vaddr)
    {
        (void)node; (void)tid; (void)vaddr;
    }

    /** Thread @p tid completed a full (blocking) fence. */
    virtual void
    onProcFence(NodeId node, ThreadId tid)
    {
        (void)node; (void)tid;
    }

    /** Thread @p tid armed the paper's non-blocking write fence. */
    virtual void
    onProcWriteFence(NodeId node, ThreadId tid)
    {
        (void)node; (void)tid;
    }
};

/** Convenience base implementing every hook family. */
class Observer : public PendingWritesObserver,
                 public ProtoObserver,
                 public CopyListObserver,
                 public ProcObserver
{
};

} // namespace check
} // namespace plus

#endif // PLUS_CHECK_HOOKS_HPP_
