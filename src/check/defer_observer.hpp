/**
 * @file
 * Deferred-execution observer wrappers for the parallel engine backend.
 *
 * The checker and the telemetry tracer are shared, order-sensitive
 * state: their hooks must observe events in the one canonical order
 * every backend realises. Worker threads therefore never call them
 * directly — core::Machine interposes these wrappers when the parallel
 * backend is active, and every hook value-captures its arguments and
 * runs the real observer through sim::Engine::defer(), which replays
 * buffered effects in global key order with now() restored to the
 * emitting event's time. On the serial backends defer() is an inline
 * call, so the wrappers are never installed there (one virtual hop
 * saved); either way the observers see byte-identical streams.
 *
 * The one reference-taking hook, onCopyListMutated, passes through
 * inline: copy-lists are mutated from machine context only, which under
 * the parallel backend executes stop-the-world between windows.
 */

#ifndef PLUS_CHECK_DEFER_OBSERVER_HPP_
#define PLUS_CHECK_DEFER_OBSERVER_HPP_

#include <cstdint>

#include "check/hooks.hpp"
#include "common/types.hpp"
#include "sim/engine.hpp"

namespace plus {
namespace check {

/** Defers every Observer hook through the engine (see file comment). */
class DeferringObserver final : public Observer
{
  public:
    DeferringObserver(sim::Engine& engine, Observer* inner)
        : engine_(engine), inner_(inner)
    {
    }

    void
    onPendingInsert(NodeId node, std::uint32_t tag, Vpn vpn,
                    Addr word_offset) override
    {
        defer(&Observer::onPendingInsert, node, tag, vpn, word_offset);
    }

    void
    onPendingComplete(NodeId node, std::uint32_t tag) override
    {
        defer(&Observer::onPendingComplete, node, tag);
    }

    void
    onWriteIssued(NodeId node, std::uint32_t tag, Vpn vpn, Addr word_offset,
                  bool from_rmw) override
    {
        defer(&Observer::onWriteIssued, node, tag, vpn, word_offset,
              from_rmw);
    }

    void
    onChainApplied(ChainId chain, PhysPage copy, Vpn vpn, Addr word_offset,
                   unsigned words, NodeId originator, std::uint32_t tag,
                   bool tracked, bool at_master) override
    {
        defer(&Observer::onChainApplied, chain, copy, vpn, word_offset,
              words, originator, tag, tracked, at_master);
    }

    void
    onFenceComplete(NodeId node, bool pending_empty) override
    {
        defer(&Observer::onFenceComplete, node, pending_empty);
    }

    void
    onReadServed(NodeId node, Vpn vpn, Addr word_offset) override
    {
        defer(&Observer::onReadServed, node, vpn, word_offset);
    }

    void
    onMessageSent(NodeId src, NodeId dst, std::uint8_t msg_class,
                  unsigned bytes, Vpn vpn) override
    {
        defer(&Observer::onMessageSent, src, dst, msg_class, bytes, vpn);
    }

    void
    onMessageProcessed(NodeId src, NodeId dst,
                       std::uint8_t msg_class) override
    {
        defer(&Observer::onMessageProcessed, src, dst, msg_class);
    }

    void
    onPendingAborted(NodeId node, std::uint32_t tag, bool retried) override
    {
        defer(&Observer::onPendingAborted, node, tag, retried);
    }

    void
    onWordInvalidated(NodeId node, Vpn vpn, Addr word_offset) override
    {
        defer(&Observer::onWordInvalidated, node, vpn, word_offset);
    }

    void
    onWordRevalidated(NodeId node, Vpn vpn, Addr word_offset) override
    {
        defer(&Observer::onWordRevalidated, node, vpn, word_offset);
    }

    void
    onOwnershipTransfer(NodeId master, Vpn vpn, NodeId from,
                        NodeId to) override
    {
        defer(&Observer::onOwnershipTransfer, master, vpn, from, to);
    }

    void
    onLocalValueServed(NodeId node, Vpn vpn, Addr word_offset) override
    {
        defer(&Observer::onLocalValueServed, node, vpn, word_offset);
    }

    void
    onCopyListMutated(const mem::CopyList& list, const char* op) override
    {
        // Machine context only; workers are parked, so inline is safe
        // (and required: the reference must not outlive the mutation).
        inner_->onCopyListMutated(list, op);
    }

    void
    onProcRead(NodeId node, ThreadId tid, Addr vaddr) override
    {
        defer(&Observer::onProcRead, node, tid, vaddr);
    }

    void
    onProcWrite(NodeId node, ThreadId tid, Addr vaddr) override
    {
        defer(&Observer::onProcWrite, node, tid, vaddr);
    }

    void
    onProcRmwIssue(NodeId node, ThreadId tid, Addr vaddr,
                   std::uint8_t op) override
    {
        defer(&Observer::onProcRmwIssue, node, tid, vaddr, op);
    }

    void
    onProcVerify(NodeId node, ThreadId tid, Addr vaddr) override
    {
        defer(&Observer::onProcVerify, node, tid, vaddr);
    }

    void
    onProcFence(NodeId node, ThreadId tid) override
    {
        defer(&Observer::onProcFence, node, tid);
    }

    void
    onProcWriteFence(NodeId node, ThreadId tid) override
    {
        defer(&Observer::onProcWriteFence, node, tid);
    }

    void
    onProcPageLost(NodeId node, ThreadId tid, Addr vaddr) override
    {
        defer(&Observer::onProcPageLost, node, tid, vaddr);
    }

    void
    onProcStall(NodeId node, std::uint8_t kind, Cycles start,
                Cycles duration) override
    {
        defer(&Observer::onProcStall, node, kind, start, duration);
    }

  private:
    template <typename Hook, typename... Args>
    void
    defer(Hook hook, Args... args)
    {
        engine_.defer([inner = inner_, hook, ...args = args] {
            (inner->*hook)(args...);
        });
    }

    sim::Engine& engine_;
    Observer* inner_;
};

/** Defers every NetObserver hook through the engine. */
class DeferringNetObserver final : public NetObserver
{
  public:
    DeferringNetObserver(sim::Engine& engine, NetObserver* inner)
        : engine_(engine), inner_(inner)
    {
    }

    void
    onPacketDelivered(NodeId src, NodeId dst, std::uint8_t msg_class,
                      unsigned bytes, unsigned hops, Cycles latency,
                      Cycles queueing) override
    {
        defer(&NetObserver::onPacketDelivered, src, dst, msg_class, bytes,
              hops, latency, queueing);
    }

    void
    onLinkBusy(NodeId from, NodeId to, std::uint8_t msg_class,
               unsigned bytes, Cycles start, Cycles duration) override
    {
        defer(&NetObserver::onLinkBusy, from, to, msg_class, bytes, start,
              duration);
    }

    void
    onPacketDropped(NodeId src, NodeId dst, std::uint8_t msg_class,
                    unsigned bytes, DropReason reason) override
    {
        defer(&NetObserver::onPacketDropped, src, dst, msg_class, bytes,
              reason);
    }

    void
    onRetransmit(NodeId src, NodeId dst, std::uint32_t seq,
                 unsigned attempt) override
    {
        defer(&NetObserver::onRetransmit, src, dst, seq, attempt);
    }

  private:
    template <typename Hook, typename... Args>
    void
    defer(Hook hook, Args... args)
    {
        engine_.defer([inner = inner_, hook, ...args = args] {
            (inner->*hook)(args...);
        });
    }

    sim::Engine& engine_;
    NetObserver* inner_;
};

} // namespace check
} // namespace plus

#endif // PLUS_CHECK_DEFER_OBSERVER_HPP_
