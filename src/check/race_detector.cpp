#include "check/race_detector.hpp"

#include <algorithm>

#include "common/panic.hpp"

namespace plus {
namespace check {

namespace {

using detail::concat;

/** Word-aligned key for a byte address. */
Addr
wordKey(Addr vaddr)
{
    return vaddr & ~(kWordBytes - 1);
}

} // namespace

RaceDetector::RaceDetector(EventTrace* trace, bool panic_on_race)
    : trace_(trace), panicOnRace_(panic_on_race)
{
    PLUS_ASSERT(trace_, "race detector needs an event trace");
}

RaceDetector::ThreadState&
RaceDetector::thread(ThreadId tid)
{
    if (tid >= threads_.size()) {
        threads_.resize(tid + 1);
    }
    return threads_[tid];
}

RaceDetector::WordState&
RaceDetector::word(Addr vaddr)
{
    return words_[wordKey(vaddr)];
}

void
RaceDetector::join(Clock& into, const Clock& from)
{
    if (from.size() > into.size()) {
        into.resize(from.size(), 0);
    }
    for (std::size_t i = 0; i < from.size(); ++i) {
        into[i] = std::max(into[i], from[i]);
    }
}

std::uint64_t
RaceDetector::component(const Clock& clock, std::size_t index)
{
    return index < clock.size() ? clock[index] : 0;
}

bool
RaceDetector::observed(const Clock& clock, const Epoch& epoch,
                       bool write_epoch) const
{
    const std::size_t index =
        2 * static_cast<std::size_t>(epoch.tid) + (write_epoch ? 1 : 0);
    return component(clock, index) >= epoch.value;
}

void
RaceDetector::releaseInto(ThreadState& state, ThreadId tid,
                          WordState& target)
{
    // Publish the fenced-write watermark, never the raw write count: a
    // release does not cover the releaser's unfenced writes (PLUS weak
    // ordering -- the write may still be in flight down the copy-list).
    const std::size_t self = 2 * static_cast<std::size_t>(tid);
    if (state.clock.size() <= self + 1) {
        state.clock.resize(self + 2, 0);
    }
    if (state.clock[self] == 0) {
        state.clock[self] = 1; // epochs start at 1: 0 means "never seen"
    }
    state.clock[self + 1] = state.fencedWrites;
    join(target.clock, state.clock);
    state.clock[self] += 1; // later accesses are not covered by this release
}

void
RaceDetector::classifySync(WordState& word)
{
    if (!word.sync) {
        word.sync = true;
        word.lastWrite = Epoch{};
        word.reads.clear();
        ++syncWords_;
    }
}

void
RaceDetector::report(Addr vaddr, ThreadId first, ThreadId second,
                     const std::string& what)
{
    if (!reported_.insert(wordKey(vaddr)).second) {
        return; // one report per word
    }
    if (panicOnRace_) {
        trace_->violation(concat("data race on address 0x", std::hex, vaddr,
                                 std::dec, " (page ", pageOf(vaddr),
                                 " word ", wordOffsetOf(vaddr),
                                 ") between t", first, " and t", second,
                                 ": ", what));
    }
    races_.push_back(Race{wordKey(vaddr), first, second, what});
}

void
RaceDetector::read(ThreadId tid, Addr vaddr)
{
    ThreadState& t = thread(tid);
    WordState& w = word(vaddr);
    if (w.sync) {
        // Reading a synchronization word acquires it (e.g. spinning on a
        // lock word, Figure 3-2); sync words are exempt from race checks.
        join(t.clock, w.clock);
        return;
    }
    if (w.lastWrite.tid != kInvalidThread && w.lastWrite.tid != tid &&
        !observed(t.clock, w.lastWrite, /*write_epoch=*/true)) {
        report(vaddr, w.lastWrite.tid, tid,
               concat("unordered write by t", w.lastWrite.tid,
                      " and read by t", tid,
                      " (the write was never fenced before being "
                      "published)"));
    }
    const std::size_t self = 2 * static_cast<std::size_t>(tid);
    if (t.clock.size() <= self + 1) {
        t.clock.resize(self + 2, 0);
    }
    if (t.clock[self] == 0) {
        t.clock[self] = 1; // epochs start at 1: 0 means "never seen"
    }
    const Epoch mine{tid, t.clock[self]};
    for (Epoch& epoch : w.reads) {
        if (epoch.tid == tid) {
            epoch = mine;
            return;
        }
    }
    w.reads.push_back(mine);
}

void
RaceDetector::write(ThreadId tid, Addr vaddr)
{
    ThreadState& t = thread(tid);
    WordState& w = word(vaddr);
    if (w.sync) {
        // Writing a synchronization word releases into it: the spinlock
        // unlock idiom stores 0 with a plain write.
        releaseInto(t, tid, w);
        return;
    }
    t.writeCount += 1;
    if (w.lastWrite.tid != kInvalidThread && w.lastWrite.tid != tid &&
        !observed(t.clock, w.lastWrite, /*write_epoch=*/true)) {
        report(vaddr, w.lastWrite.tid, tid,
               concat("unordered writes by t", w.lastWrite.tid, " and t",
                      tid));
    }
    for (const Epoch& epoch : w.reads) {
        if (epoch.tid != tid &&
            !observed(t.clock, epoch, /*write_epoch=*/false)) {
            report(vaddr, epoch.tid, tid,
                   concat("read by t", epoch.tid,
                          " unordered with write by t", tid));
            break;
        }
    }
    w.lastWrite = Epoch{tid, t.writeCount};
    w.reads.clear();
}

void
RaceDetector::rmwIssue(ThreadId tid, Addr vaddr)
{
    ThreadState& t = thread(tid);
    WordState& w = word(vaddr);
    classifySync(w);
    // The delayed operation both reads and writes the word remotely; model
    // issue as the release half (the acquire half lands at verify time).
    releaseInto(t, tid, w);
}

void
RaceDetector::verifyDone(ThreadId tid, Addr vaddr)
{
    ThreadState& t = thread(tid);
    WordState& w = word(vaddr);
    classifySync(w);
    join(t.clock, w.clock);
}

void
RaceDetector::fence(ThreadId tid)
{
    ThreadState& t = thread(tid);
    t.fencedWrites = t.writeCount;
}

void
RaceDetector::writeFence(ThreadId tid)
{
    // The non-blocking write fence orders writes-before against
    // writes-after; by the time any later release write propagates, every
    // fenced write has completed, so the watermark advances just as for
    // the blocking fence.
    fence(tid);
}

} // namespace check
} // namespace plus
