/**
 * @file
 * The plus::check facade: one object implementing every instrumentation
 * hook (check::Observer), recording each event into a bounded trace and
 * fanning it out to the enabled sub-checkers — the protocol invariant
 * checker and the happens-before race detector.
 *
 * core::Machine owns one Checker per machine (when CheckConfig enables
 * anything) and installs it into the coherence managers, pending-writes
 * caches, copy-lists and processors it builds. Everything here runs
 * inside the single-threaded simulation, so no locking is needed.
 */

#ifndef PLUS_CHECK_CHECKER_HPP_
#define PLUS_CHECK_CHECKER_HPP_

#include <memory>

#include "check/hooks.hpp"
#include "check/invariant_checker.hpp"
#include "check/race_detector.hpp"
#include "check/trace.hpp"
#include "common/types.hpp"

namespace plus {

namespace sim {
class Engine;
} // namespace sim

namespace check {

/** What to check; mirrors common::CheckConfig. */
struct Options {
    /** Validate the protocol ordering invariants (panic on violation). */
    bool invariants = true;
    /** Run the happens-before race detector over application accesses. */
    bool races = false;
    /** Panic at the first race instead of recording it. */
    bool panicOnRace = false;
    /** Events of history kept for violation reports. */
    unsigned traceDepth = 64;
};

/** Facade wiring the event stream into the enabled sub-checkers. */
class Checker final : public Observer
{
  public:
    Checker(const Options& options, const sim::Engine* engine);

    /** Install the copy-list resolver (from the machine's directory). */
    void setCopyListResolver(InvariantChecker::CopyListResolver resolver);

    /** The OS mutated the copy-list of @p vpn. */
    void onCopyListChanged(Vpn vpn);

    /** Node @p node fail-stop crashed (machine context). */
    void onNodeCrashed(NodeId node);

    /** Recovery for @p dead completed; its epoch @p epoch sealed. */
    void onEpochSealed(NodeId dead, std::uint64_t epoch);

    const Options& options() const { return options_; }
    EventTrace& trace() { return trace_; }

    /** Null unless Options::invariants. */
    InvariantChecker* invariants() { return invariants_.get(); }

    /** Null unless Options::races. */
    RaceDetector* raceDetector() { return races_.get(); }

    // --- PendingWritesObserver --------------------------------------------

    void onPendingInsert(NodeId node, std::uint32_t tag, Vpn vpn,
                         Addr word_offset) override;
    void onPendingComplete(NodeId node, std::uint32_t tag) override;
    void onPendingAborted(NodeId node, std::uint32_t tag,
                          bool retried) override;

    // --- ProtoObserver ----------------------------------------------------

    void onWriteIssued(NodeId node, std::uint32_t tag, Vpn vpn,
                       Addr word_offset, bool from_rmw) override;
    void onChainApplied(ChainId chain, PhysPage copy, Vpn vpn,
                        Addr word_offset, unsigned words, NodeId originator,
                        std::uint32_t tag, bool tracked,
                        bool at_master) override;
    void onFenceComplete(NodeId node, bool pending_empty) override;
    void onReadServed(NodeId node, Vpn vpn, Addr word_offset) override;
    void onMessageProcessed(NodeId src, NodeId dst,
                            std::uint8_t msg_class) override;
    void onWordInvalidated(NodeId node, Vpn vpn, Addr word_offset) override;
    void onWordRevalidated(NodeId node, Vpn vpn, Addr word_offset) override;
    void onLocalValueServed(NodeId node, Vpn vpn, Addr word_offset) override;

    // --- CopyListObserver -------------------------------------------------

    void onCopyListMutated(const mem::CopyList& list,
                           const char* op) override;

    // --- ProcObserver -----------------------------------------------------

    void onProcRead(NodeId node, ThreadId tid, Addr vaddr) override;
    void onProcWrite(NodeId node, ThreadId tid, Addr vaddr) override;
    void onProcRmwIssue(NodeId node, ThreadId tid, Addr vaddr,
                        std::uint8_t op) override;
    void onProcVerify(NodeId node, ThreadId tid, Addr vaddr) override;
    void onProcFence(NodeId node, ThreadId tid) override;
    void onProcWriteFence(NodeId node, ThreadId tid) override;
    void onProcPageLost(NodeId node, ThreadId tid, Addr vaddr) override;

  private:
    Options options_;
    EventTrace trace_;
    std::unique_ptr<InvariantChecker> invariants_;
    std::unique_ptr<RaceDetector> races_;
};

} // namespace check
} // namespace plus

#endif // PLUS_CHECK_CHECKER_HPP_
