#include "node/cache.hpp"

#include "common/panic.hpp"

namespace plus {
namespace node {

Cache::Cache(const CostModel& cost, SnoopPolicy policy)
    : lineWords_(cost.cacheLineWords),
      linesPerPage_(static_cast<unsigned>(kPageWords) / cost.cacheLineWords),
      ways_(cost.cacheWays), policy_(policy)
{
    const unsigned total_lines =
        cost.cacheBytes / (lineWords_ * static_cast<unsigned>(kWordBytes));
    PLUS_ASSERT(total_lines >= ways_, "cache smaller than one set");
    sets_ = total_lines / ways_;
    lines_.resize(static_cast<std::size_t>(sets_) * ways_);
}

Cache::Line*
Cache::find(std::uint64_t line)
{
    const unsigned set = static_cast<unsigned>(line % sets_);
    Line* base = &lines_[static_cast<std::size_t>(set) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].tag == line) {
            return &base[w];
        }
    }
    return nullptr;
}

void
Cache::insert(std::uint64_t line)
{
    const unsigned set = static_cast<unsigned>(line % sets_);
    Line* base = &lines_[static_cast<std::size_t>(set) * ways_];
    Line* victim = &base[0];
    for (unsigned w = 0; w < ways_; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lruStamp < victim->lruStamp) {
            victim = &base[w];
        }
    }
    if (victim->valid) {
        ++stats_.evictions;
    }
    victim->valid = true;
    victim->tag = line;
    victim->lruStamp = ++clock_;
}

bool
Cache::accessRead(FrameId frame, Addr word_offset)
{
    const std::uint64_t line = lineNumber(frame, word_offset);
    if (Line* hit = find(line)) {
        hit->lruStamp = ++clock_;
        ++stats_.hits;
        return true;
    }
    ++stats_.misses;
    insert(line);
    return false;
}

bool
Cache::accessWrite(FrameId frame, Addr word_offset)
{
    // Write-through, no write-allocate: presence unchanged on a miss.
    const std::uint64_t line = lineNumber(frame, word_offset);
    if (Line* hit = find(line)) {
        hit->lruStamp = ++clock_;
        return true;
    }
    return false;
}

void
Cache::snoop(FrameId frame, Addr word_offset)
{
    const std::uint64_t line = lineNumber(frame, word_offset);
    Line* hit = find(line);
    if (!hit) {
        return;
    }
    if (policy_ == SnoopPolicy::Update) {
        ++stats_.snoopUpdates;
    } else {
        hit->valid = false;
        ++stats_.snoopInvalidates;
    }
}

void
Cache::flush()
{
    for (Line& line : lines_) {
        line.valid = false;
    }
}

} // namespace node
} // namespace plus
