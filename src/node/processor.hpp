/**
 * @file
 * Execution-driven processor timing model.
 *
 * Application threads run as fibers; every shared-memory or
 * synchronization operation they perform is charged its cost-model
 * cycles by yielding to the event loop until the operation's completion
 * time. Between shared references, application code declares its
 * computation with compute(), exactly like the paper's simulator
 * ("from the instruction stream, the simulator also computes an
 * approximate estimate of execution time between simulated shared memory
 * references").
 *
 * Three latency-hiding modes reproduce the processor variants of the
 * evaluation (Figure 3-1):
 *  - Blocking: rmw() waits for the result before returning.
 *  - Delayed: the program uses the issueRmw()/verify() split; the
 *    processor stalls only when a result is consumed too early.
 *  - ContextSwitch: several threads reside on the processor; when one
 *    blocks on a synchronization result the processor pays
 *    ctxSwitchCycles and runs another.
 */

#ifndef PLUS_NODE_PROCESSOR_HPP_
#define PLUS_NODE_PROCESSOR_HPP_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "check/hooks.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "node/cache.hpp"
#include "proto/coherence_manager.hpp"
#include "sim/fiber.hpp"

namespace plus {

namespace sim {
class Engine;
} // namespace sim

namespace mem {
class PageTable;
} // namespace mem

namespace node {

/** Why the processor (or a thread) is waiting. */
enum class StallKind : unsigned {
    None = 0,
    Read,        ///< blocking read (remote data or conflicting pending write)
    Verify,      ///< delayed-op result not yet available
    Fence,       ///< draining the pending-writes cache
    PendingFull, ///< pending-writes cache full at write issue
    IssueSlot,   ///< delayed-op cache full at issue
    PageFault,   ///< lazy page-table fill
    Idle,        ///< no runnable thread
    NumKinds,
};

const char* toString(StallKind kind);

/** Cycle and event accounting for one processor. */
struct ProcessorStats {
    Cycles compute = 0;     ///< declared application computation
    Cycles memBusy = 0;     ///< cache/memory access cost of reads+writes
    Cycles issueBusy = 0;   ///< issuing delayed operations
    Cycles verifyBusy = 0;  ///< consuming delayed-op results
    Cycles ctxOverhead = 0; ///< context-switch cycles
    Cycles stall[static_cast<unsigned>(StallKind::NumKinds)] = {};

    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rmwIssues = 0;
    std::uint64_t fences = 0;
    std::uint64_t ctxSwitches = 0;
    std::uint64_t pageFaults = 0;
    std::uint64_t pageLostFaults = 0; ///< degraded accesses to lost pages

    /** Cycles the processor did work the application asked for. */
    Cycles
    busyUseful() const
    {
        return compute + memBusy + issueBusy + verifyBusy;
    }

    Cycles totalStall() const;
    Cycles idle() const
    {
        return stall[static_cast<unsigned>(StallKind::Idle)];
    }
};

/** One PLUS node's processor with its resident threads. */
class Processor
{
  public:
    /** Resolve a virtual page to this node's physical copy. */
    struct Translation {
        PhysPage page;
        bool faulted = false; ///< a lazy page-table fill happened
        /**
         * The page lost its last physical copy to a fail-stop node
         * crash: the access completes degraded (kPageLostValue) in
         * bounded time instead of faulting forever.
         */
        bool lost = false;
    };
    using Translator = std::function<Translation(Vpn)>;

    struct Deps {
        sim::Engine* engine = nullptr;
        proto::CoherenceManager* cm = nullptr;
        Cache* cache = nullptr; ///< may be null when cache modelling is off
    };

    Processor(NodeId self, const CostModel& cost, ProcessorMode mode,
              std::size_t stack_bytes, Deps deps);
    ~Processor();

    Processor(const Processor&) = delete;
    Processor& operator=(const Processor&) = delete;

    NodeId nodeId() const { return self_; }
    ProcessorMode mode() const { return mode_; }

    /** Install the OS translation service. */
    void setTranslator(Translator t) { translate_ = std::move(t); }

    /**
     * Mirror application-level accesses into the plus::check subsystem
     * (feeds the happens-before race detector). Null disables.
     */
    void setCheckObserver(check::ProcObserver* check) { check_ = check; }

    /** Invoked once every resident thread has finished. */
    void setAllFinishedHandler(std::function<void()> fn)
    {
        allFinished_ = std::move(fn);
    }

    /**
     * Add a thread to run on this processor. Blocking and Delayed modes
     * host one thread; ContextSwitch mode hosts any number.
     * @return the thread's index on this processor.
     */
    unsigned addThread(ThreadId id, std::function<void()> body);

    /** Make every thread runnable at the current cycle. */
    void start();

    /**
     * Fail-stop: the node hosting this processor crashed. Freezes every
     * resident thread where it stands — fibers are never resumed again
     * (their stacks unwind at teardown), wake-ups and dispatches become
     * no-ops — and returns how many threads were written off (those not
     * yet finished), so the machine can settle its liveness accounting.
     * Machine context only; idempotent (returns 0 when already halted).
     */
    unsigned halt();

    bool halted() const { return halted_; }

    bool allFinished() const { return finished_ == threads_.size(); }
    unsigned threadCount() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /** Id of the thread currently executing (valid inside a body). */
    ThreadId currentThreadId() const;

    // --- operations callable only from a resident thread's fiber ---------

    /** Declare @p cycles of local computation. */
    void compute(Cycles cycles);

    /**
     * Spin-loop hint: in ContextSwitch mode, voluntarily hand the
     * processor to another resident runnable thread (paying the switch
     * cost at dispatch); a no-op otherwise. Busy-wait loops must call
     * this so co-resident threads can make progress.
     */
    void yieldNow();

    /** Coherent shared-memory read of the word at @p vaddr. */
    Word read(Addr vaddr);

    /** Coherent shared-memory write; non-blocking past the issue cost. */
    void write(Addr vaddr, Word value);

    /** Issue a delayed interlocked operation; returns its handle. */
    proto::DelayedOpHandle issueRmw(proto::RmwOp op, Addr vaddr,
                                    Word operand);

    /** True once the result of @p handle can be read without blocking. */
    bool rmwReady(proto::DelayedOpHandle handle) const;

    /** Read (and consume) a delayed operation's result. */
    Word verify(proto::DelayedOpHandle handle);

    /** Convenience: issue + verify according to the processor mode. */
    Word rmw(proto::RmwOp op, Addr vaddr, Word operand);

    /** Full drain: wait until every prior write has completed. */
    void fence();

    /**
     * The paper's explicit write fence: subsequent writes and
     * interlocked issues are held until all earlier writes complete,
     * but this processor continues immediately (reads and computation
     * are not blocked).
     */
    void writeFence();

    const ProcessorStats& stats() const { return stats_; }

  private:
    static constexpr unsigned kNone = ~0u;

    enum class ThreadState : std::uint8_t {
        Created, Ready, Running, Blocked, Finished
    };

    struct Thread {
        ThreadId id = 0;
        ThreadState state = ThreadState::Created;
        std::unique_ptr<sim::Fiber> fiber;
        /** Mailbox for values delivered by continuations. */
        Word pendingValue = 0;
    };

    Thread& current();

    /** Charge @p cycles to @p bucket and advance simulated time. */
    void charge(Cycles cycles, Cycles ProcessorStats::* bucket);

    /**
     * Block the running thread until wake() is called for it; the
     * processor's waiting time is attributed to @p kind.
     */
    void blockCurrent(StallKind kind);

    /** Make thread @p t runnable and kick the dispatcher. */
    void wake(unsigned t);

    void scheduleDispatch();
    void dispatch();
    void resumeThread(unsigned t);

    /** Account the just-ended free interval. */
    void closeFreeInterval();

    Translation translateCharged(Vpn vpn);

    /**
     * Deliver the degraded completion for an access to a lost page:
     * bounded OS-fault cost, a ProcPageLost check event, and the
     * kPageLostValue sentinel.
     */
    Word faultPageLost(Addr vaddr);

    NodeId self_;
    CostModel cost_;
    ProcessorMode mode_;
    std::size_t stackBytes_;
    Deps deps_;
    Translator translate_;
    std::function<void()> allFinished_;
    check::ProcObserver* check_ = nullptr;

    /**
     * Target address of each outstanding delayed operation, so verify()
     * can report which word the acquire synchronized on. Keyed by handle;
     * the entry is consumed at verify entry, before the cache slot (and
     * with it the handle) can be reused.
     */
    std::unordered_map<proto::DelayedOpHandle, Addr> rmwTargets_;

    std::vector<Thread> threads_;
    std::deque<unsigned> readyQueue_;
    unsigned current_ = kNone;
    unsigned lastRun_ = kNone;
    unsigned finished_ = 0;
    bool dispatchScheduled_ = false;
    /** Fail-stop crash: no thread on this processor ever runs again. */
    bool halted_ = false;

    Cycles freeSince_ = 0;
    StallKind freeReason_ = StallKind::Idle;

    ProcessorStats stats_;
};

} // namespace node
} // namespace plus

#endif // PLUS_NODE_PROCESSOR_HPP_
