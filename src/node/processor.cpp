#include "node/processor.hpp"

#include <memory>

#include "common/log.hpp"
#include "common/panic.hpp"
#include "sim/engine.hpp"
#include "telemetry/prof.hpp"

namespace plus {
namespace node {

namespace {

/**
 * State shared between an operation and its completion continuation.
 * Lives on the issuing fiber's stack: the fiber stays blocked (stack
 * intact) until the continuation runs, and at teardown un-run
 * continuations are destroyed, never invoked, so a raw pointer capture
 * is safe and keeps the closure within sim::Event's inline budget.
 */
struct WaitState {
    bool done = false;
    bool yielded = false;
    Word value = 0;
    proto::DelayedOpHandle handle = 0;
};

} // namespace

const char*
toString(StallKind kind)
{
    switch (kind) {
      case StallKind::None: return "none";
      case StallKind::Read: return "read";
      case StallKind::Verify: return "verify";
      case StallKind::Fence: return "fence";
      case StallKind::PendingFull: return "pending-full";
      case StallKind::IssueSlot: return "issue-slot";
      case StallKind::PageFault: return "page-fault";
      case StallKind::Idle: return "idle";
      default: return "?";
    }
}

Cycles
ProcessorStats::totalStall() const
{
    Cycles total = 0;
    for (unsigned k = 0; k < static_cast<unsigned>(StallKind::NumKinds);
         ++k) {
        if (k != static_cast<unsigned>(StallKind::Idle)) {
            total += stall[k];
        }
    }
    return total;
}

Processor::Processor(NodeId self, const CostModel& cost, ProcessorMode mode,
                     std::size_t stack_bytes, Deps deps)
    : self_(self), cost_(cost), mode_(mode), stackBytes_(stack_bytes),
      deps_(deps)
{
    PLUS_ASSERT(deps_.engine && deps_.cm, "processor missing dependencies");
}

Processor::~Processor() = default;

unsigned
Processor::addThread(ThreadId id, std::function<void()> body)
{
    if (mode_ != ProcessorMode::ContextSwitch) {
        PLUS_ASSERT(threads_.empty(),
                    "only ContextSwitch mode hosts multiple threads");
    }
    Thread thread;
    thread.id = id;
    thread.fiber = std::make_unique<sim::Fiber>(std::move(body),
                                                stackBytes_);
    threads_.push_back(std::move(thread));
    return static_cast<unsigned>(threads_.size() - 1);
}

void
Processor::start()
{
    for (unsigned t = 0; t < threads_.size(); ++t) {
        if (threads_[t].state == ThreadState::Created) {
            wake(t);
        }
    }
}

unsigned
Processor::halt()
{
    if (halted_) {
        return 0;
    }
    halted_ = true;
    // Threads stay in whatever state they were in — the gates in
    // wake()/dispatch()/resumeThread() ensure none of them ever runs
    // again, and already-scheduled resume events find their asserts
    // intact and then fall through the resumeThread gate.
    const unsigned written_off =
        static_cast<unsigned>(threads_.size()) - finished_;
    PLUS_LOG(LogComponent::Node, "n", self_, " halted, ", written_off,
             " thread(s) written off");
    return written_off;
}

Processor::Thread&
Processor::current()
{
    PLUS_ASSERT(current_ != kNone, "no thread is running");
    return threads_[current_];
}

ThreadId
Processor::currentThreadId() const
{
    PLUS_ASSERT(current_ != kNone, "no thread is running");
    return threads_[current_].id;
}

void
Processor::charge(Cycles cycles, Cycles ProcessorStats::* bucket)
{
    stats_.*bucket += cycles;
    if (cycles == 0) {
        return;
    }
    const unsigned t = current_;
    deps_.engine->schedule(cycles, [this, t] {
        PLUS_ASSERT(current_ == t, "processor lost its running thread");
        resumeThread(t);
    });
    sim::Fiber::yield();
}

void
Processor::blockCurrent(StallKind kind)
{
    const unsigned t = current_;
    threads_[t].state = ThreadState::Blocked;
    current_ = kNone;
    lastRun_ = t;
    freeSince_ = deps_.engine->now();
    freeReason_ = kind;
    if (!readyQueue_.empty()) {
        scheduleDispatch();
    }
    sim::Fiber::yield();
}

void
Processor::wake(unsigned t)
{
    if (halted_) {
        // A continuation for an operation that completed after the
        // crash (recovery replays, pre-crash acks): the thread is dead,
        // the completion is discarded.
        return;
    }
    Thread& thread = threads_[t];
    PLUS_ASSERT(thread.state == ThreadState::Blocked ||
                    thread.state == ThreadState::Created,
                "wake of a thread that is not waiting");
    thread.state = ThreadState::Ready;
    readyQueue_.push_back(t);
    if (current_ == kNone) {
        scheduleDispatch();
    }
}

void
Processor::scheduleDispatch()
{
    if (dispatchScheduled_) {
        return;
    }
    dispatchScheduled_ = true;
    deps_.engine->schedule(0, [this] {
        dispatchScheduled_ = false;
        dispatch();
    });
}

void
Processor::dispatch()
{
    if (halted_ || current_ != kNone || readyQueue_.empty()) {
        return;
    }
    const prof::ScopedPhase prof_scope(prof::Phase::ProcDispatch);
    const unsigned t = readyQueue_.front();
    readyQueue_.pop_front();
    PLUS_ASSERT(threads_[t].state == ThreadState::Ready,
                "non-ready thread in the ready queue");
    closeFreeInterval();
    current_ = t; // reserve the processor through any switch overhead

    const bool switching = mode_ == ProcessorMode::ContextSwitch &&
                           lastRun_ != kNone && lastRun_ != t;
    if (switching && cost_.ctxSwitchCycles > 0) {
        stats_.ctxSwitches += 1;
        stats_.ctxOverhead += cost_.ctxSwitchCycles;
        deps_.engine->schedule(cost_.ctxSwitchCycles,
                               [this, t] { resumeThread(t); });
    } else {
        resumeThread(t);
    }
}

void
Processor::resumeThread(unsigned t)
{
    if (halted_) {
        // An in-flight charge or page-fault event outlived the crash;
        // the fiber is frozen where it yielded and unwinds at teardown.
        return;
    }
    PLUS_ASSERT(current_ == t, "resume of a thread that lost the CPU");
    Thread& thread = threads_[t];
    thread.state = ThreadState::Running;
    thread.fiber->resume();

    // The fiber yielded: either the thread finished, blocked, or is in a
    // timed charge (in which case current_ is still t and an event will
    // resume it).
    if (thread.fiber->finished()) {
        thread.state = ThreadState::Finished;
        ++finished_;
        current_ = kNone;
        lastRun_ = t;
        freeSince_ = deps_.engine->now();
        freeReason_ = StallKind::Idle;
        if (!readyQueue_.empty()) {
            scheduleDispatch();
        }
        if (finished_ == threads_.size() && allFinished_) {
            allFinished_();
        }
    }
}

void
Processor::closeFreeInterval()
{
    const Cycles waited = deps_.engine->now() - freeSince_;
    stats_.stall[static_cast<unsigned>(freeReason_)] += waited;
    if (check_ && waited > 0 && freeReason_ != StallKind::None) {
        check_->onProcStall(self_,
                            static_cast<std::uint8_t>(freeReason_),
                            freeSince_, waited);
    }
    freeReason_ = StallKind::None;
}

Processor::Translation
Processor::translateCharged(Vpn vpn)
{
    PLUS_ASSERT(translate_, "processor has no translator");
    Translation tr = translate_(vpn);
    if (tr.faulted) {
        // Lazy page-table fill by the OS exception handler.
        stats_.pageFaults += 1;
        const Cycles c = cost_.osPageFillCycles;
        stats_.stall[static_cast<unsigned>(StallKind::PageFault)] += c;
        const unsigned t = current_;
        deps_.engine->schedule(c, [this, t] {
            PLUS_ASSERT(current_ == t, "processor lost its thread");
            resumeThread(t);
        });
        sim::Fiber::yield();
    }
    return tr;
}

Word
Processor::faultPageLost(Addr vaddr)
{
    // Degraded-mode serving: the OS detects the lost mapping at
    // translation time and delivers a bounded fault instead of letting
    // the access wait forever for a copy that no longer exists.
    stats_.pageLostFaults += 1;
    const Cycles c = cost_.osPageFillCycles;
    stats_.stall[static_cast<unsigned>(StallKind::PageFault)] += c;
    if (c > 0) {
        const unsigned t = current_;
        deps_.engine->schedule(c, [this, t] {
            PLUS_ASSERT(current_ == t, "processor lost its thread");
            resumeThread(t);
        });
        sim::Fiber::yield();
    }
    if (check_) {
        check_->onProcPageLost(self_, threads_[current_].id, vaddr);
    }
    return kPageLostValue;
}

void
Processor::compute(Cycles cycles)
{
    charge(cycles, &ProcessorStats::compute);
}

void
Processor::yieldNow()
{
    if (mode_ != ProcessorMode::ContextSwitch || readyQueue_.empty()) {
        return;
    }
    const unsigned t = current_;
    threads_[t].state = ThreadState::Ready;
    readyQueue_.push_back(t);
    current_ = kNone;
    lastRun_ = t;
    freeSince_ = deps_.engine->now();
    freeReason_ = StallKind::None;
    scheduleDispatch();
    sim::Fiber::yield();
}

Word
Processor::read(Addr vaddr)
{
    PLUS_ASSERT(wordAligned(vaddr), "unaligned read at ", vaddr);
    stats_.reads += 1;
    const Vpn vpn = pageOf(vaddr);
    const Addr off = wordOffsetOf(vaddr);
    const Translation tr = translateCharged(vpn);
    if (tr.lost) {
        return faultPageLost(vaddr);
    }
    const PhysAddr phys{tr.page, off};
    const bool local = tr.page.node == self_;

    if (local) {
        Cycles c = cost_.cacheHit;
        if (deps_.cache) {
            c = deps_.cache->accessRead(tr.page.frame, off)
                    ? cost_.cacheHit
                    : cost_.cacheMissFill;
        }
        charge(c, &ProcessorStats::memBusy);
    } else {
        charge(cost_.procRemoteReadIssue, &ProcessorStats::memBusy);
    }

    WaitState state;
    const unsigned t = current_;
    deps_.cm->procRead(vpn, off, phys, [this, &state, t](Word value) {
        state.value = value;
        state.done = true;
        if (state.yielded) {
            wake(t);
        }
    });
    if (!state.done) {
        state.yielded = true;
        blockCurrent(StallKind::Read);
    }
    if (!local) {
        charge(cost_.procRemoteReadComplete, &ProcessorStats::memBusy);
    }
    if (check_) {
        check_->onProcRead(self_, threads_[t].id, vaddr);
    }
    return state.value;
}

void
Processor::write(Addr vaddr, Word value)
{
    PLUS_ASSERT(wordAligned(vaddr), "unaligned write at ", vaddr);
    stats_.writes += 1;
    const Vpn vpn = pageOf(vaddr);
    const Addr off = wordOffsetOf(vaddr);
    const Translation tr = translateCharged(vpn);
    if (tr.lost) {
        // Writes to a lost page are dropped: there is no copy left to
        // apply them to, and degraded mode favours bounded completion.
        faultPageLost(vaddr);
        return;
    }
    const PhysAddr phys{tr.page, off};

    if (tr.page.node == self_) {
        if (deps_.cache) {
            deps_.cache->accessWrite(tr.page.frame, off);
        }
        charge(cost_.cacheWriteThrough, &ProcessorStats::memBusy);
    } else {
        charge(cost_.procIssueWrite, &ProcessorStats::memBusy);
    }

    WaitState state;
    const unsigned t = current_;
    deps_.cm->procWrite(vpn, off, phys, value, [this, &state, t] {
        state.done = true;
        if (state.yielded) {
            wake(t);
        }
    });
    if (!state.done) {
        state.yielded = true;
        blockCurrent(StallKind::PendingFull);
    }
    if (check_) {
        check_->onProcWrite(self_, threads_[t].id, vaddr);
    }
}

proto::DelayedOpHandle
Processor::issueRmw(proto::RmwOp op, Addr vaddr, Word operand)
{
    PLUS_ASSERT(wordAligned(vaddr), "unaligned rmw at ", vaddr);
    stats_.rmwIssues += 1;
    const Vpn vpn = pageOf(vaddr);
    const Addr off = wordOffsetOf(vaddr);
    const Translation tr = translateCharged(vpn);
    if (tr.lost) {
        // The operation still occupies a delayed-op slot so the
        // issue/verify protocol is uniform, but it completes locally
        // and immediately with the sentinel: there is no master copy
        // left to execute it at.
        faultPageLost(vaddr);
        charge(cost_.procIssueOp, &ProcessorStats::issueBusy);
        WaitState state;
        const unsigned t = current_;
        deps_.cm->procIssueLostRmw(
            op, [this, &state, t](proto::DelayedOpHandle handle) {
                state.handle = handle;
                state.done = true;
                if (state.yielded) {
                    wake(t);
                }
            });
        if (!state.done) {
            state.yielded = true;
            blockCurrent(StallKind::IssueSlot);
        }
        rmwTargets_[state.handle] = vaddr;
        if (check_) {
            check_->onProcRmwIssue(self_, threads_[t].id, vaddr,
                                   static_cast<std::uint8_t>(op));
        }
        return state.handle;
    }
    const PhysAddr phys{tr.page, off};

    if (cost_.implicitFenceOnSync) {
        // DASH-style ablation: synchronization operations are strongly
        // ordered behind all earlier writes.
        fence();
    }
    charge(cost_.procIssueOp, &ProcessorStats::issueBusy);

    WaitState state;
    const unsigned t = current_;
    deps_.cm->procIssueRmw(
        op, vpn, off, phys, operand,
        [this, &state, t](proto::DelayedOpHandle handle) {
            state.handle = handle;
            state.done = true;
            if (state.yielded) {
                wake(t);
            }
        });
    if (!state.done) {
        state.yielded = true;
        blockCurrent(StallKind::IssueSlot);
    }
    rmwTargets_[state.handle] = vaddr;
    if (check_) {
        check_->onProcRmwIssue(self_, threads_[t].id, vaddr,
                               static_cast<std::uint8_t>(op));
    }
    return state.handle;
}

bool
Processor::rmwReady(proto::DelayedOpHandle handle) const
{
    return deps_.cm->rmwReady(handle);
}

Word
Processor::verify(proto::DelayedOpHandle handle)
{
    // Resolve the handle's target before the wait: once the result is
    // consumed the cache slot (and the handle) can be reallocated.
    Addr target = kInvalidAddr;
    if (auto it = rmwTargets_.find(handle); it != rmwTargets_.end()) {
        target = it->second;
        rmwTargets_.erase(it);
    }
    WaitState state;
    const unsigned t = current_;
    deps_.cm->procVerify(handle, [this, &state, t](Word value) {
        state.value = value;
        state.done = true;
        if (state.yielded) {
            wake(t);
        }
    });
    if (!state.done) {
        // Result not available: in ContextSwitch mode blockCurrent lets
        // another resident thread run; otherwise the processor stalls.
        state.yielded = true;
        blockCurrent(StallKind::Verify);
    }
    charge(cost_.procReadResult, &ProcessorStats::verifyBusy);
    if (check_ && target != kInvalidAddr) {
        check_->onProcVerify(self_, threads_[t].id, target);
    }
    return state.value;
}

Word
Processor::rmw(proto::RmwOp op, Addr vaddr, Word operand)
{
    const proto::DelayedOpHandle handle = issueRmw(op, vaddr, operand);
    return verify(handle);
}

void
Processor::writeFence()
{
    stats_.fences += 1;
    deps_.cm->procWriteFence();
    charge(1, &ProcessorStats::issueBusy);
    if (check_) {
        check_->onProcWriteFence(self_, currentThreadId());
    }
}

void
Processor::fence()
{
    stats_.fences += 1;
    WaitState state;
    const unsigned t = current_;
    deps_.cm->procFence([this, &state, t] {
        state.done = true;
        if (state.yielded) {
            wake(t);
        }
    });
    if (!state.done) {
        state.yielded = true;
        blockCurrent(StallKind::Fence);
    }
    if (check_) {
        check_->onProcFence(self_, threads_[t].id);
    }
}

} // namespace node
} // namespace plus
