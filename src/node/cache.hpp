/**
 * @file
 * Timing model of the processor's primary cache (32 Kbyte, 4-word lines
 * in the 1990 implementation).
 *
 * Only *local* physical memory is cached; remote references always go
 * through the coherence manager. Because replicated pages must use a
 * write-through policy (all writes must be visible to the coherence
 * manager, Section 2.3), the cache stores no dirty data: the model tracks
 * line presence for timing, while word values always live in LocalMemory.
 * A snooping protocol on the node bus keeps the cache coherent whenever
 * the coherence manager writes local memory; the paper's write-update
 * snoop keeps the line valid, and an invalidating snoop is provided for
 * ablation.
 */

#ifndef PLUS_NODE_CACHE_HPP_
#define PLUS_NODE_CACHE_HPP_

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace plus {
namespace node {

/** How the node-bus snoop treats a line written by the coherence manager. */
enum class SnoopPolicy {
    Update,     ///< keep the line valid (the paper's design)
    Invalidate, ///< evict the line (forces a re-fetch; ablation)
};

/** Set-associative, LRU, presence-only cache model. */
class Cache
{
  public:
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::uint64_t snoopUpdates = 0;
        std::uint64_t snoopInvalidates = 0;
    };

    Cache(const CostModel& cost, SnoopPolicy policy = SnoopPolicy::Update);

    /**
     * Look up the line containing (frame, word offset) for a read,
     * filling it on a miss. @return true on a hit.
     */
    bool accessRead(FrameId frame, Addr word_offset);

    /**
     * Write-through store: updates the line if present (no write
     * allocation on a miss). @return true if the line was present.
     */
    bool accessWrite(FrameId frame, Addr word_offset);

    /** Node-bus snoop for a word written by the coherence manager. */
    void snoop(FrameId frame, Addr word_offset);

    /** Drop all lines (e.g. after a page is remapped). */
    void flush();

    const Stats& stats() const { return stats_; }

    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }

  private:
    struct Line {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t lruStamp = 0;
    };

    /** Global line number of (frame, word offset). */
    std::uint64_t
    lineNumber(FrameId frame, Addr word_offset) const
    {
        return static_cast<std::uint64_t>(frame) * linesPerPage_ +
               word_offset / lineWords_;
    }

    Line* find(std::uint64_t line);
    void insert(std::uint64_t line);

    unsigned lineWords_;
    unsigned linesPerPage_;
    unsigned sets_;
    unsigned ways_;
    SnoopPolicy policy_;
    std::vector<Line> lines_; ///< sets_ * ways_, set-major
    std::uint64_t clock_ = 0;
    Stats stats_;
};

} // namespace node
} // namespace plus

#endif // PLUS_NODE_CACHE_HPP_
