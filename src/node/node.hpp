/**
 * @file
 * One PLUS node: processor + cache + local memory + coherence manager,
 * glued together over the node bus (Figure 2-1 of the paper).
 */

#ifndef PLUS_NODE_NODE_HPP_
#define PLUS_NODE_NODE_HPP_

#include <memory>

#include "common/config.hpp"
#include "common/types.hpp"
#include "mem/coherence_tables.hpp"
#include "mem/local_memory.hpp"
#include "mem/page_table.hpp"
#include "mem/ref_counters.hpp"
#include "node/cache.hpp"
#include "node/processor.hpp"
#include "proto/coherence_manager.hpp"

namespace plus {

namespace sim {
class Engine;
} // namespace sim

namespace net {
class Network;
} // namespace net

namespace node {

/** Assembles and wires one node's components. */
class Node
{
  public:
    /**
     * @param ref_threshold  Remote-reference count at which the
     *                       competitive-replication counters interrupt;
     *                       0 disables the counters.
     */
    Node(NodeId id, const MachineConfig& config, sim::Engine& engine,
         net::Network& network, std::uint64_t ref_threshold);

    NodeId id() const { return id_; }

    mem::LocalMemory& memory() { return memory_; }
    mem::CoherenceTables& tables() { return tables_; }
    mem::PageTable& pageTable() { return pageTable_; }
    mem::RefCounters* refCounters() { return refCounters_.get(); }
    Cache* cache() { return cache_.get(); }
    proto::CoherenceManager& cm() { return *cm_; }
    Processor& processor() { return *processor_; }

    const proto::CoherenceManager& cm() const { return *cm_; }
    const Processor& processor() const { return *processor_; }

  private:
    NodeId id_;
    mem::LocalMemory memory_;
    mem::CoherenceTables tables_;
    mem::PageTable pageTable_;
    std::unique_ptr<mem::RefCounters> refCounters_;
    std::unique_ptr<Cache> cache_;
    std::unique_ptr<proto::CoherenceManager> cm_;
    std::unique_ptr<Processor> processor_;
};

} // namespace node
} // namespace plus

#endif // PLUS_NODE_NODE_HPP_
