#include "node/node.hpp"

#include "net/network.hpp"
#include "sim/engine.hpp"

namespace plus {
namespace node {

Node::Node(NodeId id, const MachineConfig& config, sim::Engine& engine,
           net::Network& network, std::uint64_t ref_threshold)
    : id_(id), memory_(config.framesPerNode)
{
    if (ref_threshold > 0) {
        refCounters_ = std::make_unique<mem::RefCounters>(ref_threshold);
    }
    if (config.cost.modelCache) {
        cache_ = std::make_unique<Cache>(config.cost,
                                         config.cost.snoopInvalidate
                                             ? SnoopPolicy::Invalidate
                                             : SnoopPolicy::Update);
    }

    proto::CoherenceManager::Deps cm_deps;
    cm_deps.engine = &engine;
    cm_deps.network = &network;
    cm_deps.memory = &memory_;
    cm_deps.tables = &tables_;
    cm_deps.refCounters = refCounters_.get();
    cm_ = std::make_unique<proto::CoherenceManager>(
        id, config.cost, cm_deps, config.resolvedProtocol());

    // Node-bus snooping keeps the processor cache coherent with writes
    // performed by the coherence manager.
    if (cache_) {
        cm_->setSnoopHook([this](FrameId frame, Addr off, Word) {
            cache_->snoop(frame, off);
        });
    }

    network.setDeliveryHandler(id, [this](net::Packet packet) {
        cm_->onPacket(std::move(packet));
    });

    Processor::Deps proc_deps;
    proc_deps.engine = &engine;
    proc_deps.cm = cm_.get();
    proc_deps.cache = cache_.get();
    processor_ = std::make_unique<Processor>(id, config.cost, config.mode,
                                             config.threadStackBytes,
                                             proc_deps);
}

} // namespace node
} // namespace plus
