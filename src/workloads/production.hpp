/**
 * @file
 * A forward-chaining production-system workload. The paper's evaluation
 * used "a production system application" (Section 2.5) alongside the
 * shortest-path and speech programs; no numbers are published for it,
 * but it completes the workload suite and exercises a different access
 * mix: read-heavy rule matching against a shared working memory, with
 * interlocked fact assertion.
 *
 * Model (OPS5-style forward chaining, simplified to two-antecedent
 * rules): working memory is a set of facts; each rule `a & b -> c`
 * fires once when both antecedents are present, asserting its
 * consequent. Workers propagate newly asserted facts through a
 * distributed work queue until fixpoint. The host-side reference
 * computes the exact closure.
 */

#ifndef PLUS_WORKLOADS_PRODUCTION_HPP_
#define PLUS_WORKLOADS_PRODUCTION_HPP_

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/machine.hpp"

namespace plus {
namespace workloads {

/** A two-antecedent production rule. */
struct Rule {
    std::uint32_t a;
    std::uint32_t b;
    std::uint32_t c;
};

/** Generated rule base plus initial working memory. */
struct RuleBase {
    std::uint32_t facts = 0;
    std::vector<Rule> rules;
    std::vector<std::uint32_t> initialFacts;
};

/**
 * Random rule base whose closure reaches a healthy fraction of the
 * fact space (chains are threaded through so firing cascades).
 */
RuleBase makeRuleBase(std::uint32_t facts, std::uint32_t rules,
                      std::uint32_t initial, Xoshiro256& rng);

/** Host-side exact fixpoint: which facts end up asserted. */
std::vector<bool> closure(const RuleBase& base);

/** Parameters of one run. */
struct ProductionConfig {
    std::uint32_t facts = 1024;
    std::uint32_t rules = 3072;
    std::uint32_t initialFacts = 12;
    std::uint64_t seed = 1;

    /** Copies of the rule/index pages (read-mostly; prime targets). */
    unsigned replication = 1;

    /** Instruction-stream estimate per attempted match. */
    Cycles computePerMatch = 24;
};

/** Outcome of one run. */
struct ProductionResult {
    bool correct = false; ///< asserted facts equal the exact closure
    Cycles elapsed = 0;
    std::uint64_t matches = 0; ///< antecedent tests performed
    std::uint64_t firings = 0; ///< rules fired
    core::MachineReport report;
};

/** Build the shared image, run one worker per node, verify. */
ProductionResult runProduction(core::Machine& machine,
                               const RuleBase& base,
                               const ProductionConfig& cfg);

/** Convenience: generate the rule base from the config and run. */
ProductionResult runProduction(core::Machine& machine,
                               const ProductionConfig& cfg);

} // namespace workloads
} // namespace plus

#endif // PLUS_WORKLOADS_PRODUCTION_HPP_
