#include "workloads/graph.hpp"

#include <algorithm>
#include <queue>

namespace plus {
namespace workloads {

Graph
makeRandomGraph(std::uint32_t vertices, double avg_degree,
                std::uint32_t max_weight, Xoshiro256& rng)
{
    PLUS_ASSERT(vertices >= 2, "graph needs at least two vertices");
    PLUS_ASSERT(max_weight >= 1, "weights start at 1");
    Graph g(vertices);
    for (std::uint32_t v = 0; v < vertices; ++v) {
        // Connectivity chain (v -> v+1) with a light weight.
        std::vector<Graph::Edge> out;
        if (v + 1 < vertices) {
            out.push_back(
                {v + 1,
                 static_cast<std::uint32_t>(rng.range(1, max_weight))});
        }
        const auto extra = static_cast<std::uint32_t>(
            rng.below(static_cast<std::uint64_t>(2 * avg_degree)));
        for (std::uint32_t i = 0; i < extra; ++i) {
            auto to = static_cast<std::uint32_t>(rng.below(vertices));
            if (to == v) {
                continue;
            }
            out.push_back(
                {to,
                 static_cast<std::uint32_t>(rng.range(1, max_weight))});
        }
        std::sort(out.begin(), out.end(),
                  [](const Graph::Edge& a, const Graph::Edge& b) {
                      return a.to < b.to;
                  });
        for (const auto& e : out) {
            g.addEdge(v, e.to, e.weight);
        }
    }
    g.seal();
    return g;
}

Graph
makeGridGraph(std::uint32_t width, std::uint32_t height,
              std::uint32_t max_weight, double shortcut_frac,
              Xoshiro256& rng)
{
    PLUS_ASSERT(width >= 2 && height >= 2, "degenerate grid");
    const std::uint32_t n = width * height;
    Graph g(n);
    for (std::uint32_t v = 0; v < n; ++v) {
        const std::uint32_t x = v % width;
        const std::uint32_t y = v / width;
        std::vector<Graph::Edge> out;
        auto link = [&](std::uint32_t to) {
            out.push_back(
                {to,
                 static_cast<std::uint32_t>(rng.range(1, max_weight))});
        };
        if (x + 1 < width) {
            link(v + 1);
        }
        if (x > 0) {
            link(v - 1);
        }
        if (y + 1 < height) {
            link(v + width);
        }
        if (y > 0) {
            link(v - width);
        }
        if (rng.chance(shortcut_frac)) {
            const auto to = static_cast<std::uint32_t>(rng.below(n));
            if (to != v) {
                link(to);
            }
        }
        std::sort(out.begin(), out.end(),
                  [](const Graph::Edge& a, const Graph::Edge& b) {
                      return a.to < b.to;
                  });
        for (const auto& e : out) {
            g.addEdge(v, e.to, e.weight);
        }
    }
    g.seal();
    return g;
}

Graph
makeLayeredGraph(std::uint32_t layers, std::uint32_t width,
                 double avg_degree, std::uint32_t max_weight,
                 Xoshiro256& rng)
{
    PLUS_ASSERT(layers >= 2 && width >= 1, "degenerate layered graph");
    Graph g(layers * width);
    for (std::uint32_t l = 0; l + 1 < layers; ++l) {
        for (std::uint32_t s = 0; s < width; ++s) {
            const std::uint32_t v = l * width + s;
            std::vector<Graph::Edge> out;
            // Self-transition-style edge to the same state index keeps
            // every state reachable.
            out.push_back(
                {(l + 1) * width + s,
                 static_cast<std::uint32_t>(rng.range(1, max_weight))});
            const auto extra = static_cast<std::uint32_t>(
                rng.below(static_cast<std::uint64_t>(2 * avg_degree)));
            for (std::uint32_t i = 0; i < extra; ++i) {
                const auto t =
                    static_cast<std::uint32_t>(rng.below(width));
                out.push_back(
                    {(l + 1) * width + t,
                     static_cast<std::uint32_t>(
                         rng.range(1, max_weight))});
            }
            std::sort(out.begin(), out.end(),
                      [](const Graph::Edge& a, const Graph::Edge& b) {
                          return a.to < b.to;
                      });
            for (const auto& e : out) {
                g.addEdge(v, e.to, e.weight);
            }
        }
    }
    g.seal();
    return g;
}

std::vector<std::uint32_t>
dijkstra(const Graph& graph, std::uint32_t source)
{
    std::vector<std::uint32_t> dist(graph.vertices(), kInfDist);
    using Item = std::pair<std::uint32_t, std::uint32_t>; // (dist, vertex)
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[source] = 0;
    pq.push({0, source});
    while (!pq.empty()) {
        const auto [d, v] = pq.top();
        pq.pop();
        if (d != dist[v]) {
            continue;
        }
        const auto [first, last] = graph.outEdges(v);
        for (const Graph::Edge* e = first; e != last; ++e) {
            const std::uint32_t nd = d + e->weight;
            if (nd < dist[e->to]) {
                dist[e->to] = nd;
                pq.push({nd, e->to});
            }
        }
    }
    return dist;
}

} // namespace workloads
} // namespace plus
