#include "workloads/synthetic.hpp"

#include <vector>

#include "common/panic.hpp"
#include "common/rng.hpp"
#include "core/context.hpp"

namespace plus {
namespace workloads {

namespace {

using core::Context;
using core::Machine;

/** Per-node page grid shared by the patterns. */
std::vector<Addr>
allocPages(Machine& machine, unsigned pages_per_node)
{
    std::vector<Addr> pages;
    for (NodeId n = 0; n < machine.nodeCount(); ++n) {
        for (unsigned p = 0; p < pages_per_node; ++p) {
            pages.push_back(machine.alloc(kPageBytes, n));
        }
    }
    return pages;
}

void
runUniform(Machine& machine, const SyntheticConfig& cfg,
           const std::vector<Addr>& pages)
{
    for (NodeId n = 0; n < machine.nodeCount(); ++n) {
        machine.spawn(n, [&pages, cfg, n](Context& ctx) {
            Xoshiro256 rng(cfg.seed * 977 + n);
            for (unsigned i = 0; i < cfg.opsPerNode; ++i) {
                const Addr addr =
                    pages[rng.below(pages.size())] + 4 * rng.below(64);
                if (rng.chance(cfg.writeFraction)) {
                    ctx.write(addr, static_cast<Word>(rng()));
                } else {
                    ctx.read(addr);
                }
                ctx.compute(cfg.computeBetween);
            }
            ctx.fence();
        });
    }
}

void
runHotspot(Machine& machine, const SyntheticConfig& cfg,
           const std::vector<Addr>& pages)
{
    // All traffic goes to the hot node's first page.
    const Addr hot = pages[cfg.hotNode * cfg.pagesPerNode];
    for (NodeId n = 0; n < machine.nodeCount(); ++n) {
        machine.spawn(n, [hot, cfg, n](Context& ctx) {
            Xoshiro256 rng(cfg.seed * 977 + n);
            for (unsigned i = 0; i < cfg.opsPerNode; ++i) {
                const Addr addr = hot + 4 * rng.below(256);
                if (rng.chance(cfg.writeFraction)) {
                    ctx.write(addr, static_cast<Word>(rng()));
                } else {
                    ctx.read(addr);
                }
                ctx.compute(cfg.computeBetween);
            }
            ctx.fence();
        });
    }
}

void
runUpdateFlood(Machine& machine, const SyntheticConfig& cfg,
               const std::vector<Addr>& pages)
{
    // Replicate each node's pages onto its successors, then write hard.
    const unsigned nodes = machine.nodeCount();
    for (NodeId n = 0; n < nodes; ++n) {
        for (unsigned p = 0; p < cfg.pagesPerNode; ++p) {
            const Addr page = pages[n * cfg.pagesPerNode + p];
            for (unsigned c = 1; c < cfg.replication; ++c) {
                machine.replicate(page, (n + c) % nodes);
            }
        }
    }
    machine.settle();
    for (NodeId n = 0; n < nodes; ++n) {
        const Addr own = pages[n * cfg.pagesPerNode];
        machine.spawn(n, [own, cfg](Context& ctx) {
            for (unsigned i = 0; i < cfg.opsPerNode; ++i) {
                ctx.write(own + 4 * (i % 64), i);
                ctx.compute(cfg.computeBetween);
            }
            ctx.fence();
        });
    }
}

void
runProducerConsumer(Machine& machine, const SyntheticConfig& cfg,
                    const std::vector<Addr>& pages, bool* correct)
{
    // Node n streams batches to node (n+1) mod N through its own page:
    // words 1..8 are data, word 0 is the batch flag (Section 2.1 idiom).
    const unsigned nodes = machine.nodeCount();
    PLUS_ASSERT(nodes >= 2, "producer/consumer needs two nodes");
    const unsigned batches = cfg.opsPerNode;
    for (NodeId n = 0; n < nodes; ++n) {
        const Addr out = pages[n * cfg.pagesPerNode];
        const Addr in = pages[((n + nodes - 1) % nodes) *
                              cfg.pagesPerNode];
        machine.spawn(n, [out, in, batches, cfg, n, correct](
                             Context& ctx) {
            for (unsigned b = 1; b <= batches; ++b) {
                // Produce batch b.
                for (Word w = 1; w <= 8; ++w) {
                    ctx.write(out + 4 * w, b * 10 + w);
                }
                ctx.fence();
                ctx.write(out, b); // flag: batch b ready
                // Consume batch b from the predecessor.
                while (ctx.read(in) < b) {
                    ctx.pause(cfg.computeBetween);
                }
                for (Word w = 1; w <= 8; ++w) {
                    if (ctx.read(in + 4 * w) != b * 10 + w) {
                        *correct = false;
                    }
                }
                ctx.compute(cfg.computeBetween);
            }
        });
    }
}

} // namespace

const char*
toString(SyntheticPattern pattern)
{
    switch (pattern) {
      case SyntheticPattern::Uniform: return "uniform";
      case SyntheticPattern::Hotspot: return "hotspot";
      case SyntheticPattern::UpdateFlood: return "update-flood";
      case SyntheticPattern::ProducerConsumer: return "producer-consumer";
      default: return "?";
    }
}

SyntheticResult
runSynthetic(core::Machine& machine, const SyntheticConfig& cfg)
{
    SyntheticResult result;
    const std::vector<Addr> pages =
        allocPages(machine, std::max(1u, cfg.pagesPerNode));

    switch (cfg.pattern) {
      case SyntheticPattern::Uniform:
        runUniform(machine, cfg, pages);
        break;
      case SyntheticPattern::Hotspot:
        runHotspot(machine, cfg, pages);
        break;
      case SyntheticPattern::UpdateFlood:
        runUpdateFlood(machine, cfg, pages);
        break;
      case SyntheticPattern::ProducerConsumer:
        runProducerConsumer(machine, cfg, pages, &result.correct);
        break;
      default:
        PLUS_PANIC("unknown synthetic pattern");
    }

    const Cycles start = machine.now();
    const core::MachineReport baseline = machine.report();
    machine.run();
    result.elapsed = machine.now() - start;
    result.report = machine.report() - baseline;
    result.meanQueueing = machine.network().queueingHistogram().mean();
    return result;
}

} // namespace workloads
} // namespace plus
