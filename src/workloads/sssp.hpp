/**
 * @file
 * The Single Point Shortest Path workload of Section 2.5.
 *
 * "Both sequential and concurrent algorithms for this problem work by
 * propagating the distance cost from one vertex and updating it until no
 * more updates are possible." The parallel implementation follows the
 * paper's design:
 *
 *  - vertices are evenly distributed among the nodes (block partition);
 *  - there is one work queue per node (a single queue serializes on
 *    queue bandwidth);
 *  - when its own queue is empty a processor extracts work from other
 *    queues, in mesh-distance order, for load balance;
 *  - distance relaxation uses the min-xchng interlocked operation;
 *  - at replication level k, each node's vertex-data pages (distances
 *    and adjacency) and queue pages are replicated onto its k-1 nearest
 *    peers, which converts most of the reads a stealing processor makes
 *    into local reads — the effect Table 2-1 quantifies.
 *
 * Termination uses a global outstanding-work counter updated with
 * fetch-and-add.
 */

#ifndef PLUS_WORKLOADS_SSSP_HPP_
#define PLUS_WORKLOADS_SSSP_HPP_

#include <cstdint>
#include <vector>

#include "core/machine.hpp"
#include "core/workq.hpp"
#include "workloads/graph.hpp"

namespace plus {
namespace workloads {

/** Input graph family. */
enum class SsspGraphKind {
    Random, ///< uniform random targets: no spatial locality
    Grid,   ///< 4-neighbour grid + shortcuts: block-partition locality
};

/** Parameters of one shortest-path run. */
struct SsspConfig {
    std::uint32_t vertices = 2048;
    SsspGraphKind kind = SsspGraphKind::Random;
    double avgDegree = 4.0;       ///< Random kind only
    double shortcutFrac = 0.05;   ///< Grid kind only
    std::uint32_t maxWeight = 100;
    std::uint32_t source = 0;
    std::uint64_t seed = 1;

    /** Total copies of each data/queue page (1 = no replication). */
    unsigned replication = 1;

    /** Instruction-stream estimate per dequeued vertex. */
    Cycles computePerVertex = 40;
    /** Instruction-stream estimate per relaxed edge. */
    Cycles computePerEdge = 16;
};

/** Outcome of one run. */
struct SsspResult {
    bool correct = false;          ///< distances match Dijkstra
    Cycles elapsed = 0;            ///< simulated cycles
    std::uint64_t relaxations = 0; ///< min-xchng operations performed
    core::MachineReport report;
};

/**
 * Build the shared-memory image of @p graph in @p machine, run one
 * worker thread per node, and verify the result against Dijkstra.
 * The machine must be freshly constructed.
 */
SsspResult runSssp(core::Machine& machine, const Graph& graph,
                   const SsspConfig& cfg);

/** Convenience: construct the graph from the config and run. */
SsspResult runSssp(core::Machine& machine, const SsspConfig& cfg);

} // namespace workloads
} // namespace plus

#endif // PLUS_WORKLOADS_SSSP_HPP_
