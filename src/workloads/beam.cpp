#include "workloads/beam.hpp"

#include <algorithm>
#include <atomic>

#include "common/panic.hpp"
#include "core/context.hpp"
#include "core/sync.hpp"
#include "core/workq.hpp"

namespace plus {
namespace workloads {

namespace {

using core::NodeBarrier;
using core::NodeBarrierWaiter;
using core::Context;
using core::Machine;
using core::OpHandle;
using core::WorkQueue;

/** Shared-memory image of the layered search space. */
struct BeamImage {
    unsigned nodes = 0;
    std::uint32_t layers = 0;
    std::uint32_t width = 0;
    std::uint32_t perLayerPerNode = 0;

    // Per node: state arrays (score, backptr, lock, queued flag), each
    // one word per local state, plus the adjacency CSR.
    std::vector<Addr> scoreBase;
    std::vector<Addr> backBase;
    std::vector<Addr> lockBase;
    std::vector<Addr> queuedBase;
    std::vector<Addr> rowBase;
    std::vector<Addr> dataBase;

    Addr layerPending = 0; ///< one word per layer
    Addr layerBest = 0;    ///< one word per layer

    std::uint32_t stateOf(std::uint32_t v) const { return v % width; }
    std::uint32_t layerOf(std::uint32_t v) const { return v / width; }
    NodeId owner(std::uint32_t v) const { return stateOf(v) % nodes; }
    std::uint32_t
    localIndex(std::uint32_t v) const
    {
        return layerOf(v) * perLayerPerNode + stateOf(v) / nodes;
    }
    Addr scoreAddr(std::uint32_t v) const
    {
        return scoreBase[owner(v)] + 4 * Addr{localIndex(v)};
    }
    Addr backAddr(std::uint32_t v) const
    {
        return backBase[owner(v)] + 4 * Addr{localIndex(v)};
    }
    Addr lockAddr(std::uint32_t v) const
    {
        return lockBase[owner(v)] + 4 * Addr{localIndex(v)};
    }
    Addr queuedAddr(std::uint32_t v) const
    {
        return queuedBase[owner(v)] + 4 * Addr{localIndex(v)};
    }
    Addr rowAddr(std::uint32_t v) const
    {
        return rowBase[owner(v)] + 8 * Addr{localIndex(v)};
    }
    Addr pendingAddr(std::uint32_t layer) const
    {
        return layerPending + 4 * Addr{layer};
    }
    Addr bestAddr(std::uint32_t layer) const
    {
        return layerBest + 4 * Addr{layer};
    }
};

BeamImage
buildImage(Machine& machine, const Graph& graph, const BeamConfig& cfg)
{
    const unsigned nodes = machine.nodeCount();
    BeamImage img;
    img.nodes = nodes;
    img.layers = cfg.layers;
    img.width = cfg.width;
    img.perLayerPerNode = (cfg.width + nodes - 1) / nodes;

    const std::size_t per_node_states =
        std::size_t{img.perLayerPerNode} * cfg.layers;

    img.scoreBase.resize(nodes);
    img.backBase.resize(nodes);
    img.lockBase.resize(nodes);
    img.queuedBase.resize(nodes);
    img.rowBase.resize(nodes);
    img.dataBase.resize(nodes);

    for (NodeId n = 0; n < nodes; ++n) {
        img.scoreBase[n] = machine.alloc(per_node_states * 4, n);
        img.backBase[n] = machine.alloc(per_node_states * 4, n);
        img.lockBase[n] = machine.alloc(per_node_states * 4, n);
        img.queuedBase[n] = machine.alloc(per_node_states * 4, n);
        img.rowBase[n] = machine.alloc(per_node_states * 8, n);

        std::size_t edge_words = 0;
        for (std::uint32_t v = 0; v < graph.vertices(); ++v) {
            if (img.owner(v) == n) {
                edge_words += 2 * graph.outDegree(v);
            }
        }
        img.dataBase[n] =
            machine.alloc(std::max<std::size_t>(4, edge_words * 4), n);
    }

    // Fill scores and adjacency.
    std::vector<std::size_t> cursor(nodes, 0);
    for (std::uint32_t v = 0; v < graph.vertices(); ++v) {
        const NodeId n = img.owner(v);
        machine.poke(img.scoreAddr(v), kInfDist);
        const auto [fst, lst] = graph.outEdges(v);
        machine.poke(img.rowAddr(v), static_cast<Word>(cursor[n]));
        machine.poke(img.rowAddr(v) + 4, static_cast<Word>(lst - fst));
        for (const Graph::Edge* e = fst; e != lst; ++e) {
            machine.poke(img.dataBase[n] + 4 * cursor[n], e->to);
            machine.poke(img.dataBase[n] + 4 * (cursor[n] + 1),
                         e->weight);
            cursor[n] += 2;
        }
    }

    img.layerPending = machine.alloc(std::size_t{cfg.layers} * 4, 0);
    img.layerBest = machine.alloc(std::size_t{cfg.layers} * 4, 0);
    for (std::uint32_t l = 0; l < cfg.layers; ++l) {
        machine.poke(img.bestAddr(l), kInfDist);
    }

    // Seed: layer-0 state 0 with score 0, already marked queued.
    machine.poke(img.scoreAddr(0), 0);
    machine.poke(img.bestAddr(0), 0);
    machine.poke(img.queuedAddr(0), kTopBit);
    machine.poke(img.pendingAddr(0), 1);

    return img;
}

/** Everything a worker thread needs. */
struct BeamShared {
    const BeamImage* img;
    const BeamConfig* cfg;
    WorkQueue* queues[2]; ///< alternating layer queue sets
    NodeBarrier* barrier;
    std::atomic<std::uint64_t>* expansions;
};

/**
 * Acquire the per-state lock of @p v. Pipelined callers overlap the
 * issue with other work; this helper is the blocking retry loop (no
 * other lock may be held while spinning — deadlock freedom).
 */
void
lockState(Context& ctx, const BeamImage& img, std::uint32_t v)
{
    Cycles backoff = 8;
    while (ctx.fetchSet(img.lockAddr(v)) & kTopBit) {
        ctx.pause(backoff);
        backoff = std::min<Cycles>(backoff * 2, 128);
    }
}

void
unlockState(Context& ctx, const BeamImage& img, std::uint32_t v)
{
    // Score/backptr writes complete before the lock is seen free; the
    // write fence orders without stalling the unlocking processor.
    ctx.writeFence();
    ctx.write(img.lockAddr(v), 0);
}

/**
 * Process one dequeued state: for every successor, lock it, relax its
 * (score, backpointer) pair, and queue it for the next layer when it
 * improves and survives the beam test.
 */
void
expandState(Context& ctx, const BeamShared& sh, std::uint32_t v,
            unsigned next_parity)
{
    const BeamImage& img = *sh.img;
    const BeamConfig& cfg = *sh.cfg;
    const bool pipelined = ctx.mode() == ProcessorMode::Delayed;
    const std::uint32_t layer = img.layerOf(v);

    ctx.compute(cfg.computePerState);
    const Word dv = ctx.read(img.scoreAddr(v));
    const Addr row = img.rowAddr(v);
    const Word offset = ctx.read(row);
    const Word degree = ctx.read(row + 4);
    const Addr data = img.dataBase[img.owner(v)] + 4 * Addr{offset};

    Word pushes = 0;
    std::vector<std::uint32_t> to_push;

    // The lock for successor i+1 is issued while successor i's edge
    // data is read, but is only *verified* after successor i's lock has
    // been released: at most one lock is held at any time.
    OpHandle lock_ahead = 0;
    bool have_ahead = false;
    Word to_ahead = 0;

    for (Word e = 0; e < degree; ++e) {
        Word to;
        Word weight;
        if (pipelined && have_ahead) {
            to = to_ahead;
            weight = ctx.read(data + 8 * Addr{e} + 4);
        } else {
            to = ctx.read(data + 8 * Addr{e});
            weight = ctx.read(data + 8 * Addr{e} + 4);
        }
        ctx.compute(cfg.computePerEdge);
        const Word nd = dv + weight;

        // Acquire the successor's lock (possibly issued earlier).
        if (pipelined) {
            OpHandle h = have_ahead
                             ? lock_ahead
                             : ctx.issueFetchSet(img.lockAddr(to));
            have_ahead = false;
            // Software pipeline: fetch the next successor id and issue
            // its lock before waiting for this one... except the next
            // lock may only be issued after this one is released, so we
            // just prefetch the id here.
            if (e + 1 < degree) {
                to_ahead = ctx.read(data + 8 * Addr{e + 1});
            }
            while (ctx.verify(h) & kTopBit) {
                ctx.pause(16);
                h = ctx.issueFetchSet(img.lockAddr(to));
            }
        } else {
            lockState(ctx, img, to);
        }

        // Critical section: joint (score, backpointer) relaxation.
        const Word old = ctx.read(img.scoreAddr(to));
        bool improved = false;
        if (nd < old) {
            ctx.write(img.scoreAddr(to), nd);
            ctx.write(img.backAddr(to), v);
            improved = true;
        }
        unlockState(ctx, img, to);

        if (pipelined && e + 1 < degree) {
            lock_ahead = ctx.issueFetchSet(img.lockAddr(to_ahead));
            have_ahead = true;
        }

        if (!improved) {
            continue;
        }

        // Beam test against the next layer's best score so far.
        const std::uint32_t next_layer = layer + 1;
        const Word best = ctx.minXchng(img.bestAddr(next_layer), nd);
        const Word best_now = std::min(best, nd);
        if (cfg.beamMargin != kInfDist &&
            nd > best_now + cfg.beamMargin) {
            continue;
        }

        // Queue each state once per layer.
        if (!(ctx.fetchSet(img.queuedAddr(to)) & kTopBit)) {
            ++pushes;
            to_push.push_back(to);
        }
    }

    if (pushes > 0) {
        ctx.fadd(img.pendingAddr(layer + 1), pushes);
        for (std::uint32_t u : to_push) {
            sh.queues[next_parity]->push(ctx, img.owner(u), u);
        }
    }
}

void
beamWorker(Context& ctx, const BeamShared& sh, NodeId self, unsigned me)
{
    const BeamImage& img = *sh.img;
    NodeBarrierWaiter waiter(*sh.barrier, me);
    const bool pipelined = ctx.mode() == ProcessorMode::Delayed;

    if (self == 0 && ctx.tid() == 0) {
        sh.queues[0]->push(ctx, img.owner(0), 0);
    }
    waiter.wait(ctx);

    for (std::uint32_t layer = 0; layer + 1 < img.layers; ++layer) {
        const unsigned parity = layer % 2;
        const unsigned next_parity = 1 - parity;
        WorkQueue& wq = *sh.queues[parity];

        // Software pipeline (Delayed mode): the dequeue of the next
        // state from the local lane is issued while the current state
        // is processed.
        OpHandle pop_ahead = 0;
        bool have_pop_ahead = false;

        while (true) {
            std::optional<Word> item;
            if (have_pop_ahead) {
                const Word got = ctx.verify(pop_ahead);
                have_pop_ahead = false;
                if (got & kTopBit) {
                    item = got & kPayloadMask;
                }
            }
            if (!item) {
                item = wq.popAny(ctx, self);
            }
            if (!item) {
                if (ctx.read(img.pendingAddr(layer)) == 0) {
                    break;
                }
                ctx.pause(48);
                continue;
            }
            if (pipelined) {
                pop_ahead =
                    ctx.issueDequeue(wq.lanePage(self) + kWordBytes);
                have_pop_ahead = true;
            }

            const auto v = static_cast<std::uint32_t>(*item);
            sh.expansions->fetch_add(1, std::memory_order_relaxed);
            expandState(ctx, sh, v, next_parity);
            ctx.fadd(img.pendingAddr(layer), static_cast<Word>(-1));
        }
        // The break path always verified (and cleared) any prefetched
        // dequeue first, so no delayed operation crosses the barrier.
        PLUS_ASSERT(!have_pop_ahead, "prefetch leaked across a layer");
        waiter.wait(ctx);
    }
}

} // namespace

std::vector<std::uint32_t>
beamReference(const Graph& graph, std::uint32_t layers,
              std::uint32_t width)
{
    std::vector<std::uint32_t> score(graph.vertices(), kInfDist);
    score[0] = 0;
    for (std::uint32_t l = 0; l + 1 < layers; ++l) {
        for (std::uint32_t s = 0; s < width; ++s) {
            const std::uint32_t v = l * width + s;
            if (score[v] == kInfDist) {
                continue;
            }
            const auto [fst, lst] = graph.outEdges(v);
            for (const Graph::Edge* e = fst; e != lst; ++e) {
                score[e->to] =
                    std::min(score[e->to], score[v] + e->weight);
            }
        }
    }
    return {score.end() - width, score.end()};
}

BeamResult
runBeam(core::Machine& machine, const Graph& graph, const BeamConfig& cfg)
{
    const unsigned nodes = machine.nodeCount();
    BeamImage img = buildImage(machine, graph, cfg);

    // Each state is queued at most once per layer, so a lane never holds
    // more than the layer width; the hardware queue must fit it.
    PLUS_ASSERT(cfg.width < kPageWords - 3,
                "layer width exceeds hardware queue capacity");

    std::vector<NodeId> lanes(nodes);
    for (NodeId n = 0; n < nodes; ++n) {
        lanes[n] = n;
    }
    WorkQueue wq0 = WorkQueue::create(machine, lanes);
    WorkQueue wq1 = WorkQueue::create(machine, lanes);

    const unsigned threads_per_proc =
        machine.config().mode == ProcessorMode::ContextSwitch
            ? std::max(1u, cfg.threadsPerProcessor)
            : 1u;
    std::vector<NodeId> thread_nodes;
    for (NodeId n = 0; n < nodes; ++n) {
        for (unsigned t = 0; t < threads_per_proc; ++t) {
            thread_nodes.push_back(n);
        }
    }
    NodeBarrier barrier =
        NodeBarrier::create(machine, thread_nodes, true);
    machine.settle();

    std::atomic<std::uint64_t> expansions{0};
    BeamShared shared{&img, &cfg, {&wq0, &wq1}, &barrier, &expansions};

    unsigned participant = 0;
    for (NodeId n = 0; n < nodes; ++n) {
        for (unsigned t = 0; t < threads_per_proc; ++t) {
            const unsigned me = participant++;
            machine.spawn(n, [&shared, n, me](Context& ctx) {
                beamWorker(ctx, shared, n, me);
            });
        }
    }
    // Report the execution phase only (setup excluded).
    const Cycles start = machine.now();
    const core::MachineReport baseline = machine.report();
    machine.run();

    BeamResult result;
    result.elapsed = machine.now() - start;
    result.expansions = expansions.load();
    result.report = machine.report() - baseline;

    const std::vector<std::uint32_t> ref =
        beamReference(graph, cfg.layers, cfg.width);
    if (cfg.beamMargin == kInfDist) {
        result.correct = true;
        for (std::uint32_t s = 0; s < cfg.width; ++s) {
            const std::uint32_t v = (cfg.layers - 1) * cfg.width + s;
            if (machine.peek(img.scoreAddr(v)) != ref[s]) {
                result.correct = false;
                break;
            }
        }
    } else {
        // Pruned search is approximate: sane iff no score beats the
        // exact optimum and some final state is reached at all.
        std::uint32_t best_got = kInfDist;
        result.correct = true;
        for (std::uint32_t s = 0; s < cfg.width; ++s) {
            const std::uint32_t v = (cfg.layers - 1) * cfg.width + s;
            const Word got = machine.peek(img.scoreAddr(v));
            if (got < ref[s]) {
                result.correct = false;
            }
            best_got = std::min<std::uint32_t>(best_got, got);
        }
        if (best_got == kInfDist) {
            result.correct = false;
        }
    }
    return result;
}

BeamResult
runBeam(core::Machine& machine, const BeamConfig& cfg)
{
    Xoshiro256 rng(cfg.seed);
    const Graph graph = makeLayeredGraph(cfg.layers, cfg.width,
                                         cfg.avgDegree, cfg.maxWeight,
                                         rng);
    return runBeam(machine, graph, cfg);
}

} // namespace workloads
} // namespace plus
