/**
 * @file
 * Synthetic loads ("we also carried out some experiments with synthetic
 * loads", Section 2.5): parameterized traffic patterns for stressing
 * the memory system and network independently of any algorithm.
 *
 *  - Uniform: every node reads/writes uniformly random pages.
 *  - Hotspot: all nodes hammer one node's pages (classic hot module).
 *  - UpdateFlood: every node writes its own pages, which are replicated
 *    k ways — the pattern behind Section 2.5's warning that
 *    "uncontrolled replication can result in the system getting flooded
 *    with update requests".
 *  - ProducerConsumer: pairwise streams through data+flag pages using
 *    the fence idiom of Section 2.1.
 */

#ifndef PLUS_WORKLOADS_SYNTHETIC_HPP_
#define PLUS_WORKLOADS_SYNTHETIC_HPP_

#include <cstdint>

#include "core/machine.hpp"

namespace plus {
namespace workloads {

/** Traffic pattern selector. */
enum class SyntheticPattern {
    Uniform,
    Hotspot,
    UpdateFlood,
    ProducerConsumer,
};

const char* toString(SyntheticPattern pattern);

/** Parameters of one synthetic run. */
struct SyntheticConfig {
    SyntheticPattern pattern = SyntheticPattern::Uniform;
    /** Operations each node performs. */
    unsigned opsPerNode = 200;
    /** Fraction of operations that are writes (Uniform/Hotspot). */
    double writeFraction = 0.3;
    /** Computation between operations. */
    Cycles computeBetween = 10;
    /** Pages per node (Uniform/UpdateFlood). */
    unsigned pagesPerNode = 1;
    /** Copies per page (UpdateFlood). */
    unsigned replication = 1;
    /** Hot node (Hotspot). */
    NodeId hotNode = 0;
    std::uint64_t seed = 1;
};

/** Outcome of one synthetic run. */
struct SyntheticResult {
    Cycles elapsed = 0;
    core::MachineReport report;
    /** Mean network queueing per packet, cycles (contention signal). */
    double meanQueueing = 0.0;
    /** Data integrity check for ProducerConsumer (always true else). */
    bool correct = true;
};

/** Run the configured pattern on a freshly constructed machine. */
SyntheticResult runSynthetic(core::Machine& machine,
                             const SyntheticConfig& cfg);

} // namespace workloads
} // namespace plus

#endif // PLUS_WORKLOADS_SYNTHETIC_HPP_
