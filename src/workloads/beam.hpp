/**
 * @file
 * The beam-search workload of Section 3.4: a layered HMM-style graph is
 * searched layer by layer; each worker dequeues a state, locks each
 * successor, relaxes its (score, backpointer) pair, and enqueues newly
 * reached states for the next layer. The inner loop is fine-grained and
 * synchronization-heavy — about 70 RISC instructions and ~10 shared
 * references — which is exactly the regime where PLUS's delayed
 * operations and the context-switching alternative diverge
 * (Figure 3-1).
 *
 * The score and backpointer of a state are two separate words, so their
 * joint update *requires* a per-state lock (a single min-xchng cannot
 * update both); locks are held one at a time, keeping the protocol
 * deadlock-free.
 *
 * Latency-hiding variants:
 *  - Blocking: every interlocked operation waits for its result.
 *  - Delayed: the dequeue of the next state is issued while the current
 *    state is processed, and each successor's lock acquisition is
 *    issued while the edge data is read (software pipelining via two
 *    macros, as in the paper).
 *  - ContextSwitch: blocking code, several threads per processor, and
 *    the processor pays the configured switch cost whenever a thread
 *    blocks on a synchronization result.
 */

#ifndef PLUS_WORKLOADS_BEAM_HPP_
#define PLUS_WORKLOADS_BEAM_HPP_

#include <cstdint>
#include <vector>

#include "core/machine.hpp"
#include "workloads/graph.hpp"

namespace plus {
namespace workloads {

/** Parameters of one beam-search run. */
struct BeamConfig {
    std::uint32_t layers = 24;
    std::uint32_t width = 96;
    double avgDegree = 3.0;
    std::uint32_t maxWeight = 50;
    std::uint64_t seed = 1;

    /**
     * Beam pruning margin: a successor is expanded only if its score is
     * within this margin of the layer's best score so far. kInfDist
     * disables pruning (exact search; used by the correctness tests).
     */
    std::uint32_t beamMargin = kInfDist;

    /** Threads per processor (ContextSwitch mode hosts several). */
    unsigned threadsPerProcessor = 1;

    /** Instruction-stream estimate for the inner loop (~70 RISC instr). */
    Cycles computePerState = 70;
    Cycles computePerEdge = 12;
};

/** Outcome of one run. */
struct BeamResult {
    bool correct = false; ///< final-layer scores match the reference
    Cycles elapsed = 0;
    std::uint64_t expansions = 0; ///< states processed
    core::MachineReport report;
};

/**
 * Host-side exact reference: best path cost to every state of the last
 * layer (layer-synchronous relaxation without pruning).
 */
std::vector<std::uint32_t> beamReference(const Graph& graph,
                                         std::uint32_t layers,
                                         std::uint32_t width);

/**
 * Run beam search on @p machine (freshly constructed). One worker
 * thread per processor, times cfg.threadsPerProcessor.
 */
BeamResult runBeam(core::Machine& machine, const Graph& graph,
                   const BeamConfig& cfg);

/** Convenience: generate the layered graph from the config and run. */
BeamResult runBeam(core::Machine& machine, const BeamConfig& cfg);

} // namespace workloads
} // namespace plus

#endif // PLUS_WORKLOADS_BEAM_HPP_
