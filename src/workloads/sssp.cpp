#include "workloads/sssp.hpp"

#include <algorithm>
#include <cmath>
#include <atomic>
#include <deque>

#include "common/panic.hpp"
#include "core/context.hpp"
#include "core/sync.hpp"

namespace plus {
namespace workloads {

namespace {

using core::Context;
using core::Machine;
using core::OpHandle;
using core::WorkQueue;

/** Shared-memory image of the partitioned graph. */
struct SsspImage {
    unsigned nodes = 0;
    std::uint32_t perNode = 0; ///< vertices per node (block partition)

    /** Per node: base of the distance array (one word per vertex). */
    std::vector<Addr> distBase;
    /** Per node: parent (backpointer) word per vertex. */
    std::vector<Addr> parentBase;
    /** Per node: base of (offset, degree) pairs per local vertex. */
    std::vector<Addr> rowBase;
    /** Per node: base of (target, weight) pairs. */
    std::vector<Addr> dataBase;

    Addr pending = 0; ///< outstanding-work counter
    /** Per node: private trace buffer the worker appends to (one word
     *  per processed vertex, wrapping; never replicated). */
    std::vector<Addr> traceBase;

    NodeId owner(std::uint32_t v) const { return v / perNode; }
    std::uint32_t localIndex(std::uint32_t v) const
    {
        return v % perNode;
    }
    Addr distAddr(std::uint32_t v) const
    {
        return distBase[owner(v)] + 4 * Addr{localIndex(v)};
    }
    Addr parentAddr(std::uint32_t v) const
    {
        return parentBase[owner(v)] + 4 * Addr{localIndex(v)};
    }
    Addr rowAddr(std::uint32_t v) const
    {
        return rowBase[owner(v)] + 8 * Addr{localIndex(v)};
    }
};

/** Lay the graph out in shared memory and initialize it. */
SsspImage
buildImage(Machine& machine, const Graph& graph, const SsspConfig& cfg)
{
    const unsigned nodes = machine.nodeCount();
    SsspImage img;
    img.nodes = nodes;
    img.perNode = (graph.vertices() + nodes - 1) / nodes;

    img.distBase.resize(nodes);
    img.parentBase.resize(nodes);
    img.rowBase.resize(nodes);
    img.dataBase.resize(nodes);

    for (NodeId n = 0; n < nodes; ++n) {
        const std::uint32_t first = n * img.perNode;
        const std::uint32_t count =
            first >= graph.vertices()
                ? 0
                : std::min(img.perNode, graph.vertices() - first);

        img.distBase[n] =
            machine.alloc(std::max<std::size_t>(1, count) * 4, n);
        img.parentBase[n] =
            machine.alloc(std::max<std::size_t>(1, count) * 4, n);
        img.rowBase[n] =
            machine.alloc(std::max<std::size_t>(1, count) * 8, n);

        std::size_t edge_words = 0;
        for (std::uint32_t i = 0; i < count; ++i) {
            edge_words += 2 * graph.outDegree(first + i);
        }
        img.dataBase[n] =
            machine.alloc(std::max<std::size_t>(4, edge_words * 4), n);

        std::size_t cursor = 0;
        for (std::uint32_t i = 0; i < count; ++i) {
            const std::uint32_t v = first + i;
            machine.poke(img.distBase[n] + 4 * Addr{i},
                         v == cfg.source ? 0 : kInfDist);
            const auto [fst, lst] = graph.outEdges(v);
            const auto degree = static_cast<Word>(lst - fst);
            machine.poke(img.rowBase[n] + 8 * Addr{i},
                         static_cast<Word>(cursor));
            machine.poke(img.rowBase[n] + 8 * Addr{i} + 4, degree);
            for (const Graph::Edge* e = fst; e != lst; ++e) {
                machine.poke(img.dataBase[n] + 4 * cursor, e->to);
                machine.poke(img.dataBase[n] + 4 * (cursor + 1),
                             e->weight);
                cursor += 2;
            }
        }
    }

    img.pending = machine.alloc(4, 0);
    machine.poke(img.pending, 1); // the seeded source vertex

    img.traceBase.resize(nodes);
    for (NodeId n = 0; n < nodes; ++n) {
        img.traceBase[n] = machine.alloc(kPageBytes, n);
    }

    return img;
}

/** Replicate each node's data pages onto its k-1 nearest peers. */
void
replicateImage(Machine& machine, const SsspImage& img, const Graph& graph,
               unsigned replication)
{
    if (replication <= 1) {
        return;
    }
    const net::Topology& topo = machine.network().topology();
    for (NodeId n = 0; n < img.nodes; ++n) {
        std::vector<NodeId> peers;
        for (NodeId m = 0; m < img.nodes; ++m) {
            if (m != n) {
                peers.push_back(m);
            }
        }
        std::stable_sort(peers.begin(), peers.end(),
                         [&](NodeId a, NodeId b) {
                             return topo.distance(n, a) <
                                    topo.distance(n, b);
                         });
        const unsigned extra = std::min<unsigned>(
            replication - 1, static_cast<unsigned>(peers.size()));

        const std::uint32_t first = n * img.perNode;
        const std::uint32_t count =
            first >= graph.vertices()
                ? 0
                : std::min(img.perNode, graph.vertices() - first);
        std::size_t edge_words = 0;
        for (std::uint32_t i = 0; i < count; ++i) {
            edge_words += 2 * graph.outDegree(first + i);
        }

        for (unsigned i = 0; i < extra; ++i) {
            // Replicate the read-mostly vertex data (adjacency); the
            // write-hot distance and parent words stay single-copy
            // (replicating them buys few reads and costs an update per
            // write).
            machine.replicateRange(img.distBase[n],
                                   std::max<std::size_t>(1, count) * 4,
                                   peers[i]);
            machine.replicateRange(img.rowBase[n],
                                   std::max<std::size_t>(1, count) * 8,
                                   peers[i]);
            machine.replicateRange(img.dataBase[n],
                                   std::max<std::size_t>(4,
                                                         edge_words * 4),
                                   peers[i]);
        }
    }
    machine.settle();
}

/** Per-worker relaxation loop. */
void
worker(Context& ctx, const SsspImage& img, WorkQueue& wq,
       const SsspConfig& cfg, NodeId self,
       std::atomic<std::uint64_t>& relaxations)
{
    const bool pipelined = ctx.mode() == ProcessorMode::Delayed;
    Word trace_cursor = 0;

    // Software overflow handling for the fixed-capacity hardware queues
    // (the paper's queue operation reports "full" via the top bit and
    // leaves recovery to software): items that do not fit are kept in
    // the worker's private memory and re-offered or processed locally.
    std::vector<std::uint32_t> overflow;

    if (self == 0) {
        // Seed the source vertex.
        wq.push(ctx, img.owner(cfg.source), cfg.source);
    }

    Cycles backoff = 64;
    unsigned empty_polls = 0;
    Word done_debt = 0;
    while (true) {
        while (!overflow.empty() &&
               wq.tryPush(ctx, self, overflow.back())) {
            overflow.pop_back();
        }
        // Poll the cheap lanes (own lane + lanes with a local queue
        // replica) normally; sweep the whole machine only on every
        // fourth empty poll. Without replication every steal probe is a
        // remote read — exactly the load-imbalance cost Figure 2-1(b)
        // shows replication removing.
        const unsigned scan =
            (empty_polls % 4 == 3) ? ~0u : wq.cheapLanes(self);
        auto item = wq.popAny(ctx, self, scan);
        if (!item && !overflow.empty()) {
            item = overflow.back();
            overflow.pop_back();
        }
        if (!item) {
            // Settle our share of the termination count before testing
            // it, then check the counter only on the (full-sweep) polls
            // so idle cost is dominated by the queue probes replication
            // can localize.
            if (done_debt > 0) {
                ctx.fadd(img.pending, static_cast<Word>(-done_debt));
                done_debt = 0;
            }
            if (empty_polls % 4 == 3 && ctx.read(img.pending) == 0) {
                break;
            }
            ++empty_polls;
            ctx.pause(backoff);
            backoff = std::min<Cycles>(backoff * 2, 2048);
            continue;
        }
        empty_polls = 0;
        backoff = 64;
        const auto v = static_cast<std::uint32_t>(*item);
        ctx.compute(cfg.computePerVertex);

        // Append a record to the worker's private trace (feeds the
        // measurement-driven placement of Section 2.4); always local,
        // unreplicated writes.
        const Addr trace = img.traceBase[self] + 4 * Addr{trace_cursor};
        ctx.write(trace, v);
        trace_cursor = (trace_cursor + 3) % (kPageWords - 2);

        // Plain label-correcting: duplicates in the queue are allowed —
        // every successful improvement re-enqueues its vertex. The
        // vertex's own distance must therefore be read *at the master*
        // (delayed-read): a stale replica value here would waste the
        // improver's re-enqueue and lose the propagation entirely. The
        // improver's min-xchng at the master is ordered before its
        // enqueue, which is ordered before our dequeue, so the master
        // value we read includes the improvement.
        const Word dv = ctx.delayedRead(img.distAddr(v));
        const Addr row = img.rowAddr(v);
        const Word offset = ctx.read(row);
        const Word degree = ctx.read(row + 4);
        const Addr data = img.dataBase[img.owner(v)] + 4 * Addr{offset};

        // Relax all out-edges. In Delayed mode the min-xchng operations
        // are software-pipelined: issue while reading the next edge,
        // verify afterwards.
        std::vector<std::uint32_t> improved;
        struct Inflight {
            OpHandle handle;
            std::uint32_t to;
            Word nd;
        };
        std::deque<Inflight> window;

        auto drainOne = [&] {
            const Inflight f = window.front();
            window.pop_front();
            const Word old = ctx.verify(f.handle);
            if (f.nd < old) {
                improved.push_back(f.to);
            }
        };

        for (Word e = 0; e < degree; ++e) {
            const Word to = ctx.read(data + 8 * Addr{e});
            const Word weight = ctx.read(data + 8 * Addr{e} + 4);
            ctx.compute(cfg.computePerEdge);
            const Word nd =
                std::min<Word>(kInfDist,
                               dv > kInfDist - weight ? kInfDist
                                                      : dv + weight);
            // Cheap pre-check on the (possibly replicated) nearest copy:
            // a stale distance is only ever too large, so a skip here is
            // always safe.
            const Word du = ctx.read(img.distAddr(to));
            if (nd >= du) {
                continue;
            }
            ++relaxations;
            if (pipelined) {
                if (window.size() == 6) { // leave slots for other ops
                    drainOne();
                }
                window.push_back(
                    {ctx.issueMinXchng(img.distAddr(to), nd), to, nd});
            } else {
                const Word old = ctx.minXchng(img.distAddr(to), nd);
                if (nd < old) {
                    improved.push_back(to);
                }
            }
        }
        while (!window.empty()) {
            drainOne();
        }
        // Complete the trace record: distance seen and relaxations won.
        ctx.write(trace + 4, dv);
        ctx.write(trace + 8, static_cast<Word>(improved.size()));

        // Record the parent pointers of the successful relaxations
        // (ordinary writes to the neighbours' vertex records) and queue
        // the improved neighbours for further propagation.
        if (!improved.empty()) {
            ctx.fadd(img.pending,
                     static_cast<Word>(improved.size()));
            for (std::uint32_t u : improved) {
                ctx.write(img.parentAddr(u), v);
                // New work goes into the producer's own queue (a local
                // enqueue); load balance comes from stealing, locality
                // from replication.
                if (!wq.tryPush(ctx, self, u)) {
                    overflow.push_back(u);
                }
            }
        }
        // Batch the termination-counter decrements: one fetch-and-add
        // per several processed items keeps the hot counter off the
        // critical path. done_debt is flushed before any termination
        // test (see the empty-poll path).
        ++done_debt;
        if (done_debt >= 8) {
            ctx.fadd(img.pending, static_cast<Word>(-done_debt));
            done_debt = 0;
        }
    }
}

} // namespace

SsspResult
runSssp(core::Machine& machine, const Graph& graph, const SsspConfig& cfg)
{
    PLUS_ASSERT(cfg.source < graph.vertices(), "source out of range");

    const unsigned nodes = machine.nodeCount();
    SsspImage img = buildImage(machine, graph, cfg);
    replicateImage(machine, img, graph, cfg.replication);

    std::vector<NodeId> lanes(nodes);
    for (NodeId n = 0; n < nodes; ++n) {
        lanes[n] = n;
    }
    WorkQueue wq = WorkQueue::create(machine, lanes, cfg.replication);

    std::atomic<std::uint64_t> relaxations{0};
    for (NodeId n = 0; n < nodes; ++n) {
        machine.spawn(n, [&img, &wq, &cfg, n, &relaxations](Context& ctx) {
            worker(ctx, img, wq, cfg, n, relaxations);
        });
    }
    // Setup (allocation, page replication) is a one-time cost the
    // paper's measurements exclude: report the execution phase only.
    const Cycles start = machine.now();
    const core::MachineReport baseline = machine.report();
    machine.run();

    SsspResult result;
    result.elapsed = machine.now() - start;
    result.relaxations = relaxations.load();
    result.report = machine.report() - baseline;

    const std::vector<std::uint32_t> expected =
        dijkstra(graph, cfg.source);
    result.correct = true;
    for (std::uint32_t v = 0; v < graph.vertices(); ++v) {
        if (machine.peek(img.distAddr(v)) != expected[v]) {
            result.correct = false;
            break;
        }
    }
    return result;
}

SsspResult
runSssp(core::Machine& machine, const SsspConfig& cfg)
{
    Xoshiro256 rng(cfg.seed);
    if (cfg.kind == SsspGraphKind::Grid) {
        // Near-square grid of at least cfg.vertices vertices.
        const auto side = static_cast<std::uint32_t>(
            std::ceil(std::sqrt(static_cast<double>(cfg.vertices))));
        const Graph graph = makeGridGraph(side, side, cfg.maxWeight,
                                          cfg.shortcutFrac, rng);
        return runSssp(machine, graph, cfg);
    }
    const Graph graph =
        makeRandomGraph(cfg.vertices, cfg.avgDegree, cfg.maxWeight, rng);
    return runSssp(machine, graph, cfg);
}

} // namespace workloads
} // namespace plus
