/**
 * @file
 * Host-side graph structures and generators for the paper's workloads:
 * weighted digraphs for the single-point shortest-path problem
 * (Section 2.5) and layered HMM-style graphs for beam search
 * (Section 3.4).
 */

#ifndef PLUS_WORKLOADS_GRAPH_HPP_
#define PLUS_WORKLOADS_GRAPH_HPP_

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace plus {
namespace workloads {

/** Compressed-sparse-row weighted digraph. */
class Graph
{
  public:
    struct Edge {
        std::uint32_t to;
        std::uint32_t weight;
    };

    explicit Graph(std::uint32_t vertices) : rowPtr_(vertices + 1, 0) {}

    std::uint32_t vertices() const
    {
        return static_cast<std::uint32_t>(rowPtr_.size() - 1);
    }
    std::size_t edges() const { return edges_.size(); }

    /** Add edges grouped by source, in ascending source order. */
    void
    addEdge(std::uint32_t from, std::uint32_t to, std::uint32_t weight)
    {
        PLUS_ASSERT(from < vertices() && to < vertices(),
                    "edge endpoint out of range");
        PLUS_ASSERT(building_ <= from,
                    "edges must be added in source order");
        while (building_ < from) {
            rowPtr_[++building_] = edges_.size();
        }
        edges_.push_back(Edge{to, weight});
    }

    /** Finish construction; no more edges may be added. */
    void
    seal()
    {
        while (building_ < vertices()) {
            rowPtr_[++building_] = edges_.size();
        }
    }

    /** Out-edges of @p v. */
    std::pair<const Edge*, const Edge*>
    outEdges(std::uint32_t v) const
    {
        PLUS_ASSERT(v < vertices(), "vertex out of range");
        return {edges_.data() + rowPtr_[v],
                edges_.data() + rowPtr_[v + 1]};
    }

    std::uint32_t
    outDegree(std::uint32_t v) const
    {
        return static_cast<std::uint32_t>(rowPtr_[v + 1] - rowPtr_[v]);
    }

  private:
    std::vector<std::size_t> rowPtr_;
    std::vector<Edge> edges_;
    std::uint32_t building_ = 0;
};

/**
 * Random weighted digraph: each vertex gets ~@p avg_degree out-edges to
 * uniform targets with weights in [1, max_weight]. A Hamiltonian-ish
 * chain of light edges is threaded through so the graph is connected
 * from vertex 0.
 */
Graph makeRandomGraph(std::uint32_t vertices, double avg_degree,
                      std::uint32_t max_weight, Xoshiro256& rng);

/**
 * Grid graph with spatial locality: a @p width x @p height 4-neighbour
 * grid (row-major vertex ids, so a block partition keeps most edges
 * node-local) plus a fraction @p shortcut_frac of random long-range
 * edges. This is the kind of graph shortest-path workloads of the era
 * ran on (road networks, meshes).
 */
Graph makeGridGraph(std::uint32_t width, std::uint32_t height,
                    std::uint32_t max_weight, double shortcut_frac,
                    Xoshiro256& rng);

/**
 * Layered graph standing in for a Hidden-Markov-Model search space:
 * @p layers layers of @p width states; each state has edges to
 * ~@p avg_degree states of the next layer with additive arc costs in
 * [1, max_weight]. Vertex numbering is layer-major: layer l state s is
 * vertex l*width+s.
 */
Graph makeLayeredGraph(std::uint32_t layers, std::uint32_t width,
                       double avg_degree, std::uint32_t max_weight,
                       Xoshiro256& rng);

/** Exact single-source shortest paths (Dijkstra), host-side reference. */
std::vector<std::uint32_t> dijkstra(const Graph& graph,
                                    std::uint32_t source);

/** Distance value standing for "unreached" (31-bit payload maximum). */
inline constexpr std::uint32_t kInfDist = 0x7fffffffu;

} // namespace workloads
} // namespace plus

#endif // PLUS_WORKLOADS_GRAPH_HPP_
