#include "workloads/production.hpp"

#include <algorithm>
#include <array>
#include <atomic>

#include "common/panic.hpp"
#include "core/context.hpp"
#include "core/workq.hpp"

namespace plus {
namespace workloads {

namespace {

using core::Context;
using core::Machine;
using core::WorkQueue;

/** Shared-memory image of the rule base. */
struct ProductionImage {
    unsigned nodes = 0;
    std::uint32_t perNodeFacts = 0;
    std::uint32_t perNodeRules = 0;

    /** Per node: fact flag words (top bit = asserted). */
    std::vector<Addr> flagBase;
    /** Per node: rule fired words (top bit = fired). */
    std::vector<Addr> firedBase;
    /** Per node: (offset, count) per local fact into the match index. */
    std::vector<Addr> idxRowBase;
    /** Per node: match entries (other antecedent, consequent, rule id). */
    std::vector<Addr> idxDataBase;
    /** Per node: byte size of the match-entry region. */
    std::vector<std::size_t> idxDataBytes;

    Addr pending = 0;

    NodeId factOwner(std::uint32_t f) const { return f / perNodeFacts; }
    std::uint32_t factIndex(std::uint32_t f) const
    {
        return f % perNodeFacts;
    }
    NodeId ruleOwner(std::uint32_t r) const { return r / perNodeRules; }
    std::uint32_t ruleIndex(std::uint32_t r) const
    {
        return r % perNodeRules;
    }
    Addr flagAddr(std::uint32_t f) const
    {
        return flagBase[factOwner(f)] + 4 * Addr{factIndex(f)};
    }
    Addr firedAddr(std::uint32_t r) const
    {
        return firedBase[ruleOwner(r)] + 4 * Addr{ruleIndex(r)};
    }
    Addr idxRowAddr(std::uint32_t f) const
    {
        return idxRowBase[factOwner(f)] + 8 * Addr{factIndex(f)};
    }
};

ProductionImage
buildImage(Machine& machine, const RuleBase& base)
{
    const unsigned nodes = machine.nodeCount();
    ProductionImage img;
    img.nodes = nodes;
    img.perNodeFacts = (base.facts + nodes - 1) / nodes;
    img.perNodeRules =
        (static_cast<std::uint32_t>(base.rules.size()) + nodes - 1) /
        nodes;

    img.flagBase.resize(nodes);
    img.firedBase.resize(nodes);
    img.idxRowBase.resize(nodes);
    img.idxDataBase.resize(nodes);
    img.idxDataBytes.resize(nodes);

    // Match index: every rule appears under both of its antecedents.
    std::vector<std::vector<std::array<Word, 3>>> entries(base.facts);
    for (std::uint32_t r = 0; r < base.rules.size(); ++r) {
        const Rule& rule = base.rules[r];
        entries[rule.a].push_back({rule.b, rule.c, r});
        if (rule.b != rule.a) {
            entries[rule.b].push_back({rule.a, rule.c, r});
        }
    }

    for (NodeId n = 0; n < nodes; ++n) {
        const std::uint32_t first_fact = n * img.perNodeFacts;
        const std::uint32_t fact_count =
            first_fact >= base.facts
                ? 0
                : std::min(img.perNodeFacts, base.facts - first_fact);

        img.flagBase[n] = machine.alloc(
            std::max<std::size_t>(1, fact_count) * 4, n);
        img.firedBase[n] =
            machine.alloc(std::size_t{img.perNodeRules} * 4, n);
        img.idxRowBase[n] = machine.alloc(
            std::max<std::size_t>(1, fact_count) * 8, n);

        std::size_t words = 0;
        for (std::uint32_t i = 0; i < fact_count; ++i) {
            words += 3 * entries[first_fact + i].size();
        }
        img.idxDataBytes[n] = std::max<std::size_t>(4, words * 4);
        img.idxDataBase[n] = machine.alloc(img.idxDataBytes[n], n);

        std::size_t cursor = 0;
        for (std::uint32_t i = 0; i < fact_count; ++i) {
            const std::uint32_t f = first_fact + i;
            machine.poke(img.idxRowBase[n] + 8 * Addr{i},
                         static_cast<Word>(cursor / 3));
            machine.poke(img.idxRowBase[n] + 8 * Addr{i} + 4,
                         static_cast<Word>(entries[f].size()));
            for (const auto& e : entries[f]) {
                machine.poke(img.idxDataBase[n] + 4 * cursor, e[0]);
                machine.poke(img.idxDataBase[n] + 4 * (cursor + 1), e[1]);
                machine.poke(img.idxDataBase[n] + 4 * (cursor + 2), e[2]);
                cursor += 3;
            }
        }
    }

    img.pending = machine.alloc(4, 0);
    for (std::uint32_t f : base.initialFacts) {
        machine.poke(img.flagAddr(f), kTopBit);
    }
    machine.poke(img.pending,
                 static_cast<Word>(base.initialFacts.size()));
    return img;
}

void
replicateImage(Machine& machine, const ProductionImage& img,
               unsigned replication)
{
    if (replication <= 1) {
        return;
    }
    const net::Topology& topo = machine.network().topology();
    for (NodeId n = 0; n < img.nodes; ++n) {
        std::vector<NodeId> peers;
        for (NodeId m2 = 0; m2 < img.nodes; ++m2) {
            if (m2 != n) {
                peers.push_back(m2);
            }
        }
        std::stable_sort(peers.begin(), peers.end(),
                         [&](NodeId a, NodeId b) {
                             return topo.distance(n, a) <
                                    topo.distance(n, b);
                         });
        const unsigned extra = std::min<unsigned>(
            replication - 1, static_cast<unsigned>(peers.size()));
        for (unsigned i = 0; i < extra; ++i) {
            // The match index is read-mostly: the natural target.
            machine.replicateRange(img.idxRowBase[n],
                                   std::size_t{img.perNodeFacts} * 8,
                                   peers[i]);
            machine.replicateRange(img.idxDataBase[n],
                                   img.idxDataBytes[n], peers[i]);
        }
    }
    machine.settle();
}

void
productionWorker(Context& ctx, const ProductionImage& img, WorkQueue& wq,
                 const ProductionConfig& cfg, NodeId self,
                 const RuleBase& base,
                 std::atomic<std::uint64_t>& matches,
                 std::atomic<std::uint64_t>& firings)
{
    std::vector<std::uint32_t> overflow;
    if (self == 0) {
        for (std::uint32_t f : base.initialFacts) {
            wq.push(ctx, img.factOwner(f) % wq.lanes(), f);
        }
    }

    Cycles backoff = 64;
    unsigned empty_polls = 0;
    Word done_debt = 0;
    while (true) {
        while (!overflow.empty() &&
               wq.tryPush(ctx, self, overflow.back())) {
            overflow.pop_back();
        }
        const unsigned scan =
            (empty_polls % 4 == 3) ? ~0u : wq.cheapLanes(self);
        auto item = wq.popAny(ctx, self, scan);
        if (!item && !overflow.empty()) {
            item = overflow.back();
            overflow.pop_back();
        }
        if (!item) {
            if (done_debt > 0) {
                ctx.fadd(img.pending, static_cast<Word>(-done_debt));
                done_debt = 0;
            }
            if (empty_polls % 4 == 3 && ctx.read(img.pending) == 0) {
                break;
            }
            ++empty_polls;
            ctx.pause(backoff);
            backoff = std::min<Cycles>(backoff * 2, 2048);
            continue;
        }
        empty_polls = 0;
        backoff = 64;

        const auto f = static_cast<std::uint32_t>(*item);
        const Addr row = img.idxRowAddr(f);
        const Word offset = ctx.read(row);
        const Word count = ctx.read(row + 4);
        const Addr data =
            img.idxDataBase[img.factOwner(f)] + 12 * Addr{offset};

        Word pushes = 0;
        std::vector<std::uint32_t> to_push;
        for (Word e = 0; e < count; ++e) {
            const Word other = ctx.read(data + 12 * Addr{e});
            const Word consequent = ctx.read(data + 12 * Addr{e} + 4);
            const Word rule = ctx.read(data + 12 * Addr{e} + 8);
            ctx.compute(cfg.computePerMatch);
            ++matches;

            // Both antecedents present? (Flag pages are single-copy, so
            // this read is served by the master and cannot be stale.)
            if (!(ctx.read(img.flagAddr(other)) & kTopBit)) {
                continue;
            }
            // Fire the rule exactly once.
            if (ctx.fetchSet(img.firedAddr(rule)) & kTopBit) {
                continue;
            }
            ++firings;
            // Assert the consequent; propagate only on first assertion.
            if (!(ctx.fetchSet(img.flagAddr(consequent)) & kTopBit)) {
                ++pushes;
                to_push.push_back(consequent);
            }
        }

        if (pushes > 0) {
            ctx.fadd(img.pending, pushes);
            for (std::uint32_t c : to_push) {
                if (!wq.tryPush(ctx, self, c)) {
                    overflow.push_back(c);
                }
            }
        }
        ++done_debt;
        if (done_debt >= 8) {
            ctx.fadd(img.pending, static_cast<Word>(-done_debt));
            done_debt = 0;
        }
    }
}

} // namespace

RuleBase
makeRuleBase(std::uint32_t facts, std::uint32_t rules,
             std::uint32_t initial, Xoshiro256& rng)
{
    PLUS_ASSERT(facts >= 8 && initial >= 2 && initial < facts,
                "degenerate rule base");
    RuleBase base;
    base.facts = facts;
    for (std::uint32_t i = 0; i < initial; ++i) {
        base.initialFacts.push_back(
            static_cast<std::uint32_t>(rng.below(facts)));
    }
    std::sort(base.initialFacts.begin(), base.initialFacts.end());
    base.initialFacts.erase(std::unique(base.initialFacts.begin(),
                                        base.initialFacts.end()),
                            base.initialFacts.end());

    std::uint32_t last_consequent = base.initialFacts.front();
    for (std::uint32_t r = 0; r < rules; ++r) {
        Rule rule;
        if (r % 5 < 2) {
            // Chain rule: keep the cascade alive.
            rule.a = last_consequent;
            rule.b = base.initialFacts[r % base.initialFacts.size()];
            rule.c = static_cast<std::uint32_t>(rng.below(facts));
            last_consequent = rule.c;
        } else {
            rule.a = static_cast<std::uint32_t>(rng.below(facts));
            rule.b = static_cast<std::uint32_t>(rng.below(facts));
            rule.c = static_cast<std::uint32_t>(rng.below(facts));
        }
        base.rules.push_back(rule);
    }
    return base;
}

std::vector<bool>
closure(const RuleBase& base)
{
    std::vector<bool> present(base.facts, false);
    std::vector<bool> fired(base.rules.size(), false);
    for (std::uint32_t f : base.initialFacts) {
        present[f] = true;
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t r = 0; r < base.rules.size(); ++r) {
            if (!fired[r] && present[base.rules[r].a] &&
                present[base.rules[r].b]) {
                fired[r] = true;
                if (!present[base.rules[r].c]) {
                    present[base.rules[r].c] = true;
                }
                changed = true;
            }
        }
    }
    return present;
}

ProductionResult
runProduction(core::Machine& machine, const RuleBase& base,
              const ProductionConfig& cfg)
{
    const unsigned nodes = machine.nodeCount();
    ProductionImage img = buildImage(machine, base);
    replicateImage(machine, img, cfg.replication);

    std::vector<NodeId> lanes(nodes);
    for (NodeId n = 0; n < nodes; ++n) {
        lanes[n] = n;
    }
    WorkQueue wq = WorkQueue::create(machine, lanes, cfg.replication);

    std::atomic<std::uint64_t> matches{0};
    std::atomic<std::uint64_t> firings{0};
    for (NodeId n = 0; n < nodes; ++n) {
        machine.spawn(n, [&, n](Context& ctx) {
            productionWorker(ctx, img, wq, cfg, n, base, matches,
                             firings);
        });
    }
    const Cycles start = machine.now();
    const core::MachineReport baseline = machine.report();
    machine.run();

    ProductionResult result;
    result.elapsed = machine.now() - start;
    result.matches = matches.load();
    result.firings = firings.load();
    result.report = machine.report() - baseline;

    const std::vector<bool> expected = closure(base);
    result.correct = true;
    for (std::uint32_t f = 0; f < base.facts; ++f) {
        const bool got =
            (machine.peek(img.flagAddr(f)) & kTopBit) != 0;
        if (got != expected[f]) {
            result.correct = false;
            break;
        }
    }
    return result;
}

ProductionResult
runProduction(core::Machine& machine, const ProductionConfig& cfg)
{
    Xoshiro256 rng(cfg.seed);
    const RuleBase base =
        makeRuleBase(cfg.facts, cfg.rules, cfg.initialFacts, rng);
    return runProduction(machine, base, cfg);
}

} // namespace workloads
} // namespace plus
