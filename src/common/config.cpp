#include "common/config.hpp"

#include <cmath>
#include <cstdlib>
#include <string_view>

#include "common/panic.hpp"

namespace plus {

const char*
envRead(const char* name)
{
    return std::getenv(name);
}

const char*
toString(ProcessorMode mode)
{
    switch (mode) {
      case ProcessorMode::Blocking: return "blocking";
      case ProcessorMode::Delayed: return "delayed";
      case ProcessorMode::ContextSwitch: return "context-switch";
      default: return "?";
    }
}

const char*
toString(SimEngine engine)
{
    switch (engine) {
      case SimEngine::Env: return "env";
      case SimEngine::Wheel: return "wheel";
      case SimEngine::Heap: return "heap";
      case SimEngine::Parallel: return "parallel";
      default: return "?";
    }
}

const char*
toString(CoherenceProtocol protocol)
{
    switch (protocol) {
      case CoherenceProtocol::Env: return "env";
      case CoherenceProtocol::WriteUpdate: return "write-update";
      case CoherenceProtocol::WriteInvalidate: return "write-invalidate";
      default: return "?";
    }
}

bool
coherenceProtocolFromString(const char* name, CoherenceProtocol& out)
{
    const std::string_view s(name);
    if (s == "update" || s == "write-update") {
        out = CoherenceProtocol::WriteUpdate;
        return true;
    }
    if (s == "invalidate" || s == "write-invalidate") {
        out = CoherenceProtocol::WriteInvalidate;
        return true;
    }
    return false;
}

void
MachineConfig::validate()
{
    if (nodes == 0) {
        PLUS_FATAL("machine needs at least one node");
    }
    if (framesPerNode == 0) {
        PLUS_FATAL("framesPerNode must be positive");
    }
    if (cost.pendingWriteEntries == 0) {
        PLUS_FATAL("pendingWriteEntries must be positive");
    }
    if (cost.delayedOpEntries == 0) {
        PLUS_FATAL("delayedOpEntries must be positive");
    }
    if (cost.queueBaseOffset >= kPageWords) {
        PLUS_FATAL("queueBaseOffset must be within a page");
    }
    if (cost.cacheLineWords == 0 || cost.cacheWays == 0 ||
        cost.cacheBytes == 0) {
        PLUS_FATAL("cache geometry must be positive");
    }
    if (network.bytesPerCycle <= 0.0) {
        PLUS_FATAL("network bandwidth must be positive");
    }
    if (threadStackBytes < 16 * 1024) {
        PLUS_FATAL("thread stacks of less than 16 KiB are unsafe");
    }

    if (simThreads > nodes) {
        PLUS_FATAL("simThreads (", simThreads, ") exceeds the node count (",
                   nodes, "); the parallel backend runs at most one "
                   "worker per node — lower simThreads or leave it 0 "
                   "to size automatically");
    }
    // Domain-count knob for the parallel backend. 62 = the EventId
    // domain-tag space (6 bits) minus the machine lane's reserved tag.
    if (simDomains > nodes) {
        PLUS_FATAL("simDomains (", simDomains, ") exceeds the node count (",
                   nodes, "); every domain needs at least one node — "
                   "lower simDomains or leave it 0 to size automatically");
    }
    if (simDomains > 62) {
        PLUS_FATAL("simDomains (", simDomains, ") exceeds the 62-domain "
                   "EventId tag space; lower it (62 domains already "
                   "saturate load balancing at any thread count)");
    }
    if (simDomains != 0 && simThreads != 0 &&
        simDomains % simThreads != 0) {
        PLUS_FATAL("simDomains (", simDomains, ") is not a multiple of "
                   "simThreads (", simThreads, "); threads own domains "
                   "round-robin, so a non-multiple leaves some threads "
                   "permanently underloaded — use ", simThreads * (simDomains / simThreads),
                   " or ", simThreads * (simDomains / simThreads + 1),
                   ", or leave simDomains 0 to size automatically");
    }
    if (engine == SimEngine::Parallel && simThreads > 1) {
        // The conservative bound needs a positive lookahead floor: the
        // smallest delay any cross-node schedule can carry. Zero here
        // would make every domain-pair lookahead-matrix entry 0 and no
        // parallel window could ever open.
        const Cycles min_latency =
            network.ideal
                ? network.fixedCycles + network.perHopCycles
                : network.perHopCycles;
        if (min_latency == 0) {
            PLUS_FATAL("the parallel engine needs a positive cross-node "
                       "latency: every lookahead-matrix entry would be 0 "
                       "and no conservative window could open; set "
                       "perHopCycles >= 1",
                       network.ideal ? " (or fixedCycles >= 1)" : "",
                       " or use a serial backend");
        }
    }

    const FaultConfig& fault = network.fault;
    if (!fault.enabled &&
        (fault.dropRate > 0.0 || fault.corruptRate > 0.0 ||
         fault.duplicateRate > 0.0 || fault.delayRate > 0.0 ||
         !fault.script.empty())) {
        PLUS_FATAL("fault rates or a fault script are configured but "
                   "network.fault.enabled is false; set it to true (or "
                   "clear the fault settings) — a disabled injector "
                   "would silently ignore them");
    }
    if (fault.dropRate < 0.0 || fault.corruptRate < 0.0 ||
        fault.duplicateRate < 0.0 || fault.delayRate < 0.0) {
        PLUS_FATAL("fault rates must be non-negative");
    }
    if (fault.dropRate + fault.corruptRate + fault.duplicateRate +
            fault.delayRate > 1.0) {
        PLUS_FATAL("fault rates must sum to at most 1");
    }
    if (fault.enabled && fault.maxDelayCycles == 0 && fault.delayRate > 0.0) {
        PLUS_FATAL("delayRate requires maxDelayCycles > 0");
    }
    std::vector<char> crashed(nodes, 0);
    std::size_t crash_count = 0;
    for (const FaultScriptEntry& entry : fault.script) {
        if (entry.a >= nodes ||
            ((entry.kind == FaultScriptEntry::Kind::LinkDown ||
              entry.kind == FaultScriptEntry::Kind::LinkUp) &&
             entry.b >= nodes)) {
            PLUS_FATAL("fault script names node beyond machine size");
        }
        if (entry.kind == FaultScriptEntry::Kind::CrashNode) {
            if (!crashed[entry.a]) {
                crashed[entry.a] = 1;
                ++crash_count;
            }
        }
    }
    if (crash_count == nodes && nodes > 0) {
        PLUS_FATAL("crash schedule kills every node in the machine; "
                   "nothing would survive to recover — leave at least "
                   "one node out of the CrashNode entries");
    }
    if (crash_count > 0 && fault.maxRetransmits == 0) {
        if (fault.recover) {
            PLUS_FATAL("recovery detects a crash by retransmit-budget "
                       "exhaustion; maxRetransmits = 0 retries forever "
                       "and the death would never be reported — give "
                       "the link layer a finite budget");
        }
        PLUS_FATAL("CrashNode without recovery and with an unbounded "
                   "retransmit budget (maxRetransmits = 0) can only end "
                   "in a watchdog hang; arm network.fault.recover and a "
                   "finite budget, or keep a finite budget for diagnosis");
    }
    for (std::size_t p = 0; p < fault.fencedPageReplicas.size(); ++p) {
        const std::vector<NodeId>& holders = fault.fencedPageReplicas[p];
        if (holders.empty()) {
            PLUS_FATAL("fencedPageReplicas[", p, "] declares a fenced "
                       "page with no replica holders");
        }
        bool survivor = false;
        for (NodeId holder : holders) {
            if (holder >= nodes) {
                PLUS_FATAL("fencedPageReplicas[", p, "] names node ",
                           holder, " beyond machine size ", nodes);
            }
            if (!crashed[holder]) {
                survivor = true;
            }
        }
        if (!survivor) {
            PLUS_FATAL("crash schedule kills every replica holder of "
                       "fenced page ", p, " (declared via "
                       "fencedPageReplicas); a fence on it could never "
                       "complete — keep at least one holder alive or "
                       "replicate the page more widely");
        }
    }
    if (watchdog.enabled && watchdog.windowCycles == 0) {
        PLUS_FATAL("watchdog window must be positive");
    }

    if (protocol == CoherenceProtocol::Env) {
        resolvedProtocol_ = CoherenceProtocol::WriteUpdate;
        if (const char* name = envRead("PLUS_PROTOCOL")) {
            if (!coherenceProtocolFromString(name, resolvedProtocol_)) {
                PLUS_FATAL("PLUS_PROTOCOL=", name, " names no coherence "
                           "protocol; valid names: update, write-update, "
                           "invalidate, write-invalidate");
            }
        }
    } else {
        if (!protocolOptIn) {
            PLUS_FATAL("MachineConfig.protocol overridden to ",
                       toString(protocol), " without protocolOptIn; use "
                       "plus::MachineBuilder::protocol() (which opts in "
                       "for you), or set protocolOptIn = true on the "
                       "deprecated direct Machine(MachineConfig) path to "
                       "confirm the override is intended");
        }
        resolvedProtocol_ = protocol;
    }
    if (resolvedProtocol_ == CoherenceProtocol::WriteInvalidate) {
        if (fault.recover) {
            PLUS_FATAL("write-invalidate does not support fail-stop "
                       "recovery: re-mastering would promote a replica "
                       "that may hold invalidated words, losing data; "
                       "run crash-recovery schedules under write-update "
                       "or drop network.fault.recover");
        }
        if (!fault.fencedPageReplicas.empty()) {
            PLUS_FATAL("fencedPageReplicas assumes update-chain fence "
                       "semantics (every declared holder sees the fenced "
                       "writes); under write-invalidate replicas hold "
                       "invalidated words instead — clear "
                       "fencedPageReplicas or use write-update");
        }
    }

    if (network.meshWidth != 0) {
        if (network.meshWidth > nodes) {
            PLUS_FATAL("meshWidth ", network.meshWidth,
                       " exceeds node count ", nodes);
        }
        resolvedMeshWidth_ = network.meshWidth;
    } else {
        // Near-square mesh: the smallest width whose square covers nodes.
        auto w = static_cast<unsigned>(
            std::ceil(std::sqrt(static_cast<double>(nodes))));
        resolvedMeshWidth_ = w;
    }
    resolvedMeshHeight_ =
        (nodes + resolvedMeshWidth_ - 1) / resolvedMeshWidth_;
}

} // namespace plus
