#include "common/config.hpp"

#include <cmath>

#include "common/panic.hpp"

namespace plus {

const char*
toString(ProcessorMode mode)
{
    switch (mode) {
      case ProcessorMode::Blocking: return "blocking";
      case ProcessorMode::Delayed: return "delayed";
      case ProcessorMode::ContextSwitch: return "context-switch";
      default: return "?";
    }
}

void
MachineConfig::validate()
{
    if (nodes == 0) {
        PLUS_FATAL("machine needs at least one node");
    }
    if (framesPerNode == 0) {
        PLUS_FATAL("framesPerNode must be positive");
    }
    if (cost.pendingWriteEntries == 0) {
        PLUS_FATAL("pendingWriteEntries must be positive");
    }
    if (cost.delayedOpEntries == 0) {
        PLUS_FATAL("delayedOpEntries must be positive");
    }
    if (cost.queueBaseOffset >= kPageWords) {
        PLUS_FATAL("queueBaseOffset must be within a page");
    }
    if (cost.cacheLineWords == 0 || cost.cacheWays == 0 ||
        cost.cacheBytes == 0) {
        PLUS_FATAL("cache geometry must be positive");
    }
    if (network.bytesPerCycle <= 0.0) {
        PLUS_FATAL("network bandwidth must be positive");
    }
    if (threadStackBytes < 16 * 1024) {
        PLUS_FATAL("thread stacks of less than 16 KiB are unsafe");
    }

    if (network.meshWidth != 0) {
        if (network.meshWidth > nodes) {
            PLUS_FATAL("meshWidth ", network.meshWidth,
                       " exceeds node count ", nodes);
        }
        resolvedMeshWidth_ = network.meshWidth;
    } else {
        // Near-square mesh: the smallest width whose square covers nodes.
        auto w = static_cast<unsigned>(
            std::ceil(std::sqrt(static_cast<double>(nodes))));
        resolvedMeshWidth_ = w;
    }
    resolvedMeshHeight_ =
        (nodes + resolvedMeshWidth_ - 1) / resolvedMeshWidth_;
}

} // namespace plus
