#include "common/panic.hpp"

namespace plus {
namespace detail {

void
throwPanic(const char* file, int line, const std::string& msg)
{
    std::ostringstream os;
    os << "panic: " << msg << " (" << file << ":" << line << ")";
    throw PanicError(os.str());
}

void
throwFatal(const std::string& msg)
{
    throw FatalError("fatal: " + msg);
}

} // namespace detail
} // namespace plus
