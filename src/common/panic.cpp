#include "common/panic.hpp"

namespace plus {

namespace {

// pluslint: allow(R4) -- process-wide diagnostic hook; only decorates
// panic text, never feeds simulation state.
PanicDecorator g_decorator = nullptr; // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)

} // namespace

void
setPanicDecorator(PanicDecorator fn)
{
    g_decorator = fn;
}

PanicDecorator
panicDecorator()
{
    return g_decorator;
}

namespace detail {

void
throwPanic(const char* file, int line, const std::string& msg)
{
    std::ostringstream os;
    os << "panic: " << msg << " (" << file << ":" << line << ")";
    if (g_decorator != nullptr) {
        os << g_decorator();
    }
    throw PanicError(os.str());
}

void
throwFatal(const std::string& msg)
{
    throw FatalError("fatal: " + msg);
}

} // namespace detail
} // namespace plus
