/**
 * @file
 * Plain-text table formatting for the benchmark harnesses.
 *
 * Every bench binary prints the rows/series of the paper table or figure it
 * reproduces; TablePrinter keeps those tables aligned and diff-friendly.
 */

#ifndef PLUS_COMMON_TABLE_HPP_
#define PLUS_COMMON_TABLE_HPP_

#include <iosfwd>
#include <string>
#include <vector>

namespace plus {

/** Column-aligned text table with an optional title and column headers. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::string title = "") : title_(std::move(title)) {}

    /** Set the header row; defines the column count. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; must match the header's column count if set. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with the given precision. */
    static std::string num(double value, int precision = 2);

    /** Convenience: format an integer. */
    static std::string num(std::uint64_t value);

    /** Render the table to a stream. */
    void print(std::ostream& os) const;

    /** Render the table to a string. */
    std::string toString() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace plus

#endif // PLUS_COMMON_TABLE_HPP_
