#include "common/log.hpp"

#include "common/config.hpp"

namespace plus {

const char*
logComponentName(LogComponent c)
{
    switch (c) {
      case LogComponent::Engine: return "engine";
      case LogComponent::Thread: return "thread";
      case LogComponent::Net: return "net";
      case LogComponent::Mem: return "mem";
      case LogComponent::Proto: return "proto";
      case LogComponent::Node: return "node";
      case LogComponent::Machine: return "machine";
      case LogComponent::Workload: return "workload";
      default: return "?";
    }
}

Log::Log()
{
    disableAll();
    applyEnvSpec(envRead("PLUS_LOG"));
}

Log&
Log::instance()
{
    // pluslint: allow(R4) -- the logger is a host-facing singleton; its
    // state never feeds the simulation (output only), and PLUS_LOG must
    // be readable before any machine exists.
    static Log log;
    return log;
}

bool
Log::componentFromName(const std::string& name, LogComponent& out)
{
    for (unsigned i = 0;
         i < static_cast<unsigned>(LogComponent::NumComponents); ++i) {
        const auto c = static_cast<LogComponent>(i);
        if (name == logComponentName(c)) {
            out = c;
            return true;
        }
    }
    return false;
}

void
Log::applyEnvSpec(const char* spec)
{
    if (spec == nullptr) {
        return;
    }
    std::string token;
    const std::string all(spec);
    for (std::size_t i = 0; i <= all.size(); ++i) {
        const char c = i < all.size() ? all[i] : ',';
        if (c != ',' && c != ' ' && c != ';') {
            token += c;
            continue;
        }
        if (token.empty()) {
            continue;
        }
        if (token == "all") {
            enableAll();
        } else if (LogComponent component; componentFromName(token,
                                                            component)) {
            enable(component);
        } else {
            std::cerr << "PLUS_LOG: unknown component '" << token
                      << "' (want all or a list of:";
            for (unsigned i2 = 0;
                 i2 < static_cast<unsigned>(LogComponent::NumComponents);
                 ++i2) {
                std::cerr << " "
                          << logComponentName(
                                 static_cast<LogComponent>(i2));
            }
            std::cerr << ")\n";
        }
        token.clear();
    }
}

void
Log::enableAll()
{
    enabled_.fill(true);
}

void
Log::disableAll()
{
    enabled_.fill(false);
}

void
Log::write(LogComponent c, const std::string& msg)
{
    if (clock_) {
        (*stream_) << "[" << clock_() << "] ";
    }
    (*stream_) << logComponentName(c) << ": " << msg << "\n";
}

} // namespace plus
