#include "common/log.hpp"

namespace plus {

const char*
logComponentName(LogComponent c)
{
    switch (c) {
      case LogComponent::Engine: return "engine";
      case LogComponent::Thread: return "thread";
      case LogComponent::Net: return "net";
      case LogComponent::Mem: return "mem";
      case LogComponent::Proto: return "proto";
      case LogComponent::Node: return "node";
      case LogComponent::Machine: return "machine";
      case LogComponent::Workload: return "workload";
      default: return "?";
    }
}

Log&
Log::instance()
{
    static Log log;
    return log;
}

void
Log::enableAll()
{
    enabled_.fill(true);
}

void
Log::disableAll()
{
    enabled_.fill(false);
}

void
Log::write(LogComponent c, const std::string& msg)
{
    if (clock_) {
        (*stream_) << "[" << clock_() << "] ";
    }
    (*stream_) << logComponentName(c) << ": " << msg << "\n";
}

} // namespace plus
