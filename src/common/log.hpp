/**
 * @file
 * Lightweight component-tagged trace logging.
 *
 * The simulator is silent by default; enable a component to watch the
 * protocol at work, e.g.
 * @code
 *   plus::Log::instance().enable(plus::LogComponent::Proto);
 * @endcode
 * Messages carry the current simulated cycle when a clock source has been
 * registered (the sim::Engine registers itself).
 *
 * Components can also be enabled without recompiling through the PLUS_LOG
 * environment variable, read once at startup: a comma-separated list of
 * component names ("PLUS_LOG=proto,net"), or "all".
 */

#ifndef PLUS_COMMON_LOG_HPP_
#define PLUS_COMMON_LOG_HPP_

#include <array>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>

#include "common/types.hpp"

namespace plus {

/** Subsystems that can be traced independently. */
enum class LogComponent : unsigned {
    Engine = 0,
    Thread,
    Net,
    Mem,
    Proto,
    Node,
    Machine,
    Workload,
    NumComponents,
};

/** Short tag printed in front of each message. */
const char* logComponentName(LogComponent c);

/** Global logging switchboard (singleton; the simulator is single-threaded). */
class Log
{
  public:
    static Log& instance();

    void enable(LogComponent c) { enabled_[index(c)] = true; }
    void disable(LogComponent c) { enabled_[index(c)] = false; }
    void enableAll();
    void disableAll();
    bool isEnabled(LogComponent c) const { return enabled_[index(c)]; }

    /**
     * Enable the components named in @p spec — the PLUS_LOG syntax: a
     * comma/space/semicolon-separated list of logComponentName() names,
     * or "all". Unknown names are reported to stderr and skipped; a null
     * or empty spec is a no-op. The constructor applies getenv("PLUS_LOG")
     * so runs can be traced without recompiling.
     */
    void applyEnvSpec(const char* spec);

    /** Parse one component name; false if it is not a component. */
    static bool componentFromName(const std::string& name,
                                  LogComponent& out);

    /** Register the simulated-clock source; pass nullptr to clear. */
    void setClock(std::function<Cycles()> clock) { clock_ = std::move(clock); }

    /** Redirect output (defaults to std::cerr); pass nullptr to reset. */
    void setStream(std::ostream* os) { stream_ = os ? os : &std::cerr; }

    void write(LogComponent c, const std::string& msg);

  private:
    Log();

    static unsigned index(LogComponent c) { return static_cast<unsigned>(c); }

    std::array<bool, static_cast<unsigned>(LogComponent::NumComponents)>
        enabled_{};
    std::function<Cycles()> clock_;
    std::ostream* stream_ = &std::cerr;
};

namespace detail {

template <typename... Args>
void
logWrite(LogComponent c, Args&&... args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    Log::instance().write(c, os.str());
}

} // namespace detail

/** Trace a message for a component; formatting cost is paid only if enabled. */
#define PLUS_LOG(component, ...)                                            \
    do {                                                                    \
        if (::plus::Log::instance().isEnabled(component)) {                 \
            ::plus::detail::logWrite(component, __VA_ARGS__);               \
        }                                                                   \
    } while (0)

} // namespace plus

#endif // PLUS_COMMON_LOG_HPP_
