/**
 * @file
 * Error-reporting helpers, following the gem5 distinction between
 * panic() (a simulator bug: should never happen regardless of user input)
 * and fatal() (the user's fault: bad configuration or arguments).
 */

#ifndef PLUS_COMMON_PANIC_HPP_
#define PLUS_COMMON_PANIC_HPP_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace plus {

/** Thrown by fatal(): the simulation cannot continue due to user error. */
class FatalError : public std::runtime_error {
  public:
    explicit FatalError(const std::string& what) : std::runtime_error(what) {}
};

/** Thrown by panic(): an internal invariant was violated (a PLUS bug). */
class PanicError : public std::logic_error {
  public:
    explicit PanicError(const std::string& what) : std::logic_error(what) {}
};

/**
 * Optional hook appended to every panic message. Diagnostic layers
 * (the host-time profiler's flight recorder) install one so stall and
 * invariant-failure reports carry recent per-thread activity. The
 * decorator must be safe to call from any thread and must not throw.
 */
using PanicDecorator = std::string (*)();

/** Install @p fn (nullptr to clear). Not thread-safe vs. a racing panic. */
void setPanicDecorator(PanicDecorator fn);

/**
 * The currently installed decorator (nullptr if none). Layers that want
 * to *add* context rather than replace it read the current hook, stash
 * it, and chain to it from their own decorator.
 */
PanicDecorator panicDecorator();

namespace detail {

[[noreturn]] void throwPanic(const char* file, int line,
                             const std::string& msg);
[[noreturn]] void throwFatal(const std::string& msg);

/** Fold a list of streamable values into one string. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/**
 * Abort with an internal-error diagnostic. Use for conditions that can
 * only arise from a bug in the simulator itself.
 */
#define PLUS_PANIC(...)                                                     \
    ::plus::detail::throwPanic(__FILE__, __LINE__,                          \
                               ::plus::detail::concat(__VA_ARGS__))

/** Abort with a user-error diagnostic (bad config, bad arguments). */
#define PLUS_FATAL(...)                                                     \
    ::plus::detail::throwFatal(::plus::detail::concat(__VA_ARGS__))

/** Assert an internal invariant; active in all build types. */
#define PLUS_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::plus::detail::throwPanic(                                     \
                __FILE__, __LINE__,                                         \
                ::plus::detail::concat("assertion failed: " #cond " ",      \
                                       ##__VA_ARGS__));                     \
        }                                                                   \
    } while (0)

} // namespace plus

#endif // PLUS_COMMON_PANIC_HPP_
