/**
 * @file
 * The determinism contract, as code.
 *
 * Every engine backend (wheel, heap, parallel at any thread count) must
 * produce byte-identical observable output — events, packets, telemetry,
 * checker traces, bench text. `scripts/pluslint.py` enforces the contract
 * statically (rules R1–R5, see docs/STATIC_ANALYSIS.md); this header
 * provides the two annotation macros the linter keys on and the
 * `sortedView()` adapter that turns an unordered container into a
 * deterministically ordered range.
 */

#ifndef PLUS_COMMON_DETERMINISM_HPP_
#define PLUS_COMMON_DETERMINISM_HPP_

#include <algorithm>
#include <type_traits>
#include <vector>

namespace plus {

/**
 * Marks a translation unit as part of the deterministic simulation core.
 * Purely declarative — pluslint treats the annotation as documentation
 * that the file opted into strict checking (which is the default for all
 * of src/ anyway). Place at namespace scope near the top of the file.
 */
#define PLUS_DETERMINISTIC                                                   \
    static_assert(true, "deterministic simulation core")

/**
 * Marks a translation unit as host-facing: it may read wall-clock time or
 * host entropy (rule R2 is waived for the whole file). Use for bench
 * timing, logging front-ends, and other code whose output never feeds the
 * simulation. The reason string is mandatory and shows up in the lint
 * report when the waiver is exercised.
 */
#define PLUS_HOST_ONLY(reason)                                               \
    static_assert(true, "host-only file: " reason)

namespace detail {

template <typename T>
struct IsPairLike : std::false_type {};
template <typename A, typename B>
struct IsPairLike<std::pair<A, B>> : std::true_type {};

template <typename V>
const auto&
sortKeyOf(const V& v)
{
    if constexpr (IsPairLike<std::remove_cv_t<V>>::value) {
        return v.first; // map-like: order by key
    } else {
        return v; // set-like: order by element
    }
}

} // namespace detail

/**
 * A deterministically ordered, read-only view over an unordered
 * container: the elements sorted by key (maps) or value (sets).
 *
 * This is the sanctioned way to iterate an `unordered_map`/`unordered_set`
 * when the results reach observable state (rule R1):
 *
 *     for (const auto& [vpn, count] : sortedView(counters.counts())) ...
 *
 * The view holds pointers into the source container; it is invalidated by
 * any rehash, insert, or erase, exactly like an iterator would be.
 */
template <typename Container>
class SortedView {
  public:
    using value_type = typename Container::value_type;

    explicit SortedView(const Container& c)
    {
        items_.reserve(c.size());
        // pluslint: allow(R1) -- this loop is what makes the order
        // deterministic: every element is collected, then sorted by key.
        for (const auto& element : c) {
            items_.push_back(&element);
        }
        std::sort(items_.begin(), items_.end(),
                  [](const value_type* a, const value_type* b) {
                      return detail::sortKeyOf(*a) < detail::sortKeyOf(*b);
                  });
    }

    class iterator {
      public:
        explicit iterator(const value_type* const* p) : p_(p) {}
        const value_type& operator*() const { return **p_; }
        const value_type* operator->() const { return *p_; }
        iterator& operator++()
        {
            ++p_;
            return *this;
        }
        bool operator!=(const iterator& o) const { return p_ != o.p_; }
        bool operator==(const iterator& o) const { return p_ == o.p_; }

      private:
        const value_type* const* p_;
    };

    iterator begin() const { return iterator(items_.data()); }
    iterator end() const { return iterator(items_.data() + items_.size()); }
    std::size_t size() const { return items_.size(); }
    bool empty() const { return items_.empty(); }

  private:
    std::vector<const value_type*> items_;
};

template <typename Container>
SortedView<Container>
sortedView(const Container& c)
{
    return SortedView<Container>(c);
}

} // namespace plus

#endif // PLUS_COMMON_DETERMINISM_HPP_
