#include "common/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/panic.hpp"

namespace plus {

void
TablePrinter::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    if (!header_.empty()) {
        PLUS_ASSERT(row.size() == header_.size(),
                    "row width ", row.size(), " != header width ",
                    header_.size());
    }
    rows_.push_back(std::move(row));
}

std::string
TablePrinter::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
TablePrinter::num(std::uint64_t value)
{
    return std::to_string(value);
}

void
TablePrinter::print(std::ostream& os) const
{
    // Compute per-column widths over the header and all rows.
    std::vector<std::size_t> widths;
    auto widen = [&widths](const std::vector<std::string>& row) {
        if (widths.size() < row.size()) {
            widths.resize(row.size(), 0);
        }
        for (std::size_t i = 0; i < row.size(); ++i) {
            widths[i] = std::max(widths[i], row[i].size());
        }
    };
    widen(header_);
    for (const auto& row : rows_) {
        widen(row);
    }

    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << (i ? "  " : "") << std::left
               << std::setw(static_cast<int>(widths[i])) << row[i];
        }
        os << "\n";
    };

    if (!title_.empty()) {
        os << title_ << "\n";
    }
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i) {
            total += widths[i] + (i ? 2 : 0);
        }
        os << std::string(total, '-') << "\n";
    }
    for (const auto& row : rows_) {
        emit(row);
    }
}

std::string
TablePrinter::toString() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

} // namespace plus
