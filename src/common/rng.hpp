/**
 * @file
 * Deterministic pseudo-random number generation for workloads and tests.
 *
 * The whole simulator is single-threaded and seeded, so every run is
 * reproducible. We use xoshiro256** (Blackman & Vigna), implemented from
 * the public-domain reference algorithm, rather than std::mt19937 so that
 * results are identical across standard-library implementations.
 */

#ifndef PLUS_COMMON_RNG_HPP_
#define PLUS_COMMON_RNG_HPP_

#include <array>
#include <cstdint>

#include "common/panic.hpp"

namespace plus {

/** xoshiro256** generator; satisfies UniformRandomBitGenerator. */
class Xoshiro256
{
  public:
    using result_type = std::uint64_t;

    explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // Seed the state with splitmix64, as recommended by the authors.
        std::uint64_t x = seed;
        for (auto& word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be positive. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        PLUS_ASSERT(bound > 0, "below() needs a positive bound");
        // Lemire's unbiased multiply-shift rejection method.
        __uint128_t m = static_cast<__uint128_t>(operator()()) * bound;
        auto low = static_cast<std::uint64_t>(m);
        if (low < bound) {
            const std::uint64_t threshold = (-bound) % bound;
            while (low < threshold) {
                m = static_cast<__uint128_t>(operator()()) * bound;
                low = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        PLUS_ASSERT(lo <= hi, "range() needs lo <= hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_;
};

} // namespace plus

#endif // PLUS_COMMON_RNG_HPP_
