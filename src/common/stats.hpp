/**
 * @file
 * Statistics primitives used by the instrumented subsystems.
 *
 * Each subsystem keeps a plain struct of named counters (cheap, typed) and
 * uses Histogram for latency-style distributions. The bench harnesses pull
 * these structs and format them with TablePrinter.
 */

#ifndef PLUS_COMMON_STATS_HPP_
#define PLUS_COMMON_STATS_HPP_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/panic.hpp"

namespace plus {

/**
 * Streaming distribution: tracks count, sum, min, max exactly, and keeps
 * every sample for exact percentiles (sample counts in this simulator are
 * modest; exactness beats approximation for reproducibility).
 */
class Histogram
{
  public:
    void
    record(double value)
    {
        samples_.push_back(value);
        sum_ += value;
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
        sorted_ = false;
    }

    std::uint64_t count() const { return samples_.size(); }
    double sum() const { return sum_; }
    double min() const { return count() ? min_ : 0.0; }
    double max() const { return count() ? max_ : 0.0; }
    double mean() const { return count() ? sum_ / count() : 0.0; }

    /** Exact percentile by nearest-rank; p in [0, 100]. */
    double
    percentile(double p) const
    {
        PLUS_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
        if (samples_.empty()) {
            return 0.0;
        }
        sortIfNeeded();
        const auto n = samples_.size();
        auto rank = static_cast<std::size_t>(p / 100.0 * (n - 1) + 0.5);
        return samples_[std::min(rank, n - 1)];
    }

    double median() const { return percentile(50.0); }

    void
    clear()
    {
        samples_.clear();
        sum_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
        sorted_ = false;
    }

    /** Merge another histogram's samples into this one. */
    void
    merge(const Histogram& other)
    {
        for (double v : other.samples_) {
            record(v);
        }
    }

  private:
    void
    sortIfNeeded() const
    {
        if (!sorted_) {
            std::sort(samples_.begin(), samples_.end());
            sorted_ = true;
        }
    }

    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Ratio helper that renders 0/0 as 0 instead of NaN. */
inline double
safeRatio(double numerator, double denominator)
{
    return denominator == 0.0 ? 0.0 : numerator / denominator;
}

} // namespace plus

#endif // PLUS_COMMON_STATS_HPP_
