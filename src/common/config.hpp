/**
 * @file
 * Configuration structs for the simulated PLUS machine.
 *
 * Defaults reproduce the 1990 implementation: 40 ns cycle, 4 Kbyte pages,
 * 8-entry pending-writes cache, 8-entry delayed-operations cache, mesh
 * router with a 24-cycle adjacent-node round trip (+4 cycles per extra
 * hop), 20 Mbyte/s links, and the coherence-manager occupancies of
 * Table 3-1 (39 cycles for simple interlocked operations, 52 for
 * queue/dequeue/min-xchng).
 */

#ifndef PLUS_COMMON_CONFIG_HPP_
#define PLUS_COMMON_CONFIG_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace plus {

/**
 * The single sanctioned environment read (pluslint rule R5, see
 * docs/STATIC_ANALYSIS.md): every PLUS_* knob is read through here so the
 * full set of environment inputs stays auditable in one translation unit.
 * Returns nullptr when the variable is unset.
 */
const char* envRead(const char* name);

/** One scripted fault-schedule entry (see net::FaultInjector). */
struct FaultScriptEntry {
    enum class Kind : std::uint8_t {
        LinkDown,  ///< kill the (undirected) link a <-> b
        LinkUp,    ///< revive the link a <-> b
        NodeDown,  ///< kill node a's router (all its traffic drops)
        NodeUp,    ///< revive node a's router
        /**
         * Fail-stop crash of node a: router, coherence manager, processor
         * and memory all go permanently silent at the scheduled cycle.
         * Unlike NodeDown there is no matching revive — a crashed node
         * never comes back, and with FaultConfig::recover armed the
         * machine runs the proto::RecoveryManager protocol instead of
         * panicking on retransmit-budget exhaustion.
         */
        CrashNode,
    };
    /**
     * Firing cycle, relative to when the script is armed: the moment
     * enableFaults() runs for direct net::Network users, the first
     * run() for core::Machine workloads (setup allocation, replication
     * and settle() time is excluded, so a schedule composes with any
     * amount of setup).
     */
    Cycles at = 0;
    Kind kind = Kind::LinkDown;
    NodeId a = kInvalidNode;
    NodeId b = kInvalidNode; ///< second link endpoint; unused for nodes
};

/**
 * Fault injection and link-level reliable delivery (net::FaultInjector +
 * net::LinkLayer). Off by default: the network then behaves exactly as
 * without this subsystem — the hot path pays one null-pointer branch per
 * packet, and bench output is byte-identical (the determinism contract,
 * see docs/ROBUSTNESS.md). Enabling it arms both the injector and the
 * reliable-delivery layer: sequence numbers, ack/retransmit with
 * exponential backoff, and duplicate suppression recover every injected
 * loss without the coherence managers noticing.
 */
struct FaultConfig {
    bool enabled = false;

    /** Seed of the injector's own RNG (independent of workload seeds). */
    std::uint64_t seed = 1;

    // Per-packet fault probabilities; their sum must be <= 1.
    double dropRate = 0.0;      ///< packet silently lost
    double corruptRate = 0.0;   ///< payload CRC flipped (dropped at receive)
    double duplicateRate = 0.0; ///< packet delivered twice
    double delayRate = 0.0;     ///< packet held back before injection

    /** Extra delay for delayed packets, uniform in [1, maxDelayCycles]. */
    Cycles maxDelayCycles = 200;

    /** Scripted link/router kills and revives, applied at their cycle. */
    std::vector<FaultScriptEntry> script;

    /** Retransmit timeout before backoff; 0 = derive from latency model. */
    Cycles retransmitTimeout = 0;

    /**
     * Per-frame retransmit budget; exceeding it panics with the link
     * diagnosis (permanent partition). 0 = retry forever and leave the
     * hang to the forward-progress watchdog.
     */
    unsigned maxRetransmits = 32;

    /** Cap on timeout doublings (backoff = timeout << min(n, cap)). */
    unsigned backoffCap = 6;

    /**
     * Arm fail-stop crash recovery (proto::RecoveryManager). When true,
     * retransmit-budget exhaustion against a node the injector reports
     * as crashed becomes a peer-death signal: the recovery manager
     * re-masters the dead node's pages onto surviving replicas, purges
     * it from every copy-list and page table, retries in-flight
     * operations against the new masters, and marks unreplicated pages
     * whose only copy died as lost (accesses then complete with a
     * bounded PageLost fault). When false, a CrashNode schedule behaves
     * like a permanent NodeDown and the link layer's retransmit-budget
     * panic diagnoses the partition.
     */
    bool recover = false;

    /**
     * Replica holders of pages the workload will fence on, declared by
     * the workload at configuration time so MachineConfig::validate()
     * can reject crash schedules that would kill every holder of such a
     * page (the fence could then never complete). One inner vector per
     * fenced page, listing the nodes that hold copies of it.
     */
    std::vector<std::vector<NodeId>> fencedPageReplicas;
};

/** Interconnection-network parameters. */
struct NetworkConfig {
    /**
     * Model selection: the mesh model routes messages hop by hop through
     * routers with finite link bandwidth (contention is visible); the
     * ideal model applies the latency formula with no contention.
     */
    bool ideal = false;

    /** Mesh width in nodes; 0 means choose automatically (near-square). */
    unsigned meshWidth = 0;

    /**
     * One-way fixed latency in cycles (network interface + first router).
     * With perHopCycles this is calibrated to the paper's measurement:
     * round trip between adjacent nodes = 24 cycles, each extra hop
     * adds 4 cycles round trip, i.e. one-way latency = 10 + 2 * hops.
     */
    Cycles fixedCycles = 10;

    /** One-way latency added per hop, in cycles. */
    Cycles perHopCycles = 2;

    /**
     * Link bandwidth in bytes per cycle. 20 Mbyte/s per direction at a
     * 25 MHz (40 ns) clock is 0.8 bytes/cycle. Routers are wormhole/
     * cut-through: serialization occupies each link but pipelines, so it
     * adds to head latency only once under zero load.
     */
    double bytesPerCycle = 0.8;

    /** Per-message header size in bytes (routing, type, originator, tag). */
    unsigned headerBytes = 8;

    /**
     * Per-router input-buffer capacity in packets; 0 = unbounded (the
     * seed behavior). When finite, a hop whose outgoing link has more
     * than this many serialization quanta queued stalls in place and
     * retries — the Section 2.5 "flooded with update requests" effect
     * becomes visible backpressure (net.backpressureStalls) instead of
     * an unbounded queue.
     */
    unsigned routerBufferPackets = 0;

    /** Fault injection + reliable delivery (mesh and ideal networks). */
    FaultConfig fault;
};

/**
 * Event-engine backend selection (mirrors sim::EngineImpl without
 * depending on the sim layer). Every backend realises the exact same
 * event order — see docs/PERF.md for the determinism contract.
 */
enum class SimEngine : std::uint8_t {
    /** Honour the PLUS_ENGINE environment variable (default: wheel). */
    Env,
    /** Serial hierarchical timing wheel (the default backend). */
    Wheel,
    /** Serial priority-queue oracle. */
    Heap,
    /** Conservative-parallel backend: one timing wheel per domain. */
    Parallel,
};

const char* toString(SimEngine engine);

/**
 * Coherence-protocol backend selection (mirrors plus::Protocol without
 * depending on the public header). Write-update is the paper's design
 * and the default; write-invalidate is the MSI-style comparison backend.
 * See docs/PROTOCOLS.md.
 */
enum class CoherenceProtocol : std::uint8_t {
    /** Honour the PLUS_PROTOCOL environment variable (default: update). */
    Env,
    /** PLUS's non-demand write-update copy-list protocol (the paper). */
    WriteUpdate,
    /** MSI-style write-invalidate: a write invalidates remote copies. */
    WriteInvalidate,
};

const char* toString(CoherenceProtocol protocol);

/**
 * Parse a protocol name ("update"/"write-update"/"invalidate"/
 * "write-invalidate") into @p out; false if @p name matches none.
 */
bool coherenceProtocolFromString(const char* name, CoherenceProtocol& out);

/** How the processor hides (or fails to hide) memory/sync latency. */
enum class ProcessorMode {
    /** Stall on every synchronization result (Figure 3-1 "blocking"). */
    Blocking,
    /** Use the delayed-operation issue/verify split (PLUS's mechanism). */
    Delayed,
    /**
     * Switch to another resident thread whenever a synchronization
     * operation is issued, paying ctxSwitchCycles (Figure 3-1's 16/40/140
     * curves).
     */
    ContextSwitch,
};

const char* toString(ProcessorMode mode);

/**
 * Timing constants. All values are in processor cycles and default to the
 * numbers published in the paper (Sections 3.1 and 5).
 */
struct CostModel {
    /** Nanoseconds per cycle in the 1990 implementation (informational). */
    double nsPerCycle = 40.0;

    // --- Processor-side costs -------------------------------------------

    /** Issue of a delayed operation ("approximately 25 cycles"). */
    Cycles procIssueOp = 25;

    /** Reading an available delayed-op result ("about 10 cycles"). */
    Cycles procReadResult = 10;

    /** Processor-side cost to launch a write (non-blocking). */
    Cycles procIssueWrite = 2;

    /**
     * Processor-side costs of a blocking remote read. Together with
     * cmServiceReadReq these reproduce the paper's "about 32 cycles plus
     * the round-trip network delay": 8 + 12 + 12 = 32.
     */
    Cycles procRemoteReadIssue = 8;
    Cycles procRemoteReadComplete = 12;

    /** Cost of a context switch when ProcessorMode::ContextSwitch. */
    Cycles ctxSwitchCycles = 40;

    // --- Processor cache (32 Kbyte write-through, 4-word lines) ---------

    Cycles cacheHit = 1;
    /** Four-word line fetch from local memory ("takes 15 cycles"). */
    Cycles cacheMissFill = 15;
    /** Write-through store to local memory. */
    Cycles cacheWriteThrough = 2;
    unsigned cacheLineWords = 4;
    unsigned cacheBytes = 32 * 1024;
    /** Set associativity of the modelled cache. */
    unsigned cacheWays = 2;
    /** Model the processor cache at all (off = every local read is a hit). */
    bool modelCache = true;
    /**
     * Node-bus snoop policy for words the coherence manager writes:
     * false = write-update (the paper's design, keeps lines valid),
     * true = invalidate (forces a re-fetch; ablation, Section 2.2's
     * update-vs-invalidate discussion).
     */
    bool snoopInvalidate = false;

    // --- Coherence-manager occupancies ----------------------------------

    /** Servicing a remote read request (memory read + reply). */
    Cycles cmServiceReadReq = 12;
    /** Performing a write at a copy and forwarding the update. */
    Cycles cmServiceWrite = 8;
    /** Applying an update at a copy and forwarding it. */
    Cycles cmServiceUpdate = 8;
    /** Handling a write acknowledgement. */
    Cycles cmServiceAck = 2;
    /** Simple interlocked ops: xchng, cond-xchng, fadd, f&s, delayed-read. */
    Cycles cmRmwSimple = 39;
    /** Complex interlocked ops: queue, dequeue, min-xchng. */
    Cycles cmRmwComplex = 52;
    /** Forwarding a request that must be redirected (e.g. to the master). */
    Cycles cmForward = 2;
    /** Copying one word during background page replication. */
    Cycles cmPageCopyWord = 4;
    /**
     * OS exception handler filling a local page-table entry from the
     * centralized table (the lazy evaluation of Section 2.4), and the
     * re-translation performed when a request is nacked.
     */
    Cycles osPageFillCycles = 100;

    // --- Architectural capacities ----------------------------------------

    /** Pending-writes cache entries ("up to 8 writes in progress"). */
    unsigned pendingWriteEntries = 8;
    /** Delayed-operations cache entries ("8 in the current implementation"). */
    unsigned delayedOpEntries = 8;

    /**
     * Whether a delayed RMW's update chain occupies a pending-write entry
     * until the chain completes (so fences also drain RMW side effects).
     * See DESIGN.md "RMW vs fence".
     */
    bool rmwOccupiesPendingWrite = true;

    /**
     * DASH-style ordering (ablation): every interlocked operation
     * implicitly drains the pending-writes cache before issuing,
     * instead of PLUS's explicit, programmer-placed fence
     * ("PLUS does not enforce full fences as part of synchronization
     * operations, as in DASH", Section 2.3).
     */
    bool implicitFenceOnSync = false;

    /**
     * First word offset of the circular-queue region used by the queue /
     * dequeue operations; offsets wrap within [queueBaseOffset,
     * kPageWords). Words below the base hold the tail/head offset words.
     */
    Addr queueBaseOffset = 2;

    // --- NACK retry policy (robustness hardening) -----------------------

    /**
     * Maximum re-translation retries per nacked request before the
     * coherence manager panics with the event trace (a silent livelock
     * becomes a diagnosable failure). 0 = unbounded (the seed behavior).
     */
    unsigned nackRetryLimit = 64;

    /**
     * Extra delay added to the second and later retries of the same
     * request: nackBackoffBase << min(retry - 2, nackBackoffCap). The
     * first retry keeps the seed's timing so fault-free runs stay
     * byte-identical (migration legitimately nacks once).
     */
    Cycles nackBackoffBase = 64;
    unsigned nackBackoffCap = 6;
};

/**
 * Runtime checking (the plus::check subsystem): a protocol-invariant
 * checker over the coherence traffic and a happens-before race detector
 * over the application's accesses. Always compiled in; each layer is
 * toggled here and costs one null-pointer branch per event when off.
 */
struct CheckConfig {
    /** Validate protocol ordering invariants; panic on violation. */
    bool invariants = true;
    /** Run the happens-before race detector (off: seed workloads race). */
    bool races = false;
    /** Panic at the first detected race instead of recording it. */
    bool panicOnRace = false;
    /** Events of history to keep for violation reports. */
    unsigned traceDepth = 64;
};

/**
 * Telemetry (the plus::telemetry subsystem): a cycle-stamped structured
 * event tracer plus per-message-class latency distributions and traffic
 * attribution, fed by the same observer hooks as the checker. The metrics
 * registry itself is always on (it pulls counters the subsystems keep
 * anyway); the tracer is opt-in and costs one null-pointer branch per
 * event when off. Tracing only observes — it never schedules events or
 * touches protocol state, so enabling it cannot change any timing.
 */
struct TelemetryConfig {
    /** Record events into the trace ring and the traffic summaries. */
    bool trace = false;
    /** Bounded event-ring capacity; older events are overwritten. */
    std::size_t ringCapacity = 1u << 18;
};

/**
 * Forward-progress watchdog (sim::Watchdog, wired by core::Machine).
 * When enabled, a periodic check panics — dumping recent telemetry and
 * the checker's event trace — if an entire window elapses with no
 * processor progress and no packet delivered while work is still
 * pending. Off by default: the watchdog then schedules no events at
 * all, so enabling it is the only way it can perturb timing.
 */
struct WatchdogConfig {
    bool enabled = false;
    /** Progress-check period in cycles. */
    Cycles windowCycles = 1u << 20;
};

/** Top-level machine description. */
struct MachineConfig {
    /** Number of nodes (each: processor + memory + coherence manager). */
    unsigned nodes = 16;

    /** Local-memory frames per node (8 Mbyte / 4 Kbyte = 2048 by default). */
    unsigned framesPerNode = 2048;

    /** Processor latency-hiding mode. */
    ProcessorMode mode = ProcessorMode::Delayed;

    /** Event-engine backend (Env = honour PLUS_ENGINE). */
    SimEngine engine = SimEngine::Env;

    /** Coherence-protocol backend (Env = honour PLUS_PROTOCOL). */
    CoherenceProtocol protocol = CoherenceProtocol::Env;

    /**
     * Explicit acknowledgement that a non-default protocol override is
     * intended. plus::MachineBuilder::protocol() sets it; the deprecated
     * direct Machine(MachineConfig) construction path must set it by
     * hand or validate() rejects the override — configs written before
     * the protocol field existed cannot silently change meaning.
     */
    bool protocolOptIn = false;

    /**
     * Worker threads for the parallel backend: each owns a contiguous
     * spatial domain of nodes. 0 = pick automatically (one per
     * hardware core, at most one per node). Must not exceed the node
     * count; ignored by the serial backends.
     */
    unsigned simThreads = 0;

    /**
     * Spatial domains for the parallel backend. Each domain is a
     * contiguous node range with its own event wheel; threads own
     * domains round-robin, so more domains than threads improves load
     * balance on skewed meshes. 0 = pick automatically (up to 4 per
     * thread). Must be a multiple of the resolved thread count and at
     * most min(nodes, 62); ignored by the serial backends.
     */
    unsigned simDomains = 0;

    NetworkConfig network;
    CostModel cost;
    CheckConfig check;
    TelemetryConfig telemetry;
    WatchdogConfig watchdog;

    /** Seed for all workload randomness. */
    std::uint64_t seed = 1;

    /** Fiber stack size for simulated threads, in bytes. */
    std::size_t threadStackBytes = 256 * 1024;

    /**
     * Validate and fill in derived fields (mesh dimensions). Throws
     * FatalError on inconsistent settings.
     */
    void validate();

    /** Mesh width after validate() (explicit or near-square automatic). */
    unsigned meshWidth() const { return resolvedMeshWidth_; }
    unsigned meshHeight() const { return resolvedMeshHeight_; }

    /** Protocol after validate(): explicit, or PLUS_PROTOCOL, or update. */
    CoherenceProtocol resolvedProtocol() const { return resolvedProtocol_; }

  private:
    unsigned resolvedMeshWidth_ = 0;
    unsigned resolvedMeshHeight_ = 0;
    CoherenceProtocol resolvedProtocol_ = CoherenceProtocol::WriteUpdate;
};

} // namespace plus

#endif // PLUS_COMMON_CONFIG_HPP_
