#include "common/types.hpp"

#include <sstream>

namespace plus {

std::string
toString(const PhysPage& page)
{
    std::ostringstream os;
    if (!page.valid()) {
        os << "<invalid-page>";
    } else {
        os << "n" << page.node << ".f" << page.frame;
    }
    return os.str();
}

std::string
toString(const PhysAddr& addr)
{
    std::ostringstream os;
    os << toString(addr.page) << "+o" << addr.wordOffset;
    return os.str();
}

} // namespace plus
