/**
 * @file
 * Fundamental types and constants shared by every PLUS subsystem.
 *
 * PLUS (Bisiani & Ravishankar, ISCA 1990) is a distributed shared-memory
 * multiprocessor. Throughout the code base we follow the paper's units:
 * the unit of memory access and coherence is one 32-bit word, the unit of
 * replication is a 4 Kbyte page, and time is measured in processor cycles
 * (40 ns in the 1990 implementation; the simulator only counts cycles).
 */

#ifndef PLUS_COMMON_TYPES_HPP_
#define PLUS_COMMON_TYPES_HPP_

#include <cstdint>
#include <limits>
#include <string>

namespace plus {

/** Simulated time in processor cycles. */
using Cycles = std::uint64_t;

/** A 32-bit memory word, the unit of access and coherence. */
using Word = std::uint32_t;

/** Byte address in the single shared virtual address space. */
using Addr = std::uint64_t;

/** Identifier of a node (processor + memory + coherence manager). */
using NodeId = std::uint32_t;

/** Identifier of a physical page frame within one node's local memory. */
using FrameId = std::uint32_t;

/** Virtual page number (virtual address divided by the page size). */
using Vpn = std::uint64_t;

/** Identifier of a simulated application thread. */
using ThreadId = std::uint32_t;

/** Sentinel for "no node". */
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/** Sentinel for "no frame". */
inline constexpr FrameId kInvalidFrame = std::numeric_limits<FrameId>::max();

/** Sentinel for "no address". */
inline constexpr Addr kInvalidAddr = std::numeric_limits<Addr>::max();

/** Page size in bytes (dictated by the off-the-shelf CPU's MMU: 4 Kbytes). */
inline constexpr Addr kPageBytes = 4096;

/** log2(kPageBytes), for shifting. */
inline constexpr unsigned kPageShift = 12;

/** Bytes per 32-bit word. */
inline constexpr Addr kWordBytes = 4;

/** Words per page (1024 in the 1990 implementation). */
inline constexpr Addr kPageWords = kPageBytes / kWordBytes;

/**
 * Top-bit flag used by the interlocked operations (Table 3-1): queue slots
 * are "full" when the top bit is set, `fetch-and-set` sets it, and
 * `cond-xchng` tests it. Payload values are therefore at most 31 bits.
 */
inline constexpr Word kTopBit = 0x80000000u;

/** Mask selecting the 31-bit payload of a flagged word. */
inline constexpr Word kPayloadMask = 0x7fffffffu;

/**
 * Value returned by degraded-mode accesses to a *lost* page — one whose
 * every physical copy died with a fail-stop node crash (see
 * proto::RecoveryManager). Reads and interlocked results complete with
 * this sentinel instead of retrying forever; writes are dropped.
 */
inline constexpr Word kPageLostValue = 0xDEADDEADu;

/**
 * Global physical page address: a <node-id, page-id> pair, generated
 * directly by the memory-mapping mechanism of the processor (Section 2.3).
 */
struct PhysPage {
    NodeId node = kInvalidNode;
    FrameId frame = kInvalidFrame;

    bool valid() const { return node != kInvalidNode; }
    bool operator==(const PhysPage&) const = default;
};

/** A physical word location: a page plus a word offset within it. */
struct PhysAddr {
    PhysPage page;
    /** Word offset within the page, in [0, kPageWords). */
    Addr wordOffset = 0;

    bool valid() const { return page.valid(); }
    bool operator==(const PhysAddr&) const = default;
};

/** Extract the virtual page number of a byte address. */
inline constexpr Vpn
pageOf(Addr addr)
{
    return addr >> kPageShift;
}

/** Extract the word offset within the page of a byte address. */
inline constexpr Addr
wordOffsetOf(Addr addr)
{
    return (addr & (kPageBytes - 1)) / kWordBytes;
}

/** First byte address of a virtual page. */
inline constexpr Addr
pageBase(Vpn vpn)
{
    return static_cast<Addr>(vpn) << kPageShift;
}

/** True if the byte address is 32-bit-word aligned. */
inline constexpr bool
wordAligned(Addr addr)
{
    return (addr & (kWordBytes - 1)) == 0;
}

/** Render a physical page as "n3.f17" for diagnostics. */
std::string toString(const PhysPage& page);

/** Render a physical address as "n3.f17+o5" for diagnostics. */
std::string toString(const PhysAddr& addr);

} // namespace plus

#endif // PLUS_COMMON_TYPES_HPP_
