/**
 * @file
 * Hardware reference counters supporting competitive replication
 * (Section 2.4): the coherence manager counts the node's references to
 * each remote page and interrupts the node processor when a counter
 * overflows, letting software decide whether the cumulative cost of
 * remote references justifies creating a local copy.
 */

#ifndef PLUS_MEM_REF_COUNTERS_HPP_
#define PLUS_MEM_REF_COUNTERS_HPP_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/panic.hpp"
#include "common/types.hpp"

namespace plus {
namespace mem {

/** Per-node remote-reference counters with overflow interrupt. */
class RefCounters
{
  public:
    /** Handler invoked when a page's counter reaches the threshold. */
    using OverflowHandler = std::function<void(Vpn, std::uint64_t count)>;

    explicit RefCounters(std::uint64_t threshold) : threshold_(threshold)
    {
        PLUS_ASSERT(threshold_ > 0, "overflow threshold must be positive");
    }

    void setOverflowHandler(OverflowHandler h) { handler_ = std::move(h); }

    /**
     * Record one remote reference to @p vpn. Fires the overflow handler
     * exactly when the count reaches the threshold, then resets the
     * counter (re-arming it, as a hardware saturating counter would be
     * cleared by the interrupt handler).
     */
    void
    recordRemoteRef(Vpn vpn)
    {
        std::uint64_t& count = counts_[vpn];
        ++count;
        ++total_;
        if (count >= threshold_) {
            count = 0;
            if (handler_) {
                handler_(vpn, threshold_);
            }
        }
    }

    std::uint64_t
    count(Vpn vpn) const
    {
        auto it = counts_.find(vpn);
        return it == counts_.end() ? 0 : it->second;
    }

    void reset(Vpn vpn) { counts_.erase(vpn); }
    void clear() { counts_.clear(); }

    /** Re-arm the counters with a new threshold (OS policy change). */
    void
    setThreshold(std::uint64_t threshold)
    {
        PLUS_ASSERT(threshold > 0, "overflow threshold must be positive");
        threshold_ = threshold;
    }

    std::uint64_t totalRemoteRefs() const { return total_; }
    std::uint64_t threshold() const { return threshold_; }

    /** All per-page counts (for measurement-driven placement). */
    const std::unordered_map<Vpn, std::uint64_t>& counts() const
    {
        return counts_;
    }

  private:
    std::uint64_t threshold_;
    std::unordered_map<Vpn, std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    OverflowHandler handler_;
};

} // namespace mem
} // namespace plus

#endif // PLUS_MEM_REF_COUNTERS_HPP_
