/**
 * @file
 * The per-node hardware tables the coherence manager consults on every
 * write (Section 2.3): for each locally replicated physical page, the
 * master table identifies the global physical address of the master copy,
 * and the next-copy table identifies the successor, if any, of the local
 * copy along the copy-list. Both are maintained by the operating system.
 */

#ifndef PLUS_MEM_COHERENCE_TABLES_HPP_
#define PLUS_MEM_COHERENCE_TABLES_HPP_

#include <optional>
#include <unordered_map>

#include "common/panic.hpp"
#include "common/types.hpp"

namespace plus {
namespace mem {

/** master + next-copy tables of one node, keyed by local frame. */
class CoherenceTables
{
  public:
    /** Set the master-copy address for a local frame. */
    void
    setMaster(FrameId frame, PhysPage master)
    {
        master_[frame] = master;
    }

    /** Set (or clear, with nullopt) the successor of a local frame. */
    void
    setNextCopy(FrameId frame, std::optional<PhysPage> next)
    {
        if (next) {
            next_[frame] = *next;
        } else {
            next_.erase(frame);
        }
    }

    /** Drop both entries when the local copy is deleted. */
    void
    erase(FrameId frame)
    {
        master_.erase(frame);
        next_.erase(frame);
    }

    /** Master copy of the page held in @p frame. @pre entry exists. */
    PhysPage
    master(FrameId frame) const
    {
        auto it = master_.find(frame);
        PLUS_ASSERT(it != master_.end(),
                    "no master-table entry for frame ", frame);
        return it->second;
    }

    bool knows(FrameId frame) const { return master_.count(frame) != 0; }

    /** Successor of the local copy in @p frame, if any. */
    std::optional<PhysPage>
    nextCopy(FrameId frame) const
    {
        auto it = next_.find(frame);
        if (it == next_.end()) {
            return std::nullopt;
        }
        return it->second;
    }

  private:
    std::unordered_map<FrameId, PhysPage> master_;
    std::unordered_map<FrameId, PhysPage> next_;
};

} // namespace mem
} // namespace plus

#endif // PLUS_MEM_COHERENCE_TABLES_HPP_
