/**
 * @file
 * One node's local memory: a pool of 4 Kbyte page frames holding 32-bit
 * words. The local memory serves both as the node's main memory and as a
 * "cache" for pages whose master copy lives elsewhere (Section 2.3).
 *
 * Frame storage is allocated lazily so large configured memories cost
 * nothing until used.
 */

#ifndef PLUS_MEM_LOCAL_MEMORY_HPP_
#define PLUS_MEM_LOCAL_MEMORY_HPP_

#include <memory>
#include <vector>

#include "common/panic.hpp"
#include "common/types.hpp"

namespace plus {
namespace mem {

/** Frame-granular word-addressed memory of a single node. */
class LocalMemory
{
  public:
    explicit LocalMemory(unsigned frames) : storage_(frames) {}

    unsigned capacityFrames() const
    {
        return static_cast<unsigned>(storage_.size());
    }

    unsigned framesInUse() const { return inUse_; }

    /**
     * Allocate a zero-filled frame.
     * @throws FatalError when the node is out of physical memory.
     */
    FrameId allocFrame();

    /** Release a frame back to the pool; its contents are dropped. */
    void freeFrame(FrameId frame);

    /** True if the frame is currently allocated. */
    bool allocated(FrameId frame) const;

    /** Read one word. @pre frame allocated, offset < kPageWords. */
    Word
    read(FrameId frame, Addr word_offset) const
    {
        return page(frame)[check(word_offset)];
    }

    /** Write one word. @pre frame allocated, offset < kPageWords. */
    void
    write(FrameId frame, Addr word_offset, Word value)
    {
        page(frame)[check(word_offset)] = value;
    }

  private:
    using PageData = std::vector<Word>;

    static Addr
    check(Addr word_offset)
    {
        PLUS_ASSERT(word_offset < kPageWords, "word offset ", word_offset,
                    " outside page");
        return word_offset;
    }

    PageData&
    page(FrameId frame)
    {
        PLUS_ASSERT(frame < storage_.size() && storage_[frame],
                    "access to unallocated frame ", frame);
        return *storage_[frame];
    }

    const PageData&
    page(FrameId frame) const
    {
        PLUS_ASSERT(frame < storage_.size() && storage_[frame],
                    "access to unallocated frame ", frame);
        return *storage_[frame];
    }

    std::vector<std::unique_ptr<PageData>> storage_;
    std::vector<FrameId> freeList_;
    FrameId nextNever_ = 0;
    unsigned inUse_ = 0;
};

} // namespace mem
} // namespace plus

#endif // PLUS_MEM_LOCAL_MEMORY_HPP_
