#include "mem/local_memory.hpp"

namespace plus {
namespace mem {

FrameId
LocalMemory::allocFrame()
{
    FrameId frame;
    if (!freeList_.empty()) {
        frame = freeList_.back();
        freeList_.pop_back();
    } else if (nextNever_ < storage_.size()) {
        frame = nextNever_++;
    } else {
        PLUS_FATAL("node out of physical memory (",
                   storage_.size(), " frames)");
    }
    storage_[frame] = std::make_unique<PageData>(kPageWords, Word{0});
    ++inUse_;
    return frame;
}

void
LocalMemory::freeFrame(FrameId frame)
{
    PLUS_ASSERT(allocated(frame), "double free of frame ", frame);
    storage_[frame].reset();
    freeList_.push_back(frame);
    --inUse_;
}

bool
LocalMemory::allocated(FrameId frame) const
{
    return frame < storage_.size() && storage_[frame] != nullptr;
}

} // namespace mem
} // namespace plus
