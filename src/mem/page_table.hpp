/**
 * @file
 * Virtual-memory mapping structures (Section 2.4).
 *
 * All nodes share one virtual address space, but each node maintains its
 * own page table mapping a virtual page to the most convenient physical
 * copy (usually the closest). Local tables are filled lazily: on a miss
 * the exception handler consults the centralized PageDirectory, which
 * records the copy-list of every legal virtual page.
 */

#ifndef PLUS_MEM_PAGE_TABLE_HPP_
#define PLUS_MEM_PAGE_TABLE_HPP_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "mem/copy_list.hpp"

namespace plus {
namespace mem {

/** Per-node virtual-to-physical map with lazy fill. */
class PageTable
{
  public:
    /** Translate; nullopt means a local page-table miss. */
    std::optional<PhysPage>
    lookup(Vpn vpn) const
    {
        auto it = map_.find(vpn);
        if (it == map_.end()) {
            return std::nullopt;
        }
        return it->second;
    }

    /** Install or update a mapping (exception handler / OS action). */
    void
    install(Vpn vpn, PhysPage page)
    {
        map_[vpn] = page;
        ++fills_;
    }

    /** Remove a mapping, e.g. when its copy is deleted ("TLB flush"). */
    void
    invalidate(Vpn vpn)
    {
        if (map_.erase(vpn)) {
            ++invalidations_;
        }
    }

    bool contains(Vpn vpn) const { return map_.count(vpn) != 0; }
    std::size_t size() const { return map_.size(); }

    std::uint64_t fills() const { return fills_; }
    std::uint64_t invalidations() const { return invalidations_; }

  private:
    std::unordered_map<Vpn, PhysPage> map_;
    std::uint64_t fills_ = 0;
    std::uint64_t invalidations_ = 0;
};

/**
 * Centralized table of legal mappings: one CopyList per virtual page.
 * Maintained by the operating system (the Machine in this simulator).
 */
class PageDirectory
{
  public:
    /** Register a new virtual page with its master copy. */
    void
    create(Vpn vpn, PhysPage master)
    {
        PLUS_ASSERT(!map_.count(vpn), "vpn ", vpn, " already exists");
        map_.emplace(vpn, CopyList(master));
    }

    /** Destroy a virtual page entirely. */
    void
    destroy(Vpn vpn)
    {
        PLUS_ASSERT(map_.erase(vpn) == 1, "destroy of unknown vpn ", vpn);
    }

    bool contains(Vpn vpn) const { return map_.count(vpn) != 0; }

    const CopyList&
    copyList(Vpn vpn) const
    {
        auto it = map_.find(vpn);
        PLUS_ASSERT(it != map_.end(), "unknown vpn ", vpn);
        return it->second;
    }

    CopyList&
    copyList(Vpn vpn)
    {
        auto it = map_.find(vpn);
        PLUS_ASSERT(it != map_.end(), "unknown vpn ", vpn);
        return it->second;
    }

    std::size_t pages() const { return map_.size(); }

    /**
     * Every legal virtual page, ascending. Recovery walks the whole
     * directory; sorting makes the walk identical in every backend
     * (the underlying map's order is not deterministic).
     */
    std::vector<Vpn>
    sortedVpns() const
    {
        std::vector<Vpn> vpns;
        vpns.reserve(map_.size());
        // pluslint: allow(R1) -- collected then sorted before use.
        for (const auto& [vpn, list] : map_) {
            (void)list;
            vpns.push_back(vpn);
        }
        std::sort(vpns.begin(), vpns.end());
        return vpns;
    }

  private:
    std::unordered_map<Vpn, CopyList> map_;
};

} // namespace mem
} // namespace plus

#endif // PLUS_MEM_PAGE_TABLE_HPP_
