#include "mem/copy_list.hpp"

#include <algorithm>

#include "common/panic.hpp"

namespace plus {
namespace mem {

PhysPage
CopyList::master() const
{
    PLUS_ASSERT(!copies_.empty(), "master() on empty copy-list");
    return copies_.front();
}

bool
CopyList::hasCopyOn(NodeId node) const
{
    return copyOn(node).has_value();
}

std::optional<PhysPage>
CopyList::copyOn(NodeId node) const
{
    for (const PhysPage& copy : copies_) {
        if (copy.node == node) {
            return copy;
        }
    }
    return std::nullopt;
}

std::optional<PhysPage>
CopyList::successorOf(PhysPage copy) const
{
    for (std::size_t i = 0; i + 1 < copies_.size(); ++i) {
        if (copies_[i] == copy) {
            return copies_[i + 1];
        }
    }
    return std::nullopt;
}

void
CopyList::insertAfter(PhysPage after, PhysPage copy)
{
    PLUS_ASSERT(!hasCopyOn(copy.node),
                "node ", copy.node, " already holds a copy");
    auto it = std::find(copies_.begin(), copies_.end(), after);
    PLUS_ASSERT(it != copies_.end(), "insertAfter: anchor not in list");
    copies_.insert(it + 1, copy);
    mutated("insert");
}

void
CopyList::append(PhysPage copy)
{
    PLUS_ASSERT(!hasCopyOn(copy.node),
                "node ", copy.node, " already holds a copy");
    copies_.push_back(copy);
    mutated("append");
}

void
CopyList::removeOn(NodeId node)
{
    auto it = std::find_if(copies_.begin(), copies_.end(),
                           [node](const PhysPage& c) {
                               return c.node == node;
                           });
    PLUS_ASSERT(it != copies_.end(), "removeOn: node ", node,
                " holds no copy");
    copies_.erase(it);
    mutated("remove");
}

void
CopyList::orderForPathLength(const net::Topology& topology)
{
    if (copies_.size() <= 2) {
        return;
    }
    // Greedy nearest-neighbour chain: keep the master fixed, repeatedly
    // pick the unplaced copy closest to the chain's current tail.
    std::vector<PhysPage> ordered;
    ordered.reserve(copies_.size());
    ordered.push_back(copies_.front());
    std::vector<PhysPage> rest(copies_.begin() + 1, copies_.end());
    while (!rest.empty()) {
        const NodeId tail = ordered.back().node;
        auto best = rest.begin();
        unsigned best_dist = topology.distance(tail, best->node);
        for (auto it = rest.begin() + 1; it != rest.end(); ++it) {
            const unsigned d = topology.distance(tail, it->node);
            if (d < best_dist) {
                best = it;
                best_dist = d;
            }
        }
        ordered.push_back(*best);
        rest.erase(best);
    }
    copies_ = std::move(ordered);
    mutated("reorder");
}

unsigned
CopyList::pathLength(const net::Topology& topology) const
{
    unsigned total = 0;
    for (std::size_t i = 0; i + 1 < copies_.size(); ++i) {
        total += topology.distance(copies_[i].node, copies_[i + 1].node);
    }
    return total;
}

} // namespace mem
} // namespace plus
