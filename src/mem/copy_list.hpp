/**
 * @file
 * The copy-list of a virtual page: the ordered list of physical copies,
 * headed by the master copy (Section 2.3). Writes always take effect at
 * the master first and propagate down this list, which gives general
 * coherence (all copies of a location are written in the same order).
 *
 * The operating system orders the list to minimize the network path
 * length through all the nodes holding copies; orderForPathLength()
 * implements that with a greedy nearest-neighbour chain starting at the
 * master.
 */

#ifndef PLUS_MEM_COPY_LIST_HPP_
#define PLUS_MEM_COPY_LIST_HPP_

#include <optional>
#include <vector>

#include "check/hooks.hpp"
#include "common/types.hpp"
#include "net/topology.hpp"

namespace plus {
namespace mem {

/** Ordered list of the physical copies of one virtual page. */
class CopyList
{
  public:
    CopyList() = default;

    /** Create an unreplicated page: the master is the only copy. */
    explicit CopyList(PhysPage master) { copies_.push_back(master); }

    /**
     * Mirror structural mutations into the plus::check subsystem (null
     * disables). Copy-assigning a fresh CopyList clears the observer;
     * the owner re-installs it (see core::Machine).
     */
    void setCheckObserver(check::CopyListObserver* check)
    {
        check_ = check;
    }

    bool empty() const { return copies_.empty(); }
    std::size_t size() const { return copies_.size(); }

    /** The master copy (first element). @pre not empty. */
    PhysPage master() const;

    const std::vector<PhysPage>& copies() const { return copies_; }

    /** True if some copy lives on @p node. */
    bool hasCopyOn(NodeId node) const;

    /** The copy on @p node, if any. */
    std::optional<PhysPage> copyOn(NodeId node) const;

    /** Successor of @p copy along the list, if any. */
    std::optional<PhysPage> successorOf(PhysPage copy) const;

    /**
     * Insert a new copy after @p after (which must be present). Inserting
     * after the master keeps the master unchanged.
     */
    void insertAfter(PhysPage after, PhysPage copy);

    /** Append a copy at the tail. */
    void append(PhysPage copy);

    /**
     * Remove the copy on @p node.
     * @pre the node holds a copy and it is not the only one, unless the
     *      page itself is being destroyed (removing the last copy is
     *      allowed and leaves the list empty).
     * @note Removing the master promotes its successor to master.
     */
    void removeOn(NodeId node);

    /**
     * Reorder the non-master copies into a greedy nearest-neighbour chain
     * (by mesh distance) starting from the master, approximating the OS's
     * minimal-path-length ordering.
     */
    void orderForPathLength(const net::Topology& topology);

    /**
     * Total path length in hops walking the list in order (the cost a
     * write pays in network traversals).
     */
    unsigned pathLength(const net::Topology& topology) const;

  private:
    void
    mutated(const char* op)
    {
        if (check_) {
            check_->onCopyListMutated(*this, op);
        }
    }

    std::vector<PhysPage> copies_;
    check::CopyListObserver* check_ = nullptr;
};

} // namespace mem
} // namespace plus

#endif // PLUS_MEM_COPY_LIST_HPP_
