#include "telemetry/prof.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/panic.hpp"
#include "common/table.hpp"
#include "telemetry/json.hpp"

namespace plus {
namespace prof {

PLUS_HOST_ONLY("host-time profiler reporting: calibrates the TSC "
               "against steady_clock; output is diagnostic only");

namespace {

/**
 * Ticks per second of detail::tick(), measured once against
 * steady_clock over a short busy window. Calibration runs at report
 * time, never on the simulation path.
 */
double
calibrate()
{
    // pluslint: allow(R4) -- one-time host-clock calibration cache in a
    // PLUS_HOST_ONLY file; never observable by the simulation.
    static double cached = 0; // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)
    if (cached > 0) {
        return cached;
    }
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t c0 = detail::tick();
    for (;;) {
        const auto t1 = std::chrono::steady_clock::now();
        if (t1 - t0 >= std::chrono::milliseconds(5)) {
            const std::uint64_t c1 = detail::tick();
            const double secs =
                std::chrono::duration<double>(t1 - t0).count();
            cached = secs > 0 ? static_cast<double>(c1 - c0) / secs : 1e9;
            return cached;
        }
    }
}

double
toNs(std::uint64_t ticks, double ticks_per_sec)
{
    return ticks_per_sec > 0
               ? static_cast<double>(ticks) * 1e9 / ticks_per_sec
               : 0.0;
}

double
pct(std::uint64_t part, std::uint64_t whole)
{
    return whole == 0
               ? 0.0
               : 100.0 * static_cast<double>(part) /
                     static_cast<double>(whole);
}

bool
isBarrier(std::size_t phase)
{
    return phase == static_cast<std::size_t>(Phase::ParBarrier);
}

bool
isDrain(std::size_t phase)
{
    return phase == static_cast<std::size_t>(Phase::ParDrain);
}

} // namespace

void
enable(bool on)
{
    detail::g_prof.enabled.store(on ? 1 : 0, std::memory_order_relaxed);
    if (on) {
        // Any panic from here on carries the flight recorder: the
        // watchdog's stall report and protocol invariant failures all
        // say what each thread was last doing on the host.
        setPanicDecorator([] { return flightRecorderDump(); });
    }
}

Summary
collect()
{
    Summary s;
    s.ticksPerSec = calibrate();
    detail::Global& g = detail::g_prof;
    s.runWallTicks = g.runWallTicks.load(std::memory_order_relaxed);
    s.windows = g.windows.load(std::memory_order_relaxed);
    s.windowWidthSum = g.windowWidthSum.load(std::memory_order_relaxed);
    s.windowWidthMax = g.windowWidthMax.load(std::memory_order_relaxed);
    s.windowEventsSum = g.windowEventsSum.load(std::memory_order_relaxed);
    s.windowEventsMax = g.windowEventsMax.load(std::memory_order_relaxed);
    s.windowMailSum = g.windowMailSum.load(std::memory_order_relaxed);
    s.batches = g.batches.load(std::memory_order_relaxed);
    s.batchWindowsSum =
        g.batchWindowsSum.load(std::memory_order_relaxed);
    s.batchEventsSum = g.batchEventsSum.load(std::memory_order_relaxed);
    s.lookahead = g.lookahead.load(std::memory_order_relaxed);
    const std::uint64_t wmin =
        g.windowWidthMin.load(std::memory_order_relaxed);
    s.windowWidthMin = s.windows > 0 ? wmin : 0;
    const std::uint64_t emin =
        g.windowEventsMin.load(std::memory_order_relaxed);
    s.windowEventsMin = s.windows > 0 ? emin : 0;

    const std::lock_guard<std::mutex> lock(g.mutex);
    for (const auto& tp : g.threads) {
        Summary::Thread t;
        t.label = tp->label;
        bool any = false;
        for (std::size_t p = 0; p < kNumPhases; ++p) {
            t.ticks[p] = tp->ticks[p].load(std::memory_order_relaxed);
            t.count[p] = tp->count[p].load(std::memory_order_relaxed);
            any = any || t.count[p] != 0;
        }
        if (any) {
            s.threads.push_back(std::move(t));
        }
    }
    return s;
}

Rollup
rollupOf(const Summary::Thread& thread, std::uint64_t run_wall_ticks)
{
    std::uint64_t work = 0;
    std::uint64_t barrier = 0;
    std::uint64_t drain = 0;
    for (std::size_t p = 0; p < kNumPhases; ++p) {
        if (isBarrier(p)) {
            barrier += thread.ticks[p];
        } else if (isDrain(p)) {
            drain += thread.ticks[p];
        } else {
            work += thread.ticks[p];
        }
    }
    const std::uint64_t attributed = work + barrier + drain;
    // Threads can spend (slightly) more than the run wall inside
    // scopes when they also ran outside Engine::run (settle(),
    // teardown); clamp so the four buckets always cover 100%.
    const std::uint64_t wall = std::max(run_wall_ticks, attributed);
    Rollup r;
    r.workPct = pct(work, wall);
    r.barrierPct = pct(barrier, wall);
    r.drainPct = pct(drain, wall);
    r.otherPct =
        std::max(0.0, 100.0 - r.workPct - r.barrierPct - r.drainPct);
    return r;
}

Rollup
aggregateRollup(const Summary& summary)
{
    std::uint64_t work = 0;
    std::uint64_t barrier = 0;
    std::uint64_t drain = 0;
    for (const Summary::Thread& t : summary.threads) {
        for (std::size_t p = 0; p < kNumPhases; ++p) {
            if (isBarrier(p)) {
                barrier += t.ticks[p];
            } else if (isDrain(p)) {
                drain += t.ticks[p];
            } else {
                work += t.ticks[p];
            }
        }
    }
    const std::uint64_t wall = std::max(
        summary.runWallTicks *
            std::max<std::uint64_t>(1, summary.threads.size()),
        work + barrier + drain);
    Rollup r;
    r.workPct = pct(work, wall);
    r.barrierPct = pct(barrier, wall);
    r.drainPct = pct(drain, wall);
    r.otherPct =
        std::max(0.0, 100.0 - r.workPct - r.barrierPct - r.drainPct);
    return r;
}

void
writeJson(std::ostream& os)
{
    const Summary s = collect();
    os << "{\"enabled\":" << (enabled() ? "true" : "false")
       << ",\"ticksPerSec\":" << telemetry::jsonNumber(s.ticksPerSec)
       << ",\"runWallNs\":"
       << telemetry::jsonNumber(toNs(s.runWallTicks, s.ticksPerSec))
       << ",\"lookahead\":" << s.lookahead << ",\"windows\":{"
       << "\"count\":" << s.windows << ",\"widthSum\":" << s.windowWidthSum
       << ",\"widthMin\":" << s.windowWidthMin
       << ",\"widthMax\":" << s.windowWidthMax
       << ",\"widthMean\":"
       << telemetry::jsonNumber(
              s.windows ? static_cast<double>(s.windowWidthSum) /
                              static_cast<double>(s.windows)
                        : 0.0)
       << ",\"eventsSum\":" << s.windowEventsSum
       << ",\"eventsMin\":" << s.windowEventsMin
       << ",\"eventsMax\":" << s.windowEventsMax
       << ",\"eventsMean\":"
       << telemetry::jsonNumber(
              s.windows ? static_cast<double>(s.windowEventsSum) /
                              static_cast<double>(s.windows)
                        : 0.0)
       << ",\"mailSum\":" << s.windowMailSum << "},\"batches\":{"
       << "\"count\":" << s.batches
       << ",\"windowsSum\":" << s.batchWindowsSum
       << ",\"windowsPerBatchMean\":"
       << telemetry::jsonNumber(
              s.batches ? static_cast<double>(s.batchWindowsSum) /
                              static_cast<double>(s.batches)
                        : 0.0)
       << ",\"eventsSum\":" << s.batchEventsSum
       << ",\"eventsPerBatchMean\":"
       << telemetry::jsonNumber(
              s.batches ? static_cast<double>(s.batchEventsSum) /
                              static_cast<double>(s.batches)
                        : 0.0)
       << "},\"threads\":[";
    for (std::size_t i = 0; i < s.threads.size(); ++i) {
        const Summary::Thread& t = s.threads[i];
        const Rollup r = rollupOf(t, s.runWallTicks);
        os << (i == 0 ? "" : ",") << "{\"label\":"
           << telemetry::jsonQuoted(t.label) << ",\"phases\":{";
        bool first = true;
        for (std::size_t p = 0; p < kNumPhases; ++p) {
            if (t.count[p] == 0) {
                continue;
            }
            os << (first ? "" : ",")
               << telemetry::jsonQuoted(kPhaseNames[p]) << ":{\"ns\":"
               << telemetry::jsonNumber(toNs(t.ticks[p], s.ticksPerSec))
               << ",\"count\":" << t.count[p] << ",\"pct\":"
               << telemetry::jsonNumber(
                      pct(t.ticks[p],
                          std::max(s.runWallTicks, t.total())))
               << "}";
            first = false;
        }
        os << "},\"rollup\":{\"workPct\":"
           << telemetry::jsonNumber(r.workPct) << ",\"barrierPct\":"
           << telemetry::jsonNumber(r.barrierPct) << ",\"drainPct\":"
           << telemetry::jsonNumber(r.drainPct) << ",\"otherPct\":"
           << telemetry::jsonNumber(r.otherPct) << "}}";
    }
    os << "]}";
}

std::string
summaryTable()
{
    const Summary s = collect();
    TablePrinter table("host-time profile");
    table.setHeader({"thread", "phase", "ms", "count", "% wall"});
    for (const Summary::Thread& t : s.threads) {
        const std::uint64_t wall = std::max(s.runWallTicks, t.total());
        for (std::size_t p = 0; p < kNumPhases; ++p) {
            if (t.count[p] == 0) {
                continue;
            }
            table.addRow(
                {t.label, kPhaseNames[p],
                 TablePrinter::num(toNs(t.ticks[p], s.ticksPerSec) / 1e6,
                                   2),
                 TablePrinter::num(t.count[p]),
                 TablePrinter::num(pct(t.ticks[p], wall), 1)});
        }
    }
    return table.toString();
}

std::string
flightRecorderDump(std::size_t max_per_thread)
{
    if (!enabled()) {
        return {};
    }
    const double tps = calibrate();
    std::ostringstream os;
    os << "\n--- prof flight recorder (newest last, per thread) ---";
    const std::lock_guard<std::mutex> lock(detail::g_prof.mutex);
    std::size_t index = 0;
    for (const auto& tp : detail::g_prof.threads) {
        const std::uint32_t next =
            tp->flightNext.load(std::memory_order_relaxed);
        if (next == 0) {
            ++index;
            continue;
        }
        os << "\n  thread " << index << " [" << tp->label << "]:";
        const std::size_t have =
            std::min<std::size_t>(next, kFlightSize);
        const std::size_t show = std::min(max_per_thread, have);
        for (std::size_t i = 0; i < show; ++i) {
            const std::uint32_t slot =
                (next - static_cast<std::uint32_t>(show - i)) %
                kFlightSize;
            const detail::FlightEntry& e = tp->flight[slot];
            const auto phase = static_cast<std::size_t>(
                e.phase.load(std::memory_order_relaxed));
            const std::uint64_t b =
                e.begin.load(std::memory_order_relaxed);
            const std::uint64_t d =
                e.end.load(std::memory_order_relaxed) - b;
            os << "\n    " << (phase < kNumPhases ? kPhaseNames[phase]
                                                  : "?")
               << "  " << TablePrinter::num(toNs(d, tps) / 1e3, 1)
               << " us";
        }
        ++index;
    }
    return os.str();
}

void
reset()
{
    detail::Global& g = detail::g_prof;
    g.runWallTicks.store(0, std::memory_order_relaxed);
    g.windows.store(0, std::memory_order_relaxed);
    g.windowWidthSum.store(0, std::memory_order_relaxed);
    g.windowWidthMin.store(~std::uint64_t{0}, std::memory_order_relaxed);
    g.windowWidthMax.store(0, std::memory_order_relaxed);
    g.windowEventsSum.store(0, std::memory_order_relaxed);
    g.windowEventsMin.store(~std::uint64_t{0}, std::memory_order_relaxed);
    g.windowEventsMax.store(0, std::memory_order_relaxed);
    g.windowMailSum.store(0, std::memory_order_relaxed);
    g.batches.store(0, std::memory_order_relaxed);
    g.batchWindowsSum.store(0, std::memory_order_relaxed);
    g.batchEventsSum.store(0, std::memory_order_relaxed);
    g.lookahead.store(0, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(g.mutex);
    for (const auto& tp : g.threads) {
        for (std::size_t p = 0; p < kNumPhases; ++p) {
            tp->ticks[p].store(0, std::memory_order_relaxed);
            tp->count[p].store(0, std::memory_order_relaxed);
        }
        tp->flightNext.store(0, std::memory_order_relaxed);
    }
}

} // namespace prof
} // namespace plus
