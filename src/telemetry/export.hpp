/**
 * @file
 * Trace and statistics exporters.
 *
 * writePerfettoTrace() emits the Chrome trace-event JSON format
 * ({"traceEvents":[...]}), which both chrome://tracing and
 * https://ui.perfetto.dev open directly. Track layout:
 *
 *  - one process per node (pid = node id) with a "processor" track
 *    (stall slices, rmw issue/verify, fences) and a "coherence manager"
 *    track (message sends/receives, chain applies, write issues);
 *  - one process per directed mesh link (pid = 1000 + index) whose
 *    slices are the link's serialization occupancy;
 *  - pending-write lifetimes as async ("b"/"e") spans under their node;
 *  - update chains as flow arrows ("s"/"t"/"f") connecting the chain's
 *    applies across nodes.
 *
 * Timestamps are simulated cycles written into the microsecond field:
 * 1 displayed microsecond == 1 cycle.
 *
 * writeStatsJson() dumps a metrics snapshot plus the tracer's per-page /
 * per-link traffic attribution as a single JSON object; see
 * docs/OBSERVABILITY.md for the schema.
 */

#ifndef PLUS_TELEMETRY_EXPORT_HPP_
#define PLUS_TELEMETRY_EXPORT_HPP_

#include <iosfwd>
#include <string>

#include "telemetry/metrics.hpp"
#include "telemetry/tracer.hpp"

namespace plus {
namespace telemetry {

/** Write the retained trace as Chrome-trace/Perfetto JSON. */
void writePerfettoTrace(std::ostream& os, const Telemetry& telemetry,
                        unsigned nodes);

/**
 * Write one JSON object combining a metrics snapshot with the traffic
 * attribution (@p telemetry may be null: the traffic arrays are then
 * empty and only the registry contents appear).
 */
void writeStatsJson(std::ostream& os,
                    const MetricsRegistry::Snapshot& snapshot,
                    const Telemetry* telemetry);

/** Per-page and per-link traffic attribution as aligned text tables. */
std::string renderTrafficTables(const Telemetry& telemetry);

} // namespace telemetry
} // namespace plus

#endif // PLUS_TELEMETRY_EXPORT_HPP_
