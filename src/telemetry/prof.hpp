/**
 * @file
 * plus::prof — low-overhead host-time profiler.
 *
 * The simulator's telemetry (metrics registry, event tracer) lives in
 * simulated cycles; this subsystem answers the orthogonal question of
 * where *host wall-clock* goes: serial dispatch vs. protocol handlers
 * vs. network delivery, and — critically for the parallel backend —
 * per-thread work vs. barrier-wait vs. mailbox-drain, per-window width
 * and event counts (ROADMAP items 1 and 4).
 *
 * Design rules:
 *
 *  - RAII scoped phase timers (ScopedPhase) read the TSC twice per
 *    scope and accumulate *exclusive* time per (thread, phase): a
 *    nested scope's cycles are subtracted from its parent, so the
 *    breakdown sums to attributed wall-clock without double counting.
 *  - Scopes are placed at event-handler granularity (a protocol
 *    message, a delivered packet, a processor dispatch, a parallel
 *    window), never per simulated event, so the enabled overhead stays
 *    within the CI gate and the disabled cost is one relaxed load.
 *  - One-way boundary: the profiler only ever *reads* host time and
 *    *writes* its own accumulators. Nothing in here is reachable from
 *    simulation state, scheduling decisions, or the metrics registry
 *    snapshots the determinism CI diffs — a profiled run is
 *    cycle-for-cycle identical to an unprofiled one.
 *  - Everything hot is inline in this header so sim/proto/net can use
 *    it without linking plus_telemetry (which depends on plus_sim);
 *    reporting/calibration lives in prof.cpp inside plus_telemetry.
 *
 * Enabling: PLUS_PROF=1|on in the environment, prof::enable(true), or
 * any bench's --prof-out flag. A flight recorder (bounded per-thread
 * ring of recent phase records) is kept alongside the accumulators and
 * appended to plus::panic diagnostics, so a watchdog trip says what
 * every thread was doing when progress stopped.
 *
 * This file is wall-clock by design; see docs/OBSERVABILITY.md for how
 * the PLUS_HOST_ONLY annotation keeps it outside the determinism
 * contract pluslint enforces (rule R2).
 */

#ifndef PLUS_TELEMETRY_PROF_HPP_
#define PLUS_TELEMETRY_PROF_HPP_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/determinism.hpp"

namespace plus {
namespace prof {

PLUS_HOST_ONLY("host-time profiler: reads the TSC/steady_clock by "
               "design; results never feed back into simulation state");

/** The phase taxonomy host time is attributed to. */
enum class Phase : std::uint8_t {
    EngineRun,    ///< serial dispatch loop (exclusive of handlers below)
    ProcDispatch, ///< processor fiber dispatch (mem ops run inside)
    ProtoHandle,  ///< coherence-manager message handler
    NetDeliver,   ///< network packet delivery + handler upcall
    ParWork,      ///< parallel: executing events inside a window
    ParBarrier,   ///< parallel: waiting at the window barrier
    ParDrain,     ///< parallel: coordinator draining cross-domain mail
    ParReplay,    ///< parallel: coordinator replaying deferred effects
    ParMachine,   ///< parallel: stop-the-world machine-lane dispatch
    NumPhases
};

constexpr std::size_t kNumPhases =
    static_cast<std::size_t>(Phase::NumPhases);

constexpr const char* kPhaseNames[kNumPhases] = {
    "engine.run", "proc.dispatch", "proto.handle",
    "net.deliver", "par.work",     "par.barrier",
    "par.drain",   "par.replay",   "par.machine",
};

/** Flight-recorder depth per thread (power of two). */
constexpr std::size_t kFlightSize = 64;

class ScopedPhase;

namespace detail {

/** Raw host timestamp: TSC where cheap, steady_clock elsewhere. */
inline std::uint64_t
tick()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_ia32_rdtsc();
#elif defined(__aarch64__)
    std::uint64_t v;
    asm volatile("mrs %0, cntvct_el0" : "=r"(v));
    return v;
#else
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/** One recent phase record in the per-thread flight recorder. */
struct FlightEntry {
    std::atomic<std::uint8_t> phase{0};
    std::atomic<std::uint64_t> begin{0};
    std::atomic<std::uint64_t> end{0};
};

/**
 * Per-thread accumulators. Owned by the global registry (so they
 * outlive their thread and survive into post-run dumps); written only
 * by the owning thread, read by the dumping thread — every
 * cross-thread field is a relaxed atomic.
 */
struct ThreadProf {
    std::atomic<std::uint64_t> ticks[kNumPhases] = {};
    std::atomic<std::uint64_t> count[kNumPhases] = {};
    FlightEntry flight[kFlightSize];
    std::atomic<std::uint32_t> flightNext{0};
    char label[32] = {};
    /** Owner-thread-only scope stack top (exclusive-time accounting). */
    ScopedPhase* current = nullptr;

    void
    record(Phase p, std::uint64_t begin, std::uint64_t self,
           std::uint64_t end)
    {
        const auto i = static_cast<std::size_t>(p);
        ticks[i].fetch_add(self, std::memory_order_relaxed);
        count[i].fetch_add(1, std::memory_order_relaxed);
        const std::uint32_t slot =
            flightNext.fetch_add(1, std::memory_order_relaxed) %
            kFlightSize;
        flight[slot].phase.store(static_cast<std::uint8_t>(p),
                                 std::memory_order_relaxed);
        flight[slot].begin.store(begin, std::memory_order_relaxed);
        flight[slot].end.store(end, std::memory_order_relaxed);
    }
};

/** Global profiler state shared by every translation unit. */
struct Global {
    /** -1 = not yet resolved from PLUS_PROF; 0 = off; 1 = on. */
    std::atomic<int> enabled{-1};
    std::mutex mutex; ///< guards threads and labels
    std::vector<std::unique_ptr<ThreadProf>> threads;
    /** Wall ticks spent inside Engine::run/runUntil (the 100% line). */
    std::atomic<std::uint64_t> runWallTicks{0};
    /** Parallel-backend window statistics (coordinator-written). */
    std::atomic<std::uint64_t> windows{0};
    std::atomic<std::uint64_t> windowWidthSum{0};
    std::atomic<std::uint64_t> windowWidthMin{~std::uint64_t{0}};
    std::atomic<std::uint64_t> windowWidthMax{0};
    std::atomic<std::uint64_t> windowEventsSum{0};
    std::atomic<std::uint64_t> windowEventsMin{~std::uint64_t{0}};
    std::atomic<std::uint64_t> windowEventsMax{0};
    std::atomic<std::uint64_t> windowMailSum{0};
    /** Parallel-backend batch statistics (coordinator-written). */
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> batchWindowsSum{0};
    std::atomic<std::uint64_t> batchEventsSum{0};
    std::atomic<std::uint64_t> lookahead{0};
};

// pluslint: allow(R4) -- the profiler's whole job is mutable host-side
// state; it is write-only from the simulation's point of view and
// never read back into anything deterministic.
inline Global g_prof; // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)

// pluslint: allow(R4) -- per-thread accumulator cache; registration is
// idempotent and the pointed-to storage lives in g_prof.threads.
inline thread_local ThreadProf* t_prof = nullptr; // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)

/** Register the calling thread (cold path; called once per thread). */
inline ThreadProf&
registerThread()
{
    const std::lock_guard<std::mutex> lock(g_prof.mutex);
    g_prof.threads.push_back(std::make_unique<ThreadProf>());
    ThreadProf& tp = *g_prof.threads.back();
    std::snprintf(tp.label, sizeof(tp.label), "t%zu",
                  g_prof.threads.size() - 1);
    t_prof = &tp;
    return tp;
}

inline ThreadProf&
threadProf()
{
    ThreadProf* tp = t_prof;
    return tp != nullptr ? *tp : registerThread();
}

/** Resolve PLUS_PROF once (cold; hot callers see the cached value). */
inline bool
resolveEnabled()
{
    const char* env = envRead("PLUS_PROF");
    const bool on = env != nullptr &&
                    (std::strcmp(env, "1") == 0 ||
                     std::strcmp(env, "on") == 0 ||
                     std::strcmp(env, "ON") == 0);
    int expected = -1;
    g_prof.enabled.compare_exchange_strong(expected, on ? 1 : 0,
                                           std::memory_order_relaxed);
    return g_prof.enabled.load(std::memory_order_relaxed) > 0;
}

} // namespace detail

/** True when phase timing is being recorded. One relaxed load. */
inline bool
enabled()
{
    const int s = detail::g_prof.enabled.load(std::memory_order_relaxed);
    if (s >= 0) {
        return s > 0;
    }
    return detail::resolveEnabled();
}

/** Turn recording on/off programmatically (wins over PLUS_PROF). */
void enable(bool on);

/** Label the calling thread in reports ("main", "worker3", ...). */
inline void
setThreadLabel(const char* label)
{
    detail::ThreadProf& tp = detail::threadProf();
    const std::lock_guard<std::mutex> lock(detail::g_prof.mutex);
    std::snprintf(tp.label, sizeof(tp.label), "%s", label);
}

/**
 * RAII scoped phase timer. Accumulates exclusive host ticks for @p
 * phase on the calling thread; nested scopes bill their parent only
 * for the parent's own time. Near-free when the profiler is off.
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(Phase phase)
    {
        if (!enabled()) {
            return;
        }
        active_ = true;
        phase_ = phase;
        detail::ThreadProf& tp = detail::threadProf();
        parent_ = tp.current;
        tp.current = this;
        begin_ = detail::tick();
    }

    ~ScopedPhase()
    {
        if (!active_) {
            return;
        }
        const std::uint64_t end = detail::tick();
        detail::ThreadProf& tp = *detail::t_prof;
        tp.current = parent_;
        const std::uint64_t elapsed =
            end >= begin_ ? end - begin_ : 0;
        const std::uint64_t self =
            elapsed >= child_ ? elapsed - child_ : 0;
        tp.record(phase_, begin_, self, end);
        if (parent_ != nullptr) {
            parent_->child_ += elapsed;
        }
    }

    ScopedPhase(const ScopedPhase&) = delete;
    ScopedPhase& operator=(const ScopedPhase&) = delete;

  private:
    ScopedPhase* parent_ = nullptr;
    std::uint64_t begin_ = 0;
    std::uint64_t child_ = 0;
    Phase phase_ = Phase::EngineRun;
    bool active_ = false;
};

/** Accumulates a run's wall time — the denominator of every report. */
class RunTimer
{
  public:
    RunTimer()
    {
        if (enabled()) {
            begin_ = detail::tick();
            active_ = true;
        }
    }

    ~RunTimer()
    {
        if (active_) {
            detail::g_prof.runWallTicks.fetch_add(
                detail::tick() - begin_, std::memory_order_relaxed);
        }
    }

    RunTimer(const RunTimer&) = delete;
    RunTimer& operator=(const RunTimer&) = delete;

  private:
    std::uint64_t begin_ = 0;
    bool active_ = false;
};

namespace detail {

inline void
noteMinMax(std::atomic<std::uint64_t>& lo, std::atomic<std::uint64_t>& hi,
           std::uint64_t v)
{
    std::uint64_t cur = lo.load(std::memory_order_relaxed);
    while (v < cur &&
           !lo.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = hi.load(std::memory_order_relaxed);
    while (v > cur &&
           !hi.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

} // namespace detail

/** Parallel coordinator: one completed window's shape. */
inline void
noteWindow(std::uint64_t width_cycles, std::uint64_t events,
           std::uint64_t mails)
{
    if (!enabled()) {
        return;
    }
    detail::Global& g = detail::g_prof;
    g.windows.fetch_add(1, std::memory_order_relaxed);
    g.windowWidthSum.fetch_add(width_cycles, std::memory_order_relaxed);
    detail::noteMinMax(g.windowWidthMin, g.windowWidthMax, width_cycles);
    g.windowEventsSum.fetch_add(events, std::memory_order_relaxed);
    detail::noteMinMax(g.windowEventsMin, g.windowEventsMax, events);
    g.windowMailSum.fetch_add(mails, std::memory_order_relaxed);
}

/** Parallel coordinator: one completed window batch (the windows and
 *  events it spanned between two barrier crossings). */
inline void
noteBatch(std::uint64_t windows, std::uint64_t events)
{
    if (!enabled()) {
        return;
    }
    detail::Global& g = detail::g_prof;
    g.batches.fetch_add(1, std::memory_order_relaxed);
    g.batchWindowsSum.fetch_add(windows, std::memory_order_relaxed);
    g.batchEventsSum.fetch_add(events, std::memory_order_relaxed);
}

/** Parallel coordinator: the conservative lookahead in use. */
inline void
noteLookahead(std::uint64_t cycles)
{
    if (!enabled()) {
        return;
    }
    detail::g_prof.lookahead.store(cycles, std::memory_order_relaxed);
}

// ---- Reporting (prof.cpp, plus_telemetry) -------------------------------

/** Everything collect() reads at one instant, tick-domain. */
struct Summary {
    struct Thread {
        std::string label;
        std::uint64_t ticks[kNumPhases] = {};
        std::uint64_t count[kNumPhases] = {};
        std::uint64_t total() const
        {
            std::uint64_t t = 0;
            for (std::uint64_t v : ticks) {
                t += v;
            }
            return t;
        }
    };
    double ticksPerSec = 0;
    std::uint64_t runWallTicks = 0;
    std::vector<Thread> threads; ///< threads with any recorded phase
    std::uint64_t windows = 0;
    std::uint64_t windowWidthSum = 0;
    std::uint64_t windowWidthMin = 0;
    std::uint64_t windowWidthMax = 0;
    std::uint64_t windowEventsSum = 0;
    std::uint64_t windowEventsMin = 0;
    std::uint64_t windowEventsMax = 0;
    std::uint64_t windowMailSum = 0;
    std::uint64_t batches = 0;
    std::uint64_t batchWindowsSum = 0;
    std::uint64_t batchEventsSum = 0;
    std::uint64_t lookahead = 0;
};

/** Per-thread {work, barrier-wait, mailbox-drain, other} percentages
 *  of the run's wall clock. */
struct Rollup {
    double workPct = 0;
    double barrierPct = 0;
    double drainPct = 0;
    double otherPct = 0;
};

/** Snapshot every accumulator (threads with no samples are skipped). */
Summary collect();

/** Rollup for one collected thread against @p run_wall_ticks. */
Rollup rollupOf(const Summary::Thread& thread,
                std::uint64_t run_wall_ticks);

/** Aggregate rollup over every thread in @p summary. */
Rollup aggregateRollup(const Summary& summary);

/**
 * Write the profile as one JSON object (the --prof-out payload; also
 * embeddable in a larger document): calibrated ns per phase per
 * thread, per-thread rollups, and the parallel window statistics.
 */
void writeJson(std::ostream& os);

/** Human-readable per-thread breakdown (scripts/profshow.py parity). */
std::string summaryTable();

/**
 * Render the newest flight-recorder entries per thread — appended to
 * plus::panic diagnostics (and thus watchdog dumps) when profiling is
 * on, so a stall report shows what every thread last did.
 */
std::string flightRecorderDump(std::size_t max_per_thread = 8);

/** Zero every accumulator and the window stats (threads stay known). */
void reset();

} // namespace prof
} // namespace plus

#endif // PLUS_TELEMETRY_PROF_HPP_
