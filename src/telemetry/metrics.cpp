#include "telemetry/metrics.hpp"

#include <ostream>

#include "common/panic.hpp"
#include "common/table.hpp"
#include "telemetry/json.hpp"

namespace plus {
namespace telemetry {

std::string
MetricsRegistry::uniqued(std::string name)
{
    auto taken = [this](const std::string& n) {
        for (const auto& [existing, fn] : counters_) {
            (void)fn;
            if (existing == n) {
                return true;
            }
        }
        for (const auto& [existing, fn] : gauges_) {
            (void)fn;
            if (existing == n) {
                return true;
            }
        }
        for (const auto& [existing, hist] : distributions_) {
            (void)hist;
            if (existing == n) {
                return true;
            }
        }
        return false;
    };
    if (!taken(name)) {
        return name;
    }
    for (unsigned suffix = 2;; ++suffix) {
        const std::string candidate =
            name + "#" + std::to_string(suffix);
        if (!taken(candidate)) {
            return candidate;
        }
    }
}

void
MetricsRegistry::addCounter(std::string name,
                            std::function<std::uint64_t()> get)
{
    PLUS_ASSERT(get, "counter '", name, "' registered without a getter");
    counters_.emplace_back(uniqued(std::move(name)), std::move(get));
}

void
MetricsRegistry::addGauge(std::string name, std::function<double()> get)
{
    PLUS_ASSERT(get, "gauge '", name, "' registered without a getter");
    gauges_.emplace_back(uniqued(std::move(name)), std::move(get));
}

void
MetricsRegistry::addDistribution(std::string name, const Histogram* hist)
{
    PLUS_ASSERT(hist, "distribution '", name,
                "' registered without a histogram");
    distributions_.emplace_back(uniqued(std::move(name)), hist);
}

MetricsRegistry::Snapshot
MetricsRegistry::snapshot(Cycles now) const
{
    Snapshot snap;
    snap.cycle = now;
    snap.counters.reserve(counters_.size());
    for (const auto& [name, get] : counters_) {
        snap.counters.emplace_back(name, get());
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, get] : gauges_) {
        snap.gauges.emplace_back(name, get());
    }
    snap.distributions.reserve(distributions_.size());
    for (const auto& [name, hist] : distributions_) {
        DistSummary d;
        d.count = hist->count();
        d.sum = hist->sum();
        d.min = hist->min();
        d.max = hist->max();
        d.mean = hist->mean();
        d.p50 = hist->percentile(50.0);
        d.p90 = hist->percentile(90.0);
        d.p95 = hist->percentile(95.0);
        d.p99 = hist->percentile(99.0);
        d.p999 = hist->percentile(99.9);
        snap.distributions.emplace_back(name, d);
    }
    return snap;
}

std::string
MetricsRegistry::renderTable(const Snapshot& snap)
{
    TablePrinter table("metrics @ cycle " + std::to_string(snap.cycle));
    table.setHeader({"metric", "type", "value"});
    for (const auto& [name, value] : snap.counters) {
        table.addRow({name, "counter", TablePrinter::num(value)});
    }
    for (const auto& [name, value] : snap.gauges) {
        table.addRow({name, "gauge", TablePrinter::num(value, 3)});
    }
    for (const auto& [name, d] : snap.distributions) {
        table.addRow({name, "dist",
                      "n=" + TablePrinter::num(d.count) +
                          " mean=" + TablePrinter::num(d.mean, 1) +
                          " p50=" + TablePrinter::num(d.p50, 1) +
                          " p95=" + TablePrinter::num(d.p95, 1) +
                          " p99=" + TablePrinter::num(d.p99, 1) +
                          " p999=" + TablePrinter::num(d.p999, 1) +
                          " max=" + TablePrinter::num(d.max, 1)});
    }
    return table.toString();
}

void
MetricsRegistry::writeJson(std::ostream& os, const Snapshot& snap)
{
    os << "{\"cycle\":" << snap.cycle << ",\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : snap.counters) {
        os << (first ? "" : ",") << jsonQuoted(name) << ":" << value;
        first = false;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto& [name, value] : snap.gauges) {
        os << (first ? "" : ",") << jsonQuoted(name) << ":"
           << jsonNumber(value);
        first = false;
    }
    os << "},\"distributions\":{";
    first = true;
    for (const auto& [name, d] : snap.distributions) {
        os << (first ? "" : ",") << jsonQuoted(name) << ":{"
           << "\"count\":" << d.count << ",\"sum\":" << jsonNumber(d.sum)
           << ",\"min\":" << jsonNumber(d.min)
           << ",\"max\":" << jsonNumber(d.max)
           << ",\"mean\":" << jsonNumber(d.mean)
           << ",\"p50\":" << jsonNumber(d.p50)
           << ",\"p90\":" << jsonNumber(d.p90)
           << ",\"p95\":" << jsonNumber(d.p95)
           << ",\"p99\":" << jsonNumber(d.p99)
           << ",\"p999\":" << jsonNumber(d.p999) << "}";
        first = false;
    }
    os << "}}";
}

} // namespace telemetry
} // namespace plus
