#include "telemetry/export.hpp"

#include <map>
#include <ostream>
#include <unordered_map>

#include "common/table.hpp"
#include "net/network.hpp"
#include "node/processor.hpp"
#include "proto/rmw.hpp"
#include "telemetry/json.hpp"

namespace plus {
namespace telemetry {

namespace {

/** Separate pid range for the per-link tracks. */
constexpr unsigned kLinkPidBase = 1000;

const char*
msgClassName(std::uint8_t cls)
{
    if (cls < static_cast<std::uint8_t>(proto::MsgType::NumTypes)) {
        return proto::toString(static_cast<proto::MsgType>(cls));
    }
    if (cls == net::kLinkAckClass) {
        return "link-ack";
    }
    return "unclassified";
}

const char*
stallName(std::uint8_t kind)
{
    if (kind < static_cast<std::uint8_t>(node::StallKind::NumKinds)) {
        return node::toString(static_cast<node::StallKind>(kind));
    }
    return "?";
}

const char*
rmwName(std::uint8_t op)
{
    return proto::toString(static_cast<proto::RmwOp>(op));
}

/** Emitter for one trace-event object; keeps the comma state. */
class EventWriter
{
  public:
    explicit EventWriter(std::ostream& os) : os_(os) {}

    /** Begin one event object; pairs with fields() calls then close(). */
    std::ostream&
    open()
    {
        os_ << (first_ ? "\n  {" : ",\n  {");
        first_ = false;
        return os_;
    }

    void close() { os_ << "}"; }

  private:
    std::ostream& os_;
    bool first_ = true;
};

void
writeProcessName(EventWriter& w, unsigned pid, const std::string& name,
                 int sort_index)
{
    w.open() << "\"ph\":\"M\",\"pid\":" << pid
             << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":"
             << jsonQuoted(name) << "}";
    w.close();
    w.open() << "\"ph\":\"M\",\"pid\":" << pid
             << ",\"tid\":0,\"name\":\"process_sort_index\","
                "\"args\":{\"sort_index\":"
             << sort_index << "}";
    w.close();
}

void
writeThreadName(EventWriter& w, unsigned pid, unsigned tid,
                const std::string& name)
{
    w.open() << "\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
             << ",\"name\":\"thread_name\",\"args\":{\"name\":"
             << jsonQuoted(name) << "}";
    w.close();
}

} // namespace

void
writePerfettoTrace(std::ostream& os, const Telemetry& telemetry,
                   unsigned nodes)
{
    // The viewer needs every referenced track named, and flow events need
    // the per-chain occurrence counts, so scan the retained ring once
    // before emitting anything.
    std::map<std::uint64_t, unsigned> linkPid; // (from<<32|to) -> pid
    std::unordered_map<std::uint64_t, unsigned> chainApplies;
    telemetry.events().forEach([&](const TraceEvent& e) {
        if (e.kind == TraceKind::LinkBusy) {
            const std::uint64_t key =
                (static_cast<std::uint64_t>(e.node) << 32) | e.peer;
            linkPid.emplace(key, 0);
        } else if (e.kind == TraceKind::ChainApply) {
            chainApplies[e.id] += 1;
        }
    });
    unsigned next_pid = kLinkPidBase;
    for (auto& [key, pid] : linkPid) {
        (void)key;
        pid = next_pid++;
    }

    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    EventWriter w(os);

    for (unsigned n = 0; n < nodes; ++n) {
        writeProcessName(w, n, "node " + std::to_string(n),
                         static_cast<int>(n));
        writeThreadName(w, n, 0, "processor");
        writeThreadName(w, n, 1, "coherence manager");
    }
    for (const auto& [key, pid] : linkPid) {
        const NodeId from = static_cast<NodeId>(key >> 32);
        const NodeId to = static_cast<NodeId>(key & 0xffffffffu);
        writeProcessName(w, pid,
                         "link n" + std::to_string(from) + "->n" +
                             std::to_string(to),
                         static_cast<int>(pid));
        writeThreadName(w, pid, 0, "occupancy");
    }

    std::unordered_map<std::uint64_t, unsigned> chainSeen;
    std::uint64_t asyncId = 0;
    telemetry.events().forEach([&](const TraceEvent& e) {
        const Cycles dur = e.end > e.begin ? e.end - e.begin : 1;
        switch (e.kind) {
          case TraceKind::MsgSend:
            w.open() << "\"ph\":\"i\",\"s\":\"t\",\"pid\":" << e.node
                     << ",\"tid\":1,\"ts\":" << e.begin
                     << ",\"name\":\"send " << msgClassName(e.cls)
                     << "\",\"cat\":\"msg\",\"args\":{\"dst\":" << e.peer
                     << ",\"bytes\":" << e.bytes << ",\"vpn\":" << e.vpn
                     << "}";
            w.close();
            break;
          case TraceKind::MsgRecv:
            w.open() << "\"ph\":\"i\",\"s\":\"t\",\"pid\":" << e.node
                     << ",\"tid\":1,\"ts\":" << e.end
                     << ",\"name\":\"recv " << msgClassName(e.cls)
                     << "\",\"cat\":\"msg\",\"args\":{\"src\":" << e.peer
                     << ",\"latency\":" << (e.end - e.begin)
                     << ",\"queueing\":" << e.id << "}";
            w.close();
            break;
          case TraceKind::LinkBusy: {
            const std::uint64_t key =
                (static_cast<std::uint64_t>(e.node) << 32) | e.peer;
            w.open() << "\"ph\":\"X\",\"pid\":" << linkPid[key]
                     << ",\"tid\":0,\"ts\":" << e.begin
                     << ",\"dur\":" << dur << ",\"name\":\""
                     << msgClassName(e.cls)
                     << "\",\"cat\":\"link\",\"args\":{\"bytes\":"
                     << e.bytes << "}";
            w.close();
            break;
          }
          case TraceKind::PendingWrite: {
            const std::string id = std::to_string(asyncId++);
            w.open() << "\"ph\":\"b\",\"pid\":" << e.node
                     << ",\"tid\":1,\"ts\":" << e.begin
                     << ",\"id\":\"" << id
                     << "\",\"name\":\"pending write\",\"cat\":"
                        "\"pending\",\"args\":{\"tag\":"
                     << e.id << ",\"vpn\":" << e.vpn
                     << ",\"word\":" << e.wordOffset << "}";
            w.close();
            w.open() << "\"ph\":\"e\",\"pid\":" << e.node
                     << ",\"tid\":1,\"ts\":" << e.end << ",\"id\":\""
                     << id
                     << "\",\"name\":\"pending write\",\"cat\":"
                        "\"pending\"";
            w.close();
            break;
          }
          case TraceKind::ChainApply: {
            w.open() << "\"ph\":\"X\",\"pid\":" << e.node
                     << ",\"tid\":1,\"ts\":" << e.begin
                     << ",\"dur\":1,\"name\":\"chain apply"
                     << (e.cls ? " (master)" : "")
                     << "\",\"cat\":\"chain\",\"args\":{\"chain\":"
                     << e.id << ",\"vpn\":" << e.vpn << ",\"word\":"
                     << e.wordOffset << ",\"words\":" << e.bytes
                     << ",\"originator\":" << e.peer << "}";
            w.close();
            // Flow arrows only make sense between >= 2 applies.
            if (chainApplies[e.id] >= 2) {
                const unsigned seen = chainSeen[e.id]++;
                const char* ph =
                    seen == 0 ? "s"
                              : (seen + 1 == chainApplies[e.id] ? "f"
                                                                : "t");
                w.open() << "\"ph\":\"" << ph << "\",\"pid\":" << e.node
                         << ",\"tid\":1,\"ts\":" << e.begin
                         << ",\"id\":" << e.id
                         << ",\"name\":\"update chain\",\"cat\":"
                            "\"chain\"";
                if (ph[0] == 'f') {
                    os << ",\"bp\":\"e\"";
                }
                w.close();
            }
            break;
          }
          case TraceKind::WriteIssued:
            w.open() << "\"ph\":\"i\",\"s\":\"t\",\"pid\":" << e.node
                     << ",\"tid\":1,\"ts\":" << e.begin
                     << ",\"name\":\"write issued"
                     << (e.cls ? " (rmw)" : "")
                     << "\",\"cat\":\"write\",\"args\":{\"tag\":" << e.id
                     << ",\"vpn\":" << e.vpn << ",\"word\":"
                     << e.wordOffset << "}";
            w.close();
            break;
          case TraceKind::Fence:
            w.open() << "\"ph\":\"i\",\"s\":\"t\",\"pid\":" << e.node
                     << ",\"tid\":0,\"ts\":" << e.begin
                     << ",\"name\":\"fence complete\",\"cat\":\"sync\"";
            w.close();
            break;
          case TraceKind::ProcStall:
            w.open() << "\"ph\":\"X\",\"pid\":" << e.node
                     << ",\"tid\":0,\"ts\":" << e.begin
                     << ",\"dur\":" << dur << ",\"name\":\"stall: "
                     << stallName(e.cls) << "\",\"cat\":\"stall\"";
            w.close();
            break;
          case TraceKind::RmwIssue:
            w.open() << "\"ph\":\"i\",\"s\":\"t\",\"pid\":" << e.node
                     << ",\"tid\":0,\"ts\":" << e.begin
                     << ",\"name\":\"issue " << rmwName(e.cls)
                     << "\",\"cat\":\"sync\",\"args\":{\"vpn\":" << e.vpn
                     << ",\"word\":" << e.wordOffset << "}";
            w.close();
            break;
          case TraceKind::RmwVerify:
            w.open() << "\"ph\":\"i\",\"s\":\"t\",\"pid\":" << e.node
                     << ",\"tid\":0,\"ts\":" << e.begin
                     << ",\"name\":\"verify\",\"cat\":\"sync\"";
            w.close();
            break;
          case TraceKind::PacketDrop: {
            // Injected faults render on the dropping link's track when
            // that link ever serialized traffic; node-level faults (and
            // drops on an otherwise idle link) land on the source node.
            const std::uint64_t key =
                (static_cast<std::uint64_t>(e.node) << 32) | e.peer;
            const auto link = linkPid.find(key);
            const unsigned pid =
                link != linkPid.end() ? link->second : e.node;
            const unsigned tid = link != linkPid.end() ? 0 : 1;
            w.open() << "\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid
                     << ",\"tid\":" << tid << ",\"ts\":" << e.begin
                     << ",\"name\":\"drop ("
                     << check::toString(
                            static_cast<check::DropReason>(e.id))
                     << ")\",\"cat\":\"fault\",\"args\":{\"class\":\""
                     << msgClassName(e.cls) << "\",\"to\":" << e.peer
                     << ",\"bytes\":" << e.bytes << "}";
            w.close();
            break;
          }
          case TraceKind::Retransmit:
            w.open() << "\"ph\":\"i\",\"s\":\"t\",\"pid\":" << e.node
                     << ",\"tid\":1,\"ts\":" << e.begin
                     << ",\"name\":\"retransmit\",\"cat\":\"fault\","
                        "\"args\":{\"to\":"
                     << e.peer << ",\"seq\":" << e.id
                     << ",\"attempt\":" << e.bytes << "}";
            w.close();
            break;
          case TraceKind::WordInvalidate:
            w.open() << "\"ph\":\"i\",\"s\":\"t\",\"pid\":" << e.node
                     << ",\"tid\":1,\"ts\":" << e.begin
                     << ",\"name\":\"invalidate\",\"cat\":\"proto\","
                        "\"args\":{\"vpn\":"
                     << e.vpn << ",\"word\":" << e.wordOffset << "}";
            w.close();
            break;
          case TraceKind::WordRevalidate:
            w.open() << "\"ph\":\"i\",\"s\":\"t\",\"pid\":" << e.node
                     << ",\"tid\":1,\"ts\":" << e.begin
                     << ",\"name\":\"revalidate\",\"cat\":\"proto\","
                        "\"args\":{\"vpn\":"
                     << e.vpn << ",\"word\":" << e.wordOffset << "}";
            w.close();
            break;
          case TraceKind::OwnershipHandoff:
            w.open() << "\"ph\":\"i\",\"s\":\"t\",\"pid\":" << e.node
                     << ",\"tid\":1,\"ts\":" << e.begin
                     << ",\"name\":\"ownership handoff\",\"cat\":"
                        "\"proto\",\"args\":{\"vpn\":"
                     << e.vpn << ",\"from\":" << e.id << ",\"to\":"
                     << e.peer << "}";
            w.close();
            break;
        }
    });

    os << "\n]}\n";
}

void
writeStatsJson(std::ostream& os,
               const MetricsRegistry::Snapshot& snapshot,
               const Telemetry* telemetry)
{
    os << "{\"metrics\":";
    MetricsRegistry::writeJson(os, snapshot);
    os << ",\"traffic\":{\"perPage\":[";
    bool first = true;
    if (telemetry) {
        for (const auto& [vpn, t] : telemetry->pageTraffic()) {
            os << (first ? "" : ",") << "{\"vpn\":" << vpn
               << ",\"messages\":" << t.messages << ",\"bytes\":"
               << t.bytes << ",\"updates\":" << t.updates << "}";
            first = false;
        }
    }
    os << "],\"perLink\":[";
    first = true;
    if (telemetry) {
        for (const auto& [key, t] : telemetry->linkTraffic()) {
            os << (first ? "" : ",") << "{\"from\":" << (key >> 32)
               << ",\"to\":" << (key & 0xffffffffu) << ",\"messages\":"
               << t.messages << ",\"bytes\":" << t.bytes
               << ",\"busyCycles\":" << t.busyCycles << "}";
            first = false;
        }
    }
    os << "]}}\n";
}

std::string
renderTrafficTables(const Telemetry& telemetry)
{
    std::string out;
    {
        TablePrinter table("traffic by page");
        table.setHeader({"vpn", "messages", "bytes", "updates"});
        for (const auto& [vpn, t] : telemetry.pageTraffic()) {
            table.addRow({vpn == 0 ? "(none)" : std::to_string(vpn),
                          TablePrinter::num(t.messages),
                          TablePrinter::num(t.bytes),
                          TablePrinter::num(t.updates)});
        }
        out += table.toString();
    }
    {
        TablePrinter table("traffic by link");
        table.setHeader({"link", "messages", "bytes", "busy cycles"});
        for (const auto& [key, t] : telemetry.linkTraffic()) {
            table.addRow({"n" + std::to_string(key >> 32) + "->n" +
                              std::to_string(key & 0xffffffffu),
                          TablePrinter::num(t.messages),
                          TablePrinter::num(t.bytes),
                          TablePrinter::num(t.busyCycles)});
        }
        out += table.toString();
    }
    return out;
}

} // namespace telemetry
} // namespace plus
