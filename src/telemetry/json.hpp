/**
 * @file
 * Minimal JSON emission helpers shared by the metrics and trace
 * exporters. Writing only — the simulator never parses JSON.
 */

#ifndef PLUS_TELEMETRY_JSON_HPP_
#define PLUS_TELEMETRY_JSON_HPP_

#include <cmath>
#include <cstdio>
#include <string>

namespace plus {
namespace telemetry {

/** Quote and escape a string for use as a JSON string literal. */
inline std::string
jsonQuoted(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

/** Format a double as a JSON number (JSON has no NaN/Infinity). */
inline std::string
jsonNumber(double v)
{
    if (!std::isfinite(v)) {
        return "0";
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace telemetry
} // namespace plus

#endif // PLUS_TELEMETRY_JSON_HPP_
