/**
 * @file
 * Cycle-stamped structured event tracer.
 *
 * Telemetry implements the same observer hooks as the plus::check
 * subsystem (check::Observer) plus the network-level hooks
 * (check::NetObserver) and records each event into a bounded ring of
 * fixed-size records — old events are overwritten, so tracing a long run
 * keeps the tail. Alongside the ring it accumulates per-message-class
 * latency distributions, pending-write lifetimes, and per-page /
 * per-link traffic attribution, which survive ring wrap-around.
 *
 * The tracer only observes: it never schedules simulation events, never
 * touches protocol state, and never reads anything it could perturb —
 * a run with tracing enabled is cycle-for-cycle identical to one
 * without.
 */

#ifndef PLUS_TELEMETRY_TRACER_HPP_
#define PLUS_TELEMETRY_TRACER_HPP_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/hooks.hpp"
#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "proto/messages.hpp"

namespace plus {

namespace sim {
class Engine;
} // namespace sim

namespace telemetry {

/** What one trace record describes. */
enum class TraceKind : std::uint8_t {
    MsgSend,      ///< CM handed a message to the network (instant)
    MsgRecv,      ///< packet delivered; begin = injection, end = delivery
    LinkBusy,     ///< a mesh link serialized a packet (interval)
    PendingWrite, ///< pending-writes entry lifetime (interval)
    ChainApply,   ///< an update chain applied at one copy (instant)
    WriteIssued,  ///< a write entered the pending-writes cache (instant)
    Fence,        ///< a blocking fence completed (instant)
    ProcStall,    ///< processor free interval (interval; cls = StallKind)
    RmwIssue,     ///< delayed op issued (instant; cls = RmwOp)
    RmwVerify,    ///< delayed op result consumed (instant)
    PacketDrop,   ///< fault layer discarded a packet (instant; id = reason)
    Retransmit,   ///< reliable layer re-sent a frame (instant; id = seq)
    WordInvalidate,    ///< invalidation chain dropped a word (instant)
    WordRevalidate,       ///< re-fetch revalidated a word (instant)
    OwnershipHandoff,  ///< page writer changed hands at the master
};

const char* toString(TraceKind kind);

/** One fixed-size ring record. Instants have begin == end. */
struct TraceEvent {
    TraceKind kind = TraceKind::MsgSend;
    /** Kind-dependent class: MsgType, StallKind or RmwOp value. */
    std::uint8_t cls = 0;
    NodeId node = kInvalidNode;
    /** Second party: message peer, link endpoint, chain originator. */
    NodeId peer = kInvalidNode;
    Cycles begin = 0;
    Cycles end = 0;
    /** Kind-dependent identity: chain id, pending tag, or thread id. */
    std::uint64_t id = 0;
    Vpn vpn = 0;
    std::uint32_t wordOffset = 0;
    std::uint32_t bytes = 0;
};

/** Bounded ring of trace events; overwrites the oldest when full. */
class EventRing
{
  public:
    explicit EventRing(std::size_t capacity);

    void push(const TraceEvent& event);

    /** Events ever pushed (including overwritten ones). */
    std::uint64_t recorded() const { return recorded_; }

    /**
     * Events lost to wrap-around. Counted explicitly at each
     * overwrite so overflow is an observable signal (surfaced as the
     * telemetry.trace.dropped counter), not a silent loss.
     */
    std::uint64_t dropped() const { return dropped_; }

    std::size_t capacity() const { return capacity_; }

    /** Visit the retained events oldest to newest. */
    template <typename Fn>
    void
    forEach(Fn&& fn) const
    {
        const std::size_t n = events_.size();
        const std::size_t start =
            recorded_ > n ? static_cast<std::size_t>(recorded_ % n) : 0;
        for (std::size_t i = 0; i < n; ++i) {
            fn(events_[(start + i) % n]);
        }
    }

  private:
    std::size_t capacity_;
    std::vector<TraceEvent> events_;
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
};

class MetricsRegistry;

/** The telemetry observer core::Machine installs next to the checker. */
class Telemetry final : public check::Observer, public check::NetObserver
{
  public:
    Telemetry(const TelemetryConfig& config, const sim::Engine* engine);

    const EventRing& events() const { return ring_; }

    /** Per-message-class end-to-end latency, cycles. */
    const Histogram&
    latencyOf(proto::MsgType type) const
    {
        return latency_[static_cast<std::size_t>(type)];
    }

    /** Pending-write entry lifetimes (insert to retire), cycles. */
    const Histogram& pendingLifetime() const { return pendingLifetime_; }

    /** Traffic attributed to one directed mesh link. */
    struct LinkTraffic {
        std::uint64_t messages = 0;
        std::uint64_t bytes = 0;
        Cycles busyCycles = 0;
    };

    /** Traffic attributed to one virtual page. */
    struct PageTraffic {
        std::uint64_t messages = 0;
        std::uint64_t bytes = 0;
        std::uint64_t updates = 0; ///< UpdateReq share of messages
    };

    /** Keyed (from << 32) | to; ordered for deterministic export. */
    const std::map<std::uint64_t, LinkTraffic>&
    linkTraffic() const
    {
        return linkTraffic_;
    }

    /**
     * Keyed by vpn; messages that address no page (acks, responses,
     * copy-engine control) fall into the reserved vpn 0 bucket.
     */
    const std::map<Vpn, PageTraffic>& pageTraffic() const
    {
        return pageTraffic_;
    }

    /** Register the tracer's own derived metrics. */
    void registerMetrics(MetricsRegistry& registry);

    /**
     * Render the newest @p count retained events as text, one per line —
     * the diagnostic the watchdog and the reliable layer append to
     * their panics.
     */
    std::string renderRecent(std::size_t count) const;

    // --- check::NetObserver ------------------------------------------------

    void onPacketDelivered(NodeId src, NodeId dst, std::uint8_t msg_class,
                           unsigned bytes, unsigned hops, Cycles latency,
                           Cycles queueing) override;
    void onLinkBusy(NodeId from, NodeId to, std::uint8_t msg_class,
                    unsigned bytes, Cycles start,
                    Cycles duration) override;
    void onPacketDropped(NodeId src, NodeId dst, std::uint8_t msg_class,
                         unsigned bytes, check::DropReason reason) override;
    void onRetransmit(NodeId src, NodeId dst, std::uint32_t seq,
                      unsigned attempt) override;

    // --- check::Observer ---------------------------------------------------

    void onMessageSent(NodeId src, NodeId dst, std::uint8_t msg_class,
                       unsigned bytes, Vpn vpn) override;
    void onPendingInsert(NodeId node, std::uint32_t tag, Vpn vpn,
                         Addr word_offset) override;
    void onPendingComplete(NodeId node, std::uint32_t tag) override;
    void onWriteIssued(NodeId node, std::uint32_t tag, Vpn vpn,
                       Addr word_offset, bool from_rmw) override;
    void onChainApplied(check::ChainId chain, PhysPage copy, Vpn vpn,
                        Addr word_offset, unsigned words, NodeId originator,
                        std::uint32_t tag, bool tracked,
                        bool at_master) override;
    void onFenceComplete(NodeId node, bool pending_empty) override;
    void onWordInvalidated(NodeId node, Vpn vpn, Addr word_offset) override;
    void onWordRevalidated(NodeId node, Vpn vpn, Addr word_offset) override;
    void onOwnershipTransfer(NodeId master, Vpn vpn, NodeId from,
                             NodeId to) override;
    void onProcStall(NodeId node, std::uint8_t kind, Cycles start,
                     Cycles duration) override;
    void onProcRmwIssue(NodeId node, ThreadId tid, Addr vaddr,
                        std::uint8_t op) override;
    void onProcVerify(NodeId node, ThreadId tid, Addr vaddr) override;

  private:
    Cycles now() const;

    const sim::Engine* engine_;
    EventRing ring_;

    /** Open pending-write intervals, keyed (node << 32) | tag. */
    struct OpenPending {
        Cycles since = 0;
        Vpn vpn = 0;
        std::uint32_t wordOffset = 0;
    };
    std::unordered_map<std::uint64_t, OpenPending> openPending_;

    std::array<Histogram,
               static_cast<std::size_t>(proto::MsgType::NumTypes)>
        latency_;
    Histogram pendingLifetime_;

    std::map<std::uint64_t, LinkTraffic> linkTraffic_;
    std::map<Vpn, PageTraffic> pageTraffic_;
};

} // namespace telemetry
} // namespace plus

#endif // PLUS_TELEMETRY_TRACER_HPP_
