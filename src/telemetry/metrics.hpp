/**
 * @file
 * Central metrics registry.
 *
 * Every per-subsystem stat struct (CmStats, ProcessorStats, Cache::Stats,
 * NetworkStats, the pending-writes and delayed-op caches, the work queue)
 * registers its counters here under a dotted name ("cm.sent.UpdateReq",
 * "proc.stall.fence", ...). Registration is pull-based: the registry
 * stores a getter, the subsystem keeps incrementing its own plain struct,
 * and nothing on the hot path changes — a snapshot reads every getter at
 * the moment it is taken. Distributions are registered as pointers to the
 * owner's Histogram and summarized at snapshot time.
 *
 * core::Machine owns one registry per machine and registers every node's
 * stats at construction; snapshots can be rendered as an aligned table
 * (TablePrinter) or dumped as JSON for the --stats-out harness flag.
 */

#ifndef PLUS_TELEMETRY_METRICS_HPP_
#define PLUS_TELEMETRY_METRICS_HPP_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace plus {
namespace telemetry {

/** Point-in-time summary of one registered Histogram. */
struct DistSummary {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
};

/** Named, typed, pull-based metric sources. */
class MetricsRegistry
{
  public:
    /** Monotonic event count, read through @p get at snapshot time. */
    void addCounter(std::string name, std::function<std::uint64_t()> get);

    /** Instantaneous value (utilization, occupancy high-water, ...). */
    void addGauge(std::string name, std::function<double()> get);

    /**
     * Latency-style distribution. The registry keeps the pointer; @p hist
     * must outlive it (subsystem stat structs and the Machine share that
     * lifetime).
     */
    void addDistribution(std::string name, const Histogram* hist);

    /** Everything the registry knew at one cycle. */
    struct Snapshot {
        Cycles cycle = 0;
        std::vector<std::pair<std::string, std::uint64_t>> counters;
        std::vector<std::pair<std::string, double>> gauges;
        std::vector<std::pair<std::string, DistSummary>> distributions;
    };

    /** Read every source. Sources are reported in registration order. */
    Snapshot snapshot(Cycles now) const;

    /** Render a snapshot as an aligned three-column table. */
    static std::string renderTable(const Snapshot& snap);

    /**
     * Write a snapshot as one JSON object:
     * {"cycle":N,"counters":{...},"gauges":{...},"distributions":{...}}.
     */
    static void writeJson(std::ostream& os, const Snapshot& snap);

    std::size_t size() const
    {
        return counters_.size() + gauges_.size() + distributions_.size();
    }

  private:
    /** Suffix duplicate names (#2, #3, ...) so lookups stay unambiguous. */
    std::string uniqued(std::string name);

    std::vector<std::pair<std::string, std::function<std::uint64_t()>>>
        counters_;
    std::vector<std::pair<std::string, std::function<double()>>> gauges_;
    std::vector<std::pair<std::string, const Histogram*>> distributions_;
};

} // namespace telemetry
} // namespace plus

#endif // PLUS_TELEMETRY_METRICS_HPP_
