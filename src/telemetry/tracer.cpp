#include "telemetry/tracer.hpp"

#include <algorithm>
#include <sstream>

#include "common/panic.hpp"
#include "sim/engine.hpp"
#include "telemetry/metrics.hpp"

namespace plus {
namespace telemetry {

const char*
toString(TraceKind kind)
{
    switch (kind) {
      case TraceKind::MsgSend: return "msg-send";
      case TraceKind::MsgRecv: return "msg-recv";
      case TraceKind::LinkBusy: return "link-busy";
      case TraceKind::PendingWrite: return "pending-write";
      case TraceKind::ChainApply: return "chain-apply";
      case TraceKind::WriteIssued: return "write-issued";
      case TraceKind::Fence: return "fence";
      case TraceKind::ProcStall: return "stall";
      case TraceKind::RmwIssue: return "rmw-issue";
      case TraceKind::RmwVerify: return "rmw-verify";
      case TraceKind::PacketDrop: return "packet-drop";
      case TraceKind::Retransmit: return "retransmit";
      case TraceKind::WordInvalidate: return "word-invalidate";
      case TraceKind::WordRevalidate: return "word-revalidate";
      case TraceKind::OwnershipHandoff: return "ownership-handoff";
    }
    return "?";
}

EventRing::EventRing(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity))
{
    events_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void
EventRing::push(const TraceEvent& event)
{
    if (events_.size() < capacity_) {
        events_.push_back(event);
    } else {
        events_[static_cast<std::size_t>(recorded_ % capacity_)] = event;
        ++dropped_;
    }
    ++recorded_;
}

Telemetry::Telemetry(const TelemetryConfig& config,
                     const sim::Engine* engine)
    : engine_(engine), ring_(config.ringCapacity)
{
    PLUS_ASSERT(engine_, "telemetry needs a clock source");
}

Cycles
Telemetry::now() const
{
    return engine_->now();
}

void
Telemetry::registerMetrics(MetricsRegistry& registry)
{
    registry.addCounter("telemetry.events.recorded",
                        [this] { return ring_.recorded(); });
    registry.addCounter("telemetry.events.dropped",
                        [this] { return ring_.dropped(); });
    // Alias under the trace.* prefix: the ring overwriting the oldest
    // record is a tracing fidelity loss, and stats snapshots should
    // say so where trace consumers look for it.
    registry.addCounter("telemetry.trace.dropped",
                        [this] { return ring_.dropped(); });
    for (std::size_t t = 0;
         t < static_cast<std::size_t>(proto::MsgType::NumTypes); ++t) {
        registry.addDistribution(
            std::string("net.latency.") +
                proto::toString(static_cast<proto::MsgType>(t)),
            &latency_[t]);
    }
    registry.addDistribution("pending.lifetime", &pendingLifetime_);
}

void
Telemetry::onMessageSent(NodeId src, NodeId dst, std::uint8_t msg_class,
                         unsigned bytes, Vpn vpn)
{
    TraceEvent e;
    e.kind = TraceKind::MsgSend;
    e.cls = msg_class;
    e.node = src;
    e.peer = dst;
    e.begin = e.end = now();
    e.vpn = vpn;
    e.bytes = bytes;
    ring_.push(e);

    PageTraffic& page = pageTraffic_[vpn];
    page.messages += 1;
    page.bytes += bytes;
    if (msg_class ==
        static_cast<std::uint8_t>(proto::MsgType::UpdateReq)) {
        page.updates += 1;
    }
}

void
Telemetry::onPacketDelivered(NodeId src, NodeId dst,
                             std::uint8_t msg_class, unsigned bytes,
                             unsigned hops, Cycles latency, Cycles queueing)
{
    (void)hops;
    TraceEvent e;
    e.kind = TraceKind::MsgRecv;
    e.cls = msg_class;
    e.node = dst;
    e.peer = src;
    e.end = now();
    e.begin = e.end - latency;
    e.bytes = bytes;
    e.id = queueing;
    ring_.push(e);

    if (msg_class < static_cast<std::uint8_t>(proto::MsgType::NumTypes)) {
        latency_[msg_class].record(static_cast<double>(latency));
    }
}

void
Telemetry::onLinkBusy(NodeId from, NodeId to, std::uint8_t msg_class,
                      unsigned bytes, Cycles start, Cycles duration)
{
    TraceEvent e;
    e.kind = TraceKind::LinkBusy;
    e.cls = msg_class;
    e.node = from;
    e.peer = to;
    e.begin = start;
    e.end = start + duration;
    e.bytes = bytes;
    ring_.push(e);

    LinkTraffic& link =
        linkTraffic_[(static_cast<std::uint64_t>(from) << 32) | to];
    link.messages += 1;
    link.bytes += bytes;
    link.busyCycles += duration;
}

void
Telemetry::onPacketDropped(NodeId src, NodeId dst, std::uint8_t msg_class,
                           unsigned bytes, check::DropReason reason)
{
    TraceEvent e;
    e.kind = TraceKind::PacketDrop;
    e.cls = msg_class;
    e.node = src;
    e.peer = dst;
    e.begin = e.end = now();
    e.id = static_cast<std::uint64_t>(reason);
    e.bytes = bytes;
    ring_.push(e);
}

void
Telemetry::onRetransmit(NodeId src, NodeId dst, std::uint32_t seq,
                        unsigned attempt)
{
    TraceEvent e;
    e.kind = TraceKind::Retransmit;
    e.node = src;
    e.peer = dst;
    e.begin = e.end = now();
    e.id = seq;
    e.bytes = attempt;
    ring_.push(e);
}

std::string
Telemetry::renderRecent(std::size_t count) const
{
    // Collect the retained tail, then format the newest `count`.
    std::vector<const TraceEvent*> tail;
    ring_.forEach([&tail](const TraceEvent& e) { tail.push_back(&e); });
    const std::size_t start =
        tail.size() > count ? tail.size() - count : 0;
    std::ostringstream os;
    for (std::size_t i = start; i < tail.size(); ++i) {
        const TraceEvent& e = *tail[i];
        os << "\n  [" << e.begin;
        if (e.end != e.begin) {
            os << ".." << e.end;
        }
        os << "] " << toString(e.kind) << " node " << e.node;
        if (e.peer != kInvalidNode) {
            os << " peer " << e.peer;
        }
        if (e.kind == TraceKind::PacketDrop) {
            os << " reason "
               << check::toString(
                      static_cast<check::DropReason>(e.id));
        } else if (e.id != 0) {
            os << " id " << e.id;
        }
        if (e.vpn != 0) {
            os << " vpn " << e.vpn << " +" << e.wordOffset;
        }
        if (e.bytes != 0) {
            os << " bytes " << e.bytes;
        }
    }
    if (tail.empty()) {
        os << "\n  (no trace events recorded; enable telemetry.trace)";
    }
    return os.str();
}

void
Telemetry::onPendingInsert(NodeId node, std::uint32_t tag, Vpn vpn,
                           Addr word_offset)
{
    OpenPending open;
    open.since = now();
    open.vpn = vpn;
    open.wordOffset = static_cast<std::uint32_t>(word_offset);
    openPending_[(static_cast<std::uint64_t>(node) << 32) | tag] = open;
}

void
Telemetry::onPendingComplete(NodeId node, std::uint32_t tag)
{
    const std::uint64_t key =
        (static_cast<std::uint64_t>(node) << 32) | tag;
    auto it = openPending_.find(key);
    if (it == openPending_.end()) {
        return; // insert predates tracer installation
    }
    TraceEvent e;
    e.kind = TraceKind::PendingWrite;
    e.node = node;
    e.begin = it->second.since;
    e.end = now();
    e.id = tag;
    e.vpn = it->second.vpn;
    e.wordOffset = it->second.wordOffset;
    ring_.push(e);
    pendingLifetime_.record(static_cast<double>(e.end - e.begin));
    openPending_.erase(it);
}

void
Telemetry::onWriteIssued(NodeId node, std::uint32_t tag, Vpn vpn,
                         Addr word_offset, bool from_rmw)
{
    TraceEvent e;
    e.kind = TraceKind::WriteIssued;
    e.cls = from_rmw ? 1 : 0;
    e.node = node;
    e.begin = e.end = now();
    e.id = tag;
    e.vpn = vpn;
    e.wordOffset = static_cast<std::uint32_t>(word_offset);
    ring_.push(e);
}

void
Telemetry::onWordInvalidated(NodeId node, Vpn vpn, Addr word_offset)
{
    TraceEvent e;
    e.kind = TraceKind::WordInvalidate;
    e.node = node;
    e.begin = e.end = now();
    e.vpn = vpn;
    e.wordOffset = static_cast<std::uint32_t>(word_offset);
    ring_.push(e);
}

void
Telemetry::onWordRevalidated(NodeId node, Vpn vpn, Addr word_offset)
{
    TraceEvent e;
    e.kind = TraceKind::WordRevalidate;
    e.node = node;
    e.begin = e.end = now();
    e.vpn = vpn;
    e.wordOffset = static_cast<std::uint32_t>(word_offset);
    ring_.push(e);
}

void
Telemetry::onOwnershipTransfer(NodeId master, Vpn vpn, NodeId from,
                               NodeId to)
{
    TraceEvent e;
    e.kind = TraceKind::OwnershipHandoff;
    e.node = master;
    e.peer = to;
    e.begin = e.end = now();
    e.id = from;
    e.vpn = vpn;
    ring_.push(e);
}

void
Telemetry::onChainApplied(check::ChainId chain, PhysPage copy, Vpn vpn,
                          Addr word_offset, unsigned words,
                          NodeId originator, std::uint32_t tag,
                          bool tracked, bool at_master)
{
    (void)tag;
    (void)tracked;
    TraceEvent e;
    e.kind = TraceKind::ChainApply;
    e.cls = at_master ? 1 : 0;
    e.node = copy.node;
    e.peer = originator;
    e.begin = e.end = now();
    e.id = chain;
    e.vpn = vpn;
    e.wordOffset = static_cast<std::uint32_t>(word_offset);
    e.bytes = words;
    ring_.push(e);
}

void
Telemetry::onFenceComplete(NodeId node, bool pending_empty)
{
    (void)pending_empty;
    TraceEvent e;
    e.kind = TraceKind::Fence;
    e.node = node;
    e.begin = e.end = now();
    ring_.push(e);
}

void
Telemetry::onProcStall(NodeId node, std::uint8_t kind, Cycles start,
                       Cycles duration)
{
    TraceEvent e;
    e.kind = TraceKind::ProcStall;
    e.cls = kind;
    e.node = node;
    e.begin = start;
    e.end = start + duration;
    ring_.push(e);
}

void
Telemetry::onProcRmwIssue(NodeId node, ThreadId tid, Addr vaddr,
                          std::uint8_t op)
{
    TraceEvent e;
    e.kind = TraceKind::RmwIssue;
    e.cls = op;
    e.node = node;
    e.begin = e.end = now();
    e.id = tid;
    e.vpn = pageOf(vaddr);
    e.wordOffset = static_cast<std::uint32_t>(wordOffsetOf(vaddr));
    ring_.push(e);
}

void
Telemetry::onProcVerify(NodeId node, ThreadId tid, Addr vaddr)
{
    TraceEvent e;
    e.kind = TraceKind::RmwVerify;
    e.node = node;
    e.begin = e.end = now();
    e.id = tid;
    e.vpn = pageOf(vaddr);
    e.wordOffset = static_cast<std::uint32_t>(wordOffsetOf(vaddr));
    ring_.push(e);
}

} // namespace telemetry
} // namespace plus
