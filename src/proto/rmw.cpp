#include "proto/rmw.hpp"

#include "common/panic.hpp"

namespace plus {
namespace proto {

const char*
toString(RmwOp op)
{
    switch (op) {
      case RmwOp::Xchng: return "xchng";
      case RmwOp::CondXchng: return "cond-xchng";
      case RmwOp::FetchAdd: return "fetch-and-add";
      case RmwOp::FetchSet: return "fetch-and-set";
      case RmwOp::Queue: return "queue";
      case RmwOp::Dequeue: return "dequeue";
      case RmwOp::MinXchng: return "min-xchng";
      case RmwOp::DelayedRead: return "delayed-read";
      default: return "?";
    }
}

bool
isComplexOp(RmwOp op)
{
    return op == RmwOp::Queue || op == RmwOp::Dequeue ||
           op == RmwOp::MinXchng;
}

namespace {

/** Advance a queue offset circularly within [queue_base, kPageWords). */
Addr
nextQueueOffset(Addr offset, Addr queue_base)
{
    const Addr next = offset + 1;
    return next >= kPageWords ? queue_base : next;
}

} // namespace

RmwResult
executeRmw(const PageView& page, RmwOp op, Addr word_offset, Word operand,
           Addr queue_base)
{
    PLUS_ASSERT(word_offset < kPageWords, "rmw offset outside page");
    RmwResult result;

    switch (op) {
      case RmwOp::Xchng: {
        result.oldValue = page.read(word_offset);
        result.writes.push_back({word_offset, operand});
        break;
      }
      case RmwOp::CondXchng: {
        result.oldValue = page.read(word_offset);
        if (result.oldValue & kTopBit) {
            result.writes.push_back({word_offset, operand});
        }
        break;
      }
      case RmwOp::FetchAdd: {
        result.oldValue = page.read(word_offset);
        // Two's-complement add: a signed operand is just wraparound.
        result.writes.push_back({word_offset, result.oldValue + operand});
        break;
      }
      case RmwOp::FetchSet: {
        result.oldValue = page.read(word_offset);
        result.writes.push_back({word_offset, result.oldValue | kTopBit});
        break;
      }
      case RmwOp::Queue: {
        // The addressed location holds the word offset of the queue tail
        // within this page.
        const Word tail_word = page.read(word_offset);
        const Addr tail = tail_word % kPageWords;
        const Word slot = page.read(tail);
        result.oldValue = slot;
        if (!(slot & kTopBit)) {
            // Free slot: deposit the payload with the full bit set and
            // advance the tail offset.
            result.writes.push_back(
                {tail, (operand & kPayloadMask) | kTopBit});
            result.writes.push_back(
                {word_offset,
                 static_cast<Word>(nextQueueOffset(tail, queue_base))});
        }
        break;
      }
      case RmwOp::Dequeue: {
        // The addressed location holds the word offset of the queue head.
        const Word head_word = page.read(word_offset);
        const Addr head = head_word % kPageWords;
        const Word slot = page.read(head);
        result.oldValue = slot;
        if (slot & kTopBit) {
            // Full slot: clear the full bit and advance the head offset.
            result.writes.push_back({head, slot & kPayloadMask});
            result.writes.push_back(
                {word_offset,
                 static_cast<Word>(nextQueueOffset(head, queue_base))});
        }
        break;
      }
      case RmwOp::MinXchng: {
        result.oldValue = page.read(word_offset);
        if ((operand & kPayloadMask) < (result.oldValue & kPayloadMask)) {
            result.writes.push_back({word_offset, operand});
        }
        break;
      }
      case RmwOp::DelayedRead: {
        result.oldValue = page.read(word_offset);
        break;
      }
      default:
        PLUS_PANIC("unknown rmw op");
    }
    return result;
}

} // namespace proto
} // namespace plus
