#include "proto/coherence_manager.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/log.hpp"
#include "common/panic.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "telemetry/prof.hpp"

namespace plus {
namespace proto {

namespace {

/** Words per background page-copy batch. */
constexpr Addr kPageCopyBatchWords = 32;

/** Downcast an owned protocol message to its concrete type. */
template <typename T>
std::unique_ptr<T>
take(std::unique_ptr<ProtoMsg>& msg)
{
    return std::unique_ptr<T>(static_cast<T*>(msg.release()));
}

/** Page a message addresses, for traffic attribution (0 = none). */
Vpn
vpnOf(const ProtoMsg& msg)
{
    switch (msg.type) {
      case MsgType::ReadReq:
        return static_cast<const ReadReq&>(msg).vpn;
      case MsgType::WriteReq:
        return static_cast<const WriteReq&>(msg).vpn;
      case MsgType::UpdateReq:
        return static_cast<const UpdateReq&>(msg).vpn;
      case MsgType::RmwReq:
        return static_cast<const RmwReq&>(msg).vpn;
      case MsgType::Nack:
        return static_cast<const Nack&>(msg).vpn;
      default:
        return 0;
    }
}

} // namespace

std::uint64_t
CmStats::totalSent() const
{
    return std::accumulate(sent.begin(), sent.end(), std::uint64_t{0});
}

CoherenceManager::CoherenceManager(NodeId self, const CostModel& cost,
                                   Deps deps)
    : self_(self), cost_(cost), deps_(deps),
      pendingWrites_(cost.pendingWriteEntries),
      delayedOps_(cost.delayedOpEntries)
{
    PLUS_ASSERT(deps_.engine && deps_.network && deps_.memory &&
                deps_.tables, "coherence manager missing dependencies");
}

void
CoherenceManager::enqueue(Cycles occupancy, sim::Event work)
{
    const Cycles now = deps_.engine->now();
    const Cycles start = std::max(now, busyUntil_);
    const Cycles finish = start + occupancy;
    busyUntil_ = finish;
    stats_.busyCycles += occupancy;
    deps_.engine->schedule(finish - now, std::move(work));
}

void
CoherenceManager::send(NodeId dst, std::unique_ptr<ProtoMsg> msg,
                       unsigned bytes)
{
    PLUS_ASSERT(dst != self_, "protocol message addressed to self");
    stats_.sent[static_cast<std::size_t>(msg->type)] += 1;
    PLUS_LOG(LogComponent::Proto, "n", self_, " -> n", dst, " ",
             toString(msg->type));
    if (check_) {
        check_->onMessageSent(self_, dst,
                              static_cast<std::uint8_t>(msg->type), bytes,
                              vpnOf(*msg));
    }
    net::Packet packet;
    packet.src = self_;
    packet.dst = dst;
    packet.payloadBytes = bytes;
    packet.msgClass = static_cast<std::uint8_t>(msg->type);
    packet.payload = std::move(msg);
    deps_.network->send(std::move(packet));
}

void
CoherenceManager::applyLocal(FrameId frame, Addr word_offset, Word value)
{
    deps_.memory->write(frame, word_offset, value);
    if (snoop_) {
        snoop_(frame, word_offset, value);
    }
}

// --------------------------------------------------------------------------
// Processor-side interface
// --------------------------------------------------------------------------

void
CoherenceManager::procRead(Vpn vpn, Addr word_offset, PhysAddr phys,
                           std::function<void(Word)> done)
{
    // Reading a location that is currently being written blocks until the
    // write completes (strong ordering within one processor).
    pendingWrites_.whenAddrClear(
        vpn, word_offset,
        [this, vpn, word_offset, phys, done = std::move(done)]() mutable {
            if (check_) {
                // The conflicting-write wait is over: the checker verifies
                // no same-node write to the location is still in flight.
                check_->onReadServed(self_, vpn, word_offset);
            }
            if (phys.page.node == self_) {
                stats_.localReads += 1;
                done(deps_.memory->read(phys.page.frame, word_offset));
                return;
            }
            stats_.remoteReads += 1;
            if (deps_.refCounters) {
                deps_.refCounters->recordRemoteRef(vpn);
            }
            const ReadTag tag = nextReadTag_++;
            readWaiters_.emplace(tag, std::move(done));
            auto msg = std::make_unique<ReadReq>();
            msg->target = phys;
            msg->vpn = vpn;
            msg->originator = self_;
            msg->tag = tag;
            send(phys.page.node, std::move(msg), ReadReq::kBytes);
        });
}

void
CoherenceManager::gateBehindFence(std::function<void()> fn)
{
    if (fenceGroups_.empty()) {
        fn();
    } else {
        fenceGroups_.back().push_back(std::move(fn));
    }
}

void
CoherenceManager::procWriteFence()
{
    if (fenceGroups_.empty() && pendingWrites_.empty()) {
        return; // nothing to drain
    }
    fenceGroups_.emplace_back();
    if (fenceGroups_.size() == 1) {
        armFenceDrain();
    }
}

void
CoherenceManager::armFenceDrain()
{
    pendingWrites_.whenEmpty([this] { releaseFenceGroup(); });
}

void
CoherenceManager::releaseFenceGroup()
{
    PLUS_ASSERT(!fenceGroups_.empty(), "fence drain with no group");
    auto group = std::move(fenceGroups_.front());
    fenceGroups_.pop_front();
    for (auto& fn : group) {
        fn(); // may insert the group's own pending writes
    }
    if (!fenceGroups_.empty()) {
        armFenceDrain();
    }
}

void
CoherenceManager::procWrite(Vpn vpn, Addr word_offset, PhysAddr phys,
                            Word value, std::function<void()> accepted)
{
    gateBehindFence([this, vpn, word_offset, phys, value,
                     accepted = std::move(accepted)]() mutable {
        pendingWrites_.whenSlotFree(
            [this, vpn, word_offset, phys, value,
             accepted = std::move(accepted)]() mutable {
                const WriteTag tag =
                    pendingWrites_.insert(vpn, word_offset);
                pendingWrites_.noteHighWater();
                if (check_) {
                    check_->onWriteIssued(self_, tag, vpn, word_offset,
                                          /*from_rmw=*/false);
                }
                accepted();
                dispatchWrite(vpn, word_offset, phys, value, tag);
            });
    });
}

void
CoherenceManager::dispatchWrite(Vpn vpn, Addr word_offset, PhysAddr phys,
                                Word value, WriteTag tag)
{
    if (phys.page.node != self_) {
        stats_.remoteWrites += 1;
        if (deps_.refCounters) {
            deps_.refCounters->recordRemoteRef(vpn);
        }
        auto msg = std::make_unique<WriteReq>();
        msg->target = phys;
        msg->vpn = vpn;
        msg->value = value;
        msg->originator = self_;
        msg->tag = tag;
        send(phys.page.node, std::move(msg), WriteReq::kBytes);
        return;
    }

    const FrameId frame = phys.page.frame;
    const PhysPage master = deps_.tables->master(frame);
    if (master.node == self_) {
        // A write is "local" only if it completes with no network traffic.
        if (deps_.tables->nextCopy(frame)) {
            stats_.remoteWrites += 1;
        } else {
            stats_.localWrites += 1;
        }
        enqueue(cost_.cmServiceWrite,
                [this, vpn, frame, word_offset, value, tag] {
                    writeAtMaster(vpn, frame, word_offset, value, self_,
                                  tag);
                });
    } else {
        stats_.remoteWrites += 1;
        auto msg = std::make_unique<WriteReq>();
        msg->target = PhysAddr{master, word_offset};
        msg->vpn = vpn;
        msg->value = value;
        msg->originator = self_;
        msg->tag = tag;
        send(master.node, std::move(msg), WriteReq::kBytes);
    }
}

void
CoherenceManager::writeAtMaster(Vpn vpn, FrameId frame, Addr word_offset,
                                Word value, NodeId originator, WriteTag tag)
{
    applyLocal(frame, word_offset, value);
    const check::ChainId chain = nextChainId();
    if (check_) {
        check_->onChainApplied(chain, PhysPage{self_, frame}, vpn,
                               word_offset, 1, originator, tag,
                               /*tracked=*/true, /*at_master=*/true);
    }
    continueChain(vpn, chain, frame, {WordWrite{word_offset, value}},
                  originator, tag, /*from_rmw=*/false, /*need_ack=*/true);
}

void
CoherenceManager::continueChain(Vpn vpn, check::ChainId chain, FrameId frame,
                                std::vector<WordWrite> writes,
                                NodeId originator, WriteTag tag,
                                bool from_rmw, bool need_ack)
{
    const std::optional<PhysPage> next = deps_.tables->nextCopy(frame);
    if (next) {
        auto msg = std::make_unique<UpdateReq>();
        msg->target = *next;
        msg->vpn = vpn;
        msg->writes = std::move(writes);
        msg->originator = originator;
        msg->tag = tag;
        msg->chainId = chain;
        msg->fromRmw = from_rmw;
        msg->needAck = need_ack;
        const unsigned bytes = msg->bytes();
        send(next->node, std::move(msg), bytes);
        return;
    }
    if (!need_ack) {
        return;
    }
    if (originator == self_) {
        retireWrite(tag);
    } else {
        auto msg = std::make_unique<WriteAck>();
        msg->tag = tag;
        msg->fromRmw = from_rmw;
        send(originator, std::move(msg), WriteAck::kBytes);
    }
}

void
CoherenceManager::retireWrite(WriteTag tag)
{
    clearNackRetries(NackedKind::Write, tag);
    pendingWrites_.complete(tag);
}

void
CoherenceManager::procIssueRmw(RmwOp op, Vpn vpn, Addr word_offset,
                               PhysAddr phys, Word operand,
                               std::function<void(DelayedOpHandle)> issued)
{
    gateBehindFence([this, op, vpn, word_offset, phys, operand,
                     issued = std::move(issued)]() mutable {
        issueRmwUngated(op, vpn, word_offset, phys, operand,
                        std::move(issued));
    });
}

void
CoherenceManager::issueRmwUngated(
    RmwOp op, Vpn vpn, Addr word_offset, PhysAddr phys, Word operand,
    std::function<void(DelayedOpHandle)> issued)
{
    delayedOps_.whenSlotFree(
        [this, op, vpn, word_offset, phys, operand,
         issued = std::move(issued)]() mutable {
            const DelayedOpHandle handle = delayedOps_.allocate(op);
            if (cost_.rmwOccupiesPendingWrite) {
                pendingWrites_.whenSlotFree(
                    [this, op, vpn, word_offset, phys, operand, handle,
                     issued = std::move(issued)]() mutable {
                        const WriteTag tag =
                            pendingWrites_.insert(vpn, word_offset);
                        pendingWrites_.noteHighWater();
                        if (check_) {
                            check_->onWriteIssued(self_, tag, vpn,
                                                  word_offset,
                                                  /*from_rmw=*/true);
                        }
                        issued(handle);
                        dispatchRmw(op, vpn, word_offset, phys, operand,
                                    handle, tag, /*track=*/true);
                    });
            } else {
                issued(handle);
                dispatchRmw(op, vpn, word_offset, phys, operand, handle,
                            /*tag=*/0, /*track=*/false);
            }
        });
}

void
CoherenceManager::dispatchRmw(RmwOp op, Vpn vpn, Addr word_offset,
                              PhysAddr phys, Word operand,
                              DelayedOpHandle handle, WriteTag tag,
                              bool track)
{
    auto forward = [&](PhysPage target_page, NodeId dst) {
        auto msg = std::make_unique<RmwReq>();
        msg->op = op;
        msg->target = PhysAddr{target_page, word_offset};
        msg->vpn = vpn;
        msg->operand = operand;
        msg->originator = self_;
        msg->opTag = handle;
        msg->writeTag = tag;
        msg->trackWrite = track;
        send(dst, std::move(msg), RmwReq::kBytes);
    };

    if (phys.page.node != self_) {
        stats_.remoteRmws += 1;
        if (deps_.refCounters) {
            deps_.refCounters->recordRemoteRef(vpn);
        }
        forward(phys.page, phys.page.node);
        return;
    }

    const FrameId frame = phys.page.frame;
    const PhysPage master = deps_.tables->master(frame);
    if (master.node == self_) {
        if (deps_.tables->nextCopy(frame)) {
            stats_.remoteRmws += 1;
        } else {
            stats_.localRmws += 1;
        }
        const Cycles occupancy = isComplexOp(op) ? cost_.cmRmwComplex
                                                 : cost_.cmRmwSimple;
        enqueue(occupancy,
                [this, op, vpn, frame, word_offset, operand, handle, tag,
                 track] {
                    rmwAtMaster(op, vpn, frame, word_offset, operand, self_,
                                handle, tag, track);
                });
    } else {
        stats_.remoteRmws += 1;
        forward(master, master.node);
    }
}

void
CoherenceManager::rmwAtMaster(RmwOp op, Vpn vpn, FrameId frame,
                              Addr word_offset, Word operand,
                              NodeId originator, OpTag op_tag,
                              WriteTag write_tag, bool track)
{
    PageView view{[this, frame](Addr off) {
        return deps_.memory->read(frame, off);
    }};
    const RmwResult result = executeRmw(view, op, word_offset, operand,
                                        cost_.queueBaseOffset);

    // The master executes atomically, returns the old contents to the
    // originator, and propagates the effects down the copy-list.
    std::vector<WordWrite> writes;
    writes.reserve(result.writes.size());
    for (const auto& w : result.writes) {
        applyLocal(frame, w.wordOffset, w.value);
        writes.push_back(WordWrite{w.wordOffset, w.value});
    }

    if (originator == self_) {
        completeRmw(op_tag, result.oldValue);
    } else {
        auto msg = std::make_unique<RmwResp>();
        msg->opTag = op_tag;
        msg->oldValue = result.oldValue;
        send(originator, std::move(msg), RmwResp::kBytes);
    }

    if (!writes.empty()) {
        const check::ChainId chain = nextChainId();
        if (check_) {
            check_->onChainApplied(chain, PhysPage{self_, frame}, vpn,
                                   writes.front().wordOffset,
                                   static_cast<unsigned>(writes.size()),
                                   originator, write_tag,
                                   /*tracked=*/track, /*at_master=*/true);
        }
        continueChain(vpn, chain, frame, std::move(writes), originator,
                      write_tag, /*from_rmw=*/true, /*need_ack=*/track);
    } else if (track) {
        // Nothing to propagate: retire the tracked pseudo-write now.
        if (originator == self_) {
            retireWrite(write_tag);
        } else {
            auto msg = std::make_unique<WriteAck>();
            msg->tag = write_tag;
            msg->fromRmw = true;
            send(originator, std::move(msg), WriteAck::kBytes);
        }
    }
}

void
CoherenceManager::completeRmw(OpTag tag, Word old_value)
{
    clearNackRetries(NackedKind::Rmw, tag);
    delayedOps_.complete(tag, old_value);
}

bool
CoherenceManager::rmwReady(DelayedOpHandle handle) const
{
    return delayedOps_.ready(handle);
}

void
CoherenceManager::procVerify(DelayedOpHandle handle,
                             std::function<void(Word)> done)
{
    delayedOps_.whenReady(
        handle, [this, handle, done = std::move(done)](Word) {
            done(delayedOps_.take(handle));
        });
}

void
CoherenceManager::procFence(std::function<void()> done)
{
    // A blocking fence must also wait for writes still gated behind an
    // earlier write fence, so it joins the gate queue itself.
    gateBehindFence([this, done = std::move(done)]() mutable {
        pendingWrites_.whenEmpty([this, done = std::move(done)]() mutable {
            if (check_) {
                check_->onFenceComplete(self_, pendingWrites_.empty());
            }
            done();
        });
    });
}

// --------------------------------------------------------------------------
// Background page replication
// --------------------------------------------------------------------------

void
CoherenceManager::startPageCopy(FrameId src_frame, PhysPage dst,
                                std::uint32_t copy_id)
{
    PLUS_ASSERT(deps_.memory->allocated(src_frame),
                "page copy from unallocated frame");
    sendPageCopyBatch(src_frame, dst, copy_id, 0);
}

void
CoherenceManager::sendPageCopyBatch(FrameId src_frame, PhysPage dst,
                                    std::uint32_t copy_id, Addr next_offset)
{
    const Addr batch = std::min(kPageCopyBatchWords,
                                kPageWords - next_offset);
    enqueue(cost_.cmPageCopyWord * batch,
            [this, src_frame, dst, copy_id, next_offset, batch] {
                auto msg = std::make_unique<PageCopyData>();
                msg->target = dst;
                msg->baseOffset = next_offset;
                msg->words.reserve(batch);
                for (Addr i = 0; i < batch; ++i) {
                    msg->words.push_back(
                        deps_.memory->read(src_frame, next_offset + i));
                }
                msg->copyId = copy_id;
                msg->last = (next_offset + batch == kPageWords);
                const bool last = msg->last;
                const unsigned bytes = msg->bytes();
                send(dst.node, std::move(msg), bytes);
                if (!last) {
                    sendPageCopyBatch(src_frame, dst, copy_id,
                                      next_offset + batch);
                }
            });
}

// --------------------------------------------------------------------------
// Network entry
// --------------------------------------------------------------------------

void
CoherenceManager::onPacket(net::Packet packet)
{
    const prof::ScopedPhase prof_scope(prof::Phase::ProtoHandle);
    PLUS_ASSERT(dynamic_cast<ProtoMsg*>(packet.payload.get()) != nullptr,
                "non-protocol packet at coherence manager");
    std::unique_ptr<ProtoMsg> msg(
        static_cast<ProtoMsg*>(packet.payload.release()));
    PLUS_LOG(LogComponent::Proto, "n", self_, " <- n", packet.src, " ",
             toString(msg->type));

    switch (msg->type) {
      case MsgType::ReadReq:
        onReadReq(take<ReadReq>(msg));
        break;
      case MsgType::ReadResp:
        onReadResp(static_cast<const ReadResp&>(*msg));
        break;
      case MsgType::WriteReq:
        onWriteReq(take<WriteReq>(msg));
        break;
      case MsgType::UpdateReq:
        onUpdateReq(take<UpdateReq>(msg));
        break;
      case MsgType::WriteAck:
        onWriteAck(static_cast<const WriteAck&>(*msg));
        break;
      case MsgType::RmwReq:
        onRmwReq(take<RmwReq>(msg));
        break;
      case MsgType::RmwResp:
        onRmwResp(static_cast<const RmwResp&>(*msg));
        break;
      case MsgType::Nack:
        onNack(take<Nack>(msg));
        break;
      case MsgType::PageCopyData:
        onPageCopyData(take<PageCopyData>(msg), packet.src);
        break;
      case MsgType::PageCopyDone:
        onPageCopyDone(static_cast<const PageCopyDone&>(*msg));
        break;
      case MsgType::FrameFlush:
        onFrameFlush(static_cast<const FrameFlush&>(*msg));
        break;
      default:
        PLUS_PANIC("unknown protocol message type");
    }
}

void
CoherenceManager::onReadReq(std::unique_ptr<ReadReq> msg)
{
    enqueue(cost_.cmServiceReadReq, [this, m = std::move(msg)] {
        const FrameId frame = m->target.page.frame;
        if (!deps_.memory->allocated(frame)) {
            auto nack = std::make_unique<Nack>();
            nack->kind = NackedKind::Read;
            nack->vpn = m->vpn;
            nack->wordOffset = m->target.wordOffset;
            nack->readTag = m->tag;
            send(m->originator, std::move(nack), Nack::kBytes);
            return;
        }
        auto resp = std::make_unique<ReadResp>();
        resp->tag = m->tag;
        resp->value = deps_.memory->read(frame, m->target.wordOffset);
        send(m->originator, std::move(resp), ReadResp::kBytes);
    });
}

void
CoherenceManager::onReadResp(const ReadResp& msg)
{
    auto it = readWaiters_.find(msg.tag);
    PLUS_ASSERT(it != readWaiters_.end(), "read response with unknown tag");
    clearNackRetries(NackedKind::Read, msg.tag);
    auto done = std::move(it->second);
    readWaiters_.erase(it);
    done(msg.value);
}

void
CoherenceManager::onWriteReq(std::unique_ptr<WriteReq> msg)
{
    const FrameId frame = msg->target.page.frame;
    // The occupancy estimate may use the receive-time table state, but
    // correctness decisions must use the state at execution time: a
    // FrameFlush queued ahead of us may free the frame first.
    const bool master_estimate = deps_.memory->allocated(frame) &&
                                 deps_.tables->knows(frame) &&
                                 deps_.tables->master(frame).node == self_;
    const Cycles occupancy = master_estimate ? cost_.cmServiceWrite
                                             : cost_.cmForward;
    enqueue(occupancy, [this, m = std::move(msg)]() mutable {
        const FrameId frame = m->target.page.frame;
        const bool known = deps_.memory->allocated(frame) &&
                           deps_.tables->knows(frame);
        const bool master_here =
            known && deps_.tables->master(frame).node == self_;
        if (!known) {
            auto nack = std::make_unique<Nack>();
            nack->kind = NackedKind::Write;
            nack->vpn = m->vpn;
            nack->wordOffset = m->target.wordOffset;
            nack->writeTag = m->tag;
            nack->value = m->value;
            send(m->originator, std::move(nack), Nack::kBytes);
            return;
        }
        if (master_here) {
            writeAtMaster(m->vpn, frame, m->target.wordOffset, m->value,
                          m->originator, m->tag);
        } else {
            // Forward the request itself; only the target changes.
            const PhysPage master = deps_.tables->master(frame);
            m->target = PhysAddr{master, m->target.wordOffset};
            send(master.node, std::move(m), WriteReq::kBytes);
        }
    });
}

void
CoherenceManager::onUpdateReq(std::unique_ptr<UpdateReq> msg)
{
    enqueue(cost_.cmServiceUpdate, [this, m = std::move(msg)]() mutable {
        const FrameId frame = m->target.frame;
        // The deletion protocol splices the copy-list before flushing a
        // frame, so an update can never reach a frame that is gone.
        PLUS_ASSERT(deps_.memory->allocated(frame) &&
                        deps_.tables->knows(frame),
                    "update for a frame that holds no copy");
        for (const WordWrite& w : m->writes) {
            applyLocal(frame, w.wordOffset, w.value);
        }
        if (check_) {
            check_->onChainApplied(
                m->chainId, m->target, m->vpn,
                m->writes.empty() ? 0 : m->writes.front().wordOffset,
                static_cast<unsigned>(m->writes.size()), m->originator,
                m->tag, /*tracked=*/m->needAck, /*at_master=*/false);
        }
        continueChain(m->vpn, m->chainId, frame, std::move(m->writes),
                      m->originator, m->tag, m->fromRmw, m->needAck);
    });
}

void
CoherenceManager::onWriteAck(const WriteAck& msg)
{
    enqueue(cost_.cmServiceAck, [this, tag = msg.tag] {
        retireWrite(tag);
    });
}

void
CoherenceManager::onRmwReq(std::unique_ptr<RmwReq> msg)
{
    const FrameId frame = msg->target.page.frame;
    const bool master_estimate = deps_.memory->allocated(frame) &&
                                 deps_.tables->knows(frame) &&
                                 deps_.tables->master(frame).node == self_;
    Cycles occupancy;
    if (master_estimate) {
        occupancy = isComplexOp(msg->op) ? cost_.cmRmwComplex
                                         : cost_.cmRmwSimple;
    } else {
        occupancy = cost_.cmForward;
    }
    enqueue(occupancy, [this, m = std::move(msg)]() mutable {
        const FrameId frame = m->target.page.frame;
        const bool known = deps_.memory->allocated(frame) &&
                           deps_.tables->knows(frame);
        const bool master_here =
            known && deps_.tables->master(frame).node == self_;
        if (!known) {
            auto nack = std::make_unique<Nack>();
            nack->kind = NackedKind::Rmw;
            nack->vpn = m->vpn;
            nack->wordOffset = m->target.wordOffset;
            nack->opTag = m->opTag;
            nack->writeTag = m->writeTag;
            nack->value = m->operand;
            nack->op = m->op;
            nack->trackWrite = m->trackWrite;
            send(m->originator, std::move(nack), Nack::kBytes);
            return;
        }
        if (master_here) {
            rmwAtMaster(m->op, m->vpn, frame, m->target.wordOffset,
                        m->operand, m->originator, m->opTag,
                        m->writeTag, m->trackWrite);
        } else {
            // Forward the request itself; only the target changes.
            const PhysPage master = deps_.tables->master(frame);
            m->target = PhysAddr{master, m->target.wordOffset};
            send(master.node, std::move(m), RmwReq::kBytes);
        }
    });
}

void
CoherenceManager::onRmwResp(const RmwResp& msg)
{
    completeRmw(msg.opTag, msg.oldValue);
}

Cycles
CoherenceManager::noteNackRetry(NackedKind kind, std::uint32_t tag)
{
    unsigned& count = nackRetries_[nackKey(kind, tag)];
    count += 1;
    stats_.nackRetryHighWater =
        std::max<std::uint64_t>(stats_.nackRetryHighWater, count);
    if (cost_.nackRetryLimit != 0 && count > cost_.nackRetryLimit) {
        PLUS_PANIC("node ", self_, ": nacked ",
                   kind == NackedKind::Read    ? "read"
                   : kind == NackedKind::Write ? "write"
                                               : "rmw",
                   " (tag ", tag, ") exhausted ", cost_.nackRetryLimit,
                   " re-translation retries — livelock",
                   traceDumper_ ? traceDumper_() : std::string());
    }
    // The first retry keeps the seed's exact timing; later ones back
    // off exponentially so a livelocking retry storm decays.
    return count > 1 ? cost_.nackBackoffBase
                           << std::min(count - 2, cost_.nackBackoffCap)
                     : 0;
}

void
CoherenceManager::onNack(std::unique_ptr<Nack> msg)
{
    // The addressed copy disappeared (deleted or migrated): the OS
    // re-translates through the centralized table and the request is
    // retried against the page's current placement.
    PLUS_ASSERT(translate_, "nack received but no translator installed");
    const Cycles backoff = noteNackRetry(
        msg->kind, msg->kind == NackedKind::Read    ? msg->readTag
                   : msg->kind == NackedKind::Write ? msg->writeTag
                                                    : msg->opTag);
    enqueue(cost_.cmForward + cost_.osPageFillCycles + backoff,
            [this, m = std::move(msg)] {
        stats_.retries += 1;
        const PhysPage page = translate_(m->vpn);
        const PhysAddr phys{page, m->wordOffset};
        switch (m->kind) {
          case NackedKind::Read: {
            if (page.node == self_) {
                auto it = readWaiters_.find(m->readTag);
                PLUS_ASSERT(it != readWaiters_.end(),
                            "nacked read with unknown tag");
                clearNackRetries(NackedKind::Read, m->readTag);
                auto done = std::move(it->second);
                readWaiters_.erase(it);
                done(deps_.memory->read(page.frame, m->wordOffset));
            } else {
                auto req = std::make_unique<ReadReq>();
                req->target = phys;
                req->vpn = m->vpn;
                req->originator = self_;
                req->tag = m->readTag;
                send(page.node, std::move(req), ReadReq::kBytes);
            }
            break;
          }
          case NackedKind::Write:
            dispatchWrite(m->vpn, m->wordOffset, phys, m->value,
                          m->writeTag);
            break;
          case NackedKind::Rmw:
            dispatchRmw(m->op, m->vpn, m->wordOffset, phys, m->value,
                        m->opTag, m->writeTag, m->trackWrite);
            break;
          default:
            PLUS_PANIC("unknown nack kind");
        }
    });
}

void
CoherenceManager::onPageCopyData(std::unique_ptr<PageCopyData> msg,
                                 NodeId src)
{
    const Cycles occupancy = cost_.cmPageCopyWord * msg->words.size();
    enqueue(occupancy, [this, m = std::move(msg), src] {
        const FrameId frame = m->target.frame;
        PLUS_ASSERT(deps_.memory->allocated(frame),
                    "page-copy data for unallocated frame");
        for (std::size_t i = 0; i < m->words.size(); ++i) {
            applyLocal(frame, m->baseOffset + i, m->words[i]);
        }
        if (m->last) {
            auto done = std::make_unique<PageCopyDone>();
            done->copyId = m->copyId;
            // Answer the node that ran the copy engine (the packet source
            // is always the predecessor copy).
            send(src, std::move(done), PageCopyDone::kBytes);
        }
    });
}

void
CoherenceManager::osFlushRemoteFrame(PhysPage victim)
{
    auto msg = std::make_unique<FrameFlush>();
    msg->frame = victim.frame;
    send(victim.node, std::move(msg), FrameFlush::kBytes);
}

void
CoherenceManager::onFrameFlush(const FrameFlush& msg)
{
    enqueue(cost_.cmServiceAck, [this, frame = msg.frame] {
        PLUS_ASSERT(deps_.memory->allocated(frame),
                    "flush of a frame that is not allocated");
        deps_.tables->erase(frame);
        deps_.memory->freeFrame(frame);
    });
}

void
CoherenceManager::onPageCopyDone(const PageCopyDone& msg)
{
    enqueue(cost_.cmServiceAck, [this, copyId = msg.copyId] {
        PLUS_ASSERT(pageCopyDone_, "page copy finished with no handler");
        pageCopyDone_(copyId);
    });
}

} // namespace proto
} // namespace plus
