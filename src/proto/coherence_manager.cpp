#include "proto/coherence_manager.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/log.hpp"
#include "common/panic.hpp"
#include "net/network.hpp"
#include "proto/protocol.hpp"
#include "sim/engine.hpp"
#include "telemetry/prof.hpp"

namespace plus {
namespace proto {

namespace {

/** Words per background page-copy batch. */
constexpr Addr kPageCopyBatchWords = 32;

/** Downcast an owned protocol message to its concrete type. */
template <typename T>
std::unique_ptr<T>
take(std::unique_ptr<ProtoMsg>& msg)
{
    return std::unique_ptr<T>(static_cast<T*>(msg.release()));
}

/** Page a message addresses, for traffic attribution (0 = none). */
Vpn
vpnOf(const ProtoMsg& msg)
{
    switch (msg.type) {
      case MsgType::ReadReq:
        return static_cast<const ReadReq&>(msg).vpn;
      case MsgType::WriteReq:
        return static_cast<const WriteReq&>(msg).vpn;
      case MsgType::UpdateReq:
        return static_cast<const UpdateReq&>(msg).vpn;
      case MsgType::RmwReq:
        return static_cast<const RmwReq&>(msg).vpn;
      case MsgType::Nack:
        return static_cast<const Nack&>(msg).vpn;
      default:
        return 0;
    }
}

} // namespace

std::uint64_t
CmStats::totalSent() const
{
    return std::accumulate(sent.begin(), sent.end(), std::uint64_t{0});
}

CoherenceManager::CoherenceManager(NodeId self, const CostModel& cost,
                                   Deps deps, CoherenceProtocol protocol)
    : self_(self), cost_(cost), deps_(deps),
      protocol_(makeProtocol(protocol, *this)),
      pendingWrites_(cost.pendingWriteEntries),
      delayedOps_(cost.delayedOpEntries)
{
    PLUS_ASSERT(deps_.engine && deps_.network && deps_.memory &&
                deps_.tables, "coherence manager missing dependencies");
}

CoherenceManager::~CoherenceManager() = default;

void
CoherenceManager::enqueue(Cycles occupancy, sim::Event work)
{
    const Cycles now = deps_.engine->now();
    const Cycles start = std::max(now, busyUntil_);
    const Cycles finish = start + occupancy;
    busyUntil_ = finish;
    stats_.busyCycles += occupancy;
    deps_.engine->schedule(finish - now, std::move(work));
}

void
CoherenceManager::send(NodeId dst, std::unique_ptr<ProtoMsg> msg,
                       unsigned bytes)
{
    PLUS_ASSERT(dst != self_, "protocol message addressed to self");
    stats_.sent[static_cast<std::size_t>(msg->type)] += 1;
    PLUS_LOG(LogComponent::Proto, "n", self_, " -> n", dst, " ",
             toString(msg->type));
    if (check_) {
        check_->onMessageSent(self_, dst,
                              static_cast<std::uint8_t>(msg->type), bytes,
                              vpnOf(*msg));
    }
    net::Packet packet;
    packet.src = self_;
    packet.dst = dst;
    packet.payloadBytes = bytes;
    packet.msgClass = static_cast<std::uint8_t>(msg->type);
    packet.payload = std::move(msg);
    deps_.network->send(std::move(packet));
}

void
CoherenceManager::applyLocal(FrameId frame, Addr word_offset, Word value)
{
    deps_.memory->write(frame, word_offset, value);
    if (snoop_) {
        snoop_(frame, word_offset, value);
    }
}

// --------------------------------------------------------------------------
// Processor-side interface
// --------------------------------------------------------------------------

void
CoherenceManager::procRead(Vpn vpn, Addr word_offset, PhysAddr phys,
                           std::function<void(Word)> done)
{
    // Reading a location that is currently being written blocks until the
    // write completes (strong ordering within one processor).
    pendingWrites_.whenAddrClear(
        vpn, word_offset,
        [this, vpn, word_offset, phys, done = std::move(done)]() mutable {
            if (check_) {
                // The conflicting-write wait is over: the checker verifies
                // no same-node write to the location is still in flight.
                check_->onReadServed(self_, vpn, word_offset);
            }
            if (phys.page.node == self_) {
                protocol_->serveLocalRead(vpn, word_offset,
                                          phys.page.frame,
                                          std::move(done));
                return;
            }
            stats_.remoteReads += 1;
            if (deps_.refCounters) {
                deps_.refCounters->recordRemoteRef(vpn);
            }
            const ReadTag tag = nextReadTag_++;
            readWaiters_.emplace(tag, std::move(done));
            if (recoveryArmed_) {
                readMeta_.emplace(tag, ReadMeta{vpn, word_offset,
                                                phys.page.node});
            }
            auto msg = std::make_unique<ReadReq>();
            msg->target = phys;
            msg->vpn = vpn;
            msg->originator = self_;
            msg->tag = tag;
            send(phys.page.node, std::move(msg), ReadReq::kBytes);
        });
}

void
CoherenceManager::gateBehindFence(std::function<void()> fn)
{
    if (fenceGroups_.empty()) {
        fn();
    } else {
        fenceGroups_.back().push_back(std::move(fn));
    }
}

void
CoherenceManager::procWriteFence()
{
    if (fenceGroups_.empty() && pendingWrites_.empty()) {
        return; // nothing to drain
    }
    fenceGroups_.emplace_back();
    if (fenceGroups_.size() == 1) {
        armFenceDrain();
    }
}

void
CoherenceManager::armFenceDrain()
{
    pendingWrites_.whenEmpty([this] { releaseFenceGroup(); });
}

void
CoherenceManager::releaseFenceGroup()
{
    PLUS_ASSERT(!fenceGroups_.empty(), "fence drain with no group");
    auto group = std::move(fenceGroups_.front());
    fenceGroups_.pop_front();
    for (auto& fn : group) {
        fn(); // may insert the group's own pending writes
    }
    if (!fenceGroups_.empty()) {
        armFenceDrain();
    }
}

void
CoherenceManager::procWrite(Vpn vpn, Addr word_offset, PhysAddr phys,
                            Word value, std::function<void()> accepted)
{
    gateBehindFence([this, vpn, word_offset, phys, value,
                     accepted = std::move(accepted)]() mutable {
        pendingWrites_.whenSlotFree(
            [this, vpn, word_offset, phys, value,
             accepted = std::move(accepted)]() mutable {
                const WriteTag tag =
                    pendingWrites_.insert(vpn, word_offset);
                pendingWrites_.noteHighWater();
                if (check_) {
                    check_->onWriteIssued(self_, tag, vpn, word_offset,
                                          /*from_rmw=*/false);
                }
                if (recoveryArmed_) {
                    writeMeta_.emplace(
                        tag, WriteMeta{vpn, word_offset, value,
                                       phys.page.node, /*fromRmw=*/false});
                }
                accepted();
                dispatchWrite(vpn, word_offset, phys, value, tag);
            });
    });
}

void
CoherenceManager::dispatchWrite(Vpn vpn, Addr word_offset, PhysAddr phys,
                                Word value, WriteTag tag)
{
    // Remember where this dispatch addressed the write so a crash of
    // that node can be mapped back to the in-flight operation.
    const auto noteDst = [this, tag](NodeId dst) {
        if (recoveryArmed_) {
            auto it = writeMeta_.find(tag);
            if (it != writeMeta_.end()) {
                it->second.dst = dst;
            }
        }
    };

    if (phys.page.node != self_) {
        noteDst(phys.page.node);
        stats_.remoteWrites += 1;
        if (deps_.refCounters) {
            deps_.refCounters->recordRemoteRef(vpn);
        }
        auto msg = std::make_unique<WriteReq>();
        msg->target = phys;
        msg->vpn = vpn;
        msg->value = value;
        msg->originator = self_;
        msg->tag = tag;
        send(phys.page.node, std::move(msg), WriteReq::kBytes);
        return;
    }

    const FrameId frame = phys.page.frame;
    const PhysPage master = deps_.tables->master(frame);
    if (master.node == self_) {
        noteDst(self_);
        // A write is "local" only if it completes with no network traffic.
        if (deps_.tables->nextCopy(frame)) {
            stats_.remoteWrites += 1;
        } else {
            stats_.localWrites += 1;
        }
        enqueue(cost_.cmServiceWrite,
                [this, vpn, frame, word_offset, value, tag] {
                    protocol_->writeAtMaster(vpn, frame, word_offset,
                                             value, self_, tag);
                });
    } else {
        noteDst(master.node);
        stats_.remoteWrites += 1;
        auto msg = std::make_unique<WriteReq>();
        msg->target = PhysAddr{master, word_offset};
        msg->vpn = vpn;
        msg->value = value;
        msg->originator = self_;
        msg->tag = tag;
        send(master.node, std::move(msg), WriteReq::kBytes);
    }
}

void
CoherenceManager::continueChain(Vpn vpn, check::ChainId chain, FrameId frame,
                                std::vector<WordWrite> writes,
                                NodeId originator, WriteTag tag,
                                bool from_rmw, bool need_ack,
                                bool invalidate)
{
    const std::optional<PhysPage> next = deps_.tables->nextCopy(frame);
    if (next) {
        auto msg = std::make_unique<UpdateReq>();
        msg->target = *next;
        msg->vpn = vpn;
        msg->writes = std::move(writes);
        msg->originator = originator;
        msg->tag = tag;
        msg->chainId = chain;
        msg->fromRmw = from_rmw;
        msg->needAck = need_ack;
        msg->invalidate = invalidate;
        const unsigned bytes = msg->bytes();
        send(next->node, std::move(msg), bytes);
        return;
    }
    if (invalidate) {
        const PhysPage master = deps_.tables->master(frame);
        if (master.node != self_) {
            // The tail sharer of an invalidation chain acknowledges the
            // master, which commits the chain and relays the completion
            // to the originator (Protocol::chainAckAtMaster).
            auto msg = std::make_unique<WriteAck>();
            msg->tag = tag;
            msg->fromRmw = from_rmw;
            msg->chainId = chain;
            send(master.node, std::move(msg), WriteAck::kChainBytes);
            return;
        }
        // Degenerate chain (master with no copies): ack directly below.
    }
    if (!need_ack) {
        return;
    }
    if (originator == self_) {
        retireWrite(tag);
    } else {
        auto msg = std::make_unique<WriteAck>();
        msg->tag = tag;
        msg->fromRmw = from_rmw;
        send(originator, std::move(msg), WriteAck::kBytes);
    }
}

void
CoherenceManager::retireWrite(WriteTag tag)
{
    clearNackRetries(NackedKind::Write, tag);
    if (recoveryArmed_) {
        writeMeta_.erase(tag);
    }
    pendingWrites_.complete(tag);
}

void
CoherenceManager::procIssueRmw(RmwOp op, Vpn vpn, Addr word_offset,
                               PhysAddr phys, Word operand,
                               std::function<void(DelayedOpHandle)> issued)
{
    gateBehindFence([this, op, vpn, word_offset, phys, operand,
                     issued = std::move(issued)]() mutable {
        issueRmwUngated(op, vpn, word_offset, phys, operand,
                        std::move(issued));
    });
}

void
CoherenceManager::procIssueLostRmw(
    RmwOp op, std::function<void(DelayedOpHandle)> issued)
{
    // No master copy left to execute at: allocate the slot for protocol
    // uniformity and complete it on the spot with the lost sentinel.
    // Nothing is sent, so no recovery metadata is recorded.
    delayedOps_.whenSlotFree([this, op, issued = std::move(issued)] {
        const DelayedOpHandle handle = delayedOps_.allocate(op);
        issued(handle);
        delayedOps_.complete(handle, kPageLostValue);
    });
}

void
CoherenceManager::issueRmwUngated(
    RmwOp op, Vpn vpn, Addr word_offset, PhysAddr phys, Word operand,
    std::function<void(DelayedOpHandle)> issued)
{
    delayedOps_.whenSlotFree(
        [this, op, vpn, word_offset, phys, operand,
         issued = std::move(issued)]() mutable {
            const DelayedOpHandle handle = delayedOps_.allocate(op);
            if (recoveryArmed_) {
                rmwMeta_.emplace(handle,
                                 RmwMeta{op, vpn, word_offset, operand,
                                         phys.page.node, /*writeTag=*/0,
                                         /*track=*/false});
            }
            if (cost_.rmwOccupiesPendingWrite) {
                pendingWrites_.whenSlotFree(
                    [this, op, vpn, word_offset, phys, operand, handle,
                     issued = std::move(issued)]() mutable {
                        const WriteTag tag =
                            pendingWrites_.insert(vpn, word_offset);
                        pendingWrites_.noteHighWater();
                        if (check_) {
                            check_->onWriteIssued(self_, tag, vpn,
                                                  word_offset,
                                                  /*from_rmw=*/true);
                        }
                        if (recoveryArmed_) {
                            // The paired pseudo-write: the RMW path owns
                            // its replay, so mark it fromRmw.
                            writeMeta_.emplace(
                                tag, WriteMeta{vpn, word_offset, operand,
                                               phys.page.node,
                                               /*fromRmw=*/true});
                            auto rit = rmwMeta_.find(handle);
                            if (rit != rmwMeta_.end()) {
                                rit->second.writeTag = tag;
                                rit->second.track = true;
                            }
                        }
                        issued(handle);
                        dispatchRmw(op, vpn, word_offset, phys, operand,
                                    handle, tag, /*track=*/true);
                    });
            } else {
                issued(handle);
                dispatchRmw(op, vpn, word_offset, phys, operand, handle,
                            /*tag=*/0, /*track=*/false);
            }
        });
}

void
CoherenceManager::dispatchRmw(RmwOp op, Vpn vpn, Addr word_offset,
                              PhysAddr phys, Word operand,
                              DelayedOpHandle handle, WriteTag tag,
                              bool track)
{
    const auto noteDst = [this, handle, tag, track](NodeId dst) {
        if (!recoveryArmed_) {
            return;
        }
        auto it = rmwMeta_.find(handle);
        if (it != rmwMeta_.end()) {
            it->second.dst = dst;
        }
        if (track) {
            auto wit = writeMeta_.find(tag);
            if (wit != writeMeta_.end()) {
                wit->second.dst = dst;
            }
        }
    };

    auto forward = [&](PhysPage target_page, NodeId dst) {
        noteDst(dst);
        auto msg = std::make_unique<RmwReq>();
        msg->op = op;
        msg->target = PhysAddr{target_page, word_offset};
        msg->vpn = vpn;
        msg->operand = operand;
        msg->originator = self_;
        msg->opTag = handle;
        msg->writeTag = tag;
        msg->trackWrite = track;
        send(dst, std::move(msg), RmwReq::kBytes);
    };

    if (phys.page.node != self_) {
        stats_.remoteRmws += 1;
        if (deps_.refCounters) {
            deps_.refCounters->recordRemoteRef(vpn);
        }
        forward(phys.page, phys.page.node);
        return;
    }

    const FrameId frame = phys.page.frame;
    const PhysPage master = deps_.tables->master(frame);
    if (master.node == self_) {
        noteDst(self_);
        if (deps_.tables->nextCopy(frame)) {
            stats_.remoteRmws += 1;
        } else {
            stats_.localRmws += 1;
        }
        const Cycles occupancy = isComplexOp(op) ? cost_.cmRmwComplex
                                                 : cost_.cmRmwSimple;
        enqueue(occupancy,
                [this, op, vpn, frame, word_offset, operand, handle, tag,
                 track] {
                    rmwAtMaster(op, vpn, frame, word_offset, operand, self_,
                                handle, tag, track);
                });
    } else {
        stats_.remoteRmws += 1;
        forward(master, master.node);
    }
}

void
CoherenceManager::rmwAtMaster(RmwOp op, Vpn vpn, FrameId frame,
                              Addr word_offset, Word operand,
                              NodeId originator, OpTag op_tag,
                              WriteTag write_tag, bool track)
{
    PageView view{[this, frame](Addr off) {
        return deps_.memory->read(frame, off);
    }};
    const RmwResult result = executeRmw(view, op, word_offset, operand,
                                        cost_.queueBaseOffset);

    // The master executes atomically, returns the old contents to the
    // originator, and propagates the effects down the copy-list.
    std::vector<WordWrite> writes;
    writes.reserve(result.writes.size());
    for (const auto& w : result.writes) {
        applyLocal(frame, w.wordOffset, w.value);
        writes.push_back(WordWrite{w.wordOffset, w.value});
    }

    if (originator == self_) {
        completeRmw(op_tag, result.oldValue);
    } else {
        auto msg = std::make_unique<RmwResp>();
        msg->opTag = op_tag;
        msg->oldValue = result.oldValue;
        send(originator, std::move(msg), RmwResp::kBytes);
    }

    protocol_->propagateRmwEffects(vpn, frame, std::move(writes),
                                   originator, write_tag, track);
}

void
CoherenceManager::completeRmw(OpTag tag, Word old_value)
{
    clearNackRetries(NackedKind::Rmw, tag);
    if (recoveryArmed_) {
        rmwMeta_.erase(tag);
    }
    delayedOps_.complete(tag, old_value);
}

bool
CoherenceManager::rmwReady(DelayedOpHandle handle) const
{
    return delayedOps_.ready(handle);
}

void
CoherenceManager::procVerify(DelayedOpHandle handle,
                             std::function<void(Word)> done)
{
    delayedOps_.whenReady(
        handle, [this, handle, done = std::move(done)](Word) {
            done(delayedOps_.take(handle));
        });
}

void
CoherenceManager::procFence(std::function<void()> done)
{
    // A blocking fence must also wait for writes still gated behind an
    // earlier write fence, so it joins the gate queue itself.
    gateBehindFence([this, done = std::move(done)]() mutable {
        pendingWrites_.whenEmpty([this, done = std::move(done)]() mutable {
            if (check_) {
                check_->onFenceComplete(self_, pendingWrites_.empty());
            }
            done();
        });
    });
}

// --------------------------------------------------------------------------
// Background page replication
// --------------------------------------------------------------------------

void
CoherenceManager::startPageCopy(FrameId src_frame, PhysPage dst,
                                std::uint32_t copy_id, Vpn vpn)
{
    PLUS_ASSERT(deps_.memory->allocated(src_frame),
                "page copy from unallocated frame");
    sendPageCopyBatch(src_frame, dst, copy_id, vpn, 0);
}

void
CoherenceManager::sendPageCopyBatch(FrameId src_frame, PhysPage dst,
                                    std::uint32_t copy_id, Vpn vpn,
                                    Addr next_offset)
{
    const Addr batch = std::min(kPageCopyBatchWords,
                                kPageWords - next_offset);
    enqueue(cost_.cmPageCopyWord * batch,
            [this, src_frame, dst, copy_id, vpn, next_offset, batch] {
                auto msg = std::make_unique<PageCopyData>();
                msg->target = dst;
                msg->vpn = vpn;
                msg->baseOffset = next_offset;
                msg->words.reserve(batch);
                for (Addr i = 0; i < batch; ++i) {
                    msg->words.push_back(
                        deps_.memory->read(src_frame, next_offset + i));
                }
                protocol_->fillBatchValidity(src_frame, next_offset, batch,
                                             *msg);
                msg->copyId = copy_id;
                msg->last = (next_offset + batch == kPageWords);
                const bool last = msg->last;
                const unsigned bytes = msg->bytes();
                send(dst.node, std::move(msg), bytes);
                if (!last) {
                    sendPageCopyBatch(src_frame, dst, copy_id, vpn,
                                      next_offset + batch);
                }
            });
}

// --------------------------------------------------------------------------
// Network entry
// --------------------------------------------------------------------------

void
CoherenceManager::onPacket(net::Packet packet)
{
    const prof::ScopedPhase prof_scope(prof::Phase::ProtoHandle);
    PLUS_ASSERT(dynamic_cast<ProtoMsg*>(packet.payload.get()) != nullptr,
                "non-protocol packet at coherence manager");
    std::unique_ptr<ProtoMsg> msg(
        static_cast<ProtoMsg*>(packet.payload.release()));
    PLUS_LOG(LogComponent::Proto, "n", self_, " <- n", packet.src, " ",
             toString(msg->type));
    if (check_) {
        // Lets the checker enforce the recovery-epoch invariant: no
        // message from a crashed node is processed after its epoch seals.
        check_->onMessageProcessed(packet.src, self_,
                                   static_cast<std::uint8_t>(msg->type));
    }

    switch (msg->type) {
      case MsgType::ReadReq:
        onReadReq(take<ReadReq>(msg));
        break;
      case MsgType::ReadResp:
        onReadResp(static_cast<const ReadResp&>(*msg));
        break;
      case MsgType::WriteReq:
        onWriteReq(take<WriteReq>(msg));
        break;
      case MsgType::UpdateReq:
        onUpdateReq(take<UpdateReq>(msg));
        break;
      case MsgType::WriteAck:
        onWriteAck(static_cast<const WriteAck&>(*msg));
        break;
      case MsgType::RmwReq:
        onRmwReq(take<RmwReq>(msg));
        break;
      case MsgType::RmwResp:
        onRmwResp(static_cast<const RmwResp&>(*msg));
        break;
      case MsgType::Nack:
        onNack(take<Nack>(msg));
        break;
      case MsgType::PageCopyData:
        onPageCopyData(take<PageCopyData>(msg), packet.src);
        break;
      case MsgType::PageCopyDone:
        onPageCopyDone(static_cast<const PageCopyDone&>(*msg));
        break;
      case MsgType::FrameFlush:
        onFrameFlush(static_cast<const FrameFlush&>(*msg));
        break;
      default:
        PLUS_PANIC("unknown protocol message type");
    }
}

void
CoherenceManager::onReadReq(std::unique_ptr<ReadReq> msg)
{
    enqueue(cost_.cmServiceReadReq, [this, m = std::move(msg)]() mutable {
        const FrameId frame = m->target.page.frame;
        if (!deps_.memory->allocated(frame)) {
            auto nack = std::make_unique<Nack>();
            nack->kind = NackedKind::Read;
            nack->vpn = m->vpn;
            nack->wordOffset = m->target.wordOffset;
            nack->readTag = m->tag;
            send(m->originator, std::move(nack), Nack::kBytes);
            return;
        }
        protocol_->serveReadReq(std::move(m));
    });
}

void
CoherenceManager::onReadResp(const ReadResp& msg)
{
    auto it = readWaiters_.find(msg.tag);
    if (it == readWaiters_.end()) {
        // Only recovery can retire a read out from under its response:
        // it re-dispatched the request and the original answer arrived
        // after the replayed one (or after a degraded completion).
        PLUS_ASSERT(recoveryArmed_, "read response with unknown tag");
        stats_.staleAcks += 1;
        return;
    }
    clearNackRetries(NackedKind::Read, msg.tag);
    if (recoveryArmed_) {
        readMeta_.erase(msg.tag);
    }
    auto done = std::move(it->second);
    readWaiters_.erase(it);
    done(msg.value);
}

void
CoherenceManager::onWriteReq(std::unique_ptr<WriteReq> msg)
{
    const FrameId frame = msg->target.page.frame;
    // The occupancy estimate may use the receive-time table state, but
    // correctness decisions must use the state at execution time: a
    // FrameFlush queued ahead of us may free the frame first.
    const bool master_estimate = deps_.memory->allocated(frame) &&
                                 deps_.tables->knows(frame) &&
                                 deps_.tables->master(frame).node == self_;
    const Cycles occupancy = master_estimate ? cost_.cmServiceWrite
                                             : cost_.cmForward;
    enqueue(occupancy, [this, m = std::move(msg)]() mutable {
        const FrameId frame = m->target.page.frame;
        const bool known = deps_.memory->allocated(frame) &&
                           deps_.tables->knows(frame);
        const bool master_here =
            known && deps_.tables->master(frame).node == self_;
        if (!known) {
            auto nack = std::make_unique<Nack>();
            nack->kind = NackedKind::Write;
            nack->vpn = m->vpn;
            nack->wordOffset = m->target.wordOffset;
            nack->writeTag = m->tag;
            nack->value = m->value;
            send(m->originator, std::move(nack), Nack::kBytes);
            return;
        }
        if (master_here) {
            protocol_->writeAtMaster(m->vpn, frame, m->target.wordOffset,
                                     m->value, m->originator, m->tag);
        } else {
            // Forward the request itself; only the target changes.
            const PhysPage master = deps_.tables->master(frame);
            m->target = PhysAddr{master, m->target.wordOffset};
            send(master.node, std::move(m), WriteReq::kBytes);
        }
    });
}

void
CoherenceManager::onUpdateReq(std::unique_ptr<UpdateReq> msg)
{
    enqueue(cost_.cmServiceUpdate, [this, m = std::move(msg)]() mutable {
        const FrameId frame = m->target.frame;
        // The deletion protocol splices the copy-list before flushing a
        // frame, so an update can never reach a frame that is gone.
        PLUS_ASSERT(deps_.memory->allocated(frame) &&
                        deps_.tables->knows(frame),
                    "update for a frame that holds no copy");
        protocol_->chainStop(std::move(m));
    });
}

void
CoherenceManager::onWriteAck(const WriteAck& msg)
{
    enqueue(cost_.cmServiceAck, [this, tag = msg.tag,
                                 chain = msg.chainId] {
        if (chain != 0) {
            // Chain-routed ack: this node is the page's master, not the
            // originator (write-invalidate commit path).
            protocol_->chainAckAtMaster(chain);
            return;
        }
        if (recoveryArmed_ && writeMeta_.find(tag) == writeMeta_.end()) {
            // Recovery replayed this write and the first acknowledgement
            // (old chain's or new chain's) already retired the entry;
            // tags are never reused, so the straggler is safely dropped.
            stats_.staleAcks += 1;
            return;
        }
        retireWrite(tag);
    });
}

void
CoherenceManager::onRmwReq(std::unique_ptr<RmwReq> msg)
{
    const FrameId frame = msg->target.page.frame;
    const bool master_estimate = deps_.memory->allocated(frame) &&
                                 deps_.tables->knows(frame) &&
                                 deps_.tables->master(frame).node == self_;
    Cycles occupancy;
    if (master_estimate) {
        occupancy = isComplexOp(msg->op) ? cost_.cmRmwComplex
                                         : cost_.cmRmwSimple;
    } else {
        occupancy = cost_.cmForward;
    }
    enqueue(occupancy, [this, m = std::move(msg)]() mutable {
        const FrameId frame = m->target.page.frame;
        const bool known = deps_.memory->allocated(frame) &&
                           deps_.tables->knows(frame);
        const bool master_here =
            known && deps_.tables->master(frame).node == self_;
        if (!known) {
            auto nack = std::make_unique<Nack>();
            nack->kind = NackedKind::Rmw;
            nack->vpn = m->vpn;
            nack->wordOffset = m->target.wordOffset;
            nack->opTag = m->opTag;
            nack->writeTag = m->writeTag;
            nack->value = m->operand;
            nack->op = m->op;
            nack->trackWrite = m->trackWrite;
            send(m->originator, std::move(nack), Nack::kBytes);
            return;
        }
        if (master_here) {
            rmwAtMaster(m->op, m->vpn, frame, m->target.wordOffset,
                        m->operand, m->originator, m->opTag,
                        m->writeTag, m->trackWrite);
        } else {
            // Forward the request itself; only the target changes.
            const PhysPage master = deps_.tables->master(frame);
            m->target = PhysAddr{master, m->target.wordOffset};
            send(master.node, std::move(m), RmwReq::kBytes);
        }
    });
}

void
CoherenceManager::onRmwResp(const RmwResp& msg)
{
    if (recoveryArmed_ && rmwMeta_.find(msg.opTag) == rmwMeta_.end()) {
        // Replay raced the original response; first one in completed.
        stats_.staleAcks += 1;
        return;
    }
    completeRmw(msg.opTag, msg.oldValue);
}

Cycles
CoherenceManager::noteNackRetry(NackedKind kind, std::uint32_t tag)
{
    unsigned& count = nackRetries_[nackKey(kind, tag)];
    count += 1;
    stats_.nackRetryHighWater =
        std::max<std::uint64_t>(stats_.nackRetryHighWater, count);
    if (cost_.nackRetryLimit != 0 && count > cost_.nackRetryLimit) {
        PLUS_PANIC("node ", self_, ": nacked ",
                   kind == NackedKind::Read    ? "read"
                   : kind == NackedKind::Write ? "write"
                                               : "rmw",
                   " (tag ", tag, ") exhausted ", cost_.nackRetryLimit,
                   " re-translation retries — livelock",
                   traceDumper_ ? traceDumper_() : std::string());
    }
    // The first retry keeps the seed's exact timing; later ones back
    // off exponentially so a livelocking retry storm decays.
    return count > 1 ? cost_.nackBackoffBase
                           << std::min(count - 2, cost_.nackBackoffCap)
                     : 0;
}

bool
CoherenceManager::nackTargetLive(const Nack& nack) const
{
    switch (nack.kind) {
      case NackedKind::Read:
        return readWaiters_.find(nack.readTag) != readWaiters_.end();
      case NackedKind::Write:
        return writeMeta_.find(nack.writeTag) != writeMeta_.end();
      case NackedKind::Rmw:
        return rmwMeta_.find(nack.opTag) != rmwMeta_.end();
      default:
        PLUS_PANIC("unknown nack kind");
    }
}

void
CoherenceManager::completeNackedAsLost(const Nack& nack)
{
    stats_.recoveryAborts += 1;
    switch (nack.kind) {
      case NackedKind::Read: {
        auto it = readWaiters_.find(nack.readTag);
        PLUS_ASSERT(it != readWaiters_.end(),
                    "lost-page nacked read with no waiter");
        clearNackRetries(NackedKind::Read, nack.readTag);
        readMeta_.erase(nack.readTag);
        auto done = std::move(it->second);
        readWaiters_.erase(it);
        done(kPageLostValue);
        break;
      }
      case NackedKind::Write:
        if (check_) {
            check_->onPendingAborted(self_, nack.writeTag,
                                     /*retried=*/false);
        }
        retireWrite(nack.writeTag);
        break;
      case NackedKind::Rmw: {
        auto it = rmwMeta_.find(nack.opTag);
        if (it != rmwMeta_.end() && it->second.track) {
            if (check_) {
                check_->onPendingAborted(self_, it->second.writeTag,
                                         /*retried=*/false);
            }
            retireWrite(it->second.writeTag);
        }
        completeRmw(nack.opTag, kPageLostValue);
        break;
      }
      default:
        PLUS_PANIC("unknown nack kind");
    }
}

void
CoherenceManager::onNack(std::unique_ptr<Nack> msg)
{
    // The addressed copy disappeared (deleted or migrated): the OS
    // re-translates through the centralized table and the request is
    // retried against the page's current placement.
    PLUS_ASSERT(translate_, "nack received but no translator installed");
    if (recoveryArmed_ && !nackTargetLive(*msg)) {
        // Recovery already aborted the operation; don't let a straggler
        // nack count against the livelock retry budget.
        stats_.staleAcks += 1;
        return;
    }
    const Cycles backoff = noteNackRetry(
        msg->kind, msg->kind == NackedKind::Read    ? msg->readTag
                   : msg->kind == NackedKind::Write ? msg->writeTag
                                                    : msg->opTag);
    enqueue(cost_.cmForward + cost_.osPageFillCycles + backoff,
            [this, m = std::move(msg)] {
        if (recoveryArmed_) {
            // Re-check at execution time: a crash recovery may have run
            // while this retry sat behind the manager's occupancy.
            if (!nackTargetLive(*m)) {
                stats_.staleAcks += 1;
                return;
            }
            if (lostVpns_.count(m->vpn) != 0) {
                // The page's directory entry died with its last copy;
                // re-translation would fault. Complete degraded instead.
                completeNackedAsLost(*m);
                return;
            }
        }
        stats_.retries += 1;
        const PhysPage page = translate_(m->vpn);
        const PhysAddr phys{page, m->wordOffset};
        switch (m->kind) {
          case NackedKind::Read: {
            if (page.node == self_) {
                auto it = readWaiters_.find(m->readTag);
                PLUS_ASSERT(it != readWaiters_.end(),
                            "nacked read with unknown tag");
                clearNackRetries(NackedKind::Read, m->readTag);
                if (recoveryArmed_) {
                    readMeta_.erase(m->readTag);
                }
                auto done = std::move(it->second);
                readWaiters_.erase(it);
                protocol_->serveNackedLocalRead(m->vpn, m->wordOffset,
                                                page.frame,
                                                std::move(done));
            } else {
                if (recoveryArmed_) {
                    auto rit = readMeta_.find(m->readTag);
                    if (rit != readMeta_.end()) {
                        rit->second.dst = page.node;
                    }
                }
                auto req = std::make_unique<ReadReq>();
                req->target = phys;
                req->vpn = m->vpn;
                req->originator = self_;
                req->tag = m->readTag;
                send(page.node, std::move(req), ReadReq::kBytes);
            }
            break;
          }
          case NackedKind::Write:
            dispatchWrite(m->vpn, m->wordOffset, phys, m->value,
                          m->writeTag);
            break;
          case NackedKind::Rmw:
            dispatchRmw(m->op, m->vpn, m->wordOffset, phys, m->value,
                        m->opTag, m->writeTag, m->trackWrite);
            break;
          default:
            PLUS_PANIC("unknown nack kind");
        }
    });
}

// --------------------------------------------------------------------------
// Crash recovery
// --------------------------------------------------------------------------

CoherenceManager::RecoveryOutcome
CoherenceManager::recoverAfterCrash(NodeId dead,
                                    const std::vector<Vpn>& affected,
                                    const std::vector<Vpn>& lost)
{
    PLUS_ASSERT(recoveryArmed_,
                "recovery walk without armed bookkeeping");
    RecoveryOutcome out;
    lostVpns_.insert(lost.begin(), lost.end());

    const auto isLost = [&lost](Vpn vpn) {
        return std::binary_search(lost.begin(), lost.end(), vpn);
    };
    // An in-flight operation is torn by the crash if it was last
    // addressed to the dead node (the request or its response died with
    // it) or rides a page whose copy-list contained the dead node (its
    // update chain may have been cut mid-propagation).
    const auto torn = [&](Vpn vpn, NodeId dst) {
        return dst == dead ||
               std::binary_search(affected.begin(), affected.end(), vpn);
    };

    // Collect first: the replay handlers mutate the maps. std::map keys
    // iterate in ascending tag order, which is issue order — the same on
    // every backend.

    std::vector<ReadTag> reads;
    for (const auto& [tag, meta] : readMeta_) {
        if (isLost(meta.vpn) || meta.dst == dead) {
            reads.push_back(tag);
        }
    }
    for (const ReadTag tag : reads) {
        const ReadMeta meta = readMeta_.at(tag);
        auto wit = readWaiters_.find(tag);
        PLUS_ASSERT(wit != readWaiters_.end(),
                    "recovery found a read with no waiter");
        clearNackRetries(NackedKind::Read, tag);
        if (isLost(meta.vpn)) {
            readMeta_.erase(tag);
            auto done = std::move(wit->second);
            readWaiters_.erase(wit);
            done(kPageLostValue);
            out.lostCompletions += 1;
            continue;
        }
        out.abortedReads += 1;
        const PhysPage page = translate_(meta.vpn);
        if (page.node == self_) {
            readMeta_.erase(tag);
            auto done = std::move(wit->second);
            readWaiters_.erase(wit);
            done(deps_.memory->read(page.frame, meta.wordOffset));
        } else {
            readMeta_.at(tag).dst = page.node;
            auto req = std::make_unique<ReadReq>();
            req->target = PhysAddr{page, meta.wordOffset};
            req->vpn = meta.vpn;
            req->originator = self_;
            req->tag = tag;
            send(page.node, std::move(req), ReadReq::kBytes);
        }
    }

    std::vector<WriteTag> writes;
    for (const auto& [tag, meta] : writeMeta_) {
        // Tracked interlocked pseudo-writes replay through the RMW walk.
        if (!meta.fromRmw && (isLost(meta.vpn) || torn(meta.vpn, meta.dst))) {
            writes.push_back(tag);
        }
    }
    for (const WriteTag tag : writes) {
        const WriteMeta meta = writeMeta_.at(tag);
        if (isLost(meta.vpn)) {
            if (check_) {
                check_->onPendingAborted(self_, tag, /*retried=*/false);
            }
            retireWrite(tag);
            out.lostCompletions += 1;
            continue;
        }
        if (check_) {
            check_->onPendingAborted(self_, tag, /*retried=*/true);
        }
        out.abortedWrites += 1;
        const PhysPage page = translate_(meta.vpn);
        dispatchWrite(meta.vpn, meta.wordOffset,
                      PhysAddr{page, meta.wordOffset}, meta.value, tag);
    }

    std::vector<OpTag> rmws;
    for (const auto& [tag, meta] : rmwMeta_) {
        if (isLost(meta.vpn) || torn(meta.vpn, meta.dst)) {
            rmws.push_back(tag);
        }
    }
    for (const OpTag tag : rmws) {
        const RmwMeta meta = rmwMeta_.at(tag);
        if (isLost(meta.vpn)) {
            if (meta.track) {
                if (check_) {
                    check_->onPendingAborted(self_, meta.writeTag,
                                             /*retried=*/false);
                }
                retireWrite(meta.writeTag);
            }
            completeRmw(tag, kPageLostValue);
            out.lostCompletions += 1;
            continue;
        }
        if (meta.track && check_) {
            check_->onPendingAborted(self_, meta.writeTag,
                                     /*retried=*/true);
        }
        out.abortedRmws += 1;
        // Re-execution is at-least-once: if the dead master applied the
        // op but its response was lost, the replay applies it again at
        // the promoted master (see docs/ROBUSTNESS.md). Deterministic
        // either way — every backend replays identically.
        const PhysPage page = translate_(meta.vpn);
        dispatchRmw(meta.op, meta.vpn, meta.wordOffset,
                    PhysAddr{page, meta.wordOffset}, meta.operand, tag,
                    meta.writeTag, meta.track);
    }

    stats_.recoveryAborts += out.abortedReads + out.abortedWrites +
                             out.abortedRmws + out.lostCompletions;
    return out;
}

void
CoherenceManager::onPageCopyData(std::unique_ptr<PageCopyData> msg,
                                 NodeId src)
{
    const Cycles occupancy = cost_.cmPageCopyWord * msg->words.size();
    enqueue(occupancy, [this, m = std::move(msg), src] {
        const FrameId frame = m->target.frame;
        PLUS_ASSERT(deps_.memory->allocated(frame),
                    "page-copy data for unallocated frame");
        protocol_->applyCopyBatch(*m);
        if (m->last) {
            auto done = std::make_unique<PageCopyDone>();
            done->copyId = m->copyId;
            // Answer the node that ran the copy engine (the packet source
            // is always the predecessor copy).
            send(src, std::move(done), PageCopyDone::kBytes);
        }
    });
}

void
CoherenceManager::osFlushRemoteFrame(PhysPage victim)
{
    auto msg = std::make_unique<FrameFlush>();
    msg->frame = victim.frame;
    send(victim.node, std::move(msg), FrameFlush::kBytes);
}

void
CoherenceManager::onFrameFlush(const FrameFlush& msg)
{
    enqueue(cost_.cmServiceAck, [this, frame = msg.frame] {
        PLUS_ASSERT(deps_.memory->allocated(frame),
                    "flush of a frame that is not allocated");
        protocol_->onFrameDropped(frame);
        deps_.tables->erase(frame);
        deps_.memory->freeFrame(frame);
    });
}

void
CoherenceManager::onPageCopyDone(const PageCopyDone& msg)
{
    enqueue(cost_.cmServiceAck, [this, copyId = msg.copyId] {
        PLUS_ASSERT(pageCopyDone_, "page copy finished with no handler");
        pageCopyDone_(copyId);
    });
}

} // namespace proto
} // namespace plus
