/**
 * @file
 * A home-pinned write-invalidate (MSI-flavoured) protocol strategy, the
 * counterpart to PLUS's write-update protocol for protocol shootouts
 * (docs/PROTOCOLS.md).
 *
 * The master copy stays pinned as the page's home and write serializer
 * — the existing master/copy-list machinery is reused unchanged —
 * but chains flowing down the copy-list *invalidate* the written words
 * at every non-master copy instead of carrying values. A sharer whose
 * word was invalidated re-fetches it from the master on its next read
 * (ReadReq::refetch), which also clears the master's record of that
 * word being invalid everywhere.
 *
 * The payoff over write-update: once a write's words are known invalid
 * at every sharer, further writes to them complete at the master with
 * no chain at all. "Known" is established conservatively at chain
 * *completion*: the tail of an invalidation chain acknowledges the
 * master (WriteAck::chainId), which commits the chain's words into the
 * invalid-everywhere set — unless any re-fetch of the page was served
 * since the chain launched (a per-frame clear-generation guard), since
 * that re-fetch may have revalidated a copy the chain had already
 * visited. Committing at launch instead would let a second write to
 * the same word complete before the first chain reached every sharer —
 * a stale-read window the invariant checker would (rightly) flag.
 *
 * Replication: a new copy is always spliced in directly after the
 * master (core::Machine anchors replication there under this
 * protocol), so the batch data and subsequent invalidation chains
 * share one FIFO channel and a batch word can never resurrect a value
 * a chain already killed. Batches carry a validity mask; words the
 * master holds invalid-everywhere arrive invalid at the new copy.
 *
 * Fail-stop recovery and fenced replicas are not supported under this
 * protocol (MachineConfig::validate rejects the combinations): both
 * are built on update-chain semantics.
 */

#ifndef PLUS_PROTO_WRITE_INVALIDATE_HPP_
#define PLUS_PROTO_WRITE_INVALIDATE_HPP_

#include <cstdint>
#include <map>
#include <set>

#include "proto/protocol.hpp"

namespace plus {
namespace proto {

/** Home-pinned write-invalidate protocol; see file comment. */
class WriteInvalidateProtocol final : public Protocol
{
  public:
    using Protocol::Protocol;

    CoherenceProtocol
    kind() const override
    {
        return CoherenceProtocol::WriteInvalidate;
    }

    void writeAtMaster(Vpn vpn, FrameId frame, Addr word_offset, Word value,
                       NodeId originator, WriteTag tag) override;
    void propagateRmwEffects(Vpn vpn, FrameId frame,
                             std::vector<WordWrite> writes,
                             NodeId originator, WriteTag write_tag,
                             bool track) override;
    void chainStop(std::unique_ptr<UpdateReq> msg) override;
    void chainAckAtMaster(std::uint64_t chain_id) override;
    void serveLocalRead(Vpn vpn, Addr word_offset, FrameId frame,
                        std::function<void(Word)> done) override;
    void serveNackedLocalRead(Vpn vpn, Addr word_offset, FrameId frame,
                              std::function<void(Word)> done) override;
    void serveReadReq(std::unique_ptr<ReadReq> msg) override;
    void fillBatchValidity(FrameId src_frame, Addr base_offset, Addr count,
                           PageCopyData& msg) override;
    void applyCopyBatch(const PageCopyData& msg) override;
    void onFrameDropped(FrameId frame) override;
    void onMasterPromoted(FrameId frame, Vpn vpn) override;
    void onMasterDemoted(FrameId frame) override;

    /** Words of this node's copy of @p frame currently invalid. */
    std::size_t invalidWordsAt(FrameId frame) const;

    /** Words the master in @p frame holds invalid-everywhere. */
    std::size_t invalidEverywhere(FrameId frame) const;

  private:
    /** An invalidation chain in flight, awaiting its tail's ack. */
    struct PendingChain {
        FrameId frame = kInvalidFrame;
        Vpn vpn = 0;
        std::vector<Addr> words;
        /** clearGen_ at launch; a mismatch at ack cancels the commit. */
        std::uint64_t clearGenAtLaunch = 0;
        NodeId originator = kInvalidNode;
        WriteTag tag = 0;
        bool fromRmw = false;
        bool needAck = false;
    };

    /** True if every word in @p writes is committed invalid-everywhere. */
    bool allInvalidEverywhere(FrameId frame,
                              const std::vector<WordWrite>& writes) const;

    /** Count an ownership transfer when the writing node changes. */
    void noteWriter(Vpn vpn, FrameId frame, NodeId writer);

    /** Complete a chainless write towards its originator. */
    void ackOriginator(NodeId originator, WriteTag tag, bool from_rmw);

    /** Launch an invalidation chain for applied master writes. */
    void launchChain(Vpn vpn, FrameId frame, std::vector<WordWrite> writes,
                     NodeId originator, WriteTag tag, bool from_rmw,
                     bool need_ack);

    /** Re-fetch one invalidated word of a local copy from the master. */
    void refetchWord(Vpn vpn, Addr word_offset, FrameId frame,
                     PhysPage master, std::function<void(Word)> done);

    // All per-frame state is in ordered containers: recovery-style
    // walks and the promotion hooks iterate, and their order must be
    // identical on every engine backend (pluslint R1).

    /** Invalid words of this node's (non-master) copies. */
    std::map<FrameId, std::set<Addr>> invalidHere_;
    /**
     * Per-frame invalidation generation, bumped whenever a word of the
     * local copy is invalidated or the frame is dropped — never erased,
     * so an in-flight re-fetch can never revalidate a recycled frame.
     */
    std::map<FrameId, std::uint64_t> invGen_;
    /** Master side: words committed invalid at every sharer copy. */
    std::map<FrameId, std::set<Addr>> masterInvalid_;
    /** Master side: bumped when a re-fetch clears an invalid word. */
    std::map<FrameId, std::uint64_t> clearGen_;
    /** Master side: last writer per frame, for ownershipTransfers. */
    std::map<FrameId, NodeId> lastWriter_;
    /** Master side: launched chains awaiting their tail's ack. */
    std::map<std::uint64_t, PendingChain> pendingChains_;
};

} // namespace proto
} // namespace plus

#endif // PLUS_PROTO_WRITE_INVALIDATE_HPP_
