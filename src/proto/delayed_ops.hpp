/**
 * @file
 * The delayed-operations cache (Section 3.1): when the processor issues a
 * delayed synchronization operation it receives an identifier — the
 * address of a location in this cache, allocated at issue time and
 * deallocated when the result is read. Up to 8 operations can be in
 * progress simultaneously in the 1990 implementation. If the result is
 * not yet available when the processor reads it, the read blocks; the
 * software can also inspect the status for a non-blocking poll.
 */

#ifndef PLUS_PROTO_DELAYED_OPS_HPP_
#define PLUS_PROTO_DELAYED_OPS_HPP_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/panic.hpp"
#include "common/types.hpp"
#include "proto/rmw.hpp"

namespace plus {
namespace proto {

/** Identifier of a slot in the delayed-operations cache. */
using DelayedOpHandle = std::uint32_t;

/** Fixed-capacity table of delayed operations in progress. */
class DelayedOpCache
{
  public:
    using Waiter = std::function<void()>;
    using ResultWaiter = std::function<void(Word)>;

    explicit DelayedOpCache(unsigned capacity) : slots_(capacity)
    {
        PLUS_ASSERT(capacity > 0, "delayed-op cache needs capacity");
    }

    unsigned capacity() const
    {
        return static_cast<unsigned>(slots_.size());
    }

    unsigned inFlight() const { return used_; }
    bool full() const { return used_ >= capacity(); }

    /**
     * Allocate a slot for an operation being issued.
     * @pre !full()
     */
    DelayedOpHandle
    allocate(RmwOp op)
    {
        PLUS_ASSERT(!full(), "delayed-op cache overflow");
        for (DelayedOpHandle h = 0; h < capacity(); ++h) {
            if (slots_[h].state == State::Free) {
                slots_[h] = Slot{};
                slots_[h].state = State::InFlight;
                slots_[h].op = op;
                ++used_;
                maxUsed_ = std::max(maxUsed_, used_);
                return h;
            }
        }
        PLUS_PANIC("delayed-op cache bookkeeping is inconsistent");
    }

    /** Deliver the master's result for @p handle. */
    void
    complete(DelayedOpHandle handle, Word result)
    {
        Slot& slot = at(handle);
        PLUS_ASSERT(slot.state == State::InFlight,
                    "result for a slot that is not in flight");
        slot.state = State::Ready;
        slot.result = result;
        if (slot.waiter) {
            auto fn = std::move(slot.waiter);
            slot.waiter = nullptr;
            fn(result);
        }
    }

    /** Non-blocking status poll (the paper's software status inspect). */
    bool
    ready(DelayedOpHandle handle) const
    {
        return at(handle).state == State::Ready;
    }

    /**
     * Consume a ready result and free the slot.
     * @pre ready(handle)
     */
    Word
    take(DelayedOpHandle handle)
    {
        Slot& slot = at(handle);
        PLUS_ASSERT(slot.state == State::Ready, "take() before result");
        slot.state = State::Free;
        --used_;
        const Word result = slot.result;
        wakeSlotWaiters();
        return result;
    }

    /**
     * Run @p fn with the result as soon as it is available (immediately
     * if already ready). The slot is *not* freed; the caller still
     * calls take().
     */
    void
    whenReady(DelayedOpHandle handle, ResultWaiter fn)
    {
        Slot& slot = at(handle);
        if (slot.state == State::Ready) {
            fn(slot.result);
        } else {
            PLUS_ASSERT(slot.state == State::InFlight,
                        "waiting on a free slot");
            PLUS_ASSERT(!slot.waiter, "slot already has a waiter");
            slot.waiter = std::move(fn);
        }
    }

    /** Run @p fn once a slot can be allocated. */
    void
    whenSlotFree(Waiter fn)
    {
        if (!full()) {
            fn();
        } else {
            slotWaiters_.push_back(std::move(fn));
        }
    }

    unsigned maxInFlight() const { return maxUsed_; }

  private:
    enum class State : std::uint8_t { Free, InFlight, Ready };

    struct Slot {
        State state = State::Free;
        RmwOp op = RmwOp::Xchng;
        Word result = 0;
        ResultWaiter waiter;
    };

    Slot&
    at(DelayedOpHandle handle)
    {
        PLUS_ASSERT(handle < slots_.size(), "bad delayed-op handle");
        return slots_[handle];
    }

    const Slot&
    at(DelayedOpHandle handle) const
    {
        PLUS_ASSERT(handle < slots_.size(), "bad delayed-op handle");
        return slots_[handle];
    }

    void
    wakeSlotWaiters()
    {
        while (!slotWaiters_.empty() && !full()) {
            auto fn = std::move(slotWaiters_.front());
            slotWaiters_.erase(slotWaiters_.begin());
            fn();
        }
    }

    std::vector<Slot> slots_;
    std::vector<Waiter> slotWaiters_;
    unsigned used_ = 0;
    unsigned maxUsed_ = 0;
};

} // namespace proto
} // namespace plus

#endif // PLUS_PROTO_DELAYED_OPS_HPP_
