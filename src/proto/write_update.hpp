/**
 * @file
 * PLUS's non-demand write-update protocol (PAPER.md Sections 2.3, 3.1)
 * as a Protocol strategy. This is the pre-refactor coherence manager's
 * behaviour moved verbatim: every write applies at the master first and
 * flows down the ordered copy-list as an UpdateReq carrying the value;
 * the tail acknowledges the originator; reads are always served from
 * the local copy when one exists (copies are never stale). Simulations
 * are byte-identical to the monolithic manager across every engine
 * backend — the determinism goldens predate this refactor.
 */

#ifndef PLUS_PROTO_WRITE_UPDATE_HPP_
#define PLUS_PROTO_WRITE_UPDATE_HPP_

#include "proto/protocol.hpp"

namespace plus {
namespace proto {

/** The paper's write-update protocol; see file comment. */
class WriteUpdateProtocol final : public Protocol
{
  public:
    using Protocol::Protocol;

    CoherenceProtocol
    kind() const override
    {
        return CoherenceProtocol::WriteUpdate;
    }

    void writeAtMaster(Vpn vpn, FrameId frame, Addr word_offset, Word value,
                       NodeId originator, WriteTag tag) override;
    void propagateRmwEffects(Vpn vpn, FrameId frame,
                             std::vector<WordWrite> writes,
                             NodeId originator, WriteTag write_tag,
                             bool track) override;
    void chainStop(std::unique_ptr<UpdateReq> msg) override;
    void serveLocalRead(Vpn vpn, Addr word_offset, FrameId frame,
                        std::function<void(Word)> done) override;
    void serveReadReq(std::unique_ptr<ReadReq> msg) override;
    void applyCopyBatch(const PageCopyData& msg) override;
};

} // namespace proto
} // namespace plus

#endif // PLUS_PROTO_WRITE_UPDATE_HPP_
