#include "proto/write_invalidate.hpp"

#include <utility>

#include "common/panic.hpp"
#include "proto/coherence_manager.hpp"

namespace plus {
namespace proto {

std::size_t
WriteInvalidateProtocol::invalidWordsAt(FrameId frame) const
{
    const auto it = invalidHere_.find(frame);
    return it == invalidHere_.end() ? 0 : it->second.size();
}

std::size_t
WriteInvalidateProtocol::invalidEverywhere(FrameId frame) const
{
    const auto it = masterInvalid_.find(frame);
    return it == masterInvalid_.end() ? 0 : it->second.size();
}

bool
WriteInvalidateProtocol::allInvalidEverywhere(
    FrameId frame, const std::vector<WordWrite>& writes) const
{
    const auto it = masterInvalid_.find(frame);
    if (it == masterInvalid_.end()) {
        return false;
    }
    for (const WordWrite& w : writes) {
        if (it->second.count(w.wordOffset) == 0) {
            return false;
        }
    }
    return true;
}

void
WriteInvalidateProtocol::noteWriter(Vpn vpn, FrameId frame, NodeId writer)
{
    const auto [it, inserted] = lastWriter_.emplace(frame, writer);
    if (!inserted && it->second != writer) {
        const NodeId previous = it->second;
        it->second = writer;
        cm_.stats_.ownershipTransfers += 1;
        if (cm_.check_) {
            cm_.check_->onOwnershipTransfer(cm_.self_, vpn, previous,
                                            writer);
        }
    }
}

void
WriteInvalidateProtocol::ackOriginator(NodeId originator, WriteTag tag,
                                       bool from_rmw)
{
    if (originator == cm_.self_) {
        cm_.retireWrite(tag);
    } else {
        auto msg = std::make_unique<WriteAck>();
        msg->tag = tag;
        msg->fromRmw = from_rmw;
        cm_.send(originator, std::move(msg), WriteAck::kBytes);
    }
}

void
WriteInvalidateProtocol::launchChain(Vpn vpn, FrameId frame,
                                     std::vector<WordWrite> writes,
                                     NodeId originator, WriteTag tag,
                                     bool from_rmw, bool need_ack)
{
    const check::ChainId chain = cm_.nextChainId();
    if (cm_.check_) {
        cm_.check_->onChainApplied(chain, PhysPage{cm_.self_, frame}, vpn,
                                   writes.front().wordOffset,
                                   static_cast<unsigned>(writes.size()),
                                   originator, tag, /*tracked=*/need_ack,
                                   /*at_master=*/true);
    }
    if (cm_.deps_.tables->nextCopy(frame)) {
        PendingChain pc;
        pc.frame = frame;
        pc.vpn = vpn;
        pc.words.reserve(writes.size());
        for (const WordWrite& w : writes) {
            pc.words.push_back(w.wordOffset);
        }
        const auto git = clearGen_.find(frame);
        pc.clearGenAtLaunch = git == clearGen_.end() ? 0 : git->second;
        pc.originator = originator;
        pc.tag = tag;
        pc.fromRmw = from_rmw;
        pc.needAck = need_ack;
        pendingChains_.emplace(chain, std::move(pc));
    }
    cm_.continueChain(vpn, chain, frame, std::move(writes), originator, tag,
                      from_rmw, need_ack, /*invalidate=*/true);
}

void
WriteInvalidateProtocol::writeAtMaster(Vpn vpn, FrameId frame,
                                       Addr word_offset, Word value,
                                       NodeId originator, WriteTag tag)
{
    cm_.applyLocal(frame, word_offset, value);
    noteWriter(vpn, frame, originator);
    std::vector<WordWrite> writes{WordWrite{word_offset, value}};
    if (cm_.deps_.tables->nextCopy(frame) &&
        allInvalidEverywhere(frame, writes)) {
        // Every sharer already dropped this word: the write is complete
        // at the master with no chain at all — the invalidate payoff.
        ackOriginator(originator, tag, /*from_rmw=*/false);
        return;
    }
    launchChain(vpn, frame, std::move(writes), originator, tag,
                /*from_rmw=*/false, /*need_ack=*/true);
}

void
WriteInvalidateProtocol::propagateRmwEffects(Vpn vpn, FrameId frame,
                                             std::vector<WordWrite> writes,
                                             NodeId originator,
                                             WriteTag write_tag, bool track)
{
    if (!writes.empty()) {
        noteWriter(vpn, frame, originator);
        if (cm_.deps_.tables->nextCopy(frame) &&
            allInvalidEverywhere(frame, writes)) {
            if (track) {
                ackOriginator(originator, write_tag, /*from_rmw=*/true);
            }
            return;
        }
        launchChain(vpn, frame, std::move(writes), originator, write_tag,
                    /*from_rmw=*/true, /*need_ack=*/track);
    } else if (track) {
        // Nothing to propagate: retire the tracked pseudo-write now.
        ackOriginator(originator, write_tag, /*from_rmw=*/true);
    }
}

void
WriteInvalidateProtocol::chainStop(std::unique_ptr<UpdateReq> msg)
{
    const FrameId frame = msg->target.frame;
    auto& invalid = invalidHere_[frame];
    for (const WordWrite& w : msg->writes) {
        invalid.insert(w.wordOffset);
        cm_.stats_.invalidations += 1;
        if (cm_.check_) {
            // Before onChainApplied: the checker requires the shadow
            // invalidation to precede the chain stop at a sharer.
            cm_.check_->onWordInvalidated(cm_.self_, msg->vpn,
                                          w.wordOffset);
        }
    }
    invGen_[frame] += 1;
    if (cm_.check_) {
        cm_.check_->onChainApplied(
            msg->chainId, msg->target, msg->vpn,
            msg->writes.empty() ? 0 : msg->writes.front().wordOffset,
            static_cast<unsigned>(msg->writes.size()), msg->originator,
            msg->tag, /*tracked=*/msg->needAck, /*at_master=*/false);
    }
    cm_.continueChain(msg->vpn, msg->chainId, frame, std::move(msg->writes),
                      msg->originator, msg->tag, msg->fromRmw, msg->needAck,
                      /*invalidate=*/true);
}

void
WriteInvalidateProtocol::chainAckAtMaster(std::uint64_t chain_id)
{
    const auto it = pendingChains_.find(chain_id);
    PLUS_ASSERT(it != pendingChains_.end(),
                "chain-routed ack for an unknown invalidation chain");
    const PendingChain pc = std::move(it->second);
    pendingChains_.erase(it);
    const auto git = clearGen_.find(pc.frame);
    const std::uint64_t gen = git == clearGen_.end() ? 0 : git->second;
    if (gen == pc.clearGenAtLaunch) {
        // No re-fetch was served since launch, so every sharer copy
        // still holds these words invalid: commit them, letting later
        // writes skip the chain.
        auto& committed = masterInvalid_[pc.frame];
        for (const Addr off : pc.words) {
            committed.insert(off);
        }
    }
    if (pc.needAck) {
        ackOriginator(pc.originator, pc.tag, pc.fromRmw);
    }
}

void
WriteInvalidateProtocol::serveLocalRead(Vpn vpn, Addr word_offset,
                                        FrameId frame,
                                        std::function<void(Word)> done)
{
    const PhysPage master = cm_.deps_.tables->master(frame);
    if (master.node != cm_.self_) {
        const auto it = invalidHere_.find(frame);
        if (it != invalidHere_.end() &&
            it->second.count(word_offset) != 0) {
            refetchWord(vpn, word_offset, frame, master, std::move(done));
            return;
        }
    }
    cm_.stats_.localReads += 1;
    if (cm_.check_) {
        cm_.check_->onLocalValueServed(cm_.self_, vpn, word_offset);
    }
    done(cm_.deps_.memory->read(frame, word_offset));
}

void
WriteInvalidateProtocol::serveNackedLocalRead(Vpn vpn, Addr word_offset,
                                              FrameId frame,
                                              std::function<void(Word)> done)
{
    const PhysPage master = cm_.deps_.tables->master(frame);
    if (master.node != cm_.self_) {
        const auto it = invalidHere_.find(frame);
        if (it != invalidHere_.end() &&
            it->second.count(word_offset) != 0) {
            refetchWord(vpn, word_offset, frame, master, std::move(done));
            return;
        }
    }
    if (cm_.check_) {
        cm_.check_->onLocalValueServed(cm_.self_, vpn, word_offset);
    }
    done(cm_.deps_.memory->read(frame, word_offset));
}

void
WriteInvalidateProtocol::refetchWord(Vpn vpn, Addr word_offset,
                                     FrameId frame, PhysPage master,
                                     std::function<void(Word)> done)
{
    cm_.stats_.remoteReads += 1;
    cm_.stats_.refetches += 1;
    if (cm_.deps_.refCounters) {
        cm_.deps_.refCounters->recordRemoteRef(vpn);
    }
    const ReadTag tag = cm_.nextReadTag_++;
    const std::uint64_t gen = invGen_[frame];
    cm_.readWaiters_.emplace(
        tag, [this, vpn, word_offset, frame, gen,
              done = std::move(done)](Word value) mutable {
            // Revalidate the copy's word only if nothing invalidated the
            // copy (or recycled the frame) while the re-fetch was in
            // flight; the value handed to the reader is correct as of
            // the master's serialization either way.
            const auto git = invGen_.find(frame);
            if (git != invGen_.end() && git->second == gen &&
                cm_.deps_.memory->allocated(frame)) {
                cm_.applyLocal(frame, word_offset, value);
                const auto iit = invalidHere_.find(frame);
                if (iit != invalidHere_.end()) {
                    iit->second.erase(word_offset);
                }
                if (cm_.check_) {
                    cm_.check_->onWordRevalidated(cm_.self_, vpn,
                                                  word_offset);
                }
            }
            done(value);
        });
    auto msg = std::make_unique<ReadReq>();
    msg->target = PhysAddr{master, word_offset};
    msg->vpn = vpn;
    msg->originator = cm_.self_;
    msg->tag = tag;
    msg->refetch = true;
    cm_.send(master.node, std::move(msg), ReadReq::kBytes);
}

void
WriteInvalidateProtocol::serveReadReq(std::unique_ptr<ReadReq> msg)
{
    const FrameId frame = msg->target.page.frame;
    const Addr off = msg->target.wordOffset;
    const PhysPage master = cm_.deps_.tables->master(frame);
    if (master.node == cm_.self_) {
        if (msg->refetch) {
            // The sharer is revalidating this word; it is no longer
            // invalid everywhere, so later writes must chain again.
            const auto it = masterInvalid_.find(frame);
            if (it != masterInvalid_.end() && it->second.erase(off) > 0) {
                clearGen_[frame] += 1;
            }
        }
        auto resp = std::make_unique<ReadResp>();
        resp->tag = msg->tag;
        resp->value = cm_.deps_.memory->read(frame, off);
        cm_.send(msg->originator, std::move(resp), ReadResp::kBytes);
        return;
    }
    const auto it = invalidHere_.find(frame);
    if (it != invalidHere_.end() && it->second.count(off) != 0) {
        // This copy's word is stale: retarget the request to the master.
        msg->target = PhysAddr{master, off};
        cm_.send(master.node, std::move(msg), ReadReq::kBytes);
        return;
    }
    if (cm_.check_) {
        cm_.check_->onLocalValueServed(cm_.self_, msg->vpn, off);
    }
    auto resp = std::make_unique<ReadResp>();
    resp->tag = msg->tag;
    resp->value = cm_.deps_.memory->read(frame, off);
    cm_.send(msg->originator, std::move(resp), ReadResp::kBytes);
}

void
WriteInvalidateProtocol::fillBatchValidity(FrameId src_frame,
                                           Addr base_offset, Addr count,
                                           PageCopyData& msg)
{
    msg.validMask.assign((count + 63) / 64, 0);
    const auto mit = masterInvalid_.find(src_frame);
    const auto iit = invalidHere_.find(src_frame);
    for (Addr i = 0; i < count; ++i) {
        const Addr off = base_offset + i;
        const bool invalid =
            (mit != masterInvalid_.end() &&
             mit->second.count(off) != 0) ||
            (iit != invalidHere_.end() && iit->second.count(off) != 0);
        if (!invalid) {
            msg.validMask[i >> 6] |= std::uint64_t{1} << (i & 63);
        }
    }
}

void
WriteInvalidateProtocol::applyCopyBatch(const PageCopyData& msg)
{
    const FrameId frame = msg.target.frame;
    const auto valid = [&msg](std::size_t i) {
        return msg.validMask.empty() ||
               ((msg.validMask[i >> 6] >> (i & 63)) & 1) != 0;
    };
    bool invalidated = false;
    for (std::size_t i = 0; i < msg.words.size(); ++i) {
        const Addr off = msg.baseOffset + i;
        if (valid(i)) {
            cm_.applyLocal(frame, off, msg.words[i]);
            const auto it = invalidHere_.find(frame);
            if (it != invalidHere_.end()) {
                it->second.erase(off);
            }
            if (cm_.check_) {
                // Also reconciles shadow state left over from an earlier
                // copy of the same page this node held and dropped.
                cm_.check_->onWordRevalidated(cm_.self_, msg.vpn, off);
            }
        } else {
            // The source holds this word invalid-everywhere; the new
            // copy must not serve it before a re-fetch.
            invalidHere_[frame].insert(off);
            invalidated = true;
            if (cm_.check_) {
                cm_.check_->onWordInvalidated(cm_.self_, msg.vpn, off);
            }
        }
    }
    if (invalidated) {
        invGen_[frame] += 1;
    }
}

void
WriteInvalidateProtocol::onFrameDropped(FrameId frame)
{
    invalidHere_.erase(frame);
    // Bumped, never erased: an in-flight re-fetch waiter must not
    // revalidate a word of a recycled frame.
    invGen_[frame] += 1;
    masterInvalid_.erase(frame);
    clearGen_[frame] += 1;
    lastWriter_.erase(frame);
}

void
WriteInvalidateProtocol::onMasterPromoted(FrameId frame, Vpn vpn)
{
    // The machine synced the full page from the old master before the
    // promotion, so every word of this copy is valid again.
    const auto it = invalidHere_.find(frame);
    if (it != invalidHere_.end()) {
        if (cm_.check_) {
            for (const Addr off : it->second) {
                cm_.check_->onWordRevalidated(cm_.self_, vpn, off);
            }
        }
        invalidHere_.erase(it);
    }
    invGen_[frame] += 1;
    // Start with no invalid-everywhere knowledge: conservative, and the
    // old master's set described the *old* sharer topology anyway.
    masterInvalid_.erase(frame);
    clearGen_[frame] += 1;
}

void
WriteInvalidateProtocol::onMasterDemoted(FrameId frame)
{
    masterInvalid_.erase(frame);
    clearGen_[frame] += 1;
    lastWriter_.erase(frame);
}

} // namespace proto
} // namespace plus
