/**
 * @file
 * The coherence-protocol strategy interface.
 *
 * proto::CoherenceManager owns the node-local plumbing every protocol
 * shares — the single-server occupancy model, message dispatch, the
 * pending-writes cache and fences, nack/retry, recovery metadata and
 * statistics. What *policy* runs at each protocol decision point lives
 * behind this interface:
 *
 *  - what a write does when it reaches the master copy;
 *  - how an interlocked operation's memory effects propagate;
 *  - what a chain stop does at a non-master copy (apply vs invalidate);
 *  - how reads are served from a local copy and for remote requestors;
 *  - what state a freshly replicated copy starts with.
 *
 * Implementations are friends of the manager and drive its private
 * helpers (applyLocal, send, continueChain, retireWrite, ...) directly:
 * the split is for clarity and substitutability, not isolation. All
 * protocol entry points run inside the manager's enqueued service
 * events, so occupancy accounting stays in the manager and a virtual
 * dispatch never costs simulated time.
 *
 * Concrete protocols:
 *  - WriteUpdateProtocol (write_update.hpp): the paper's non-demand
 *    write-update protocol, byte-identical to the pre-refactor manager.
 *  - WriteInvalidateProtocol (write_invalidate.hpp): an MSI-flavoured
 *    counterpart for protocol shootouts (docs/PROTOCOLS.md).
 */

#ifndef PLUS_PROTO_PROTOCOL_HPP_
#define PLUS_PROTO_PROTOCOL_HPP_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "proto/messages.hpp"

namespace plus {
namespace proto {

class CoherenceManager;

/** Strategy for the protocol-specific half of the coherence manager. */
class Protocol
{
  public:
    explicit Protocol(CoherenceManager& cm) : cm_(cm) {}
    virtual ~Protocol() = default;

    Protocol(const Protocol&) = delete;
    Protocol& operator=(const Protocol&) = delete;

    /** Which protocol this is (never CoherenceProtocol::Env). */
    virtual CoherenceProtocol kind() const = 0;

    // --- write path -------------------------------------------------------

    /**
     * A write arrived at the master copy (local dispatch or WriteReq).
     * The protocol applies it, informs the checker and launches whatever
     * propagation it needs; the originator's pending entry retires when
     * the protocol acknowledges it.
     */
    virtual void writeAtMaster(Vpn vpn, FrameId frame, Addr word_offset,
                               Word value, NodeId originator,
                               WriteTag tag) = 0;

    /**
     * An interlocked operation executed at the master (its writes are
     * already applied there and the old value answered); propagate the
     * effects. @p track mirrors UpdateReq::needAck: the originator holds
     * a pending-writes entry awaiting the chain.
     */
    virtual void propagateRmwEffects(Vpn vpn, FrameId frame,
                                     std::vector<WordWrite> writes,
                                     NodeId originator, WriteTag write_tag,
                                     bool track) = 0;

    /**
     * A chain stopped at this node's (non-master) copy: apply or
     * invalidate per protocol, then continue down the copy-list.
     */
    virtual void chainStop(std::unique_ptr<UpdateReq> msg) = 0;

    /**
     * A chain-routed WriteAck (WriteAck::chainId != 0) reached this
     * node as the page's master. Only write-invalidate routes acks this
     * way; the default panics.
     */
    virtual void chainAckAtMaster(std::uint64_t chain_id);

    // --- read path --------------------------------------------------------

    /**
     * Serve a processor read of @p frame held by this node (conflicting
     * pending writes already drained). Must eventually call @p done.
     */
    virtual void serveLocalRead(Vpn vpn, Addr word_offset, FrameId frame,
                                std::function<void(Word)> done) = 0;

    /**
     * A nacked remote read re-translated to a local copy; serve it.
     * Default: plain local-memory read (the pre-refactor behaviour —
     * notably without the localReads counter, preserving seed stats).
     */
    virtual void serveNackedLocalRead(Vpn vpn, Addr word_offset,
                                      FrameId frame,
                                      std::function<void(Word)> done);

    /**
     * Serve a remote ReadReq addressed to an allocated frame this node
     * holds (the unallocated → Nack case is handled by the manager).
     */
    virtual void serveReadReq(std::unique_ptr<ReadReq> msg) = 0;

    // --- copy creation and teardown ---------------------------------------

    /**
     * A page-copy batch of @p count words starting at @p base_offset is
     * about to leave @p src_frame: record per-word validity in
     * @p msg.validMask if the protocol needs it. Default: leave the mask
     * empty (all words valid, write-update wire format unchanged).
     */
    virtual void fillBatchValidity(FrameId src_frame, Addr base_offset,
                                   Addr count, PageCopyData& msg);

    /** A page-copy batch arrived for this node's new copy; install it. */
    virtual void applyCopyBatch(const PageCopyData& msg) = 0;

    /** This node's copy in @p frame is being flushed; drop its state. */
    virtual void onFrameDropped(FrameId frame);

    /**
     * OS (quiesced) promotion made this node's copy in @p frame the
     * master / demoted it to an ordinary copy.
     */
    virtual void onMasterPromoted(FrameId frame, Vpn vpn);
    virtual void onMasterDemoted(FrameId frame);

  protected:
    CoherenceManager& cm_;
};

/** Instantiate the protocol strategy for a resolved config choice. */
std::unique_ptr<Protocol> makeProtocol(CoherenceProtocol kind,
                                       CoherenceManager& cm);

} // namespace proto
} // namespace plus

#endif // PLUS_PROTO_PROTOCOL_HPP_
