/**
 * @file
 * The coherence manager: the per-node hardware module that implements
 * the coherence protocol and the delayed interlocked operations
 * (Sections 2.3 and 3.1).
 *
 * The manager is modelled as a single server: each request or message it
 * handles occupies it for a cost-model-defined number of cycles, and
 * concurrent work queues behind a busy-until horizon, so contention at a
 * hot manager (e.g. the master of a contended lock) is visible in the
 * results exactly as the paper's evaluation assumes.
 *
 * The manager owns the protocol-independent plumbing: occupancy,
 * message dispatch, the pending-writes cache and fences, nack/retry,
 * page-copy framing, recovery metadata and statistics. What a write
 * does at the master, what a chain stop does at a copy, and how reads
 * are served is the installed proto::Protocol strategy's business
 * (protocol.hpp) — PLUS's write-update protocol by default.
 *
 * Invariants maintained by the plumbing regardless of protocol:
 *  - chains walk the ordered copy-list from the master, and the tail
 *    acknowledges so the originator can retire its pending entry;
 *  - a processor's read of a location with an in-flight write by the
 *    same processor blocks until the acknowledgement arrives;
 *  - a fence completes only when the pending-writes cache is empty.
 */

#ifndef PLUS_PROTO_COHERENCE_MANAGER_HPP_
#define PLUS_PROTO_COHERENCE_MANAGER_HPP_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/hooks.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "mem/coherence_tables.hpp"
#include "mem/local_memory.hpp"
#include "mem/page_table.hpp"
#include "mem/ref_counters.hpp"
#include "proto/delayed_ops.hpp"
#include "proto/messages.hpp"
#include "proto/pending_writes.hpp"
#include "sim/event.hpp"

namespace plus {

namespace sim {
class Engine;
} // namespace sim

namespace net {
class Network;
} // namespace net

namespace proto {

class Protocol;

/** Per-manager statistics; the bench harnesses aggregate these. */
struct CmStats {
    /** Reads served from local memory / requiring a ReadReq. */
    std::uint64_t localReads = 0;
    std::uint64_t remoteReads = 0;
    /** Writes completing with no network traffic / with some. */
    std::uint64_t localWrites = 0;
    std::uint64_t remoteWrites = 0;
    /** Interlocked ops executing entirely locally / over the network. */
    std::uint64_t localRmws = 0;
    std::uint64_t remoteRmws = 0;
    /** Messages sent, by type. */
    std::array<std::uint64_t, static_cast<std::size_t>(MsgType::NumTypes)>
        sent{};
    /** Nacks received and requests retried after re-translation. */
    std::uint64_t retries = 0;
    /** In-flight ops crash recovery aborted (replayed or completed lost). */
    std::uint64_t recoveryAborts = 0;
    /** Stale responses swallowed after a recovery replay raced them. */
    std::uint64_t staleAcks = 0;
    /** Write-invalidate only: words invalidated at sharer copies. */
    std::uint64_t invalidations = 0;
    /** Write-invalidate only: reads re-fetching an invalidated word. */
    std::uint64_t refetches = 0;
    /** Write-invalidate only: the master saw the writing node change. */
    std::uint64_t ownershipTransfers = 0;
    /** Most retries any single request needed before completing. */
    std::uint64_t nackRetryHighWater = 0;
    /** Cycles this manager was busy serving work. */
    Cycles busyCycles = 0;

    std::uint64_t sentOf(MsgType t) const
    {
        return sent[static_cast<std::size_t>(t)];
    }
    std::uint64_t totalSent() const;
};

/**
 * One node's coherence manager. All processor-side entry points take
 * continuations: the manager never blocks, it calls back when the
 * operation reaches the appropriate milestone.
 */
class CoherenceManager
{
  public:
    /** Services the manager needs from its node and the OS. */
    struct Deps {
        sim::Engine* engine = nullptr;
        net::Network* network = nullptr;
        mem::LocalMemory* memory = nullptr;
        mem::CoherenceTables* tables = nullptr;
        mem::RefCounters* refCounters = nullptr; ///< optional
    };

    /**
     * @p protocol selects the coherence-protocol strategy; it must be a
     * resolved choice (never CoherenceProtocol::Env — run
     * MachineConfig::validate, or pass MachineConfig::resolvedProtocol).
     */
    CoherenceManager(NodeId self, const CostModel& cost, Deps deps,
                     CoherenceProtocol protocol =
                         CoherenceProtocol::WriteUpdate);
    ~CoherenceManager();

    NodeId nodeId() const { return self_; }

    /** The installed coherence-protocol strategy. */
    Protocol& protocol() { return *protocol_; }
    const Protocol& protocol() const { return *protocol_; }

    // --- OS hooks ---------------------------------------------------------

    /**
     * Translation service used to retry nacked requests: maps a virtual
     * page to the node's current physical copy (performing a lazy
     * page-table fill if needed).
     */
    using Translator = std::function<PhysPage(Vpn)>;
    void setTranslator(Translator t) { translate_ = std::move(t); }

    /**
     * Node-bus snoop: invoked for every word the manager writes into
     * local memory so the processor cache can stay coherent
     * (write-update snooping, Section 2.3).
     */
    using SnoopHook = std::function<void(FrameId, Addr, Word)>;
    void setSnoopHook(SnoopHook hook) { snoop_ = std::move(hook); }

    /** Completion callback for page copies this node *initiated*. */
    using PageCopyDoneHandler = std::function<void(std::uint32_t copyId)>;
    void setPageCopyDoneHandler(PageCopyDoneHandler h)
    {
        pageCopyDone_ = std::move(h);
    }

    /**
     * Mirror protocol milestones (and the pending-writes cache) into the
     * plus::check subsystem. Null (the default) disables instrumentation.
     */
    void
    setCheckObserver(check::Observer* check)
    {
        check_ = check;
        pendingWrites_.setCheckObserver(check, self_);
    }

    /**
     * Provide the event-trace renderer appended to the panic raised
     * when a request exhausts CostModel::nackRetryLimit; wired by
     * core::Machine.
     */
    void
    setTraceDumper(std::function<std::string()> dumper)
    {
        traceDumper_ = std::move(dumper);
    }

    // --- processor-side interface ------------------------------------------

    /**
     * Read one word. @p phys is the node's current translation of
     * (vpn, offset). Local reads only wait for conflicting pending
     * writes; remote reads issue a ReadReq. @p done receives the value.
     */
    void procRead(Vpn vpn, Addr word_offset, PhysAddr phys,
                  std::function<void(Word)> done);

    /**
     * Issue a write. @p accepted fires once the write occupies a
     * pending-writes entry (the processor may then continue); the write
     * completes asynchronously when the copy-list acknowledges.
     */
    void procWrite(Vpn vpn, Addr word_offset, PhysAddr phys, Word value,
                   std::function<void()> accepted);

    /**
     * Issue a delayed interlocked operation. @p issued fires with the
     * delayed-op handle once a cache slot is allocated and the request
     * is on its way (the processor may then continue).
     */
    void procIssueRmw(RmwOp op, Vpn vpn, Addr word_offset, PhysAddr phys,
                      Word operand,
                      std::function<void(DelayedOpHandle)> issued);

    /**
     * Degraded-mode interlocked issue against a *lost* page (every
     * copy died with a crashed node): a cache slot is still allocated,
     * so the issue/verify protocol is unchanged, but the operation
     * completes locally and immediately with kPageLostValue.
     */
    void procIssueLostRmw(RmwOp op,
                          std::function<void(DelayedOpHandle)> issued);

    /** Non-blocking poll of a delayed operation's status. */
    bool rmwReady(DelayedOpHandle handle) const;

    /**
     * Read a delayed operation's result: @p done fires with the value as
     * soon as it is available (immediately if it already is) and the
     * cache slot is freed.
     */
    void procVerify(DelayedOpHandle handle, std::function<void(Word)> done);

    /** Fence: @p done fires when the pending-writes cache is empty. */
    void procFence(std::function<void()> done);

    /**
     * The paper's write fence: "causes the coherence manager to block
     * any subsequent write by the processor until all its earlier ones
     * have completed" — the processor itself continues immediately and
     * may keep reading/computing; only later writes and interlocked
     * operations are held behind the drain.
     */
    void procWriteFence();

    /** True if a write by this node to the location is still in flight. */
    bool
    writePending(Vpn vpn, Addr word_offset) const
    {
        return pendingWrites_.pendingOn(vpn, word_offset);
    }

    // --- background page replication ----------------------------------------

    /**
     * Start copying the page in local @p src_frame to @p dst (this node
     * must be the new copy's predecessor in the copy-list, and the
     * copy-list and coherence tables must already include @p dst, so
     * concurrent writes flow through it while the copy proceeds).
     * @p vpn attributes the copy's batches to the page for per-word
     * validity tracking (write-invalidate) and checker attribution.
     */
    void startPageCopy(FrameId src_frame, PhysPage dst,
                       std::uint32_t copy_id, Vpn vpn = 0);

    /**
     * Send a FrameFlush to a copy this node just spliced out of the
     * copy-list (this node must be the deleted copy's former
     * predecessor; FIFO ordering guarantees every update this node
     * forwarded to the dying copy is applied first).
     */
    void osFlushRemoteFrame(PhysPage victim);

    // --- crash recovery ------------------------------------------------------

    /**
     * Arm recovery bookkeeping. While armed the manager records, for
     * every in-flight read, write and interlocked operation, enough
     * metadata (address, value, last destination) to abort and replay
     * it after a fail-stop crash — and tolerates the stale
     * acknowledgements such a replay can race against. Costs three map
     * updates per remote operation; fault-free configurations leave it
     * off and pay nothing.
     */
    void setRecoveryArmed(bool armed) { recoveryArmed_ = armed; }

    /** What recoverAfterCrash did at this manager, for recovery.* metrics. */
    struct RecoveryOutcome {
        unsigned abortedReads = 0;
        unsigned abortedWrites = 0;
        unsigned abortedRmws = 0;
        /** Operations completed with kPageLostValue (their page died). */
        unsigned lostCompletions = 0;
    };

    /**
     * Machine-lane entry point run by proto::RecoveryManager once
     * @p dead is detected down and the directory is repaired: abort
     * every in-flight operation that was addressed to the dead node or
     * rides a page whose copy-list contained it (@p affected, sorted
     * ascending), replay those against the repaired placement under
     * their original tags, and complete operations on @p lost pages
     * (sorted ascending) with the PageLost sentinel. Idempotent per
     * crash: aborted tags leave the metadata maps, so a second walk
     * finds nothing to do.
     */
    RecoveryOutcome recoverAfterCrash(NodeId dead,
                                      const std::vector<Vpn>& affected,
                                      const std::vector<Vpn>& lost);

    // --- network entry -------------------------------------------------------

    /** Delivery handler registered with the network. */
    void onPacket(net::Packet packet);

    const CmStats& stats() const { return stats_; }
    const PendingWrites& pendingWrites() const { return pendingWrites_; }
    const DelayedOpCache& delayedOps() const { return delayedOps_; }

  private:
    // The protocol strategies drive the private helpers directly.
    friend class Protocol;
    friend class WriteUpdateProtocol;
    friend class WriteInvalidateProtocol;

    /**
     * Serialize @p work behind the manager's busy-until horizon. Takes
     * a sim::Event so the continuation rides inline in the engine's
     * event record — handlers move message ownership straight into the
     * capture instead of copying the message struct.
     */
    void enqueue(Cycles occupancy, sim::Event work);

    /** Send a protocol message, sized and counted. */
    void send(NodeId dst, std::unique_ptr<ProtoMsg> msg, unsigned bytes);

    /** Apply one word write to local memory and snoop the node bus. */
    void applyLocal(FrameId frame, Addr word_offset, Word value);

    // Write path.
    void dispatchWrite(Vpn vpn, Addr word_offset, PhysAddr phys, Word value,
                       WriteTag tag);
    /**
     * Forward effects down the list or, at the tail, acknowledge: the
     * originator directly (update chains), or the master first when
     * @p invalidate (which commits the chain, then relays the ack).
     */
    void continueChain(Vpn vpn, check::ChainId chain, FrameId frame,
                       std::vector<WordWrite> writes, NodeId originator,
                       WriteTag tag, bool from_rmw, bool need_ack,
                       bool invalidate);
    void retireWrite(WriteTag tag);

    /** Chain identity for a write this master starts propagating. */
    check::ChainId
    nextChainId()
    {
        return (static_cast<check::ChainId>(self_) << 32) | ++chainCounter_;
    }

    // RMW path.
    void issueRmwUngated(RmwOp op, Vpn vpn, Addr word_offset,
                         PhysAddr phys, Word operand,
                         std::function<void(DelayedOpHandle)> issued);
    void dispatchRmw(RmwOp op, Vpn vpn, Addr word_offset, PhysAddr phys,
                     Word operand, DelayedOpHandle handle, WriteTag tag,
                     bool track);
    void rmwAtMaster(RmwOp op, Vpn vpn, FrameId frame, Addr word_offset,
                     Word operand, NodeId originator, OpTag op_tag,
                     WriteTag write_tag, bool track);
    void completeRmw(OpTag tag, Word old_value);

    // Message handlers. Handlers that defer work behind the manager's
    // occupancy own their message and move it into the continuation;
    // the synchronous responses only borrow theirs.
    void onReadReq(std::unique_ptr<ReadReq> msg);
    void onReadResp(const ReadResp& msg);
    void onWriteReq(std::unique_ptr<WriteReq> msg);
    void onUpdateReq(std::unique_ptr<UpdateReq> msg);
    void onWriteAck(const WriteAck& msg);
    void onRmwReq(std::unique_ptr<RmwReq> msg);
    void onRmwResp(const RmwResp& msg);
    void onNack(std::unique_ptr<Nack> msg);
    /** True if the nacked operation is still in flight (recovery armed). */
    bool nackTargetLive(const Nack& nack) const;
    /** Complete a nacked operation on a lost page with the sentinel. */
    void completeNackedAsLost(const Nack& nack);
    void onPageCopyData(std::unique_ptr<PageCopyData> msg, NodeId src);
    void onPageCopyDone(const PageCopyDone& msg);
    void onFrameFlush(const FrameFlush& msg);

    void sendPageCopyBatch(FrameId src_frame, PhysPage dst,
                           std::uint32_t copy_id, Vpn vpn,
                           Addr next_offset);

    NodeId self_;
    CostModel cost_;
    Deps deps_;
    std::unique_ptr<Protocol> protocol_;

    PendingWrites pendingWrites_;
    DelayedOpCache delayedOps_;

    /**
     * Hold @p fn until no write fence is armed (immediately if none);
     * entry point for writes and interlocked issues.
     */
    void gateBehindFence(std::function<void()> fn);

    /** Blocked remote-read continuations, by tag. */
    std::unordered_map<ReadTag, std::function<void(Word)>> readWaiters_;
    ReadTag nextReadTag_ = 1;

    /**
     * Write-fence state: each procWriteFence() opens a group; writes
     * and interlocked issues append to the newest group and are
     * released, group by group, as the preceding group's writes drain.
     */
    std::deque<std::vector<std::function<void()>>> fenceGroups_;
    void armFenceDrain();
    void releaseFenceGroup();

    /** Local-read continuations use PendingWrites address waiters. */

    Cycles busyUntil_ = 0;

    /**
     * Retry bookkeeping key for one nacked request: kind + its tag
     * namespace (read/write/op tags are independent counters).
     */
    static std::uint64_t
    nackKey(NackedKind kind, std::uint32_t tag)
    {
        return ((static_cast<std::uint64_t>(kind) + 1) << 32) | tag;
    }

    /**
     * Count one more retry of the request and return the extra backoff
     * delay; panics past CostModel::nackRetryLimit. The first retry is
     * free of backoff so fault-free runs (where migration nacks a
     * request at most transiently) keep their exact seed timing.
     */
    Cycles noteNackRetry(NackedKind kind, std::uint32_t tag);

    /** Forget a request's retry count once it completes. */
    void
    clearNackRetries(NackedKind kind, std::uint32_t tag)
    {
        // Empty in fault-free steady state: one branch, no hashing.
        if (!nackRetries_.empty()) {
            nackRetries_.erase(nackKey(kind, tag));
        }
    }

    Translator translate_;
    SnoopHook snoop_;
    PageCopyDoneHandler pageCopyDone_;
    check::Observer* check_ = nullptr;
    std::function<std::string()> traceDumper_;
    std::unordered_map<std::uint64_t, unsigned> nackRetries_;
    std::uint32_t chainCounter_ = 0;

    // --- recovery metadata (populated only while recoveryArmed_) ----------
    //
    // One entry per in-flight operation, keyed by its tag and erased at
    // the operation's single completion point. recoverAfterCrash walks
    // these to find what to abort; the response handlers use presence
    // as the retire-once arbiter when an original response races a
    // replayed one. std::map, not unordered_map: the recovery walk
    // iterates, and its replay order must be the same on every backend.

    /** An outstanding remote read (ReadReq sent, response pending). */
    struct ReadMeta {
        Vpn vpn = 0;
        Addr wordOffset = 0;
        /** Node the request was last sent to. */
        NodeId dst = kInvalidNode;
    };

    /** An occupied pending-writes entry (plain write or tracked RMW). */
    struct WriteMeta {
        Vpn vpn = 0;
        Addr wordOffset = 0;
        Word value = 0;
        /** Master the write was last dispatched to (self_ if local). */
        NodeId dst = kInvalidNode;
        /**
         * Entry belongs to a tracked interlocked op: the RMW path owns
         * its replay, so the write walk must skip it.
         */
        bool fromRmw = false;
    };

    /** An outstanding delayed interlocked operation. */
    struct RmwMeta {
        RmwOp op = RmwOp::Xchng;
        Vpn vpn = 0;
        Addr wordOffset = 0;
        Word operand = 0;
        /** Master the request was last dispatched to (self_ if local). */
        NodeId dst = kInvalidNode;
        /** Paired pending-writes tag when tracked. */
        WriteTag writeTag = 0;
        bool track = false;
    };

    bool recoveryArmed_ = false;
    std::map<ReadTag, ReadMeta> readMeta_;
    std::map<WriteTag, WriteMeta> writeMeta_;
    std::map<OpTag, RmwMeta> rmwMeta_;
    /**
     * Pages recovery declared lost (every copy died). Nacked retries
     * against these complete with kPageLostValue instead of
     * re-translating: the directory entry no longer exists.
     */
    std::unordered_set<Vpn> lostVpns_;

    CmStats stats_;
};

} // namespace proto
} // namespace plus

#endif // PLUS_PROTO_COHERENCE_MANAGER_HPP_
