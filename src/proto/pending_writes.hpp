/**
 * @file
 * The pending-writes cache (Section 2.3): remembers the addresses of the
 * node's incomplete write operations. It is what makes PLUS's writes
 * non-blocking yet strongly ordered within one processor — a processor
 * can have several writes in flight (8 in the 1990 implementation), but
 * reading a location that is currently being written blocks until the
 * write completes, and a fence blocks until the cache is empty.
 */

#ifndef PLUS_PROTO_PENDING_WRITES_HPP_
#define PLUS_PROTO_PENDING_WRITES_HPP_

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "check/hooks.hpp"
#include "common/panic.hpp"
#include "common/types.hpp"

namespace plus {
namespace proto {

/** Fixed-capacity cache of in-flight writes, keyed by small tags. */
class PendingWrites
{
  public:
    using Tag = std::uint32_t;
    using Waiter = std::function<void()>;

    explicit PendingWrites(unsigned capacity) : capacity_(capacity)
    {
        PLUS_ASSERT(capacity_ > 0, "pending-writes cache needs capacity");
    }

    /** Mirror cache events into @p check (null to disable). */
    void
    setCheckObserver(check::PendingWritesObserver* check, NodeId self)
    {
        check_ = check;
        self_ = self;
    }

    unsigned capacity() const { return capacity_; }
    unsigned inFlight() const { return static_cast<unsigned>(map_.size()); }
    bool full() const { return inFlight() >= capacity_; }
    bool empty() const { return map_.empty(); }

    /**
     * Record a new in-flight write to (vpn, word offset).
     * @pre !full()
     * @return the tag the eventual acknowledgement must carry.
     */
    Tag
    insert(Vpn vpn, Addr word_offset)
    {
        PLUS_ASSERT(!full(), "pending-writes cache overflow");
        const Tag tag = nextTag_++;
        map_.emplace(tag, Key{vpn, word_offset});
        if (check_) {
            check_->onPendingInsert(self_, tag, vpn, word_offset);
        }
        return tag;
    }

    /** Complete the write with @p tag and wake any satisfied waiters. */
    void
    complete(Tag tag)
    {
        if (check_) {
            // Before the assert: a double retire must reach the checker so
            // the panic carries the event history.
            check_->onPendingComplete(self_, tag);
        }
        auto it = map_.find(tag);
        PLUS_ASSERT(it != map_.end(), "ack for unknown write tag ", tag);
        map_.erase(it);
        wake();
    }

    /** True if any in-flight write targets (vpn, word offset). */
    bool
    pendingOn(Vpn vpn, Addr word_offset) const
    {
        // pluslint: allow(R1) -- pure existence scan; every order gives
        // the same answer.
        for (const auto& [tag, key] : map_) {
            (void)tag;
            if (key.vpn == vpn && key.wordOffset == word_offset) {
                return true;
            }
        }
        return false;
    }

    /** Run @p fn once the cache is empty (immediately if it already is). */
    void
    whenEmpty(Waiter fn)
    {
        if (empty()) {
            fn();
        } else {
            emptyWaiters_.push_back(std::move(fn));
        }
    }

    /** Run @p fn once a slot is free (immediately if one already is). */
    void
    whenSlotFree(Waiter fn)
    {
        if (!full()) {
            fn();
        } else {
            slotWaiters_.push_back(std::move(fn));
        }
    }

    /** Run @p fn once no write to the location is in flight. */
    void
    whenAddrClear(Vpn vpn, Addr word_offset, Waiter fn)
    {
        if (!pendingOn(vpn, word_offset)) {
            fn();
        } else {
            addrWaiters_.push_back({Key{vpn, word_offset}, std::move(fn)});
        }
    }

    /** Peak simultaneous in-flight writes seen (diagnostics). */
    unsigned maxInFlight() const { return maxInFlight_; }

    /** Call after insert() to update the high-water mark. */
    void
    noteHighWater()
    {
        maxInFlight_ = std::max(maxInFlight_, inFlight());
    }

  private:
    struct Key {
        Vpn vpn;
        Addr wordOffset;
    };

    void
    wake()
    {
        if (!full()) {
            auto waiters = std::move(slotWaiters_);
            slotWaiters_.clear();
            for (auto& fn : waiters) {
                // A woken waiter may immediately refill the slot; respect
                // capacity by re-queueing the rest.
                if (!full()) {
                    fn();
                } else {
                    slotWaiters_.push_back(std::move(fn));
                }
            }
        }
        if (empty()) {
            auto waiters = std::move(emptyWaiters_);
            emptyWaiters_.clear();
            for (auto& fn : waiters) {
                fn();
            }
        }
        if (!addrWaiters_.empty()) {
            std::vector<AddrWaiter> keep;
            auto waiters = std::move(addrWaiters_);
            addrWaiters_.clear();
            for (auto& w : waiters) {
                if (pendingOn(w.key.vpn, w.key.wordOffset)) {
                    keep.push_back(std::move(w));
                } else {
                    w.fn();
                }
            }
            for (auto& w : keep) {
                addrWaiters_.push_back(std::move(w));
            }
        }
    }

    struct AddrWaiter {
        Key key;
        Waiter fn;
    };

    unsigned capacity_;
    check::PendingWritesObserver* check_ = nullptr;
    NodeId self_ = kInvalidNode;
    Tag nextTag_ = 1;
    std::unordered_map<Tag, Key> map_;
    std::vector<Waiter> emptyWaiters_;
    std::vector<Waiter> slotWaiters_;
    std::vector<AddrWaiter> addrWaiters_;
    unsigned maxInFlight_ = 0;
};

} // namespace proto
} // namespace plus

#endif // PLUS_PROTO_PENDING_WRITES_HPP_
