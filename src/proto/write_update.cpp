#include "proto/write_update.hpp"

#include <utility>

#include "proto/coherence_manager.hpp"

namespace plus {
namespace proto {

void
WriteUpdateProtocol::writeAtMaster(Vpn vpn, FrameId frame, Addr word_offset,
                                   Word value, NodeId originator,
                                   WriteTag tag)
{
    cm_.applyLocal(frame, word_offset, value);
    const check::ChainId chain = cm_.nextChainId();
    if (cm_.check_) {
        cm_.check_->onChainApplied(chain, PhysPage{cm_.self_, frame}, vpn,
                                   word_offset, 1, originator, tag,
                                   /*tracked=*/true, /*at_master=*/true);
    }
    cm_.continueChain(vpn, chain, frame, {WordWrite{word_offset, value}},
                      originator, tag, /*from_rmw=*/false,
                      /*need_ack=*/true, /*invalidate=*/false);
}

void
WriteUpdateProtocol::propagateRmwEffects(Vpn vpn, FrameId frame,
                                         std::vector<WordWrite> writes,
                                         NodeId originator,
                                         WriteTag write_tag, bool track)
{
    if (!writes.empty()) {
        const check::ChainId chain = cm_.nextChainId();
        if (cm_.check_) {
            cm_.check_->onChainApplied(chain, PhysPage{cm_.self_, frame},
                                       vpn, writes.front().wordOffset,
                                       static_cast<unsigned>(writes.size()),
                                       originator, write_tag,
                                       /*tracked=*/track,
                                       /*at_master=*/true);
        }
        cm_.continueChain(vpn, chain, frame, std::move(writes), originator,
                          write_tag, /*from_rmw=*/true, /*need_ack=*/track,
                          /*invalidate=*/false);
    } else if (track) {
        // Nothing to propagate: retire the tracked pseudo-write now.
        if (originator == cm_.self_) {
            cm_.retireWrite(write_tag);
        } else {
            auto msg = std::make_unique<WriteAck>();
            msg->tag = write_tag;
            msg->fromRmw = true;
            cm_.send(originator, std::move(msg), WriteAck::kBytes);
        }
    }
}

void
WriteUpdateProtocol::chainStop(std::unique_ptr<UpdateReq> msg)
{
    const FrameId frame = msg->target.frame;
    for (const WordWrite& w : msg->writes) {
        cm_.applyLocal(frame, w.wordOffset, w.value);
    }
    if (cm_.check_) {
        cm_.check_->onChainApplied(
            msg->chainId, msg->target, msg->vpn,
            msg->writes.empty() ? 0 : msg->writes.front().wordOffset,
            static_cast<unsigned>(msg->writes.size()), msg->originator,
            msg->tag, /*tracked=*/msg->needAck, /*at_master=*/false);
    }
    cm_.continueChain(msg->vpn, msg->chainId, frame,
                      std::move(msg->writes), msg->originator, msg->tag,
                      msg->fromRmw, msg->needAck, /*invalidate=*/false);
}

void
WriteUpdateProtocol::serveLocalRead(Vpn vpn, Addr word_offset, FrameId frame,
                                    std::function<void(Word)> done)
{
    (void)vpn;
    cm_.stats_.localReads += 1;
    done(cm_.deps_.memory->read(frame, word_offset));
}

void
WriteUpdateProtocol::serveReadReq(std::unique_ptr<ReadReq> msg)
{
    const FrameId frame = msg->target.page.frame;
    auto resp = std::make_unique<ReadResp>();
    resp->tag = msg->tag;
    resp->value = cm_.deps_.memory->read(frame, msg->target.wordOffset);
    cm_.send(msg->originator, std::move(resp), ReadResp::kBytes);
}

void
WriteUpdateProtocol::applyCopyBatch(const PageCopyData& msg)
{
    const FrameId frame = msg.target.frame;
    for (std::size_t i = 0; i < msg.words.size(); ++i) {
        cm_.applyLocal(frame, msg.baseOffset + i, msg.words[i]);
    }
}

} // namespace proto
} // namespace plus
