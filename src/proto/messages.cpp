#include "proto/messages.hpp"

namespace plus {
namespace proto {

const char*
toString(MsgType type)
{
    switch (type) {
      case MsgType::ReadReq: return "read-req";
      case MsgType::ReadResp: return "read-resp";
      case MsgType::WriteReq: return "write-req";
      case MsgType::UpdateReq: return "update-req";
      case MsgType::WriteAck: return "write-ack";
      case MsgType::RmwReq: return "rmw-req";
      case MsgType::RmwResp: return "rmw-resp";
      case MsgType::Nack: return "nack";
      case MsgType::PageCopyData: return "page-copy-data";
      case MsgType::PageCopyDone: return "page-copy-done";
      case MsgType::FrameFlush: return "frame-flush";
      default: return "?";
    }
}

} // namespace proto
} // namespace plus
