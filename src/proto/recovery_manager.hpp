/**
 * @file
 * Fail-stop crash recovery for the PLUS coherence protocol.
 *
 * The 1990 PLUS hardware had no recovery story: a dead node wedged the
 * retransmitting link layer and, eventually, every processor with an
 * in-flight operation addressed to it. This subsystem gives the
 * simulator the fail-stop model modern DSM follow-ons adopted:
 *
 *  1. A node crashes (fault script `CrashNode`): its processor halts,
 *     its router goes dark, its threads are written off.
 *  2. Survivors *detect* the death when a reliable-link retransmit
 *     budget toward it exhausts (net::LinkLayer reports a peer death
 *     instead of panicking when recovery is armed).
 *  3. A deterministic, in-simulation recovery epoch runs in the machine
 *     lane (stop-the-world under the parallel backend):
 *       - every page with a copy on the dead node has its copy-list
 *         repaired; if the master died, the first surviving replica in
 *         list order is promoted (it dominates every later copy,
 *         because updates flow down the chain in order);
 *       - surviving replicas are re-synchronized from the new master —
 *         an update can die inside the dead node's queue mid-chain,
 *         leaving prefix copies newer than suffix copies, and the
 *         originator cannot always replay it (it may *be* the dead
 *         node);
 *       - pages whose only copy died are marked *lost*: subsequent
 *         accesses complete in bounded time with kPageLostValue
 *         (reads / interlocked results) or are dropped (writes),
 *         instead of hanging;
 *       - every survivor's coherence manager aborts in-flight
 *         operations addressed to the dead node and re-dispatches them
 *         against the repaired copy-lists
 *         (CoherenceManager::recoverAfterCrash);
 *       - link channels to and from the dead node are purged and the
 *         node is sealed, and the invariant checker learns the epoch:
 *         processing any message from the dead node afterwards is a
 *         fatal protocol violation.
 *
 * The whole procedure is ordinary simulation state manipulated in one
 * deterministic machine-lane event, so a fixed crash schedule yields
 * byte-identical post-recovery memory images on every engine backend.
 */

#ifndef PLUS_PROTO_RECOVERY_MANAGER_HPP_
#define PLUS_PROTO_RECOVERY_MANAGER_HPP_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/coherence_tables.hpp"
#include "mem/copy_list.hpp"
#include "proto/coherence_manager.hpp"

namespace plus {
namespace proto {

/** Counters for the `recovery.*` metrics namespace. */
struct RecoveryStats {
    std::uint64_t nodeRecoveries = 0;   ///< recovery epochs completed
    std::uint64_t pagesRemastered = 0;  ///< master moved to a survivor
    std::uint64_t copyListsRepaired = 0; ///< lists purged of a dead copy
    std::uint64_t pagesLost = 0;        ///< every physical copy died
    std::uint64_t abortedOps = 0;       ///< in-flight ops re-dispatched
    std::uint64_t lostCompletions = 0;  ///< ops completed with kPageLostValue
};

/**
 * Orchestrates one recovery epoch per dead node; see file comment.
 *
 * The manager is protocol-layer code: everything it needs from the
 * machine (directory walks, page-table shootdowns, halting a
 * processor) arrives through the Host interface, which core::Machine
 * implements. It installs a panic decorator so PLUS_PANIC dumps carry
 * the recovery state (epoch, crashed nodes, repair progress).
 */
class RecoveryManager
{
  public:
    /** Machine-side services; all calls arrive in machine context. */
    class Host
    {
      public:
        virtual ~Host() = default;

        virtual Cycles now() const = 0;
        virtual unsigned nodeCount() const = 0;

        /** Every mapped virtual page, ascending. */
        virtual std::vector<Vpn> mappedVpns() const = 0;
        virtual mem::CopyList& copyListOf(Vpn vpn) = 0;
        virtual mem::CoherenceTables& tablesOf(NodeId node) = 0;
        virtual CoherenceManager& cmOf(NodeId node) = 0;

        /** Write off @p node's threads and stop its processor. Idempotent. */
        virtual void haltNode(NodeId node) = 0;

        /**
         * @p vpn lost its last copy: unmap it everywhere and route all
         * future translations to the degraded (PageLost) path.
         */
        virtual void pageLost(Vpn vpn) = 0;

        /** Copy @p from's frame contents over @p to's (plus cache upkeep). */
        virtual void syncPageCopy(PhysPage from, PhysPage to) = 0;

        /**
         * The copy-list of @p vpn was repaired: bump the checker's
         * generation and shoot down stale translations.
         */
        virtual void copyListRebuilt(Vpn vpn) = 0;

        /** Purge and seal every link channel to or from @p dead. */
        virtual void purgeLinks(NodeId dead) = 0;

        /** Recovery for @p dead is complete; inform the checker. */
        virtual void sealEpoch(NodeId dead, std::uint64_t epoch) = 0;

        /**
         * Run @p fn in the machine lane, at least one lookahead ahead.
         * Callable from any node lane.
         */
        virtual void toMachine(std::function<void()> fn) = 0;
    };

    RecoveryManager(Host& host, unsigned nodes);
    ~RecoveryManager();

    RecoveryManager(const RecoveryManager&) = delete;
    RecoveryManager& operator=(const RecoveryManager&) = delete;

    /**
     * A node fail-stop crashed (machine context, at the crash cycle).
     * Halts the node; recovery itself waits for detection.
     */
    void onNodeCrashed(NodeId node);

    /**
     * A survivor's link layer detected @p dead (retransmit budget
     * exhausted). May fire from any node lane and more than once per
     * dead node; recovery is scheduled into the machine lane and runs
     * exactly once.
     */
    void onPeerDeath(NodeId dead);

    bool nodeCrashed(NodeId node) const { return state(node).crashed; }
    bool nodeRecovered(NodeId node) const { return state(node).recovered; }

    /** Recovery epochs sealed so far. */
    std::uint64_t epoch() const { return epoch_; }

    const RecoveryStats& stats() const { return stats_; }

    /** Crash-cycle → epoch-seal latency, in cycles, per recovery. */
    const Histogram& latencyHistogram() const { return latency_; }

    /** One-paragraph state dump appended to PLUS_PANIC messages. */
    std::string panicSummary() const;

  private:
    struct NodeState {
        bool crashed = false;
        bool recovered = false;
        Cycles crashCycle = 0;
    };

    const NodeState& state(NodeId node) const;

    /** The epoch itself; machine context, exactly once per dead node. */
    void recover(NodeId dead);

    Host& host_;
    std::vector<NodeState> nodes_;
    std::uint64_t epoch_ = 0;
    /** Node whose epoch is mid-flight (panic diagnostics only). */
    NodeId recovering_ = kInvalidNode;
    RecoveryStats stats_;
    Histogram latency_;
};

} // namespace proto
} // namespace plus

#endif // PLUS_PROTO_RECOVERY_MANAGER_HPP_
