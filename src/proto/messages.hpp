/**
 * @file
 * Coherence-protocol messages exchanged between coherence managers.
 *
 * Every message is a net::Payload. Sizes (payloadBytes) follow a simple
 * wire model: 4 bytes per word of address/value/tag content beyond the
 * 8-byte link header accounted by the network.
 *
 * Protocol summary (Section 2.3):
 *  - ReadReq/ReadResp: remote read served by the addressed copy.
 *  - WriteReq: a write travelling to the addressed copy; the receiving
 *    manager redirects it to the master copy if it is not the master.
 *  - UpdateReq: a write flowing down the copy-list from the master; the
 *    last copy answers the originator with WriteAck.
 *  - RmwReq: an interlocked delayed operation; the master executes it,
 *    returns the old value with RmwResp, and propagates its memory
 *    effects as UpdateReqs (acknowledged like writes).
 *  - Nack: the addressed frame no longer holds a copy (it was deleted or
 *    migrated); the originator re-translates and retries.
 *  - PageCopyData/PageCopyDone: background page replication traffic.
 */

#ifndef PLUS_PROTO_MESSAGES_HPP_
#define PLUS_PROTO_MESSAGES_HPP_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "net/network.hpp"
#include "proto/rmw.hpp"

namespace plus {
namespace proto {

/** Tag identifying a pending-write entry at the originator. */
using WriteTag = std::uint32_t;

/** Tag identifying a delayed-operation slot at the originator. */
using OpTag = std::uint32_t;

/** Tag identifying a blocked read continuation at the originator. */
using ReadTag = std::uint32_t;

/** One word written at a copy; updates carry one or two of these. */
struct WordWrite {
    Addr wordOffset = 0;
    Word value = 0;
};

/** Message kind, used for dispatch and statistics. */
enum class MsgType : std::uint8_t {
    ReadReq,
    ReadResp,
    WriteReq,
    UpdateReq,
    WriteAck,
    RmwReq,
    RmwResp,
    Nack,
    PageCopyData,
    PageCopyDone,
    FrameFlush,
    NumTypes,
};

const char* toString(MsgType type);

/** Base of all protocol messages. */
struct ProtoMsg : net::Payload {
    explicit ProtoMsg(MsgType t) : type(t) {}
    MsgType type;
};

/** Remote read of one word from the addressed copy. */
struct ReadReq : ProtoMsg {
    ReadReq() : ProtoMsg(MsgType::ReadReq) {}
    std::unique_ptr<net::Payload>
    clone() const override
    {
        return std::make_unique<ReadReq>(*this);
    }
    PhysAddr target;
    Vpn vpn = 0; ///< for re-translation after a Nack
    NodeId originator = kInvalidNode;
    ReadTag tag = 0;
    /**
     * Write-invalidate only: the originator holds a copy whose word was
     * invalidated and is re-fetching it from the master, which then
     * forgets the word's invalidation (the next write re-invalidates).
     */
    bool refetch = false;
    static constexpr unsigned kBytes = 12;
};

/** Value returned for a ReadReq. */
struct ReadResp : ProtoMsg {
    ReadResp() : ProtoMsg(MsgType::ReadResp) {}
    std::unique_ptr<net::Payload>
    clone() const override
    {
        return std::make_unique<ReadResp>(*this);
    }
    ReadTag tag = 0;
    Word value = 0;
    static constexpr unsigned kBytes = 8;
};

/** A write on its way to the master copy. */
struct WriteReq : ProtoMsg {
    WriteReq() : ProtoMsg(MsgType::WriteReq) {}
    std::unique_ptr<net::Payload>
    clone() const override
    {
        return std::make_unique<WriteReq>(*this);
    }
    PhysAddr target; ///< the copy this request is addressed to
    Vpn vpn = 0;
    Word value = 0;
    NodeId originator = kInvalidNode;
    WriteTag tag = 0;
    static constexpr unsigned kBytes = 16;
};

/** Write effects flowing down the copy-list from the master. */
struct UpdateReq : ProtoMsg {
    UpdateReq() : ProtoMsg(MsgType::UpdateReq) {}
    std::unique_ptr<net::Payload>
    clone() const override
    {
        return std::make_unique<UpdateReq>(*this);
    }
    PhysPage target; ///< the copy to update
    Vpn vpn = 0;
    std::vector<WordWrite> writes;
    NodeId originator = kInvalidNode;
    WriteTag tag = 0;
    /** Chain identity assigned by the master (see check::ChainId). */
    std::uint64_t chainId = 0;
    bool fromRmw = false;
    /** Whether the tail of the chain must acknowledge the originator. */
    bool needAck = true;
    /**
     * Write-invalidate only: the chain invalidates the named words at
     * each copy instead of applying the carried values (which only the
     * master applied). Traversal and tail acknowledgement are identical
     * to an update chain.
     */
    bool invalidate = false;
    unsigned
    bytes() const
    {
        // An invalidation names each word but carries no value.
        return invalidate
                   ? 8 + 4 * static_cast<unsigned>(writes.size())
                   : 8 + 8 * static_cast<unsigned>(writes.size());
    }
};

/** Completion notice from the last copy in the list to the originator. */
struct WriteAck : ProtoMsg {
    WriteAck() : ProtoMsg(MsgType::WriteAck) {}
    std::unique_ptr<net::Payload>
    clone() const override
    {
        return std::make_unique<WriteAck>(*this);
    }
    WriteTag tag = 0;
    bool fromRmw = false;
    /**
     * Write-invalidate only (0 otherwise): the tail of an invalidation
     * chain acknowledges the *master*, naming the chain, so the master
     * can commit the chain's words as invalidated-everywhere before it
     * relays the completion to the originator.
     */
    std::uint64_t chainId = 0;
    static constexpr unsigned kBytes = 4;
    /** Master-routed acks carry the 8-byte chain identity. */
    static constexpr unsigned kChainBytes = 12;
};

/** Interlocked (delayed) operation on its way to the master copy. */
struct RmwReq : ProtoMsg {
    RmwReq() : ProtoMsg(MsgType::RmwReq) {}
    std::unique_ptr<net::Payload>
    clone() const override
    {
        return std::make_unique<RmwReq>(*this);
    }
    RmwOp op = RmwOp::Xchng;
    PhysAddr target;
    Vpn vpn = 0;
    Word operand = 0;
    NodeId originator = kInvalidNode;
    OpTag opTag = 0;
    /** Pending-write tag when RMW chains are fence-tracked. */
    WriteTag writeTag = 0;
    bool trackWrite = false;
    static constexpr unsigned kBytes = 20;
};

/** Old memory value returned by the master for a delayed operation. */
struct RmwResp : ProtoMsg {
    RmwResp() : ProtoMsg(MsgType::RmwResp) {}
    std::unique_ptr<net::Payload>
    clone() const override
    {
        return std::make_unique<RmwResp>(*this);
    }
    OpTag opTag = 0;
    Word oldValue = 0;
    static constexpr unsigned kBytes = 8;
};

/** Which request a Nack refuses. */
enum class NackedKind : std::uint8_t { Read, Write, Rmw };

/** The addressed frame is gone; re-translate and retry. */
struct Nack : ProtoMsg {
    Nack() : ProtoMsg(MsgType::Nack) {}
    std::unique_ptr<net::Payload>
    clone() const override
    {
        return std::make_unique<Nack>(*this);
    }
    NackedKind kind = NackedKind::Read;
    Vpn vpn = 0;
    Addr wordOffset = 0;
    /** Request identity to retry: the matching tag for the kind. */
    ReadTag readTag = 0;
    WriteTag writeTag = 0;
    OpTag opTag = 0;
    Word value = 0;   ///< write value / rmw operand
    RmwOp op = RmwOp::Xchng;
    bool trackWrite = false;
    static constexpr unsigned kBytes = 16;
};

/** A batch of words copied during background page replication. */
struct PageCopyData : ProtoMsg {
    PageCopyData() : ProtoMsg(MsgType::PageCopyData) {}
    std::unique_ptr<net::Payload>
    clone() const override
    {
        return std::make_unique<PageCopyData>(*this);
    }
    PhysPage target;
    Vpn vpn = 0; ///< page being copied, for per-page checker attribution
    Addr baseOffset = 0;
    std::vector<Word> words;
    std::uint32_t copyId = 0;
    bool last = false;
    /**
     * Write-invalidate only: per-word validity of this batch at the
     * source (bit i covers words[i]). Empty means all valid — the
     * write-update wire format and byte count are unchanged. A new copy
     * must not treat a word as valid when the master has outstanding
     * invalidations for it: a later write would skip the chain.
     */
    std::vector<std::uint64_t> validMask;
    unsigned
    bytes() const
    {
        return 12 + 4 * static_cast<unsigned>(words.size()) +
               8 * static_cast<unsigned>(validMask.size());
    }
};

/** The destination saw the final batch of a page copy. */
struct PageCopyDone : ProtoMsg {
    PageCopyDone() : ProtoMsg(MsgType::PageCopyDone) {}
    std::unique_ptr<net::Payload>
    clone() const override
    {
        return std::make_unique<PageCopyDone>(*this);
    }
    std::uint32_t copyId = 0;
    static constexpr unsigned kBytes = 4;
};

/**
 * Deletion marker for a copy that has been spliced out of its copy-list.
 * Sent by the deleted copy's *predecessor* after the splice, over the same
 * FIFO path as forwarded updates, so it arrives only after every update
 * the predecessor forwarded to the dying copy; the receiver then frees
 * the frame and drops its coherence-table entries.
 */
struct FrameFlush : ProtoMsg {
    FrameFlush() : ProtoMsg(MsgType::FrameFlush) {}
    std::unique_ptr<net::Payload>
    clone() const override
    {
        return std::make_unique<FrameFlush>(*this);
    }
    FrameId frame = kInvalidFrame;
    static constexpr unsigned kBytes = 8;
};

} // namespace proto
} // namespace plus

#endif // PLUS_PROTO_MESSAGES_HPP_
