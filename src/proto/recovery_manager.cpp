#include "proto/recovery_manager.hpp"

#include <optional>
#include <sstream>

#include "common/log.hpp"
#include "common/panic.hpp"

namespace plus {
namespace proto {

namespace {

// Panic decoration is a process-wide single slot (a bare function
// pointer), so the active manager registers itself here and chains to
// whatever decorator was installed before it (the profiler's flight
// recorder, typically).
// pluslint: allow(R4) -- diagnostic-only hooks; they decorate panic
// text and never feed simulation state.
RecoveryManager* g_active = nullptr;      // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)
// pluslint: allow(R4) -- see above.
PanicDecorator g_previous = nullptr;      // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)

std::string
decoratePanic()
{
    std::string out = g_previous ? g_previous() : std::string();
    if (g_active != nullptr) {
        out += g_active->panicSummary();
    }
    return out;
}

} // namespace

RecoveryManager::RecoveryManager(Host& host, unsigned nodes)
    : host_(host), nodes_(nodes)
{
    if (g_active == nullptr) {
        g_active = this;
        g_previous = panicDecorator();
        setPanicDecorator(&decoratePanic);
    }
}

RecoveryManager::~RecoveryManager()
{
    if (g_active == this) {
        setPanicDecorator(g_previous);
        g_previous = nullptr;
        g_active = nullptr;
    }
}

const RecoveryManager::NodeState&
RecoveryManager::state(NodeId node) const
{
    PLUS_ASSERT(node < nodes_.size(), "recovery state for unknown node ",
                node);
    return nodes_[node];
}

void
RecoveryManager::onNodeCrashed(NodeId node)
{
    PLUS_ASSERT(node < nodes_.size(), "crash of unknown node ", node);
    NodeState& st = nodes_[node];
    if (st.crashed) {
        return;
    }
    st.crashed = true;
    st.crashCycle = host_.now();
    PLUS_LOG(LogComponent::Proto, "node ", node, " fail-stop crashed at cycle ",
             st.crashCycle);
    // Fail-stop: the processor halts with the node. Survivors do not
    // learn anything yet — detection comes from their link layers.
    host_.haltNode(node);
}

void
RecoveryManager::onPeerDeath(NodeId dead)
{
    PLUS_ASSERT(dead < nodes_.size(), "peer death of unknown node ", dead);
    // Node-lane caller: only read state written stop-the-world, and
    // cross into the machine lane for everything else. Several lanes
    // may race here (every channel toward the dead node can exhaust);
    // recover() runs exactly once regardless.
    if (nodes_[dead].recovered) {
        return;
    }
    host_.toMachine([this, dead] { recover(dead); });
}

void
RecoveryManager::recover(NodeId dead)
{
    NodeState& st = nodes_[dead];
    PLUS_ASSERT(st.crashed,
                "peer death reported for node ", dead, " which never crashed");
    if (st.recovered) {
        return;
    }
    st.recovered = true;
    recovering_ = dead;
    PLUS_LOG(LogComponent::Proto, "recovery epoch for node ", dead,
             " starting at cycle ", host_.now());

    // 1. Repair every copy-list the dead node appears in. mappedVpns()
    //    is ascending, so `affected` and `lost` come out sorted — the
    //    coherence managers binary-search them during replay.
    std::vector<Vpn> affected;
    std::vector<Vpn> lost;
    for (const Vpn vpn : host_.mappedVpns()) {
        mem::CopyList& list = host_.copyListOf(vpn);
        if (!list.hasCopyOn(dead)) {
            continue;
        }
        if (list.size() == 1) {
            // The dead node held the only copy: the page is gone.
            lost.push_back(vpn);
            stats_.pagesLost += 1;
            host_.pageLost(vpn);
            continue;
        }
        affected.push_back(vpn);
        const bool master_died = list.master().node == dead;
        list.removeOn(dead); // removing the master promotes its successor

        // Rewrite the survivors' hardware tables for the new chain.
        const PhysPage master = list.master();
        const auto& order = list.copies();
        for (std::size_t i = 0; i < order.size(); ++i) {
            mem::CoherenceTables& tables = host_.tablesOf(order[i].node);
            tables.setMaster(order[i].frame, master);
            tables.setNextCopy(order[i].frame,
                               i + 1 < order.size()
                                   ? std::optional<PhysPage>(order[i + 1])
                                   : std::nullopt);
        }

        // Re-synchronize the suffix from the new master. Updates flow
        // down the chain in order, so the first surviving copy
        // dominates every later one; anything that died inside the
        // dead node's queue left later copies stale, and when the
        // *originator* was the dead node nobody is left to replay it.
        for (std::size_t i = 1; i < order.size(); ++i) {
            host_.syncPageCopy(master, order[i]);
        }

        host_.copyListRebuilt(vpn);
        stats_.copyListsRepaired += 1;
        if (master_died) {
            stats_.pagesRemastered += 1;
        }
    }

    // 2. Every survivor's coherence manager aborts in-flight operations
    //    the crash tore and re-dispatches them against the repaired
    //    lists (or completes them as lost). Ascending node order keeps
    //    the replay schedule canonical across backends.
    for (NodeId n = 0; n < nodes_.size(); ++n) {
        if (nodes_[n].crashed) {
            continue;
        }
        const CoherenceManager::RecoveryOutcome outcome =
            host_.cmOf(n).recoverAfterCrash(dead, affected, lost);
        stats_.abortedOps += outcome.abortedReads + outcome.abortedWrites +
                             outcome.abortedRmws;
        stats_.lostCompletions += outcome.lostCompletions;
    }

    // 3. Tear down link state toward the dead node and seal it: any
    //    frame it still has in flight is dropped at the receiver from
    //    here on (the checker's crashed-source invariant).
    host_.purgeLinks(dead);

    // 4. Seal the epoch.
    epoch_ += 1;
    host_.sealEpoch(dead, epoch_);
    stats_.nodeRecoveries += 1;
    latency_.record(static_cast<double>(host_.now() - st.crashCycle));
    recovering_ = kInvalidNode;
    PLUS_LOG(LogComponent::Proto, "recovery epoch ", epoch_, " for node ", dead,
             " sealed: ", affected.size(), " copy-list(s) repaired, ",
             lost.size(), " page(s) lost");
}

std::string
RecoveryManager::panicSummary() const
{
    std::ostringstream out;
    out << "\n=== crash recovery ===\n";
    out << "epochs sealed: " << epoch_;
    if (recovering_ != kInvalidNode) {
        out << " (epoch for n" << recovering_ << " IN PROGRESS)";
    }
    out << "\ncrashed:";
    bool any = false;
    for (NodeId n = 0; n < nodes_.size(); ++n) {
        if (nodes_[n].crashed) {
            any = true;
            out << " n" << n << "@" << nodes_[n].crashCycle
                << (nodes_[n].recovered ? "(recovered)" : "(unrecovered)");
        }
    }
    if (!any) {
        out << " none";
    }
    out << "\npages: " << stats_.pagesRemastered << " remastered, "
        << stats_.copyListsRepaired << " lists repaired, "
        << stats_.pagesLost << " lost\n";
    out << "ops: " << stats_.abortedOps << " aborted/re-dispatched, "
        << stats_.lostCompletions << " completed as lost\n";
    return out.str();
}

} // namespace proto
} // namespace plus
