/**
 * @file
 * The interlocked (delayed) operations of Table 3-1 and their memory
 * semantics. Every operation executes atomically at the master copy,
 * returns the *old* contents of memory to the originator, and produces
 * zero, one or two word writes that propagate down the copy-list.
 *
 * Conventions (see DESIGN.md "Interpretation notes"):
 *  - Bit 31 (kTopBit) is the full/lock flag; payloads are 31-bit.
 *  - queue/dequeue address a word holding a *word offset within the same
 *    page* of the queue tail/head; offsets advance circularly within
 *    [queueBaseOffset, kPageWords).
 *  - min-xchng compares 31-bit payloads as unsigned integers.
 */

#ifndef PLUS_PROTO_RMW_HPP_
#define PLUS_PROTO_RMW_HPP_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"

namespace plus {
namespace proto {

/** The delayed operations of Table 3-1. */
enum class RmwOp : std::uint8_t {
    Xchng,       ///< return old value; write operand
    CondXchng,   ///< return old value; write operand if old's top bit set
    FetchAdd,    ///< return old value; add operand (two's complement)
    FetchSet,    ///< return old value; set the top bit
    Queue,       ///< enqueue operand at the tail (Table 3-1 "queue")
    Dequeue,     ///< dequeue from the head (Table 3-1 "dequeue")
    MinXchng,    ///< return old value; write operand if smaller
    DelayedRead, ///< return old value; no modification
};

const char* toString(RmwOp op);

/** True for the operations the paper costs at 52 cycles instead of 39. */
bool isComplexOp(RmwOp op);

/** Word-granular view of the page the operation addresses. */
struct PageView {
    std::function<Word(Addr word_offset)> read;
};

/** Result of executing an operation at the master copy. */
struct RmwResult {
    /** Old memory contents returned to the originator. */
    Word oldValue = 0;
    /** Writes to apply at the master and propagate to all copies. */
    struct Write {
        Addr wordOffset;
        Word value;
    };
    std::vector<Write> writes;
};

/**
 * Execute @p op against the page seen through @p page.
 *
 * @param page        Read access to the addressed page's current contents.
 * @param word_offset Offset of the addressed word within the page.
 * @param operand     The operation's data word.
 * @param queue_base  First offset of the circular queue region (offsets
 *                    wrap from kPageWords back to this value).
 */
RmwResult executeRmw(const PageView& page, RmwOp op, Addr word_offset,
                     Word operand, Addr queue_base);

} // namespace proto
} // namespace plus

#endif // PLUS_PROTO_RMW_HPP_
