#include "proto/protocol.hpp"

#include "common/panic.hpp"
#include "proto/coherence_manager.hpp"
#include "proto/write_invalidate.hpp"
#include "proto/write_update.hpp"

namespace plus {
namespace proto {

void
Protocol::chainAckAtMaster(std::uint64_t chain_id)
{
    PLUS_PANIC("chain-routed WriteAck (chain ", chain_id, ") under the ",
               toString(kind()), " protocol, which never sends one");
}

void
Protocol::serveNackedLocalRead(Vpn vpn, Addr word_offset, FrameId frame,
                               std::function<void(Word)> done)
{
    (void)vpn;
    done(cm_.deps_.memory->read(frame, word_offset));
}

void
Protocol::fillBatchValidity(FrameId src_frame, Addr base_offset, Addr count,
                            PageCopyData& msg)
{
    (void)src_frame;
    (void)base_offset;
    (void)count;
    (void)msg;
}

void
Protocol::onFrameDropped(FrameId frame)
{
    (void)frame;
}

void
Protocol::onMasterPromoted(FrameId frame, Vpn vpn)
{
    (void)frame;
    (void)vpn;
}

void
Protocol::onMasterDemoted(FrameId frame)
{
    (void)frame;
}

std::unique_ptr<Protocol>
makeProtocol(CoherenceProtocol kind, CoherenceManager& cm)
{
    switch (kind) {
      case CoherenceProtocol::WriteUpdate:
        return std::make_unique<WriteUpdateProtocol>(cm);
      case CoherenceProtocol::WriteInvalidate:
        return std::make_unique<WriteInvalidateProtocol>(cm);
      case CoherenceProtocol::Env:
      default:
        PLUS_PANIC("coherence protocol choice not resolved — "
                   "MachineConfig::validate() must run first");
    }
}

} // namespace proto
} // namespace plus
