/**
 * @file
 * Synchronization library built on PLUS's interlocked operations.
 *
 * The paper argues (Section 3.2, "Complex is Better") that hardware
 * synchronization primitives should be encapsulated in higher-level
 * constructs; these are those constructs:
 *
 *  - SpinLock: test-and-test-and-set with backoff over fetch-and-set.
 *  - QueuedLock: the lock-with-queue of Table 3-2 — fetch-and-add on a
 *    counter plus the hardware queue/dequeue operations, with sleeping
 *    waiters woken through per-thread mailbox words on their own nodes.
 *  - Barrier: sense-reversing barrier whose sense word lives on a page
 *    that can be replicated so arrival spinning is node-local.
 *  - Semaphore: counting P/V in the same queue-and-mailbox style.
 *
 * All objects are created host-side (allocating and initializing their
 * shared memory through Machine backdoors) and then used by simulated
 * threads through a Context.
 */

#ifndef PLUS_CORE_SYNC_HPP_
#define PLUS_CORE_SYNC_HPP_

#include <vector>

#include "common/types.hpp"
#include "core/context.hpp"
#include "core/machine.hpp"

namespace plus {
namespace core {

/** Simple test-and-test-and-set lock; one word of shared memory. */
class SpinLock
{
  public:
    /** Wrap an existing, zero-initialized word. */
    explicit SpinLock(Addr word) : addr_(word) {}

    /** Allocate a fresh page on @p home and put the lock in word 0. */
    static SpinLock create(Machine& machine, NodeId home);

    void acquire(Context& ctx);

    /** True if the lock was free and is now held. */
    bool tryAcquire(Context& ctx);

    /** Fences, then frees the lock. */
    void release(Context& ctx);

    Addr address() const { return addr_; }

  private:
    Addr addr_;
};

/**
 * The lock-with-queue of Table 3-2. Participants are indexed 0..n-1;
 * each has a mailbox word allocated on its own node so that sleeping is
 * a node-local spin.
 */
class QueuedLock
{
  public:
    /**
     * @param home          Node holding the lock counter and the queue.
     * @param thread_nodes  thread_nodes[i] is participant i's node.
     */
    static QueuedLock create(Machine& machine, NodeId home,
                             const std::vector<NodeId>& thread_nodes);

    /** Acquire as participant @p me. */
    void acquire(Context& ctx, unsigned me);

    /** Release, handing the lock to the oldest queued waiter if any. */
    void release(Context& ctx);

    Addr lockAddress() const { return lock_; }

  private:
    QueuedLock() = default;

    Addr lock_ = 0;            ///< fetch-and-add counter
    Addr queuePage_ = 0;       ///< word 0 = QP (tail), word 1 = DQP (head)
    std::vector<Addr> mailboxes_;
};

/** Sense-reversing barrier; see BarrierWaiter for the per-thread side. */
class Barrier
{
  public:
    /**
     * @param home       Node holding the arrival counter and the sense
     *                   word's master copy.
     * @param n          Number of participants per episode.
     * @param replicate_sense  Replicate the sense page to every node so
     *                   that waiting is a local spin.
     */
    static Barrier create(Machine& machine, NodeId home, unsigned n,
                          bool replicate_sense);

    unsigned participants() const { return n_; }
    Addr countAddress() const { return count_; }
    Addr senseAddress() const { return sense_; }

  private:
    friend class BarrierWaiter;
    Barrier() = default;

    Addr count_ = 0;
    Addr sense_ = 0;
    unsigned n_ = 0;
};

/** A thread's participation state in a Barrier (holds its local sense). */
class BarrierWaiter
{
  public:
    explicit BarrierWaiter(const Barrier& barrier) : barrier_(barrier) {}

    /** Arrive and wait for all participants. */
    void wait(Context& ctx);

  private:
    const Barrier& barrier_;
    Word sense_ = 0;
};

/**
 * Hierarchical barrier for machines hosting several threads per node
 * (ContextSwitch mode): threads first combine on a node-local count,
 * one representative per node joins a global sense-reversing barrier,
 * and everyone else spins on a node-local sense word. Arrival traffic
 * at the global master scales with nodes, not threads.
 */
class NodeBarrier
{
  public:
    /**
     * @param thread_nodes  thread_nodes[i] is participant i's node.
     * @param replicate_global_sense  Replicate the global sense page so
     *        representatives spin locally.
     */
    static NodeBarrier create(Machine& machine,
                              const std::vector<NodeId>& thread_nodes,
                              bool replicate_global_sense);

    unsigned participants() const
    {
        return static_cast<unsigned>(nodeOf_.size());
    }

  private:
    friend class NodeBarrierWaiter;
    NodeBarrier() = default;

    std::vector<NodeId> nodeOf_;      ///< participant -> node
    std::vector<unsigned> perNode_;   ///< node -> participant count
    std::vector<Addr> localCount_;    ///< node -> local arrival counter
    std::vector<Addr> localSense_;    ///< node -> local release word
    Addr globalCount_ = 0;
    Addr globalSense_ = 0;
    unsigned activeNodes_ = 0;
};

/** A thread's participation state in a NodeBarrier. */
class NodeBarrierWaiter
{
  public:
    NodeBarrierWaiter(const NodeBarrier& barrier, unsigned me)
        : barrier_(barrier), me_(me)
    {
    }

    void wait(Context& ctx);

  private:
    const NodeBarrier& barrier_;
    unsigned me_;
    Word sense_ = 0;
};

/** Counting semaphore with queued sleepers (P and V of Section 2.1). */
class Semaphore
{
  public:
    static Semaphore create(Machine& machine, NodeId home,
                            std::int32_t initial,
                            const std::vector<NodeId>& thread_nodes);

    /** P: decrement; sleep in the queue if the semaphore was exhausted. */
    void p(Context& ctx, unsigned me);

    /** V: increment; wake the oldest sleeper if any. */
    void v(Context& ctx);

    Addr valueAddress() const { return value_; }

  private:
    Semaphore() = default;

    Addr value_ = 0;
    Addr queuePage_ = 0;
    std::vector<Addr> mailboxes_;
};

/**
 * Allocate one mailbox word per participant, each on the participant's
 * own node (shared by QueuedLock and Semaphore).
 */
std::vector<Addr> allocMailboxes(Machine& machine,
                                 const std::vector<NodeId>& thread_nodes);

/** Sleep on @p mailbox until woken, then reset it. */
void mailboxWait(Context& ctx, Addr mailbox);

/** Wake the sleeper on @p mailbox. */
void mailboxWake(Context& ctx, Addr mailbox);

} // namespace core
} // namespace plus

#endif // PLUS_CORE_SYNC_HPP_
