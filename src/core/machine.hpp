/**
 * @file
 * The top-level PLUS machine: N nodes on a mesh, one shared virtual
 * address space, and the operating-system services of Section 2.4 —
 * page allocation, lazy per-node page tables backed by a centralized
 * directory, and software-requested page replication, migration and
 * deletion with hardware-assisted background copying.
 *
 * Typical use (via the plus::MachineBuilder facade, plus/plus.hpp):
 * @code
 *   auto m = plus::MachineBuilder().nodes(16).build();
 *   Addr counter = m->alloc(kPageBytes, 0);   // master on node 0
 *   m->replicate(counter, 5);                 // background copy to node 5
 *   m->settle();                              // let the copy finish
 *   for (NodeId n = 0; n < 16; ++n)
 *       m->spawn(n, [&](Context& ctx) { ctx.fadd(counter, 1); });
 *   m->run();
 * @endcode
 */

#ifndef PLUS_CORE_MACHINE_HPP_
#define PLUS_CORE_MACHINE_HPP_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "check/checker.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "mem/page_table.hpp"
#include "net/network.hpp"
#include "node/node.hpp"
#include "sim/engine.hpp"
#include "sim/watchdog.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tracer.hpp"

namespace plus {

namespace check {
class DeferringObserver;
class DeferringNetObserver;
} // namespace check

namespace proto {
class RecoveryManager;
} // namespace proto

namespace core {

class Context;

/** Aggregated machine-wide counters for the bench harnesses. */
struct MachineReport {
    Cycles elapsed = 0;
    /** Sums over all nodes (see CmStats for definitions). */
    std::uint64_t localReads = 0;
    std::uint64_t remoteReads = 0;
    std::uint64_t localWrites = 0;
    std::uint64_t remoteWrites = 0;
    std::uint64_t localRmws = 0;
    std::uint64_t remoteRmws = 0;
    std::uint64_t updateMessages = 0;
    /** Memory-modifying messages: WriteReq + UpdateReq + RmwReq. */
    std::uint64_t writeCarryingMessages = 0;
    std::uint64_t totalMessages = 0;
    /** Processor-time totals. */
    Cycles busyUseful = 0;
    Cycles ctxOverhead = 0;
    Cycles totalStall = 0;

    /** Average fraction of elapsed time processors did useful work. */
    double utilization(unsigned processors) const;

    /**
     * Counter-wise difference (this - baseline): isolates one phase's
     * activity, e.g. application execution after replication setup.
     */
    MachineReport operator-(const MachineReport& baseline) const;
};

/** The whole simulated PLUS machine. */
class Machine
{
  public:
    /**
     * @deprecated Construct through plus::MachineBuilder
     * (plus/plus.hpp) — the fluent, validated front door. This
     * constructor is the thin shim the builder itself lands on; both
     * paths produce identical machines (tests/test_builder.cpp).
     */
    explicit Machine(MachineConfig config);
    ~Machine();

    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;

    const MachineConfig& config() const { return config_; }
    unsigned nodeCount() const { return config_.nodes; }
    node::Node& nodeAt(NodeId id);
    sim::Engine& engine() { return engine_; }
    net::Network& network() { return *network_; }
    Cycles now() const { return engine_.now(); }

    // --- memory management (OS-level; instantaneous, no simulated cost) --

    /**
     * Allocate @p bytes of shared memory (rounded up to whole pages)
     * with the master copies on @p home. Returns the base virtual
     * address. Memory is zero-initialized and lives until the machine
     * is destroyed.
     */
    Addr alloc(std::size_t bytes, NodeId home);

    /** Number of whole pages backing an allocation of @p bytes. */
    static std::size_t pagesFor(std::size_t bytes);

    /**
     * Request a replica of the page containing @p addr on @p target.
     * The new copy is inserted into the copy-list immediately (so
     * concurrent writes keep it coherent) and filled by the hardware
     * copy engine in the background; page tables switch to it when the
     * copy completes. No-op if the node already holds a copy.
     */
    void replicate(Addr addr, NodeId target);

    /** Replicate every page of [addr, addr+bytes) onto @p target. */
    void replicateRange(Addr addr, std::size_t bytes, NodeId target);

    /**
     * Delete the copy of the page containing @p addr held by @p node.
     * The copy must not be the master and must not be the only copy.
     * In-flight traffic is handled by the splice + frame-flush protocol
     * (see FrameFlush); requests still addressed to the dead copy are
     * nacked and retried.
     */
    void deleteCopy(Addr addr, NodeId node);

    /**
     * Move the page containing @p addr from @p from to @p to:
     * replication followed, once the copy completes, by deletion of the
     * old copy ("page migration is achieved simply by creating a copy
     * and then deleting the old one").
     */
    void migrate(Addr addr, NodeId from, NodeId to);

    /** Copies of the page containing @p addr still being filled. */
    unsigned pendingPageCopies() const { return pendingCopies_; }

    /**
     * Re-order the copy-list of the page containing @p addr into the
     * greedy minimal-path chain ("the operating system kernel orders
     * the copy-list to minimize the network path length through all the
     * nodes in the list", Section 2.3) and rewrite the coherence
     * tables. Only legal at quiescence.
     */
    void reorderCopyListQuiesced(Addr addr);

    /**
     * Make @p node's copy the master of the page containing @p addr.
     * Only legal at quiescence (no events pending, no page copies in
     * flight): the copy-list head and every node's coherence tables for
     * the page are rewritten, which cannot race in-flight chains.
     */
    void promoteMasterQuiesced(Addr addr, NodeId node);

    /** The copy-list of the page containing @p addr (diagnostics). */
    const mem::CopyList& copyListOf(Addr addr) const;

    // --- untimed backdoors for workload setup and checking ----------------

    /** Read the master copy's value without simulating anything. */
    Word peek(Addr addr) const;

    /** Write every copy's value without simulating anything. */
    void poke(Addr addr, Word value);

    // --- threads and execution ---------------------------------------------

    using ThreadBody = std::function<void(Context&)>;

    /** Create a thread resident on @p node. Call before run(). */
    ThreadId spawn(NodeId node, ThreadBody body);

    /**
     * Run until every spawned thread finishes.
     * @param max_cycles  Safety cap; exceeding it raises FatalError
     *                    (useful against livelocked workloads).
     */
    void run(Cycles max_cycles = ~Cycles{0} >> 1);

    /**
     * Drain background activity (page copies, write chains) without any
     * threads running; returns when the event queue is empty.
     */
    void settle();

    /** Aggregate statistics over all nodes and the network. */
    MachineReport report() const;

    /**
     * Enable competitive replication (Section 2.4): hardware counts each
     * node's remote references per page and, when a counter reaches
     * @p threshold, the OS creates a local replica — unless the page
     * already has @p max_copies copies. Must be called before spawn().
     */
    void enableCompetitiveReplication(std::uint64_t threshold,
                                      unsigned max_copies);

    /**
     * The machine's plus::check instance (invariant checker and race
     * detector), or null when MachineConfig::check disables everything.
     */
    check::Checker* checker() { return checker_.get(); }

    /**
     * The machine's metrics registry. Always live: every subsystem's
     * counters are registered at construction, so a snapshot at any
     * cycle sees the whole machine. Harnesses may register their own
     * sources next to them.
     */
    telemetry::MetricsRegistry& metrics() { return metrics_; }

    /** Current values of every registered metric. */
    telemetry::MetricsRegistry::Snapshot metricsSnapshot() const
    {
        return metrics_.snapshot(engine_.now());
    }

    /**
     * The forward-progress watchdog, or null unless
     * MachineConfig::watchdog enabled it.
     */
    sim::Watchdog* watchdog() { return watchdog_.get(); }

    /**
     * The crash-recovery orchestrator, or null unless
     * MachineConfig::network.fault.recover armed it.
     */
    proto::RecoveryManager* recovery() { return recovery_.get(); }
    const proto::RecoveryManager* recovery() const
    {
        return recovery_.get();
    }

    /** True once @p vpn lost its last copy to a node crash. */
    bool pageIsLost(Vpn vpn) const
    {
        return lostPages_.find(vpn) != lostPages_.end();
    }

    /**
     * The event tracer, or null unless MachineConfig::telemetry.trace
     * enabled it.
     */
    telemetry::Telemetry* telemetry() { return telemetry_.get(); }
    const telemetry::Telemetry* telemetry() const
    {
        return telemetry_.get();
    }

    /**
     * Write the retained event trace as Chrome-trace/Perfetto JSON
     * (see docs/OBSERVABILITY.md). Requires telemetry.trace.
     */
    void writeTraceJson(std::ostream& os) const;

    /**
     * Write a metrics snapshot plus the tracer's traffic attribution
     * (empty arrays when tracing is off) as one JSON object.
     */
    void writeStatsJson(std::ostream& os) const;

  private:
    friend class Context;

    node::Processor::Translation translateFor(NodeId node, Vpn vpn);
    PhysPage freshTranslation(NodeId node, Vpn vpn);

    /**
     * Render the machine's distress dossier — engine state, network and
     * link counters, the telemetry tail and the checker's event trace —
     * appended to watchdog / retry-exhaustion panics.
     */
    std::string diagnosticDump();

    /**
     * Compute and install the parallel backend's domain-pair lookahead
     * matrix: Network::crossNodeFloor() of the minimum mesh hop
     * distance between each pair of domain node ranges. Ctor-only,
     * after the network exists and only when the backend is parallel.
     */
    void installLookaheadMatrix();

    /**
     * Arm or disarm the engine's node->machine mail hint. The only
     * node-context producers of machine-lane events are page-copy
     * completions and competitive-replication overflow triggers, so
     * while no page copy is in flight and competitive replication is
     * unarmed the parallel backend may run whole batches without
     * checking for machine mail.
     */
    void updateMachineMailHint();

    void onPageCopyDone(std::uint32_t copy_id);
    void shootdown(Vpn vpn);
    PhysAddr masterOf(Addr addr) const;

    /**
     * Fail-stop: freeze @p node's processor, write its threads off the
     * machine's liveness accounting, and stop the watchdog if they were
     * the last ones. Machine context; idempotent.
     */
    void haltNode(NodeId node);

    MachineConfig config_;
    sim::Engine engine_;
    net::Topology topology_;
    std::unique_ptr<net::Network> network_;
    std::vector<std::unique_ptr<node::Node>> nodes_;

    mem::PageDirectory directory_;
    Vpn nextVpn_ = 1; ///< vpn 0 is reserved (null page)

    /** Register every subsystem's stat sources; ctor-only. */
    void registerMetrics();

    /** Runtime checking; nodes hold raw observer pointers into this. */
    std::unique_ptr<check::Checker> checker_;

    /** Event tracing; null unless config_.telemetry.trace. */
    std::unique_ptr<telemetry::Telemetry> telemetry_;

    /** Fan-out installed when both checker and tracer are live. */
    std::unique_ptr<check::TeeObserver> observerTee_;

    /**
     * Parallel backend only: wrappers that buffer observer hooks via
     * sim::Engine::defer() so the checker and tracer see events in the
     * exact serial order (see check/defer_observer.hpp). Null on the
     * serial backends — hooks run inline with zero extra cost.
     */
    std::unique_ptr<check::DeferringObserver> deferObserver_;
    std::unique_ptr<check::DeferringNetObserver> deferNetObserver_;

    telemetry::MetricsRegistry metrics_;

    /** Forward-progress watchdog; null unless config_.watchdog. */
    std::unique_ptr<sim::Watchdog> watchdog_;

    /**
     * Crash recovery (null unless config_.network.fault.recover): the
     * host adapter hands proto::RecoveryManager the machine services it
     * needs without a proto -> core dependency.
     */
    struct RecoveryHost;
    std::unique_ptr<RecoveryHost> recoveryHost_;
    std::unique_ptr<proto::RecoveryManager> recovery_;
    /** Pages whose last copy died; served degraded (kPageLostValue). */
    std::unordered_set<Vpn> lostPages_;

    struct PendingCopy {
        Vpn vpn;
        NodeId target;
        NodeId deleteAfter = kInvalidNode; ///< migration: old copy to drop
    };
    // Ordered by copy id (= creation order) so every scan over the
    // in-flight set is deterministic (pluslint R1); the map holds at most
    // a handful of entries, so the tree overhead is irrelevant.
    std::map<std::uint32_t, PendingCopy> copiesInFlight_;
    std::uint32_t nextCopyId_ = 1;
    unsigned pendingCopies_ = 0;

    struct ThreadRecord {
        ThreadId id;
        NodeId node;
        std::unique_ptr<Context> context;
    };
    std::vector<ThreadRecord> threads_;
    /** Atomic: decremented from worker lanes under the parallel backend. */
    std::atomic<unsigned> unfinishedThreads_{0};
    bool started_ = false;

    /** Competitive replication policy state. */
    std::uint64_t replThreshold_ = 0;
    unsigned replMaxCopies_ = 0;
};

} // namespace core
} // namespace plus

#endif // PLUS_CORE_MACHINE_HPP_
