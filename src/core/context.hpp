/**
 * @file
 * The API a simulated application thread programs against: coherent
 * reads and writes, the delayed interlocked operations of Table 3-1 in
 * both blocking and issue/verify form, the explicit write fence, and
 * compute() for declaring instruction-stream time between shared
 * references.
 */

#ifndef PLUS_CORE_CONTEXT_HPP_
#define PLUS_CORE_CONTEXT_HPP_

#include "common/types.hpp"
#include "node/processor.hpp"
#include "proto/rmw.hpp"

namespace plus {
namespace core {

class Machine;

/** Handle for an in-flight delayed operation. */
using OpHandle = proto::DelayedOpHandle;

/** Per-thread view of the machine; passed to every thread body. */
class Context
{
  public:
    Context(Machine& machine, node::Processor& processor, ThreadId tid)
        : machine_(machine), processor_(processor), tid_(tid)
    {
    }

    ThreadId tid() const { return tid_; }
    NodeId node() const { return processor_.nodeId(); }
    Machine& machine() { return machine_; }
    ProcessorMode mode() const { return processor_.mode(); }

    /** Declare @p cycles of computation between shared references. */
    void compute(Cycles cycles) { processor_.compute(cycles); }

    /**
     * Busy-wait backoff: burns @p cycles and, in ContextSwitch mode,
     * lets another thread resident on this processor run. Every spin
     * loop must use this instead of bare compute().
     */
    void
    pause(Cycles cycles)
    {
        processor_.compute(cycles);
        processor_.yieldNow();
    }

    /** Coherent read of the 32-bit word at @p addr. */
    Word read(Addr addr) { return processor_.read(addr); }

    /** Coherent, non-blocking write of the word at @p addr. */
    void write(Addr addr, Word value) { processor_.write(addr, value); }

    /** Full drain: block until all of this processor's writes finish. */
    void fence() { processor_.fence(); }

    /**
     * The paper's explicit write fence (Section 2.3): later writes and
     * interlocked operations wait for all earlier writes, but this
     * thread keeps running (reads and compute are unaffected).
     */
    void writeFence() { processor_.writeFence(); }

    // --- blocking interlocked operations (issue + verify in one call) ----

    Word xchng(Addr a, Word v) { return rmw(proto::RmwOp::Xchng, a, v); }
    Word condXchng(Addr a, Word v)
    {
        return rmw(proto::RmwOp::CondXchng, a, v);
    }
    Word fadd(Addr a, Word delta)
    {
        return rmw(proto::RmwOp::FetchAdd, a, delta);
    }
    Word fetchSet(Addr a) { return rmw(proto::RmwOp::FetchSet, a, 0); }
    Word enqueue(Addr qp, Word v) { return rmw(proto::RmwOp::Queue, qp, v); }
    Word dequeue(Addr dqp) { return rmw(proto::RmwOp::Dequeue, dqp, 0); }
    Word minXchng(Addr a, Word v)
    {
        return rmw(proto::RmwOp::MinXchng, a, v);
    }
    Word delayedRead(Addr a)
    {
        return rmw(proto::RmwOp::DelayedRead, a, 0);
    }

    Word
    rmw(proto::RmwOp op, Addr addr, Word operand)
    {
        return processor_.rmw(op, addr, operand);
    }

    // --- split (delayed) form: issue now, verify later --------------------

    OpHandle issueXchng(Addr a, Word v)
    {
        return issue(proto::RmwOp::Xchng, a, v);
    }
    OpHandle issueCondXchng(Addr a, Word v)
    {
        return issue(proto::RmwOp::CondXchng, a, v);
    }
    OpHandle issueFadd(Addr a, Word delta)
    {
        return issue(proto::RmwOp::FetchAdd, a, delta);
    }
    OpHandle issueFetchSet(Addr a)
    {
        return issue(proto::RmwOp::FetchSet, a, 0);
    }
    OpHandle issueEnqueue(Addr qp, Word v)
    {
        return issue(proto::RmwOp::Queue, qp, v);
    }
    OpHandle issueDequeue(Addr dqp)
    {
        return issue(proto::RmwOp::Dequeue, dqp, 0);
    }
    OpHandle issueMinXchng(Addr a, Word v)
    {
        return issue(proto::RmwOp::MinXchng, a, v);
    }
    OpHandle issueDelayedRead(Addr a)
    {
        return issue(proto::RmwOp::DelayedRead, a, 0);
    }

    OpHandle
    issue(proto::RmwOp op, Addr addr, Word operand)
    {
        return processor_.issueRmw(op, addr, operand);
    }

    /** Non-blocking poll: true once verify() would not block. */
    bool ready(OpHandle h) const { return processor_.rmwReady(h); }

    /** Read (and consume) a delayed operation's result. */
    Word verify(OpHandle h) { return processor_.verify(h); }

  private:
    Machine& machine_;
    node::Processor& processor_;
    ThreadId tid_;
};

} // namespace core
} // namespace plus

#endif // PLUS_CORE_CONTEXT_HPP_
