#include "core/workq.hpp"

#include <algorithm>
#include <numeric>

#include "common/panic.hpp"

namespace plus {
namespace core {

WorkQueue
WorkQueue::create(Machine& machine, const std::vector<NodeId>& lane_nodes,
                  unsigned replication)
{
    PLUS_ASSERT(!lane_nodes.empty(), "work queue needs at least one lane");
    PLUS_ASSERT(replication >= 1, "replication counts total copies");

    WorkQueue wq;
    wq.stats_ = std::make_shared<WorkQueueStats>();
    {
        const std::shared_ptr<WorkQueueStats> stats = wq.stats_;
        telemetry::MetricsRegistry& m = machine.metrics();
        m.addCounter("workq.pushes", [stats] { return stats->pushes; });
        m.addCounter("workq.pushFull",
                     [stats] { return stats->pushFull; });
        m.addCounter("workq.pops", [stats] { return stats->pops; });
        m.addCounter("workq.emptyPolls",
                     [stats] { return stats->emptyPolls; });
        m.addCounter("workq.steals", [stats] { return stats->steals; });
    }
    wq.queueBase_ = machine.config().cost.queueBaseOffset;
    const Word base = static_cast<Word>(wq.queueBase_);

    for (NodeId node : lane_nodes) {
        const Addr page = machine.alloc(kPageBytes, node);
        machine.poke(page, base);              // QP (tail offset)
        machine.poke(page + kWordBytes, base); // DQP (head offset)
        wq.lanePages_.push_back(page);
    }

    const net::Topology& topo = machine.network().topology();

    // Extra copies of each lane page go to the nearest *other* lane
    // nodes, spreading read traffic like the paper's replication levels.
    if (replication > 1) {
        for (std::size_t lane = 0; lane < lane_nodes.size(); ++lane) {
            std::vector<NodeId> others;
            for (NodeId n : lane_nodes) {
                if (n != lane_nodes[lane] &&
                    std::find(others.begin(), others.end(), n) ==
                        others.end()) {
                    others.push_back(n);
                }
            }
            std::sort(others.begin(), others.end(),
                      [&](NodeId a, NodeId b) {
                          return topo.distance(lane_nodes[lane], a) <
                                 topo.distance(lane_nodes[lane], b);
                      });
            const unsigned extra =
                std::min<unsigned>(replication - 1,
                                   static_cast<unsigned>(others.size()));
            for (unsigned i = 0; i < extra; ++i) {
                machine.replicate(wq.lanePages_[lane], others[i]);
            }
        }
        machine.settle();
    }

    // Precompute the stealing order: own lane first, then lanes whose
    // queue page has a *local replica* (polling them is a local read —
    // the load-balancing benefit the paper attributes to replicating
    // the queues), then the rest by mesh distance.
    wq.stealOrder_.resize(lane_nodes.size());
    wq.cheap_.resize(lane_nodes.size());
    for (std::size_t lane = 0; lane < lane_nodes.size(); ++lane) {
        const NodeId home = lane_nodes[lane];
        auto rank = [&](unsigned l) -> std::uint64_t {
            if (l == lane) {
                return 0;
            }
            const bool local_copy =
                machine.copyListOf(wq.lanePages_[l]).hasCopyOn(home);
            return (local_copy ? 0u : 1000u) +
                   topo.distance(home, lane_nodes[l]);
        };
        std::vector<unsigned>& order = wq.stealOrder_[lane];
        order.resize(lane_nodes.size());
        std::iota(order.begin(), order.end(), 0u);
        std::stable_sort(order.begin(), order.end(),
                         [&](unsigned a, unsigned b) {
                             return rank(a) < rank(b);
                         });
        unsigned cheap = 0;
        for (unsigned l : order) {
            if (rank(l) < 1000) {
                ++cheap;
            }
        }
        wq.cheap_[lane] = std::max(1u, cheap);
    }
    return wq;
}

unsigned
WorkQueue::capacityPerLane() const
{
    // Full/empty detection is per-slot (the top bit), so every slot of
    // the ring is usable even when the tail wraps onto the head.
    return static_cast<unsigned>(kPageWords - queueBase_);
}

bool
WorkQueue::tryPush(Context& ctx, unsigned lane, Word item)
{
    PLUS_ASSERT(lane < lanes(), "push to unknown lane");
    PLUS_ASSERT(!(item & kTopBit), "work items are 31-bit payloads");
    const bool ok = !(ctx.enqueue(lanePages_[lane], item) & kTopBit);
    (ok ? stats_->pushes : stats_->pushFull) += 1;
    return ok;
}

void
WorkQueue::push(Context& ctx, unsigned lane, Word item)
{
    while (!tryPush(ctx, lane, item)) {
        ctx.pause(32);
    }
}

std::optional<Word>
WorkQueue::tryPop(Context& ctx, unsigned lane)
{
    PLUS_ASSERT(lane < lanes(), "pop from unknown lane");
    const Addr page = lanePages_[lane];
    // Test before the interlocked dequeue: reading the head slot is an
    // ordinary read — node-local when the lane page is replicated. This
    // is what makes polling other processors' queues affordable and is
    // the load-balancing benefit the paper attributes to replicating
    // the queues (Section 2.5). A stale copy can only cause a missed
    // steal or a wasted dequeue, never an incorrect one.
    const Word head = ctx.read(page + kWordBytes) %
                      static_cast<Word>(kPageWords);
    const Word slot = ctx.read(page + kWordBytes * Addr{head});
    if (!(slot & kTopBit)) {
        stats_->emptyPolls += 1;
        return std::nullopt;
    }
    const Word got = ctx.dequeue(page + kWordBytes);
    if (got & kTopBit) {
        stats_->pops += 1;
        return got & kPayloadMask;
    }
    stats_->emptyPolls += 1;
    return std::nullopt;
}

std::optional<Word>
WorkQueue::popAny(Context& ctx, unsigned home_lane, unsigned max_scan)
{
    PLUS_ASSERT(home_lane < lanes(), "unknown home lane");
    unsigned scanned = 0;
    for (unsigned lane : stealOrder_[home_lane]) {
        if (scanned++ >= max_scan) {
            break;
        }
        if (auto item = tryPop(ctx, lane)) {
            if (lane != home_lane) {
                stats_->steals += 1;
            }
            return item;
        }
    }
    return std::nullopt;
}

} // namespace core
} // namespace plus
