#include "core/machine.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <thread>

#include "check/defer_observer.hpp"
#include "common/log.hpp"
#include "common/panic.hpp"
#include "core/context.hpp"
#include "net/fault_injector.hpp"
#include "net/reliable_link.hpp"
#include "proto/protocol.hpp"
#include "proto/recovery_manager.hpp"
#include "telemetry/export.hpp"

namespace plus {
namespace core {

namespace {

/** Map the config's engine request onto a concrete backend. */
sim::EngineImpl
resolveImpl(const MachineConfig& config)
{
    switch (config.engine) {
      case SimEngine::Wheel: return sim::EngineImpl::Wheel;
      case SimEngine::Heap: return sim::EngineImpl::Heap;
      case SimEngine::Parallel: return sim::EngineImpl::Parallel;
      case SimEngine::Env:
      default: return sim::implFromEnv();
    }
}

/** simThreads, or the auto policy: one per core, at most one per node. */
unsigned
resolveThreads(const MachineConfig& config)
{
    if (config.simThreads != 0) {
        return config.simThreads;
    }
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) {
        hw = 2;
    }
    return std::min(hw, config.nodes);
}

} // namespace

/**
 * Adapter handing proto::RecoveryManager the machine services it needs
 * (directory walks, table rewrites, processor halts) while keeping the
 * proto layer free of a core dependency. Every call arrives in machine
 * context except toMachine(), which is the lane-crossing primitive.
 */
struct Machine::RecoveryHost final : proto::RecoveryManager::Host {
    explicit RecoveryHost(Machine& machine) : m(machine) {}

    Cycles now() const override { return m.engine_.now(); }
    unsigned nodeCount() const override { return m.config_.nodes; }

    std::vector<Vpn> mappedVpns() const override
    {
        return m.directory_.sortedVpns();
    }

    mem::CopyList& copyListOf(Vpn vpn) override
    {
        return m.directory_.copyList(vpn);
    }

    mem::CoherenceTables& tablesOf(NodeId node) override
    {
        return m.nodes_[node]->tables();
    }

    proto::CoherenceManager& cmOf(NodeId node) override
    {
        return m.nodes_[node]->cm();
    }

    void haltNode(NodeId node) override { m.haltNode(node); }

    void pageLost(Vpn vpn) override
    {
        m.lostPages_.insert(vpn);
        if (m.checker_) {
            m.checker_->onCopyListChanged(vpn);
        }
        m.shootdown(vpn);
        m.directory_.destroy(vpn);
    }

    void syncPageCopy(PhysPage from, PhysPage to) override
    {
        mem::LocalMemory& src = m.nodes_[from.node]->memory();
        mem::LocalMemory& dst = m.nodes_[to.node]->memory();
        for (Addr w = 0; w < kPageWords; ++w) {
            dst.write(to.frame, w, src.read(from.frame, w));
        }
        // The overwrite happened behind the survivor's cache.
        if (node::Cache* cache = m.nodes_[to.node]->cache()) {
            cache->flush();
        }
    }

    void copyListRebuilt(Vpn vpn) override
    {
        // removeOn() keeps the check observer installed; only the
        // generation bump and the translation shootdown remain.
        if (m.checker_) {
            m.checker_->onCopyListChanged(vpn);
        }
        m.shootdown(vpn);
    }

    void purgeLinks(NodeId dead) override
    {
        if (net::LinkLayer* link = m.network_->linkLayer()) {
            link->purgeNode(dead);
            link->sealNode(dead);
        }
    }

    void sealEpoch(NodeId dead, std::uint64_t epoch) override
    {
        if (m.checker_) {
            m.checker_->onEpochSealed(dead, epoch);
        }
    }

    void toMachine(std::function<void()> fn) override
    {
        m.engine_.scheduleMachine(m.engine_.lookahead(), std::move(fn));
    }

    Machine& m;
};

double
MachineReport::utilization(unsigned processors) const
{
    if (elapsed == 0 || processors == 0) {
        return 0.0;
    }
    return static_cast<double>(busyUseful) /
           (static_cast<double>(elapsed) * processors);
}

MachineReport
MachineReport::operator-(const MachineReport& baseline) const
{
    MachineReport d = *this;
    d.elapsed -= baseline.elapsed;
    d.localReads -= baseline.localReads;
    d.remoteReads -= baseline.remoteReads;
    d.localWrites -= baseline.localWrites;
    d.remoteWrites -= baseline.remoteWrites;
    d.localRmws -= baseline.localRmws;
    d.remoteRmws -= baseline.remoteRmws;
    d.updateMessages -= baseline.updateMessages;
    d.writeCarryingMessages -= baseline.writeCarryingMessages;
    d.totalMessages -= baseline.totalMessages;
    d.busyUseful -= baseline.busyUseful;
    d.ctxOverhead -= baseline.ctxOverhead;
    d.totalStall -= baseline.totalStall;
    return d;
}

Machine::Machine(MachineConfig config)
    : config_(std::move(config)),
      engine_(resolveImpl(config_)),
      topology_(1, 1, 1) // replaced below once the config is validated
{
    config_.validate();
    const unsigned threads = resolveThreads(config_);
    if (config_.simDomains != 0 && threads > 1 &&
        config_.simDomains % threads != 0) {
        // validate() can only check this when simThreads is explicit;
        // with the auto thread policy the count is known only here.
        PLUS_FATAL("simDomains (", config_.simDomains,
                   ") must be a multiple of the resolved thread count (",
                   threads, " from the auto policy); set simDomains to ",
                   (config_.simDomains / threads) * threads, " or ",
                   ((config_.simDomains / threads) + 1) * threads,
                   ", or pin simThreads explicitly");
    }
    engine_.configure(config_.nodes, threads, config_.simDomains);
    topology_ = net::Topology(config_.nodes, config_.meshWidth(),
                              config_.meshHeight());
    network_ = net::makeNetwork(engine_, topology_, config_.network);
    // The window bound of the parallel backend, and the deferral the
    // machine applies to node-triggered directory operations so every
    // backend executes them at the same cycle.
    engine_.setLookahead(network_->minCrossNodeLatency());
    if (engine_.parallelActive()) {
        installLookaheadMatrix();
    }
    if (config_.network.fault.enabled) {
        // Script arming is deferred to the first run(): setup work
        // (allocation, replication, settle) would otherwise consume
        // scripted faults whose cycles were meant for the workload.
        network_->enableFaults(config_.network.fault,
                               /*arm_script=*/false);
    }

    if (config_.check.invariants || config_.check.races) {
        check::Options opts;
        opts.invariants = config_.check.invariants;
        opts.races = config_.check.races;
        opts.panicOnRace = config_.check.panicOnRace;
        opts.traceDepth = config_.check.traceDepth;
        checker_ = std::make_unique<check::Checker>(opts, &engine_);
        checker_->setCopyListResolver(
            [this](Vpn vpn) -> const mem::CopyList* {
                return directory_.contains(vpn) ? &directory_.copyList(vpn)
                                                : nullptr;
            });
        if (checker_->invariants()) {
            checker_->invariants()->setProtocol(
                config_.resolvedProtocol() ==
                        CoherenceProtocol::WriteInvalidate
                    ? check::ProtocolMode::WriteInvalidate
                    : check::ProtocolMode::WriteUpdate);
        }
    }

    if (config_.telemetry.trace) {
        telemetry_ = std::make_unique<telemetry::Telemetry>(
            config_.telemetry, &engine_);
        if (engine_.parallelActive()) {
            deferNetObserver_ = std::make_unique<check::DeferringNetObserver>(
                engine_, telemetry_.get());
            network_->setTelemetryObserver(deferNetObserver_.get());
        } else {
            network_->setTelemetryObserver(telemetry_.get());
        }
    }

    // Checker and tracer share the per-subsystem observer slots; when
    // both are live a tee fans each event out, keeping the disabled cost
    // at one null-pointer branch.
    check::Observer* observer = nullptr;
    if (checker_ && telemetry_) {
        observerTee_ = std::make_unique<check::TeeObserver>(
            checker_.get(), telemetry_.get());
        observer = observerTee_.get();
    } else if (checker_) {
        observer = checker_.get();
    } else if (telemetry_) {
        observer = telemetry_.get();
    }
    if (observer != nullptr && engine_.parallelActive()) {
        // Worker lanes must not touch the order-sensitive checker and
        // tracer directly; buffer their hooks for key-order replay.
        deferObserver_ = std::make_unique<check::DeferringObserver>(
            engine_, observer);
        observer = deferObserver_.get();
    }

    nodes_.reserve(config_.nodes);
    for (NodeId id = 0; id < config_.nodes; ++id) {
        nodes_.push_back(std::make_unique<node::Node>(
            id, config_, engine_, *network_,
            std::numeric_limits<std::uint64_t>::max()));
        node::Node& n = *nodes_.back();
        n.cm().setTranslator([this, id](Vpn vpn) {
            return freshTranslation(id, vpn);
        });
        n.cm().setPageCopyDoneHandler([this](std::uint32_t copy_id) {
            // Completion mutates the directory and every node's tables:
            // machine-lane work, deferred by the lookahead so it runs
            // stop-the-world at the same cycle on every backend.
            engine_.scheduleMachine(engine_.lookahead(), [this, copy_id] {
                onPageCopyDone(copy_id);
            });
        });
        n.processor().setTranslator([this, id](Vpn vpn) {
            return translateFor(id, vpn);
        });
        if (observer) {
            n.cm().setCheckObserver(observer);
            n.processor().setCheckObserver(observer);
        }
    }

    // Crash recovery: arm the coherence managers' in-flight-op metadata,
    // route fail-stop crashes (fault script) and peer deaths (link
    // retransmit exhaustion) into the recovery manager.
    if (config_.network.fault.enabled && config_.network.fault.recover) {
        recoveryHost_ = std::make_unique<RecoveryHost>(*this);
        recovery_ = std::make_unique<proto::RecoveryManager>(
            *recoveryHost_, config_.nodes);
        for (auto& n : nodes_) {
            n->cm().setRecoveryArmed(true);
        }
        if (net::LinkLayer* link = network_->linkLayer()) {
            link->setPeerDeathHandler([this](NodeId dead) {
                recovery_->onPeerDeath(dead);
            });
        }
    }
    if (net::FaultInjector* inj = network_->faultInjector()) {
        inj->setCrashHandler([this](NodeId node) {
            // Machine context (the script entry's lane): the checker
            // learns of the crash first so recovery's epoch seal always
            // follows it in the event stream.
            if (checker_) {
                checker_->onNodeCrashed(node);
            }
            if (recovery_) {
                recovery_->onNodeCrashed(node);
            } else {
                // No recovery armed: fail-stop still halts the node's
                // processor; survivors panic on retransmit exhaustion.
                haltNode(node);
            }
        });
    }

    // Failure diagnostics: the reliable link and the per-node retry
    // bounds append the machine's dossier to their panics so the first
    // report already says what the fabric was doing.
    auto dumper = [this] { return diagnosticDump(); };
    network_->setTraceDumper(dumper);
    for (auto& n : nodes_) {
        n->cm().setTraceDumper(dumper);
    }

    if (config_.watchdog.enabled) {
        watchdog_ = std::make_unique<sim::Watchdog>(
            engine_, config_.watchdog.windowCycles,
            [this]() -> std::uint64_t {
                // Forward progress = work the fabric retired, not work it
                // attempted: delivered packets plus completed processor
                // operations. Retransmissions of the same lost frame do
                // not move this number.
                std::uint64_t p = network_->stats().packets;
                for (const auto& n : nodes_) {
                    const node::ProcessorStats& ps =
                        n->processor().stats();
                    p += ps.reads + ps.writes + ps.rmwIssues + ps.fences;
                }
                if (recovery_) {
                    // Crash detection is retransmit-driven: while links
                    // probe a dead peer nothing retires, but the machine
                    // is making progress toward the peer-death signal.
                    if (const net::LinkLayer* link = network_->linkLayer()) {
                        p += link->stats().retransmits;
                    }
                }
                return p;
            },
            dumper);
    }

    registerMetrics();
    updateMachineMailHint();
}

Machine::~Machine() = default;

void
Machine::installLookaheadMatrix()
{
    const unsigned dcount = engine_.domains();
    const std::size_t cells =
        static_cast<std::size_t>(dcount) * dcount;
    // Minimum hop distance between each pair of domain node ranges.
    // O(nodes^2), ctor-only; machines are at most a few thousand nodes.
    std::vector<unsigned> min_hops(cells, ~0U);
    for (NodeId a = 0; a < config_.nodes; ++a) {
        const unsigned da = engine_.domainOfLane(a);
        for (NodeId b = 0; b < config_.nodes; ++b) {
            const unsigned db = engine_.domainOfLane(b);
            if (da == db) {
                continue;
            }
            unsigned& cell = min_hops[da * dcount + db];
            cell = std::min(cell, topology_.distance(a, b));
        }
    }
    std::vector<Cycles> matrix(cells, 0);
    for (unsigned i = 0; i < dcount; ++i) {
        for (unsigned j = 0; j < dcount; ++j) {
            if (i != j) {
                matrix[i * dcount + j] =
                    network_->crossNodeFloor(min_hops[i * dcount + j]);
            }
        }
    }
    engine_.setLookaheadMatrix(std::move(matrix));
}

void
Machine::updateMachineMailHint()
{
    // With recovery armed, any node lane can post a peer-death recovery
    // event at any time, so the hint must stay on for the whole run.
    engine_.setNodeMachineMailHint(pendingCopies_ != 0 ||
                                   replThreshold_ != 0 ||
                                   recovery_ != nullptr);
}

std::string
Machine::diagnosticDump()
{
    std::ostringstream os;
    os << "\n--- machine diagnostics ---"
       << "\ncycle " << engine_.now() << ", " << engine_.pendingEvents()
       << " event(s) pending, " << unfinishedThreads_.load()
       << " thread(s) unfinished";
    const net::NetworkStats& net = network_->stats();
    os << "\nnet: " << net.packets << " delivered, " << net.dropped
       << " dropped, " << net.backpressureStalls << " backpressure stalls";
    if (const net::FaultInjector* inj = network_->faultInjector()) {
        const net::FaultStats& f = inj->stats();
        os << "\nfaults: " << f.dropped << " dropped, " << f.corrupted
           << " corrupted, " << f.duplicated << " duplicated, "
           << f.delayed << " delayed, " << f.linkKills << " link kills, "
           << f.nodeKills << " node kills";
    }
    if (const net::LinkLayer* link = network_->linkLayer()) {
        const net::LinkStats& l = link->stats();
        os << "\nlink: " << l.dataFrames << " frames, " << l.retransmits
           << " retransmits, " << l.dupSuppressed << " dups suppressed, "
           << l.crcDrops << " crc drops, " << link->inFlight()
           << " unacked in flight";
        if (l.peerDeaths != 0 || l.sealedDrops != 0) {
            os << ", " << l.peerDeaths << " peer deaths, "
               << l.sealedDrops << " sealed drops";
        }
    }
    if (recovery_) {
        os << recovery_->panicSummary();
    }
    if (telemetry_) {
        os << "\nrecent trace events:" << telemetry_->renderRecent(64);
    }
    if (checker_) {
        os << "\n" << checker_->trace().render();
    }
    return os.str();
}

void
Machine::registerMetrics()
{
    // Machine-wide aggregates: each getter re-sums the per-node structs
    // at snapshot time, so registration costs the hot path nothing.
    auto sumCm = [this](std::uint64_t proto::CmStats::* field) {
        return [this, field] {
            std::uint64_t total = 0;
            for (const auto& n : nodes_) {
                total += n->cm().stats().*field;
            }
            return total;
        };
    };
    metrics_.addCounter("cm.localReads",
                        sumCm(&proto::CmStats::localReads));
    metrics_.addCounter("cm.remoteReads",
                        sumCm(&proto::CmStats::remoteReads));
    metrics_.addCounter("cm.localWrites",
                        sumCm(&proto::CmStats::localWrites));
    metrics_.addCounter("cm.remoteWrites",
                        sumCm(&proto::CmStats::remoteWrites));
    metrics_.addCounter("cm.localRmws", sumCm(&proto::CmStats::localRmws));
    metrics_.addCounter("cm.remoteRmws",
                        sumCm(&proto::CmStats::remoteRmws));
    metrics_.addCounter("cm.retries", sumCm(&proto::CmStats::retries));
    metrics_.addCounter("cm.recoveryAborts",
                        sumCm(&proto::CmStats::recoveryAborts));
    metrics_.addCounter("cm.staleAcks", sumCm(&proto::CmStats::staleAcks));
    metrics_.addCounter("proto.invalidations",
                        sumCm(&proto::CmStats::invalidations));
    metrics_.addCounter("proto.refetches",
                        sumCm(&proto::CmStats::refetches));
    metrics_.addCounter("proto.ownershipTransfers",
                        sumCm(&proto::CmStats::ownershipTransfers));
    metrics_.addCounter("cm.busyCycles", [this] {
        std::uint64_t total = 0;
        for (const auto& n : nodes_) {
            total += n->cm().stats().busyCycles;
        }
        return total;
    });
    for (std::size_t t = 0;
         t < static_cast<std::size_t>(proto::MsgType::NumTypes); ++t) {
        const auto type = static_cast<proto::MsgType>(t);
        metrics_.addCounter(
            std::string("cm.sent.") + proto::toString(type),
            [this, type] {
                std::uint64_t total = 0;
                for (const auto& n : nodes_) {
                    total += n->cm().stats().sentOf(type);
                }
                return total;
            });
    }

    auto sumProcEvents = [this](std::uint64_t node::ProcessorStats::* f) {
        return [this, f] {
            std::uint64_t total = 0;
            for (const auto& n : nodes_) {
                total += n->processor().stats().*f;
            }
            return total;
        };
    };
    metrics_.addCounter("proc.reads",
                        sumProcEvents(&node::ProcessorStats::reads));
    metrics_.addCounter("proc.writes",
                        sumProcEvents(&node::ProcessorStats::writes));
    metrics_.addCounter("proc.rmwIssues",
                        sumProcEvents(&node::ProcessorStats::rmwIssues));
    metrics_.addCounter("proc.fences",
                        sumProcEvents(&node::ProcessorStats::fences));
    metrics_.addCounter("proc.ctxSwitches",
                        sumProcEvents(&node::ProcessorStats::ctxSwitches));
    metrics_.addCounter("proc.pageFaults",
                        sumProcEvents(&node::ProcessorStats::pageFaults));
    metrics_.addCounter(
        "proc.pageLostFaults",
        sumProcEvents(&node::ProcessorStats::pageLostFaults));

    auto sumProcCycles = [this](Cycles node::ProcessorStats::* f) {
        return [this, f]() -> std::uint64_t {
            Cycles total = 0;
            for (const auto& n : nodes_) {
                total += n->processor().stats().*f;
            }
            return total;
        };
    };
    metrics_.addCounter("proc.cycles.compute",
                        sumProcCycles(&node::ProcessorStats::compute));
    metrics_.addCounter("proc.cycles.memBusy",
                        sumProcCycles(&node::ProcessorStats::memBusy));
    metrics_.addCounter("proc.cycles.issueBusy",
                        sumProcCycles(&node::ProcessorStats::issueBusy));
    metrics_.addCounter("proc.cycles.verifyBusy",
                        sumProcCycles(&node::ProcessorStats::verifyBusy));
    metrics_.addCounter("proc.cycles.ctxOverhead",
                        sumProcCycles(&node::ProcessorStats::ctxOverhead));
    for (unsigned k = 1;
         k < static_cast<unsigned>(node::StallKind::NumKinds); ++k) {
        const auto kind = static_cast<node::StallKind>(k);
        metrics_.addCounter(
            std::string("proc.stall.") + node::toString(kind),
            [this, k] {
                std::uint64_t total = 0;
                for (const auto& n : nodes_) {
                    total += n->processor().stats().stall[k];
                }
                return total;
            });
    }

    auto sumCache = [this](std::uint64_t node::Cache::Stats::* f) {
        return [this, f] {
            std::uint64_t total = 0;
            for (const auto& n : nodes_) {
                if (const node::Cache* cache = n->cache()) {
                    total += cache->stats().*f;
                }
            }
            return total;
        };
    };
    metrics_.addCounter("cache.hits",
                        sumCache(&node::Cache::Stats::hits));
    metrics_.addCounter("cache.misses",
                        sumCache(&node::Cache::Stats::misses));
    metrics_.addCounter("cache.evictions",
                        sumCache(&node::Cache::Stats::evictions));
    metrics_.addCounter("cache.snoopUpdates",
                        sumCache(&node::Cache::Stats::snoopUpdates));
    metrics_.addCounter("cache.snoopInvalidates",
                        sumCache(&node::Cache::Stats::snoopInvalidates));

    metrics_.addGauge("pending.maxInFlight", [this] {
        unsigned high = 0;
        for (const auto& n : nodes_) {
            high = std::max(high, n->cm().pendingWrites().maxInFlight());
        }
        return static_cast<double>(high);
    });
    metrics_.addGauge("delayed.maxInFlight", [this] {
        unsigned high = 0;
        for (const auto& n : nodes_) {
            high = std::max(high, n->cm().delayedOps().maxInFlight());
        }
        return static_cast<double>(high);
    });

    metrics_.addCounter("net.packets",
                        [this] { return network_->stats().packets; });
    metrics_.addCounter("net.payloadBytes",
                        [this] { return network_->stats().payloadBytes; });
    metrics_.addCounter("net.totalHops",
                        [this] { return network_->stats().totalHops; });
    metrics_.addDistribution("net.latency", &network_->latencyHistogram());
    metrics_.addDistribution("net.queueing",
                             &network_->queueingHistogram());
    metrics_.addCounter("net.dropped",
                        [this] { return network_->stats().dropped; });
    metrics_.addCounter("net.backpressureStalls", [this] {
        return network_->stats().backpressureStalls;
    });

    // Fault / reliable-link counters read through the accessors at
    // snapshot time: zero (and zero cost) until enableFaults() ran.
    auto faultStat = [this](std::uint64_t net::FaultStats::* field) {
        return [this, field]() -> std::uint64_t {
            const net::FaultInjector* inj = network_->faultInjector();
            return inj ? inj->stats().*field : 0;
        };
    };
    metrics_.addCounter("net.fault.dropped",
                        faultStat(&net::FaultStats::dropped));
    metrics_.addCounter("net.fault.corrupted",
                        faultStat(&net::FaultStats::corrupted));
    metrics_.addCounter("net.fault.duplicated",
                        faultStat(&net::FaultStats::duplicated));
    metrics_.addCounter("net.fault.delayed",
                        faultStat(&net::FaultStats::delayed));
    auto linkStat = [this](std::uint64_t net::LinkStats::* field) {
        return [this, field]() -> std::uint64_t {
            const net::LinkLayer* link = network_->linkLayer();
            return link ? link->stats().*field : 0;
        };
    };
    metrics_.addCounter("net.link.retransmits",
                        linkStat(&net::LinkStats::retransmits));
    metrics_.addCounter("net.link.acksSent",
                        linkStat(&net::LinkStats::acksSent));
    metrics_.addCounter("net.link.dupSuppressed",
                        linkStat(&net::LinkStats::dupSuppressed));
    metrics_.addCounter("net.link.crcDrops",
                        linkStat(&net::LinkStats::crcDrops));
    metrics_.addCounter("net.link.peerDeaths",
                        linkStat(&net::LinkStats::peerDeaths));
    metrics_.addCounter("net.link.sealedDrops",
                        linkStat(&net::LinkStats::sealedDrops));
    metrics_.addCounter("net.fault.nodeCrashes",
                        faultStat(&net::FaultStats::nodeCrashes));

    // Crash-recovery outcomes (see docs/ROBUSTNESS.md "Crash recovery").
    if (recovery_) {
        auto recStat = [this](std::uint64_t proto::RecoveryStats::* field) {
            return [this, field] { return recovery_->stats().*field; };
        };
        metrics_.addCounter(
            "recovery.epochs",
            recStat(&proto::RecoveryStats::nodeRecoveries));
        metrics_.addCounter(
            "recovery.pagesRemastered",
            recStat(&proto::RecoveryStats::pagesRemastered));
        metrics_.addCounter(
            "recovery.copyListsRepaired",
            recStat(&proto::RecoveryStats::copyListsRepaired));
        metrics_.addCounter("recovery.pagesLost",
                            recStat(&proto::RecoveryStats::pagesLost));
        metrics_.addCounter("recovery.abortedOps",
                            recStat(&proto::RecoveryStats::abortedOps));
        metrics_.addCounter(
            "recovery.lostCompletions",
            recStat(&proto::RecoveryStats::lostCompletions));
        metrics_.addDistribution("recovery.latency",
                                 &recovery_->latencyHistogram());
    }

    // NACK re-translation retries (see CostModel::nackRetryLimit).
    metrics_.addCounter("proto.nack_retries",
                        sumCm(&proto::CmStats::retries));
    metrics_.addGauge("proto.nack_retries.max", [this] {
        std::uint64_t high = 0;
        for (const auto& n : nodes_) {
            high = std::max(high, n->cm().stats().nackRetryHighWater);
        }
        return static_cast<double>(high);
    });

    metrics_.addGauge("machine.pendingPageCopies", [this] {
        return static_cast<double>(pendingCopies_);
    });

    // Engine health: how hard the event core itself is working (see
    // docs/PERF.md for what healthy numbers look like).
    metrics_.addCounter("sim.eventsScheduled",
                        [this] { return engine_.stats().scheduled; });
    metrics_.addCounter("sim.eventsExecuted",
                        [this] { return engine_.stats().executed; });
    metrics_.addCounter("sim.eventsCancelled",
                        [this] { return engine_.stats().cancelled; });
    metrics_.addCounter("sim.wheelCascades",
                        [this] { return engine_.stats().cascades; });
    metrics_.addGauge("sim.slabHighWater", [this] {
        return static_cast<double>(engine_.stats().slabHighWater);
    });
    metrics_.addGauge("sim.slabSlots", [this] {
        return static_cast<double>(engine_.stats().slabSlots);
    });

    if (telemetry_) {
        telemetry_->registerMetrics(metrics_);
    }
}

void
Machine::writeTraceJson(std::ostream& os) const
{
    PLUS_ASSERT(telemetry_,
                "writeTraceJson needs MachineConfig::telemetry.trace");
    telemetry::writePerfettoTrace(os, *telemetry_, config_.nodes);
}

void
Machine::writeStatsJson(std::ostream& os) const
{
    telemetry::writeStatsJson(os, metrics_.snapshot(engine_.now()),
                              telemetry_.get());
}

node::Node&
Machine::nodeAt(NodeId id)
{
    PLUS_ASSERT(id < nodes_.size(), "node ", id, " out of range");
    return *nodes_[id];
}

// --------------------------------------------------------------------------
// Translation
// --------------------------------------------------------------------------

node::Processor::Translation
Machine::translateFor(NodeId node, Vpn vpn)
{
    if (!lostPages_.empty() &&
        lostPages_.find(vpn) != lostPages_.end()) {
        // Degraded mode: the page lost its last copy to a crash. The
        // processor completes the access with kPageLostValue in bounded
        // time instead of faulting on the destroyed mapping.
        return {PhysPage{}, false, true};
    }
    mem::PageTable& pt = nodes_[node]->pageTable();
    if (auto hit = pt.lookup(vpn)) {
        return {*hit, false, false};
    }
    return {freshTranslation(node, vpn), true, false};
}

PhysPage
Machine::freshTranslation(NodeId node, Vpn vpn)
{
    if (!directory_.contains(vpn)) {
        if (lostPages_.find(vpn) != lostPages_.end()) {
            PLUS_FATAL("protocol translation of lost page ", vpn,
                       " from node ", node,
                       " — lost accesses must complete degraded, never "
                       "re-translate");
        }
        PLUS_FATAL("access to unmapped virtual page ", vpn,
                   " (address ", pageBase(vpn), ") from node ", node);
    }
    const mem::CopyList& cl = directory_.copyList(vpn);
    // Map the closest copy, like the paper's kernel.
    PhysPage best = cl.master();
    unsigned best_dist = topology_.distance(node, best.node);
    for (const PhysPage& copy : cl.copies()) {
        const unsigned d = topology_.distance(node, copy.node);
        if (d < best_dist) {
            best = copy;
            best_dist = d;
        }
    }
    nodes_[node]->pageTable().install(vpn, best);
    return best;
}

void
Machine::shootdown(Vpn vpn)
{
    for (auto& n : nodes_) {
        n->pageTable().invalidate(vpn);
    }
}

void
Machine::haltNode(NodeId node)
{
    PLUS_ASSERT(node < nodes_.size(), "halt of unknown node ", node);
    const unsigned written_off = nodes_[node]->processor().halt();
    if (written_off == 0) {
        return;
    }
    // The written-off threads will never hit their completion handler;
    // settle the liveness accounting (and the watchdog) for them here.
    if (unfinishedThreads_.fetch_sub(written_off) == written_off &&
        watchdog_) {
        watchdog_->stop();
    }
}

// --------------------------------------------------------------------------
// Memory management
// --------------------------------------------------------------------------

std::size_t
Machine::pagesFor(std::size_t bytes)
{
    return (bytes + kPageBytes - 1) / kPageBytes;
}

Addr
Machine::alloc(std::size_t bytes, NodeId home)
{
    PLUS_ASSERT(home < nodes_.size(), "alloc on unknown node ", home);
    const std::size_t pages = std::max<std::size_t>(1, pagesFor(bytes));
    const Vpn first = nextVpn_;
    for (std::size_t i = 0; i < pages; ++i) {
        const Vpn vpn = nextVpn_++;
        const FrameId frame = nodes_[home]->memory().allocFrame();
        const PhysPage master{home, frame};
        directory_.create(vpn, master);
        if (checker_) {
            directory_.copyList(vpn).setCheckObserver(checker_.get());
        }
        nodes_[home]->tables().setMaster(frame, master);
    }
    PLUS_LOG(LogComponent::Machine, "alloc ", pages, " page(s) at vpn ",
             first, " home n", home);
    return pageBase(first);
}

const mem::CopyList&
Machine::copyListOf(Addr addr) const
{
    return directory_.copyList(pageOf(addr));
}

void
Machine::replicate(Addr addr, NodeId target)
{
    PLUS_ASSERT(target < nodes_.size(), "replicate on unknown node");
    const Vpn vpn = pageOf(addr);
    if (directory_.copyList(vpn).hasCopyOn(target)) {
        return;
    }
    // Only one copy of a page may be in flight: a second new copy could
    // anchor on (and read from) a copy that is not yet filled, and the
    // FIFO argument that keeps copy data and updates ordered only holds
    // between a copy and its direct predecessor. At setup time we simply
    // drain the first copy; online (competitive replication) the second
    // request is dropped — the counters will overflow again.
    for (const auto& [id, rec] : copiesInFlight_) {
        (void)id;
        if (rec.vpn == vpn) {
            if (started_) {
                return;
            }
            settle();
            break;
        }
    }
    mem::CopyList& cl = directory_.copyList(vpn);
    if (cl.hasCopyOn(target)) {
        return;
    }

    const FrameId frame = nodes_[target]->memory().allocFrame();
    const PhysPage new_copy{target, frame};

    // Insert after the existing copy closest to the target ("a convenient
    // point"): that copy is also the source the hardware copies from.
    // Under write-invalidate the anchor must be the master: only it
    // knows which words are invalid everywhere (the batch validity
    // mask), and master-as-predecessor keeps batch data and subsequent
    // invalidation chains on one FIFO channel.
    PhysPage anchor = cl.master();
    if (config_.resolvedProtocol() != CoherenceProtocol::WriteInvalidate) {
        unsigned best_dist = topology_.distance(target, anchor.node);
        for (const PhysPage& copy : cl.copies()) {
            const unsigned d = topology_.distance(target, copy.node);
            if (d < best_dist) {
                anchor = copy;
                best_dist = d;
            }
        }
    }
    const std::optional<PhysPage> successor = cl.successorOf(anchor);
    cl.insertAfter(anchor, new_copy);
    if (checker_) {
        checker_->onCopyListChanged(vpn);
    }

    // Make the new copy visible to the coherence hardware *before* the
    // data copy starts, so concurrent writes flow through it.
    nodes_[target]->tables().setMaster(frame, cl.master());
    nodes_[target]->tables().setNextCopy(frame, successor);
    nodes_[anchor.node]->tables().setNextCopy(anchor.frame, new_copy);

    const std::uint32_t copy_id = nextCopyId_++;
    copiesInFlight_.emplace(copy_id, PendingCopy{vpn, target,
                                                 kInvalidNode});
    ++pendingCopies_;
    updateMachineMailHint();
    // The copy engine's events belong to the anchor node's lane.
    engine_.withNodeContext(anchor.node, [&] {
        nodes_[anchor.node]->cm().startPageCopy(anchor.frame, new_copy,
                                                copy_id, vpn);
    });
    PLUS_LOG(LogComponent::Machine, "replicate vpn ", vpn, " -> n", target,
             " from n", anchor.node, " (copy ", copy_id, ")");
}

void
Machine::replicateRange(Addr addr, std::size_t bytes, NodeId target)
{
    const Vpn first = pageOf(addr);
    const Vpn last = pageOf(addr + (bytes ? bytes - 1 : 0));
    for (Vpn vpn = first; vpn <= last; ++vpn) {
        replicate(pageBase(vpn), target);
    }
}

void
Machine::onPageCopyDone(std::uint32_t copy_id)
{
    auto it = copiesInFlight_.find(copy_id);
    PLUS_ASSERT(it != copiesInFlight_.end(), "unknown page copy finished");
    const PendingCopy rec = it->second;
    copiesInFlight_.erase(it);
    --pendingCopies_;
    updateMachineMailHint();

    // The new copy is fully written: nodes may now switch their address
    // translation to it. Lazy page tables make this a shootdown; each
    // node refaults onto its (possibly new) closest copy.
    shootdown(rec.vpn);
    PLUS_LOG(LogComponent::Machine, "copy ", copy_id, " of vpn ", rec.vpn,
             " complete on n", rec.target);

    if (rec.deleteAfter != kInvalidNode) {
        deleteCopy(pageBase(rec.vpn), rec.deleteAfter);
    }
}

void
Machine::deleteCopy(Addr addr, NodeId node)
{
    const Vpn vpn = pageOf(addr);
    mem::CopyList& cl = directory_.copyList(vpn);
    PLUS_ASSERT(cl.hasCopyOn(node), "node holds no copy to delete");
    PLUS_ASSERT(cl.size() > 1, "cannot delete the only copy of a page");
    PLUS_ASSERT(cl.master().node != node,
                "online deletion of the master copy is not supported; "
                "migrate the master only at quiescence");
    for (const auto& [id, rec] : copiesInFlight_) {
        (void)id;
        PLUS_ASSERT(rec.vpn != vpn,
                    "cannot delete a copy while the page is being copied");
    }

    const PhysPage victim = *cl.copyOn(node);
    // Find the predecessor before splicing.
    PhysPage predecessor = cl.master();
    for (const PhysPage& copy : cl.copies()) {
        if (copy == victim) {
            break;
        }
        predecessor = copy;
    }
    const std::optional<PhysPage> successor = cl.successorOf(victim);
    cl.removeOn(node);
    if (checker_) {
        checker_->onCopyListChanged(vpn);
    }

    // Splice first (future updates bypass the victim), shoot down the
    // mappings, then flush via the predecessor so in-flight updates the
    // predecessor already forwarded are applied before the frame dies.
    nodes_[predecessor.node]->tables().setNextCopy(predecessor.frame,
                                                   successor);
    shootdown(vpn);
    if (node::Cache* cache = nodes_[node]->cache()) {
        cache->flush();
    }
    nodes_[predecessor.node]->cm().osFlushRemoteFrame(victim);
    PLUS_LOG(LogComponent::Machine, "delete copy of vpn ", vpn, " on n",
             node);
}

void
Machine::reorderCopyListQuiesced(Addr addr)
{
    PLUS_ASSERT(engine_.pendingEvents() == 0 && pendingCopies_ == 0,
                "copy-list reordering requires quiescence");
    const Vpn vpn = pageOf(addr);
    mem::CopyList& cl = directory_.copyList(vpn);
    if (cl.size() <= 2) {
        return;
    }
    cl.orderForPathLength(topology_);
    if (checker_) {
        checker_->onCopyListChanged(vpn);
    }
    const std::vector<PhysPage> order = cl.copies();
    for (std::size_t i = 0; i < order.size(); ++i) {
        mem::CoherenceTables& tables = nodes_[order[i].node]->tables();
        tables.setMaster(order[i].frame, cl.master());
        tables.setNextCopy(order[i].frame,
                           i + 1 < order.size()
                               ? std::optional<PhysPage>(order[i + 1])
                               : std::nullopt);
    }
    PLUS_LOG(LogComponent::Machine, "reordered copy-list of vpn ", vpn,
             " to path length ", cl.pathLength(topology_));
}

void
Machine::promoteMasterQuiesced(Addr addr, NodeId node)
{
    PLUS_ASSERT(engine_.pendingEvents() == 0 && pendingCopies_ == 0,
                "master promotion requires quiescence");
    const Vpn vpn = pageOf(addr);
    mem::CopyList& cl = directory_.copyList(vpn);
    PLUS_ASSERT(cl.hasCopyOn(node), "promotion target holds no copy");
    if (cl.master().node == node) {
        return;
    }
    const PhysPage old_master = cl.master();

    // Move the target to the head, keep the remaining order, then
    // rewrite every copy's master/next-copy table entries.
    const PhysPage new_master = *cl.copyOn(node);
    if (config_.resolvedProtocol() == CoherenceProtocol::WriteInvalidate) {
        // The promoted copy may hold invalidated words the old master
        // never pushed back (invalidate chains carry no values). The
        // machine is quiesced, so sync the full page untimed before the
        // new master becomes the page's authority.
        mem::LocalMemory& src = nodes_[old_master.node]->memory();
        mem::LocalMemory& dst = nodes_[node]->memory();
        for (Addr off = 0; off < kPageWords; ++off) {
            dst.write(new_master.frame, off,
                      src.read(old_master.frame, off));
        }
        if (node::Cache* cache = nodes_[node]->cache()) {
            cache->flush();
        }
    }
    std::vector<PhysPage> order;
    order.push_back(new_master);
    for (const PhysPage& copy : cl.copies()) {
        if (!(copy == new_master)) {
            order.push_back(copy);
        }
    }
    cl.removeOn(node);
    // Rebuild: clear and reinsert in the new order.
    while (cl.size() > 1) {
        cl.removeOn(cl.copies().back().node);
    }
    const PhysPage old_head = cl.master();
    cl.removeOn(old_head.node);
    PLUS_ASSERT(cl.empty(), "copy-list rebuild lost track");
    for (const PhysPage& copy : order) {
        if (cl.empty()) {
            // Copy-assignment wipes the observer; re-install it below.
            cl = mem::CopyList(copy);
        } else {
            cl.append(copy);
        }
    }
    if (checker_) {
        cl.setCheckObserver(checker_.get());
        checker_->onCopyListChanged(vpn);
    }

    for (std::size_t i = 0; i < order.size(); ++i) {
        mem::CoherenceTables& tables = nodes_[order[i].node]->tables();
        tables.setMaster(order[i].frame, new_master);
        tables.setNextCopy(order[i].frame,
                           i + 1 < order.size()
                               ? std::optional<PhysPage>(order[i + 1])
                               : std::nullopt);
    }
    if (config_.resolvedProtocol() == CoherenceProtocol::WriteInvalidate) {
        // Full-page sync above revalidated the new master; the old
        // master's invalid-everywhere knowledge is stale topology.
        nodes_[node]->cm().protocol().onMasterPromoted(new_master.frame,
                                                       vpn);
        nodes_[old_master.node]->cm().protocol().onMasterDemoted(
            old_master.frame);
    }
    shootdown(vpn);
    PLUS_LOG(LogComponent::Machine, "promoted master of vpn ", vpn,
             " to n", node);
}

void
Machine::migrate(Addr addr, NodeId from, NodeId to)
{
    const Vpn vpn = pageOf(addr);
    mem::CopyList& cl = directory_.copyList(vpn);
    PLUS_ASSERT(cl.hasCopyOn(from), "migrate: source holds no copy");
    if (from == to) {
        return;
    }
    if (cl.hasCopyOn(to)) {
        deleteCopy(addr, from);
        return;
    }
    replicate(addr, to);
    // Find the copy id just created and arm the deferred deletion.
    for (auto& [id, rec] : copiesInFlight_) {
        (void)id;
        if (rec.vpn == vpn && rec.target == to) {
            rec.deleteAfter = from;
            return;
        }
    }
    PLUS_PANIC("migration lost its page copy");
}

// --------------------------------------------------------------------------
// Untimed backdoors
// --------------------------------------------------------------------------

PhysAddr
Machine::masterOf(Addr addr) const
{
    const Vpn vpn = pageOf(addr);
    PLUS_ASSERT(directory_.contains(vpn), "peek/poke of unmapped page");
    return PhysAddr{directory_.copyList(vpn).master(), wordOffsetOf(addr)};
}

Word
Machine::peek(Addr addr) const
{
    const PhysAddr phys = masterOf(addr);
    return nodes_[phys.page.node]->memory().read(phys.page.frame,
                                                 phys.wordOffset);
}

void
Machine::poke(Addr addr, Word value)
{
    const Vpn vpn = pageOf(addr);
    PLUS_ASSERT(directory_.contains(vpn), "poke of unmapped page");
    const Addr off = wordOffsetOf(addr);
    for (const PhysPage& copy : directory_.copyList(vpn).copies()) {
        nodes_[copy.node]->memory().write(copy.frame, off, value);
    }
}

// --------------------------------------------------------------------------
// Threads and execution
// --------------------------------------------------------------------------

ThreadId
Machine::spawn(NodeId node, ThreadBody body)
{
    PLUS_ASSERT(node < nodes_.size(), "spawn on unknown node ", node);
    PLUS_ASSERT(!started_, "spawn after run() is not supported");
    const ThreadId tid = static_cast<ThreadId>(threads_.size());
    auto context = std::make_unique<Context>(*this,
                                             nodes_[node]->processor(),
                                             tid);
    Context* ctx = context.get();
    if (nodes_[node]->processor().halted()) {
        // Fail-stop: the node crashed before this thread could start.
        // Written off immediately, like a thread caught mid-run by the
        // crash — it never executes and never counts as unfinished.
        PLUS_LOG(LogComponent::Machine, "spawn of thread ", tid, " on crashed n",
                 node, " written off");
        threads_.push_back(ThreadRecord{tid, node, std::move(context)});
        return tid;
    }
    ++unfinishedThreads_;
    nodes_[node]->processor().addThread(
        tid, [this, ctx, body = std::move(body)] {
            body(*ctx);
            if (--unfinishedThreads_ == 0 && watchdog_) {
                // Last thread done: stop watching so the watchdog's own
                // check event cannot outlive the workload. Flag-based —
                // this runs on a worker lane under the parallel backend.
                watchdog_->stop();
            }
        });
    threads_.push_back(ThreadRecord{tid, node, std::move(context)});
    return tid;
}

void
Machine::run(Cycles max_cycles)
{
    started_ = true;
    if (net::FaultInjector* injector = network_->faultInjector()) {
        injector->scheduleScript(); // idempotent; cycles now count from here
    }
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        // Thread-dispatch events get node-deterministic keys and lanes.
        engine_.withNodeContext(id, [&] {
            nodes_[id]->processor().start();
        });
    }
    if (watchdog_ && unfinishedThreads_ > 0) {
        watchdog_->arm();
    }
    engine_.runUntil(max_cycles);
    if (watchdog_) {
        watchdog_->cancelNow();
    }
    if (unfinishedThreads_ > 0) {
        if (engine_.pendingEvents() > 0) {
            PLUS_FATAL("machine exceeded the cycle cap (", max_cycles,
                       ") with ", unfinishedThreads_.load(),
                       " thread(s) unfinished — livelock?");
        }
        PLUS_FATAL("deadlock: no events pending but ",
                   unfinishedThreads_.load(),
                   " thread(s) are still blocked");
    }
}

void
Machine::settle()
{
    if (watchdog_ && engine_.pendingEvents() > 0) {
        watchdog_->arm();
    }
    engine_.run();
    if (watchdog_) {
        watchdog_->cancelNow();
    }
}

MachineReport
Machine::report() const
{
    MachineReport r;
    r.elapsed = engine_.now();
    for (const auto& n : nodes_) {
        const proto::CmStats& cm = n->cm().stats();
        r.localReads += cm.localReads;
        r.remoteReads += cm.remoteReads;
        r.localWrites += cm.localWrites;
        r.remoteWrites += cm.remoteWrites;
        r.localRmws += cm.localRmws;
        r.remoteRmws += cm.remoteRmws;
        r.updateMessages += cm.sentOf(proto::MsgType::UpdateReq);
        r.writeCarryingMessages +=
            cm.sentOf(proto::MsgType::UpdateReq) +
            cm.sentOf(proto::MsgType::WriteReq) +
            cm.sentOf(proto::MsgType::RmwReq);
        r.totalMessages += cm.totalSent();
        const node::ProcessorStats& ps = n->processor().stats();
        r.busyUseful += ps.busyUseful();
        r.ctxOverhead += ps.ctxOverhead;
        r.totalStall += ps.totalStall();
    }
    return r;
}

void
Machine::enableCompetitiveReplication(std::uint64_t threshold,
                                      unsigned max_copies)
{
    PLUS_ASSERT(!started_, "enable competitive replication before run()");
    PLUS_ASSERT(threshold > 0 && max_copies >= 2,
                "competitive replication needs threshold > 0 and at least "
                "two copies");
    replThreshold_ = threshold;
    replMaxCopies_ = max_copies;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        mem::RefCounters* counters = nodes_[id]->refCounters();
        PLUS_ASSERT(counters, "node has no reference counters");
        counters->setThreshold(threshold);
        counters->setOverflowHandler([this, id](Vpn vpn, std::uint64_t) {
            // Competitive policy: enough remote references accumulated to
            // pay for a local copy — create one, unless the page is
            // already replicated here, at its copy budget, or mid-copy.
            // The decision fires on a node lane; the replication itself
            // is a machine-lane directory mutation, so it is deferred by
            // the lookahead and the guards re-evaluate when it runs.
            engine_.scheduleMachine(engine_.lookahead(), [this, id, vpn] {
                if (!directory_.contains(vpn)) {
                    return;
                }
                const mem::CopyList& cl = directory_.copyList(vpn);
                if (cl.hasCopyOn(id) || cl.size() >= replMaxCopies_) {
                    return;
                }
                for (const auto& [cid, rec] : copiesInFlight_) {
                    (void)cid;
                    if (rec.vpn == vpn) {
                        return;
                    }
                }
                replicate(pageBase(vpn), id);
            });
        });
    }
    updateMachineMailHint();
}

} // namespace core
} // namespace plus
