#include "core/sync.hpp"

#include <algorithm>
#include <map>

#include "common/panic.hpp"

namespace plus {
namespace core {

namespace {

/** Word address of the queue-tail (QP) word of a queue page. */
Addr
qpAddr(Addr queue_page)
{
    return queue_page;
}

/** Word address of the queue-head (DQP) word of a queue page. */
Addr
dqpAddr(Addr queue_page)
{
    return queue_page + kWordBytes;
}

/** Allocate and initialize one hardware-queue page on @p home. */
Addr
allocQueuePage(Machine& machine, NodeId home)
{
    const Addr page = machine.alloc(kPageBytes, home);
    const Word base =
        static_cast<Word>(machine.config().cost.queueBaseOffset);
    machine.poke(qpAddr(page), base);
    machine.poke(dqpAddr(page), base);
    return page;
}

} // namespace

std::vector<Addr>
allocMailboxes(Machine& machine, const std::vector<NodeId>& thread_nodes)
{
    // One page per distinct node; mailbox words are handed out from the
    // node's page in participant order so each sleeper spins locally.
    std::map<NodeId, Addr> pages;
    std::map<NodeId, Addr> next;
    std::vector<Addr> mailboxes;
    mailboxes.reserve(thread_nodes.size());
    for (NodeId node : thread_nodes) {
        auto it = pages.find(node);
        if (it == pages.end()) {
            const Addr page = machine.alloc(kPageBytes, node);
            it = pages.emplace(node, page).first;
            next[node] = page;
        }
        PLUS_ASSERT(next[node] < it->second + kPageBytes,
                    "more than a page of mailboxes on one node");
        mailboxes.push_back(next[node]);
        next[node] += kWordBytes;
    }
    return mailboxes;
}

void
mailboxWait(Context& ctx, Addr mailbox)
{
    // "go to sleep until someone wakes me up": modelled as a node-local
    // spin on the mailbox word.
    while (ctx.read(mailbox) == 0) {
        ctx.pause(8);
    }
    ctx.write(mailbox, 0);
    ctx.writeFence(); // the clear must not be overtaken by a re-wake
}

void
mailboxWake(Context& ctx, Addr mailbox)
{
    ctx.write(mailbox, 1);
}

// --------------------------------------------------------------------------
// SpinLock
// --------------------------------------------------------------------------

SpinLock
SpinLock::create(Machine& machine, NodeId home)
{
    return SpinLock(machine.alloc(kPageBytes, home));
}

void
SpinLock::acquire(Context& ctx)
{
    Cycles backoff = 4;
    while (true) {
        // Test-and-test-and-set: spin on an ordinary read (local if the
        // page is replicated) before paying for the interlocked op.
        if (!(ctx.read(addr_) & kTopBit)) {
            if (!(ctx.fetchSet(addr_) & kTopBit)) {
                return;
            }
        }
        ctx.pause(backoff);
        backoff = std::min<Cycles>(backoff * 2, 256);
    }
}

bool
SpinLock::tryAcquire(Context& ctx)
{
    return !(ctx.fetchSet(addr_) & kTopBit);
}

void
SpinLock::release(Context& ctx)
{
    // The write fence makes every critical-section write visible before
    // the lock is seen free (Section 2.3's explicit write fence); the
    // releasing processor itself keeps running.
    ctx.writeFence();
    ctx.write(addr_, 0);
}

// --------------------------------------------------------------------------
// QueuedLock (Table 3-2)
// --------------------------------------------------------------------------

QueuedLock
QueuedLock::create(Machine& machine, NodeId home,
                   const std::vector<NodeId>& thread_nodes)
{
    QueuedLock lock;
    lock.lock_ = machine.alloc(kPageBytes, home);
    lock.queuePage_ = allocQueuePage(machine, home);
    lock.mailboxes_ = allocMailboxes(machine, thread_nodes);
    return lock;
}

void
QueuedLock::acquire(Context& ctx, unsigned me)
{
    PLUS_ASSERT(me < mailboxes_.size(), "unknown lock participant ", me);
    if (ctx.fadd(lock_, 1) != 0) {
        // Lock unavailable: queue myself for obtaining the lock; spin if
        // the queue is full (unlikely).
        while (ctx.enqueue(qpAddr(queuePage_), me) & kTopBit) {
            ctx.pause(16);
        }
        mailboxWait(ctx, mailboxes_[me]);
    }
}

void
QueuedLock::release(Context& ctx)
{
    ctx.writeFence(); // critical-section writes complete before handoff
    if (ctx.fadd(lock_, static_cast<Word>(-1)) > 1) {
        // Some other thread is waiting: pop its id from the queue (loop
        // if the winner of the fadd race has not enqueued itself yet)
        // and hand it the lock.
        Word k;
        while (!((k = ctx.dequeue(dqpAddr(queuePage_))) & kTopBit)) {
            ctx.pause(8);
        }
        mailboxWake(ctx, mailboxes_[k & kPayloadMask]);
    }
}

// --------------------------------------------------------------------------
// Barrier
// --------------------------------------------------------------------------

Barrier
Barrier::create(Machine& machine, NodeId home, unsigned n,
                bool replicate_sense)
{
    PLUS_ASSERT(n > 0, "barrier needs at least one participant");
    Barrier barrier;
    barrier.count_ = machine.alloc(kPageBytes, home);
    const Addr sense_page = machine.alloc(kPageBytes, home);
    barrier.sense_ = sense_page;
    barrier.n_ = n;
    if (replicate_sense) {
        for (NodeId node = 0; node < machine.nodeCount(); ++node) {
            machine.replicate(sense_page, node);
        }
    }
    return barrier;
}

void
BarrierWaiter::wait(Context& ctx)
{
    sense_ ^= 1;
    const Word my = sense_;
    // This episode's writes must complete before the arrival is
    // announced; the write fence orders the fadd behind them without
    // stalling the processor.
    ctx.writeFence();
    const Word arrived = ctx.fadd(barrier_.count_, 1);
    if (arrived == barrier_.n_ - 1) {
        // Last arriver: reset the counter for the next episode, order
        // the reset before the release, then flip the sense (which
        // propagates to all replicas of the sense page).
        ctx.write(barrier_.count_, 0);
        ctx.writeFence();
        ctx.write(barrier_.sense_, my);
    } else {
        while (ctx.read(barrier_.sense_) != my) {
            ctx.pause(8);
        }
    }
}

// --------------------------------------------------------------------------
// NodeBarrier
// --------------------------------------------------------------------------

NodeBarrier
NodeBarrier::create(Machine& machine,
                    const std::vector<NodeId>& thread_nodes,
                    bool replicate_global_sense)
{
    PLUS_ASSERT(!thread_nodes.empty(), "barrier needs participants");
    NodeBarrier barrier;
    barrier.nodeOf_ = thread_nodes;
    const unsigned nodes = machine.nodeCount();
    barrier.perNode_.assign(nodes, 0);
    for (NodeId n : thread_nodes) {
        PLUS_ASSERT(n < nodes, "participant on unknown node");
        barrier.perNode_[n] += 1;
    }
    barrier.localCount_.assign(nodes, 0);
    barrier.localSense_.assign(nodes, 0);
    for (NodeId n = 0; n < nodes; ++n) {
        if (barrier.perNode_[n] > 0) {
            // Counter and release word on the participants' own node:
            // the non-representative spin is a local read.
            const Addr page = machine.alloc(kPageBytes, n);
            barrier.localCount_[n] = page;
            barrier.localSense_[n] = page + kWordBytes;
            barrier.activeNodes_ += 1;
        }
    }
    barrier.globalCount_ = machine.alloc(kPageBytes, 0);
    const Addr sense_page = machine.alloc(kPageBytes, 0);
    barrier.globalSense_ = sense_page;
    if (replicate_global_sense) {
        for (NodeId n = 0; n < nodes; ++n) {
            if (barrier.perNode_[n] > 0) {
                machine.replicate(sense_page, n);
            }
        }
        machine.settle();
    }
    return barrier;
}

void
NodeBarrierWaiter::wait(Context& ctx)
{
    sense_ ^= 1;
    const Word my = sense_;
    const NodeId node = barrier_.nodeOf_[me_];
    const unsigned local_n = barrier_.perNode_[node];

    ctx.writeFence(); // episode writes complete before the arrival

    const Word arrived = ctx.fadd(barrier_.localCount_[node], 1);
    if (arrived != local_n - 1) {
        // Not the node's last arriver: spin locally.
        while (ctx.read(barrier_.localSense_[node]) != my) {
            ctx.pause(8);
        }
        return;
    }

    // Node representative: reset the local counter, join the global
    // sense-reversing barrier, then release the node.
    ctx.write(barrier_.localCount_[node], 0);
    ctx.writeFence();
    const Word global =
        ctx.fadd(barrier_.globalCount_, 1);
    if (global == barrier_.activeNodes_ - 1) {
        ctx.write(barrier_.globalCount_, 0);
        ctx.writeFence();
        ctx.write(barrier_.globalSense_, my);
    } else {
        while (ctx.read(barrier_.globalSense_) != my) {
            ctx.pause(8);
        }
    }
    ctx.write(barrier_.localSense_[node], my);
}

// --------------------------------------------------------------------------
// Semaphore
// --------------------------------------------------------------------------

Semaphore
Semaphore::create(Machine& machine, NodeId home, std::int32_t initial,
                  const std::vector<NodeId>& thread_nodes)
{
    Semaphore sem;
    sem.value_ = machine.alloc(kPageBytes, home);
    sem.queuePage_ = allocQueuePage(machine, home);
    sem.mailboxes_ = allocMailboxes(machine, thread_nodes);
    machine.poke(sem.value_, static_cast<Word>(initial));
    return sem;
}

void
Semaphore::p(Context& ctx, unsigned me)
{
    PLUS_ASSERT(me < mailboxes_.size(), "unknown semaphore participant");
    const auto old = static_cast<std::int32_t>(
        ctx.fadd(value_, static_cast<Word>(-1)));
    if (old <= 0) {
        while (ctx.enqueue(qpAddr(queuePage_), me) & kTopBit) {
            ctx.pause(16);
        }
        mailboxWait(ctx, mailboxes_[me]);
    }
}

void
Semaphore::v(Context& ctx)
{
    ctx.writeFence(); // produced data completes before the wakeup
    const auto old =
        static_cast<std::int32_t>(ctx.fadd(value_, 1));
    if (old < 0) {
        Word k;
        while (!((k = ctx.dequeue(dqpAddr(queuePage_))) & kTopBit)) {
            ctx.pause(8);
        }
        mailboxWake(ctx, mailboxes_[k & kPayloadMask]);
    }
}

} // namespace core
} // namespace plus
