/**
 * @file
 * Measurement-driven page placement (Section 2.4, second policy): "If
 * the access pattern is not data dependent, it can be measured during
 * one run of the application and the results of the measurement used to
 * optimally allocate memory in subsequent runs."
 *
 * A profiling run records, via the hardware reference counters, how many
 * remote references each node made to each page. The resulting
 * PlacementPlan replicates (or migrates) the hottest pages before the
 * next run.
 */

#ifndef PLUS_CORE_PLACEMENT_HPP_
#define PLUS_CORE_PLACEMENT_HPP_

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.hpp"

namespace plus {
namespace core {

class Machine;

/** One profiling run's remote-reference matrix. */
class AccessProfile
{
  public:
    /**
     * Harvest the reference counters of every node of @p machine.
     * Counters must have been enabled by profileEnable() before the
     * run.
     */
    static AccessProfile collect(Machine& machine);

    /**
     * Arm the hardware counters for profiling (no overflow policy, just
     * counting). Call before spawn()/run().
     */
    static void profileEnable(Machine& machine);

    /** Remote references node @p node made to @p vpn. */
    std::uint64_t count(NodeId node, Vpn vpn) const;

    /** Total remote references recorded. */
    std::uint64_t total() const { return total_; }

    /** Pages with any remote references, hottest first. */
    std::vector<Vpn> hotPages() const;

  private:
    std::map<std::pair<NodeId, Vpn>, std::uint64_t> counts_;
    std::map<Vpn, std::uint64_t> perPage_;
    std::uint64_t total_ = 0;
};

/** A set of replication/migration actions derived from a profile. */
struct PlacementPlan {
    struct Replicate {
        Vpn vpn;
        NodeId target;
    };
    struct Migrate {
        Vpn vpn;
        NodeId from;
        NodeId to;
    };
    std::vector<Replicate> replications;
    std::vector<Migrate> migrations;

    std::size_t actions() const
    {
        return replications.size() + migrations.size();
    }
};

/** Tunables for plan derivation. */
struct PlacementPolicy {
    /**
     * A node gets a replica of a page when its remote references exceed
     * this threshold (the "cost of creating a page copy" in the
     * competitive formulation — a page copy is 1024 word transfers).
     */
    std::uint64_t replicateThreshold = 256;

    /** Maximum copies any page may reach. */
    unsigned maxCopies = 4;

    /**
     * If a single node accounts for at least this fraction of a page's
     * remote references and the page's master node itself made none,
     * migrate the master there instead of replicating.
     */
    double migrateFraction = 0.9;
};

/**
 * Derive a plan from a profile. @p machine supplies current copy-lists
 * (pages already replicated on a node are skipped).
 */
PlacementPlan derivePlan(Machine& machine, const AccessProfile& profile,
                         const PlacementPolicy& policy);

/**
 * Apply a plan to a (typically fresh) machine *before* its run: issues
 * the replications/migrations and settles the copies.
 * @return number of actions applied.
 */
std::size_t applyPlan(Machine& machine, const PlacementPlan& plan);

} // namespace core
} // namespace plus

#endif // PLUS_CORE_PLACEMENT_HPP_
