#include "core/placement.hpp"

#include <algorithm>

#include "common/determinism.hpp"
#include "common/log.hpp"
#include "common/panic.hpp"
#include "core/machine.hpp"

namespace plus {
namespace core {

void
AccessProfile::profileEnable(Machine& machine)
{
    for (NodeId n = 0; n < machine.nodeCount(); ++n) {
        PLUS_ASSERT(machine.nodeAt(n).refCounters(),
                    "node has no reference counters");
    }
    // The counters count unconditionally; nothing to arm beyond
    // confirming they exist (the overflow policy stays disabled).
}

AccessProfile
AccessProfile::collect(Machine& machine)
{
    AccessProfile profile;
    for (NodeId n = 0; n < machine.nodeCount(); ++n) {
        const mem::RefCounters* counters = machine.nodeAt(n).refCounters();
        PLUS_ASSERT(counters, "node has no reference counters");
        for (const auto& [vpn, count] : sortedView(counters->counts())) {
            if (count == 0) {
                continue;
            }
            profile.counts_[{n, vpn}] += count;
            profile.perPage_[vpn] += count;
            profile.total_ += count;
        }
    }
    return profile;
}

std::uint64_t
AccessProfile::count(NodeId node, Vpn vpn) const
{
    auto it = counts_.find({node, vpn});
    return it == counts_.end() ? 0 : it->second;
}

std::vector<Vpn>
AccessProfile::hotPages() const
{
    std::vector<Vpn> pages;
    pages.reserve(perPage_.size());
    for (const auto& [vpn, count] : perPage_) {
        (void)count;
        pages.push_back(vpn);
    }
    std::stable_sort(pages.begin(), pages.end(), [this](Vpn a, Vpn b) {
        return perPage_.at(a) > perPage_.at(b);
    });
    return pages;
}

PlacementPlan
derivePlan(Machine& machine, const AccessProfile& profile,
           const PlacementPolicy& policy)
{
    PlacementPlan plan;
    for (Vpn vpn : profile.hotPages()) {
        const mem::CopyList& cl = machine.copyListOf(pageBase(vpn));
        const NodeId master = cl.master().node;

        // Gather each node's interest in this page.
        std::vector<std::pair<NodeId, std::uint64_t>> interest;
        std::uint64_t page_total = 0;
        for (NodeId n = 0; n < machine.nodeCount(); ++n) {
            const std::uint64_t c = profile.count(n, vpn);
            if (c > 0) {
                interest.push_back({n, c});
                page_total += c;
            }
        }
        if (interest.empty()) {
            continue;
        }
        std::stable_sort(interest.begin(), interest.end(),
                         [](const auto& a, const auto& b) {
                             return a.second > b.second;
                         });

        // One dominant consumer and a master nobody else misses:
        // migrate the master to the consumer.
        const auto& [top_node, top_count] = interest.front();
        if (static_cast<double>(top_count) >=
                policy.migrateFraction * static_cast<double>(page_total) &&
            top_count >= policy.replicateThreshold &&
            cl.size() == 1 && !cl.hasCopyOn(top_node)) {
            plan.migrations.push_back({vpn, master, top_node});
            continue;
        }

        // Otherwise replicate for every sufficiently interested node.
        unsigned copies = static_cast<unsigned>(cl.size());
        for (const auto& [node, count] : interest) {
            if (copies >= policy.maxCopies) {
                break;
            }
            if (count >= policy.replicateThreshold &&
                !cl.hasCopyOn(node)) {
                plan.replications.push_back({vpn, node});
                ++copies;
            }
        }
    }
    return plan;
}

std::size_t
applyPlan(Machine& machine, const PlacementPlan& plan)
{
    for (const auto& action : plan.replications) {
        machine.replicate(pageBase(action.vpn), action.target);
    }
    machine.settle();
    for (const auto& action : plan.migrations) {
        machine.replicate(pageBase(action.vpn), action.to);
        machine.settle();
        machine.promoteMasterQuiesced(pageBase(action.vpn), action.to);
        machine.deleteCopy(pageBase(action.vpn), action.from);
        machine.settle();
    }
    PLUS_LOG(LogComponent::Machine, "placement plan applied: ",
             plan.replications.size(), " replication(s), ",
             plan.migrations.size(), " migration(s)");
    return plan.actions();
}

} // namespace core
} // namespace plus
