/**
 * @file
 * Distributed work queue in the style of the paper's shortest-path and
 * beam-search implementations (Sections 2.5 and 3.4): one hardware
 * queue "lane" per participating node (to avoid the serialization a
 * single central queue suffers from), with work stealing in mesh-
 * distance order for load balance, and optional replication of the
 * lane pages so that emptiness polling is a local read.
 */

#ifndef PLUS_CORE_WORKQ_HPP_
#define PLUS_CORE_WORKQ_HPP_

#include <memory>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "core/context.hpp"
#include "core/machine.hpp"

namespace plus {
namespace core {

/**
 * Work-queue activity counters, registered with the machine's metrics
 * registry as workq.* at create(). Shared-pointer owned so the getters
 * stay valid across the queue's by-value moves.
 */
struct WorkQueueStats {
    std::uint64_t pushes = 0;     ///< items successfully enqueued
    std::uint64_t pushFull = 0;   ///< tryPush hit a full lane
    std::uint64_t pops = 0;       ///< items successfully dequeued
    std::uint64_t emptyPolls = 0; ///< tryPop found the lane empty
    std::uint64_t steals = 0;     ///< pops served by a non-home lane
};

/** Multi-lane distributed queue of 31-bit work items. */
class WorkQueue
{
  public:
    /**
     * Create one lane per entry of @p lane_nodes, homed on that node.
     * @param replication  Total copies per lane page (1 = no
     *        replication); extra copies go to the mesh-nearest other
     *        lane nodes, reproducing the paper's replication levels.
     */
    static WorkQueue create(Machine& machine,
                            const std::vector<NodeId>& lane_nodes,
                            unsigned replication = 1);

    unsigned lanes() const
    {
        return static_cast<unsigned>(lanePages_.size());
    }

    /** Items a lane can hold. */
    unsigned capacityPerLane() const;

    /** Enqueue onto @p lane; false if the lane is full. */
    bool tryPush(Context& ctx, unsigned lane, Word item);

    /** Enqueue onto @p lane, spinning while it is full. */
    void push(Context& ctx, unsigned lane, Word item);

    /** Dequeue from @p lane; nullopt if it is empty. */
    std::optional<Word> tryPop(Context& ctx, unsigned lane);

    /**
     * Dequeue from @p home_lane, then steal from other lanes in mesh-
     * distance order; nullopt when the scanned lanes all came up empty.
     * @param max_scan  Bound on the number of lanes probed (stealing
     *                  from the whole machine on every idle poll is
     *                  prohibitively expensive at scale).
     */
    std::optional<Word> popAny(Context& ctx, unsigned home_lane,
                               unsigned max_scan = ~0u);

    Addr lanePage(unsigned lane) const { return lanePages_[lane]; }

    /**
     * Number of lanes (including the own lane) whose queue page has a
     * copy on @p lane's node, i.e. lanes that are cheap to poll. These
     * come first in the steal order.
     */
    unsigned cheapLanes(unsigned lane) const { return cheap_[lane]; }

    const WorkQueueStats& stats() const { return *stats_; }

  private:
    WorkQueue() = default;

    std::shared_ptr<WorkQueueStats> stats_;
    std::vector<Addr> lanePages_;
    /** stealOrder_[lane] = all lanes, cheap (local-replica) ones first,
     *  then by mesh distance. */
    std::vector<std::vector<unsigned>> stealOrder_;
    std::vector<unsigned> cheap_;
    Addr queueBase_ = 0;
};

} // namespace core
} // namespace plus

#endif // PLUS_CORE_WORKQ_HPP_
