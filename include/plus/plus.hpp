/**
 * @file
 * The unified public API of the PLUS simulator.
 *
 * Everything an application, bench or example needs is reachable from
 * this one header: the fluent MachineBuilder, the Machine/Context
 * types it produces, and the backend selector. The builder is a thin,
 * validated veneer over MachineConfig — every knob maps onto one
 * config field, `tune()` exposes the rest, and `build()` hands the
 * finished config to core::Machine, whose direct
 * `Machine(MachineConfig)` constructor remains as a deprecated shim
 * for existing code (both paths produce identical machines; see
 * tests/test_builder.cpp).
 *
 * @code
 *   auto machine = plus::MachineBuilder()
 *                      .nodes(16)
 *                      .engine(plus::Engine::Parallel)
 *                      .threads(4)
 *                      .build();
 *   const plus::Addr counter = machine->alloc(plus::kPageBytes, 0);
 *   for (plus::NodeId n = 0; n < machine->nodeCount(); ++n)
 *       machine->spawn(n, [&](plus::Context& ctx) {
 *           ctx.fadd(counter, 1);
 *       });
 *   machine->run();
 * @endcode
 */

#ifndef PLUS_PLUS_HPP_
#define PLUS_PLUS_HPP_

#include <cstdint>
#include <memory>
#include <string_view>
#include <utility>

#include "common/config.hpp"
#include "core/context.hpp"
#include "core/machine.hpp"

namespace plus {

/** The simulated machine and the interface threads run against. */
using Machine = core::Machine;
using Context = core::Context;

/**
 * Simulation backend. Every backend realises the exact same event
 * order — byte-identical output is the determinism contract, enforced
 * by CI (docs/PERF.md) — so this only selects a performance profile.
 */
enum class Engine : std::uint8_t {
    Auto,     ///< honour the PLUS_ENGINE environment variable
    Wheel,    ///< serial hierarchical timing wheel (the default)
    Heap,     ///< serial priority-queue oracle
    Parallel, ///< conservative multi-threaded wheels
};

constexpr const char*
toString(Engine engine)
{
    switch (engine) {
      case Engine::Auto: return "auto";
      case Engine::Wheel: return "wheel";
      case Engine::Heap: return "heap";
      case Engine::Parallel: return "parallel";
      default: return "?";
    }
}

/** Parse "auto" | "wheel" | "heap" | "parallel"; false if unknown. */
inline bool
engineFromString(std::string_view name, Engine& out)
{
    if (name == "auto") {
        out = Engine::Auto;
    } else if (name == "wheel") {
        out = Engine::Wheel;
    } else if (name == "heap") {
        out = Engine::Heap;
    } else if (name == "parallel") {
        out = Engine::Parallel;
    } else {
        return false;
    }
    return true;
}

/** The MachineConfig field backing a plus::Engine choice. */
constexpr SimEngine
toSimEngine(Engine engine)
{
    switch (engine) {
      case Engine::Wheel: return SimEngine::Wheel;
      case Engine::Heap: return SimEngine::Heap;
      case Engine::Parallel: return SimEngine::Parallel;
      case Engine::Auto:
      default: return SimEngine::Env;
    }
}

/**
 * Coherence protocol (docs/PROTOCOLS.md). WriteUpdate is the paper's
 * protocol and the default; WriteInvalidate is the MSI-flavoured
 * counterpart for protocol comparisons. Auto honours the PLUS_PROTOCOL
 * environment variable and falls back to WriteUpdate.
 */
enum class Protocol : std::uint8_t {
    Auto,            ///< honour PLUS_PROTOCOL (default: write-update)
    WriteUpdate,     ///< the paper's non-demand write-update protocol
    WriteInvalidate, ///< home-pinned MSI-flavoured invalidation protocol
};

constexpr const char*
toString(Protocol protocol)
{
    switch (protocol) {
      case Protocol::Auto: return "auto";
      case Protocol::WriteUpdate: return "write-update";
      case Protocol::WriteInvalidate: return "write-invalidate";
      default: return "?";
    }
}

/**
 * Parse "auto" | "update" | "write-update" | "invalidate" |
 * "write-invalidate"; false if unknown.
 */
inline bool
protocolFromString(std::string_view name, Protocol& out)
{
    if (name == "auto") {
        out = Protocol::Auto;
    } else if (name == "update" || name == "write-update") {
        out = Protocol::WriteUpdate;
    } else if (name == "invalidate" || name == "write-invalidate") {
        out = Protocol::WriteInvalidate;
    } else {
        return false;
    }
    return true;
}

/** The MachineConfig field backing a plus::Protocol choice. */
constexpr CoherenceProtocol
toCoherenceProtocol(Protocol protocol)
{
    switch (protocol) {
      case Protocol::WriteUpdate: return CoherenceProtocol::WriteUpdate;
      case Protocol::WriteInvalidate:
        return CoherenceProtocol::WriteInvalidate;
      case Protocol::Auto:
      default: return CoherenceProtocol::Env;
    }
}

/**
 * Fluent machine construction — the one supported way to build a
 * machine. Call knobs in any order; build() validates the assembled
 * configuration (rejecting contradictions with actionable messages)
 * and returns the running-ready machine.
 */
class MachineBuilder
{
  public:
    /** Number of nodes (each: processor + memory + coherence manager). */
    MachineBuilder&
    nodes(unsigned n)
    {
        config_.nodes = n;
        return *this;
    }

    /** Local-memory frames per node. */
    MachineBuilder&
    framesPerNode(unsigned frames)
    {
        config_.framesPerNode = frames;
        return *this;
    }

    /** Processor latency-hiding mode (blocking/delayed/context-switch). */
    MachineBuilder&
    mode(ProcessorMode m)
    {
        config_.mode = m;
        return *this;
    }

    /** Event-engine backend (see plus::Engine). */
    MachineBuilder&
    engine(Engine e)
    {
        config_.engine = toSimEngine(e);
        return *this;
    }

    /**
     * Coherence protocol (see plus::Protocol and docs/PROTOCOLS.md).
     * Calling this knob is the explicit opt-in MachineConfig::validate
     * requires for a non-default protocol; code relying on the implicit
     * write-update default (deprecated) should name it here instead.
     */
    MachineBuilder&
    protocol(Protocol p)
    {
        config_.protocol = toCoherenceProtocol(p);
        config_.protocolOptIn = true;
        return *this;
    }

    /**
     * Worker threads for the parallel backend; 0 = auto (one per
     * hardware core, at most one per node). Ignored by serial
     * backends; must not exceed the node count.
     */
    MachineBuilder&
    threads(unsigned t)
    {
        config_.simThreads = t;
        return *this;
    }

    /**
     * Spatial domains for the parallel backend; 0 = auto (up to 4 per
     * thread). More domains than threads improves load balance; must
     * be a multiple of the thread count and at most min(nodes, 62).
     * Ignored by serial backends.
     */
    MachineBuilder&
    domains(unsigned d)
    {
        config_.simDomains = d;
        return *this;
    }

    /** Seed for all workload randomness (and the fault injector's). */
    MachineBuilder&
    seed(std::uint64_t s)
    {
        config_.seed = s;
        return *this;
    }

    /** Contention-free latency-formula network instead of the mesh. */
    MachineBuilder&
    idealNetwork(bool on = true)
    {
        config_.network.ideal = on;
        return *this;
    }

    /** Explicit mesh width (default: near-square automatic). */
    MachineBuilder&
    meshWidth(unsigned width)
    {
        config_.network.meshWidth = width;
        return *this;
    }

    /**
     * Arm fault injection + reliable delivery with @p f. The enabled
     * flag is forced on — passing a config is the request; a disabled
     * fault config with live rates is a validation error by design.
     */
    MachineBuilder&
    faults(FaultConfig f)
    {
        f.enabled = true;
        config_.network.fault = std::move(f);
        return *this;
    }

    /** Arm the forward-progress watchdog with the given window. */
    MachineBuilder&
    watchdog(Cycles window_cycles)
    {
        config_.watchdog.enabled = true;
        config_.watchdog.windowCycles = window_cycles;
        return *this;
    }

    /** Toggle the protocol-invariant checker (on by default). */
    MachineBuilder&
    invariants(bool on)
    {
        config_.check.invariants = on;
        return *this;
    }

    /** Run the happens-before race detector. */
    MachineBuilder&
    races(bool on, bool panic_on_race = false)
    {
        config_.check.races = on;
        config_.check.panicOnRace = panic_on_race;
        return *this;
    }

    /**
     * Record the cycle-stamped event trace (checker hooks, network
     * telemetry, traffic attribution) — the input of
     * Machine::writeTraceJson()/writeStatsJson().
     */
    MachineBuilder&
    observer(bool trace = true)
    {
        config_.telemetry.trace = trace;
        return *this;
    }

    /** Full telemetry configuration (ring capacity etc.). */
    MachineBuilder&
    telemetry(TelemetryConfig t)
    {
        config_.telemetry = t;
        return *this;
    }

    /**
     * Escape hatch for fields without a dedicated knob: mutate the
     * assembled MachineConfig in place (cost model, network tuning,
     * check depth, ...).
     */
    template <typename Fn>
    MachineBuilder&
    tune(Fn&& fn)
    {
        std::forward<Fn>(fn)(config_);
        return *this;
    }

    /** The configuration assembled so far (not yet validated). */
    const MachineConfig& config() const { return config_; }

    /**
     * Validate the configuration and construct the machine.
     * Throws FatalError with an actionable message on contradictory
     * settings (MachineConfig::validate()).
     */
    std::unique_ptr<Machine>
    build() const
    {
        return std::make_unique<Machine>(config_);
    }

  private:
    MachineConfig config_;
};

} // namespace plus

#endif // PLUS_PLUS_HPP_
