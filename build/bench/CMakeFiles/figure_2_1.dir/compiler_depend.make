# Empty compiler generated dependencies file for figure_2_1.
# This may be replaced when dependencies are built.
