file(REMOVE_RECURSE
  "CMakeFiles/figure_2_1.dir/figure_2_1.cpp.o"
  "CMakeFiles/figure_2_1.dir/figure_2_1.cpp.o.d"
  "figure_2_1"
  "figure_2_1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_2_1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
