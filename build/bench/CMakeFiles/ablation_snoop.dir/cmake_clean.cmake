file(REMOVE_RECURSE
  "CMakeFiles/ablation_snoop.dir/ablation_snoop.cpp.o"
  "CMakeFiles/ablation_snoop.dir/ablation_snoop.cpp.o.d"
  "ablation_snoop"
  "ablation_snoop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_snoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
