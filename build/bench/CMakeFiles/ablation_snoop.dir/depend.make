# Empty dependencies file for ablation_snoop.
# This may be replaced when dependencies are built.
