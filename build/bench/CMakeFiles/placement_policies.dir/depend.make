# Empty dependencies file for placement_policies.
# This may be replaced when dependencies are built.
