file(REMOVE_RECURSE
  "CMakeFiles/placement_policies.dir/placement_policies.cpp.o"
  "CMakeFiles/placement_policies.dir/placement_policies.cpp.o.d"
  "placement_policies"
  "placement_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
