file(REMOVE_RECURSE
  "CMakeFiles/ablation_depths.dir/ablation_depths.cpp.o"
  "CMakeFiles/ablation_depths.dir/ablation_depths.cpp.o.d"
  "ablation_depths"
  "ablation_depths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_depths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
