# Empty compiler generated dependencies file for ablation_depths.
# This may be replaced when dependencies are built.
