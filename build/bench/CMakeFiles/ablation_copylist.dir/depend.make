# Empty dependencies file for ablation_copylist.
# This may be replaced when dependencies are built.
