file(REMOVE_RECURSE
  "CMakeFiles/ablation_copylist.dir/ablation_copylist.cpp.o"
  "CMakeFiles/ablation_copylist.dir/ablation_copylist.cpp.o.d"
  "ablation_copylist"
  "ablation_copylist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_copylist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
