file(REMOVE_RECURSE
  "CMakeFiles/table_3_2_lock.dir/table_3_2_lock.cpp.o"
  "CMakeFiles/table_3_2_lock.dir/table_3_2_lock.cpp.o.d"
  "table_3_2_lock"
  "table_3_2_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_3_2_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
