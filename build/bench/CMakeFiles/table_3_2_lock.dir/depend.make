# Empty dependencies file for table_3_2_lock.
# This may be replaced when dependencies are built.
