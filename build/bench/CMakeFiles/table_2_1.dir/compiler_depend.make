# Empty compiler generated dependencies file for table_2_1.
# This may be replaced when dependencies are built.
