file(REMOVE_RECURSE
  "CMakeFiles/table_2_1.dir/table_2_1.cpp.o"
  "CMakeFiles/table_2_1.dir/table_2_1.cpp.o.d"
  "table_2_1"
  "table_2_1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_2_1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
