# Empty dependencies file for figure_3_1.
# This may be replaced when dependencies are built.
