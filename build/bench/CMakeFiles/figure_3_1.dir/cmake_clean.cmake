file(REMOVE_RECURSE
  "CMakeFiles/figure_3_1.dir/figure_3_1.cpp.o"
  "CMakeFiles/figure_3_1.dir/figure_3_1.cpp.o.d"
  "figure_3_1"
  "figure_3_1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_3_1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
