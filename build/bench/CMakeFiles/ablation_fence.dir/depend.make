# Empty dependencies file for ablation_fence.
# This may be replaced when dependencies are built.
