file(REMOVE_RECURSE
  "CMakeFiles/ablation_fence.dir/ablation_fence.cpp.o"
  "CMakeFiles/ablation_fence.dir/ablation_fence.cpp.o.d"
  "ablation_fence"
  "ablation_fence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
