file(REMOVE_RECURSE
  "CMakeFiles/production_replication.dir/production_replication.cpp.o"
  "CMakeFiles/production_replication.dir/production_replication.cpp.o.d"
  "production_replication"
  "production_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
