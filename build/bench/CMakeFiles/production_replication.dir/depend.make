# Empty dependencies file for production_replication.
# This may be replaced when dependencies are built.
