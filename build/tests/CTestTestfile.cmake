# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_net_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_proto_units[1]_include.cmake")
include("/root/repo/build/tests/test_coherence_manager[1]_include.cmake")
include("/root/repo/build/tests/test_fiber[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_costs[1]_include.cmake")
include("/root/repo/build/tests/test_sssp[1]_include.cmake")
include("/root/repo/build/tests/test_beam[1]_include.cmake")
include("/root/repo/build/tests/test_sync[1]_include.cmake")
include("/root/repo/build/tests/test_workq[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_processor[1]_include.cmake")
include("/root/repo/build/tests/test_replication[1]_include.cmake")
include("/root/repo/build/tests/test_coherence_property[1]_include.cmake")
include("/root/repo/build/tests/test_placement[1]_include.cmake")
include("/root/repo/build/tests/test_production[1]_include.cmake")
include("/root/repo/build/tests/test_synthetic[1]_include.cmake")
include("/root/repo/build/tests/test_write_fence[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_node[1]_include.cmake")
include("/root/repo/build/tests/test_log[1]_include.cmake")
