# Empty compiler generated dependencies file for test_write_fence.
# This may be replaced when dependencies are built.
