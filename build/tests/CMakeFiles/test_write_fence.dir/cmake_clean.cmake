file(REMOVE_RECURSE
  "CMakeFiles/test_write_fence.dir/test_write_fence.cpp.o"
  "CMakeFiles/test_write_fence.dir/test_write_fence.cpp.o.d"
  "test_write_fence"
  "test_write_fence.pdb"
  "test_write_fence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_write_fence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
