# Empty dependencies file for test_proto_units.
# This may be replaced when dependencies are built.
