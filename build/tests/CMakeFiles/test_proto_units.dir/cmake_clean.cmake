file(REMOVE_RECURSE
  "CMakeFiles/test_proto_units.dir/test_proto_units.cpp.o"
  "CMakeFiles/test_proto_units.dir/test_proto_units.cpp.o.d"
  "test_proto_units"
  "test_proto_units.pdb"
  "test_proto_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proto_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
