# Empty compiler generated dependencies file for test_production.
# This may be replaced when dependencies are built.
