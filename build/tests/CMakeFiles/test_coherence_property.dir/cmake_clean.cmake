file(REMOVE_RECURSE
  "CMakeFiles/test_coherence_property.dir/test_coherence_property.cpp.o"
  "CMakeFiles/test_coherence_property.dir/test_coherence_property.cpp.o.d"
  "test_coherence_property"
  "test_coherence_property.pdb"
  "test_coherence_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coherence_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
