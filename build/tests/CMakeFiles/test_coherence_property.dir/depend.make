# Empty dependencies file for test_coherence_property.
# This may be replaced when dependencies are built.
