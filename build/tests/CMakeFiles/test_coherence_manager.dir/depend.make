# Empty dependencies file for test_coherence_manager.
# This may be replaced when dependencies are built.
