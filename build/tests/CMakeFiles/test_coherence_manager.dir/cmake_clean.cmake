file(REMOVE_RECURSE
  "CMakeFiles/test_coherence_manager.dir/test_coherence_manager.cpp.o"
  "CMakeFiles/test_coherence_manager.dir/test_coherence_manager.cpp.o.d"
  "test_coherence_manager"
  "test_coherence_manager.pdb"
  "test_coherence_manager[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coherence_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
