file(REMOVE_RECURSE
  "CMakeFiles/test_net_sweep.dir/test_net_sweep.cpp.o"
  "CMakeFiles/test_net_sweep.dir/test_net_sweep.cpp.o.d"
  "test_net_sweep"
  "test_net_sweep.pdb"
  "test_net_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
