file(REMOVE_RECURSE
  "CMakeFiles/test_workq.dir/test_workq.cpp.o"
  "CMakeFiles/test_workq.dir/test_workq.cpp.o.d"
  "test_workq"
  "test_workq.pdb"
  "test_workq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
