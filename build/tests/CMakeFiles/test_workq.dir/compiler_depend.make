# Empty compiler generated dependencies file for test_workq.
# This may be replaced when dependencies are built.
