file(REMOVE_RECURSE
  "CMakeFiles/beam_search.dir/beam_search.cpp.o"
  "CMakeFiles/beam_search.dir/beam_search.cpp.o.d"
  "beam_search"
  "beam_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beam_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
