file(REMOVE_RECURSE
  "CMakeFiles/shortest_path.dir/shortest_path.cpp.o"
  "CMakeFiles/shortest_path.dir/shortest_path.cpp.o.d"
  "shortest_path"
  "shortest_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shortest_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
