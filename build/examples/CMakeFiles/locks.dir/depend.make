# Empty dependencies file for locks.
# This may be replaced when dependencies are built.
