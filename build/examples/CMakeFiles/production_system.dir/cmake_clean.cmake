file(REMOVE_RECURSE
  "CMakeFiles/production_system.dir/production_system.cpp.o"
  "CMakeFiles/production_system.dir/production_system.cpp.o.d"
  "production_system"
  "production_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
