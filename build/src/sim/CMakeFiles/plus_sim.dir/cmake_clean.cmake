file(REMOVE_RECURSE
  "CMakeFiles/plus_sim.dir/engine.cpp.o"
  "CMakeFiles/plus_sim.dir/engine.cpp.o.d"
  "CMakeFiles/plus_sim.dir/fiber.cpp.o"
  "CMakeFiles/plus_sim.dir/fiber.cpp.o.d"
  "libplus_sim.a"
  "libplus_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plus_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
