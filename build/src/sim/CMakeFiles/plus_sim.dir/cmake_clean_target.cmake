file(REMOVE_RECURSE
  "libplus_sim.a"
)
