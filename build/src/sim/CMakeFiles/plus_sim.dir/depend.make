# Empty dependencies file for plus_sim.
# This may be replaced when dependencies are built.
