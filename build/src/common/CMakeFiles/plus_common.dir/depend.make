# Empty dependencies file for plus_common.
# This may be replaced when dependencies are built.
