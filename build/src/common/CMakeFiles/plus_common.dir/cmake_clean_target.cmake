file(REMOVE_RECURSE
  "libplus_common.a"
)
