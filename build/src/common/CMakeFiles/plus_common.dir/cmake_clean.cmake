file(REMOVE_RECURSE
  "CMakeFiles/plus_common.dir/config.cpp.o"
  "CMakeFiles/plus_common.dir/config.cpp.o.d"
  "CMakeFiles/plus_common.dir/log.cpp.o"
  "CMakeFiles/plus_common.dir/log.cpp.o.d"
  "CMakeFiles/plus_common.dir/panic.cpp.o"
  "CMakeFiles/plus_common.dir/panic.cpp.o.d"
  "CMakeFiles/plus_common.dir/table.cpp.o"
  "CMakeFiles/plus_common.dir/table.cpp.o.d"
  "CMakeFiles/plus_common.dir/types.cpp.o"
  "CMakeFiles/plus_common.dir/types.cpp.o.d"
  "libplus_common.a"
  "libplus_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plus_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
