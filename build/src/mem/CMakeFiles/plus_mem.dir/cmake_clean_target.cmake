file(REMOVE_RECURSE
  "libplus_mem.a"
)
