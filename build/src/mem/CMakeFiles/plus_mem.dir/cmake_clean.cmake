file(REMOVE_RECURSE
  "CMakeFiles/plus_mem.dir/copy_list.cpp.o"
  "CMakeFiles/plus_mem.dir/copy_list.cpp.o.d"
  "CMakeFiles/plus_mem.dir/local_memory.cpp.o"
  "CMakeFiles/plus_mem.dir/local_memory.cpp.o.d"
  "libplus_mem.a"
  "libplus_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plus_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
