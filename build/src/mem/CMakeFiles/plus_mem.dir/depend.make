# Empty dependencies file for plus_mem.
# This may be replaced when dependencies are built.
