# Empty dependencies file for plus_core.
# This may be replaced when dependencies are built.
