file(REMOVE_RECURSE
  "CMakeFiles/plus_core.dir/machine.cpp.o"
  "CMakeFiles/plus_core.dir/machine.cpp.o.d"
  "CMakeFiles/plus_core.dir/placement.cpp.o"
  "CMakeFiles/plus_core.dir/placement.cpp.o.d"
  "CMakeFiles/plus_core.dir/sync.cpp.o"
  "CMakeFiles/plus_core.dir/sync.cpp.o.d"
  "CMakeFiles/plus_core.dir/workq.cpp.o"
  "CMakeFiles/plus_core.dir/workq.cpp.o.d"
  "libplus_core.a"
  "libplus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
