file(REMOVE_RECURSE
  "libplus_core.a"
)
