file(REMOVE_RECURSE
  "CMakeFiles/plus_net.dir/network.cpp.o"
  "CMakeFiles/plus_net.dir/network.cpp.o.d"
  "libplus_net.a"
  "libplus_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plus_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
