# Empty compiler generated dependencies file for plus_net.
# This may be replaced when dependencies are built.
