file(REMOVE_RECURSE
  "libplus_net.a"
)
