# Empty dependencies file for plus_node.
# This may be replaced when dependencies are built.
