file(REMOVE_RECURSE
  "libplus_node.a"
)
