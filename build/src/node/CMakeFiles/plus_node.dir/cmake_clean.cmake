file(REMOVE_RECURSE
  "CMakeFiles/plus_node.dir/cache.cpp.o"
  "CMakeFiles/plus_node.dir/cache.cpp.o.d"
  "CMakeFiles/plus_node.dir/node.cpp.o"
  "CMakeFiles/plus_node.dir/node.cpp.o.d"
  "CMakeFiles/plus_node.dir/processor.cpp.o"
  "CMakeFiles/plus_node.dir/processor.cpp.o.d"
  "libplus_node.a"
  "libplus_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plus_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
