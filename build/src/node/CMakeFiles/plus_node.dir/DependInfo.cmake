
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/node/cache.cpp" "src/node/CMakeFiles/plus_node.dir/cache.cpp.o" "gcc" "src/node/CMakeFiles/plus_node.dir/cache.cpp.o.d"
  "/root/repo/src/node/node.cpp" "src/node/CMakeFiles/plus_node.dir/node.cpp.o" "gcc" "src/node/CMakeFiles/plus_node.dir/node.cpp.o.d"
  "/root/repo/src/node/processor.cpp" "src/node/CMakeFiles/plus_node.dir/processor.cpp.o" "gcc" "src/node/CMakeFiles/plus_node.dir/processor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proto/CMakeFiles/plus_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/plus_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/plus_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/plus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/plus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
