# Empty compiler generated dependencies file for plus_proto.
# This may be replaced when dependencies are built.
