file(REMOVE_RECURSE
  "CMakeFiles/plus_proto.dir/coherence_manager.cpp.o"
  "CMakeFiles/plus_proto.dir/coherence_manager.cpp.o.d"
  "CMakeFiles/plus_proto.dir/messages.cpp.o"
  "CMakeFiles/plus_proto.dir/messages.cpp.o.d"
  "CMakeFiles/plus_proto.dir/rmw.cpp.o"
  "CMakeFiles/plus_proto.dir/rmw.cpp.o.d"
  "libplus_proto.a"
  "libplus_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plus_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
