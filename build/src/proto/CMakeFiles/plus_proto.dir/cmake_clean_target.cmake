file(REMOVE_RECURSE
  "libplus_proto.a"
)
