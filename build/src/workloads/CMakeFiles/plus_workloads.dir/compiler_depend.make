# Empty compiler generated dependencies file for plus_workloads.
# This may be replaced when dependencies are built.
