file(REMOVE_RECURSE
  "libplus_workloads.a"
)
