file(REMOVE_RECURSE
  "CMakeFiles/plus_workloads.dir/beam.cpp.o"
  "CMakeFiles/plus_workloads.dir/beam.cpp.o.d"
  "CMakeFiles/plus_workloads.dir/graph.cpp.o"
  "CMakeFiles/plus_workloads.dir/graph.cpp.o.d"
  "CMakeFiles/plus_workloads.dir/production.cpp.o"
  "CMakeFiles/plus_workloads.dir/production.cpp.o.d"
  "CMakeFiles/plus_workloads.dir/sssp.cpp.o"
  "CMakeFiles/plus_workloads.dir/sssp.cpp.o.d"
  "CMakeFiles/plus_workloads.dir/synthetic.cpp.o"
  "CMakeFiles/plus_workloads.dir/synthetic.cpp.o.d"
  "libplus_workloads.a"
  "libplus_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plus_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
