/**
 * @file
 * Engine throughput benchmark: how fast does the simulator itself run?
 *
 *   engine_throughput [--quick] [--micro-only] [--nodes=N]
 *                     [--out=<file>] [--parallel-out=<file>]
 *
 * Two measurements, reported as host events/sec:
 *
 *  - A micro benchmark replaying a harness-shaped event mix (short
 *    network-hop delays, coherence-manager service windows, armed-then-
 *    cancelled timeouts) against three schedulers: the pre-rewrite
 *    priority-queue engine (copied below as BaselinePq), the timing-
 *    wheel engine, and the wheel engine's heap reference backend.
 *
 *  - The sim_harness 16-node macro workload on the real machine, run
 *    once per backend, reporting host events/sec and simulated
 *    cycles/sec end to end.
 *
 * --out writes the numbers as JSON (the committed BENCH_engine.json is
 * produced this way); --parallel-out writes the parallel backend's
 * threads-axis numbers on the 64-node harness (the committed
 * BENCH_parallel.json). The ci.sh perf-smoke stage reruns with --quick
 * and fails on a large regression. See docs/PERF.md.
 *
 * --micro-only stops after the scheduler micro benchmark. With
 * profiling on (--prof-out or PLUS_PROF=1) each parallel axis point
 * gets a host-time rollup (work / barrier-wait / mailbox-drain /
 * other percentages per thread) embedded in the --parallel-out JSON,
 * and an explicit --threads=T narrows the axis to that one thread
 * count.
 *
 * --prof-overhead runs only the profiler-overhead measurement the
 * ci.sh prof stage gates on: the wheel micro benchmark with the
 * profiler disabled and enabled, interleaved in-process (best of 5
 * each) so host noise hits both sides alike, reported as JSON.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <functional>
#include <iostream>
#include <queue>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "core/context.hpp"
#include "sim/engine.hpp"

namespace {

using namespace plus;
using namespace plus::bench;

/**
 * The event engine this PR replaced, kept verbatim (minus logging) as
 * the performance baseline: a std::priority_queue of records each
 * owning a std::function, with lazy cancellation through a hash set.
 */
class BaselinePq
{
  public:
    Cycles now() const { return now_; }

    sim::EventId schedule(Cycles delay, std::function<void()> fn)
    {
        const sim::EventId id = nextId_++;
        queue_.push(Record{now_ + delay, nextSeq_++, id, std::move(fn)});
        return id;
    }

    bool cancel(sim::EventId id)
    {
        return cancelledIds_.insert(id).second;
    }

    void run()
    {
        while (!queue_.empty()) {
            const Record& top = queue_.top();
            if (cancelledIds_.erase(top.id) != 0) {
                queue_.pop();
                continue;
            }
            Record record = std::move(const_cast<Record&>(top));
            queue_.pop();
            now_ = record.when;
            record.fn();
        }
    }

  private:
    struct Record {
        Cycles when;
        std::uint64_t seq;
        sim::EventId id;
        std::function<void()> fn;
    };
    struct Later {
        bool operator()(const Record& a, const Record& b) const
        {
            if (a.when != b.when) {
                return a.when > b.when;
            }
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Record, std::vector<Record>, Later> queue_;
    std::unordered_set<sim::EventId> cancelledIds_;
    Cycles now_ = 0;
    std::uint64_t nextSeq_ = 0;
    sim::EventId nextId_ = 1;
};

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/**
 * Steady-state event mix modelled on what the coherence simulation
 * schedules: mostly short delays (mesh hops at ~2 cycles, manager
 * occupancy at 6..40), one in eight events arming a timeout that is
 * cancelled before it fires. kActors self-rescheduling chains keep the
 * queue at a harness-like depth.
 */
template <typename EngineT>
struct MicroBench {
    explicit MicroBench(std::uint64_t target) : target_(target) {}

    double eventsPerSec()
    {
        const auto start = std::chrono::steady_clock::now();
        for (unsigned a = 0; a < kActors; ++a) {
            engine_.schedule(1 + a % 7, [this] { tick(); });
        }
        engine_.run();
        return static_cast<double>(executed_) / secondsSince(start);
    }

  private:
    static constexpr unsigned kActors = 256;

    std::uint64_t next()
    {
        rng_ = rng_ * 6364136223846793005ull + 1442695040888963407ull;
        return rng_ >> 33;
    }

    void tick()
    {
        if (++executed_ >= target_) {
            return; // stop rescheduling; the queue drains
        }
        const std::uint64_t r = next();
        const Cycles delay = r % 4 == 0 ? Cycles{2} : Cycles{6 + r % 35};
        engine_.schedule(delay, [this] { tick(); });
        if (r % 8 == 0) {
            engine_.cancel(engine_.schedule(100, [] {}));
        }
    }

    EngineT engine_;
    std::uint64_t target_;
    std::uint64_t executed_ = 0;
    std::uint64_t rng_ = 0x9e3779b97f4a7c15ull;
};

/** One backend's end-to-end numbers on the macro workload. */
struct MacroResult {
    double eventsPerSec = 0;
    double cyclesPerSec = 0;
    std::uint64_t events = 0;
    Cycles cycles = 0;
};

/** The sim_harness mixed workload (writes through update chains,
 *  remote reads, delayed interlocked ops, fences) on @p nodes nodes. */
MacroResult
macroRun(Engine backend, unsigned nodes, unsigned iters,
         unsigned threads = 0)
{
    auto machine_ptr =
        machineBuilder(nodes).engine(backend).threads(threads).build();
    core::Machine& machine = *machine_ptr;

    constexpr unsigned kCopies = 4;
    std::vector<Addr> pages(nodes);
    for (NodeId n = 0; n < nodes; ++n) {
        pages[n] = machine.alloc(kPageBytes, n);
        for (unsigned c = 1; c < kCopies && c < nodes; ++c) {
            machine.replicate(pages[n], (n + c) % nodes);
        }
    }
    const Addr counter = machine.alloc(kPageBytes, 0);
    machine.settle();

    for (NodeId n = 0; n < nodes; ++n) {
        machine.spawn(n, [&pages, counter, nodes, iters,
                          n](core::Context& ctx) {
            const Addr own = pages[n];
            const Addr peer = pages[(n + 1) % nodes];
            std::deque<core::OpHandle> window;
            for (Word i = 0; i < iters; ++i) {
                ctx.write(own + 4 * (i % 16), n * 1000 + i);
                ctx.read(peer + 4 * (i % 16));
                ctx.compute(25);
                if (i % 8 == 0) {
                    window.push_back(ctx.issueFadd(counter, 1));
                }
                if (window.size() > 2) {
                    ctx.verify(window.front());
                    window.pop_front();
                }
            }
            while (!window.empty()) {
                ctx.verify(window.front());
                window.pop_front();
            }
            ctx.fence();
        });
    }

    const auto start = std::chrono::steady_clock::now();
    machine.run();
    const double seconds = secondsSince(start);

    MacroResult r;
    r.events = machine.engine().executedEvents();
    r.cycles = machine.now();
    r.eventsPerSec = static_cast<double>(r.events) / seconds;
    r.cyclesPerSec = static_cast<double>(r.cycles) / seconds;
    return r;
}

void
writeJson(std::ostream& os, bool quick, unsigned nodes, double baseline,
          double wheel, double heap, const MacroResult& macro_wheel,
          const MacroResult& macro_heap)
{
    os << "{\n"
       << "  \"bench\": \"engine_throughput\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"nodes\": " << nodes << ",\n"
       << "  \"baselineEventsPerSec\": " << baseline << ",\n"
       << "  \"wheelEventsPerSec\": " << wheel << ",\n"
       << "  \"heapEventsPerSec\": " << heap << ",\n"
       << "  \"speedup\": " << wheel / baseline << ",\n"
       << "  \"harnessWheelEventsPerSec\": " << macro_wheel.eventsPerSec
       << ",\n"
       << "  \"harnessWheelCyclesPerSec\": " << macro_wheel.cyclesPerSec
       << ",\n"
       << "  \"harnessHeapEventsPerSec\": " << macro_heap.eventsPerSec
       << ",\n"
       << "  \"harnessEvents\": " << macro_wheel.events << ",\n"
       << "  \"harnessCycles\": " << macro_wheel.cycles << "\n"
       << "}\n";
}

/** One parallel axis point's host-time profile (prof enabled only). */
struct ParProfile {
    plus::prof::Rollup agg;
    std::uint64_t windows = 0;
    double widthMean = 0.0;
    double eventsMean = 0.0;
    std::uint64_t mailSum = 0;
    std::uint64_t batches = 0;
    double windowsPerBatch = 0.0;
    double eventsPerBatch = 0.0;
    std::vector<std::pair<std::string, plus::prof::Rollup>> threads;
};

void
writeRollup(std::ostream& os, const plus::prof::Rollup& r)
{
    os << "{\"workPct\": " << r.workPct
       << ", \"barrierPct\": " << r.barrierPct
       << ", \"drainPct\": " << r.drainPct
       << ", \"otherPct\": " << r.otherPct << "}";
}

/** The parallel backend's threads axis (BENCH_parallel.json). */
void
writeParallelJson(std::ostream& os, bool quick, unsigned nodes,
                  const MacroResult& serial,
                  const std::vector<std::pair<unsigned, MacroResult>>& axis,
                  const std::vector<std::pair<unsigned, ParProfile>>& prof)
{
    os << "{\n"
       << "  \"bench\": \"engine_throughput_parallel\",\n"
       << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
       << "  \"nodes\": " << nodes << ",\n"
       << "  \"serialWheelEventsPerSec\": " << serial.eventsPerSec
       << ",\n"
       << "  \"harnessEvents\": " << serial.events << ",\n"
       << "  \"threads\": {";
    for (std::size_t i = 0; i < axis.size(); ++i) {
        os << (i == 0 ? "" : ", ") << "\"" << axis[i].first
           << "\": " << axis[i].second.eventsPerSec;
    }
    os << "},\n  \"speedups\": {";
    for (std::size_t i = 0; i < axis.size(); ++i) {
        os << (i == 0 ? "" : ", ") << "\"" << axis[i].first << "\": "
           << axis[i].second.eventsPerSec / serial.eventsPerSec;
    }
    os << "}";
    if (!prof.empty()) {
        os << ",\n  \"profile\": {";
        for (std::size_t i = 0; i < prof.size(); ++i) {
            const ParProfile& p = prof[i].second;
            os << (i == 0 ? "" : ", ") << "\n    \"" << prof[i].first
               << "\": {\"rollup\": ";
            writeRollup(os, p.agg);
            os << ", \"windows\": " << p.windows
               << ", \"widthMean\": " << p.widthMean
               << ", \"eventsMean\": " << p.eventsMean
               << ", \"mailSum\": " << p.mailSum
               << ", \"batches\": " << p.batches
               << ", \"windowsPerBatch\": " << p.windowsPerBatch
               << ", \"eventsPerBatch\": " << p.eventsPerBatch
               << ", \"threads\": {";
            for (std::size_t t = 0; t < p.threads.size(); ++t) {
                os << (t == 0 ? "" : ", ") << "\"" << p.threads[t].first
                   << "\": ";
                writeRollup(os, p.threads[t].second);
            }
            os << "}}";
        }
        os << "}";
    }
    os << "\n}\n";
}

} // namespace

int
main(int argc, char** argv)
{
    const HarnessArgs& args = parseHarnessArgs(argc, argv);
    bool quick = false;
    bool micro_only = false;
    bool prof_overhead = false;
    const unsigned nodes = args.nodesOr(16);
    std::string out;
    std::string parallel_out;
    for (const std::string& arg : args.rest) {
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--micro-only") {
            micro_only = true;
        } else if (arg == "--prof-overhead") {
            prof_overhead = true;
        } else if (arg.rfind("--out=", 0) == 0) {
            out = arg.substr(6);
        } else if (arg.rfind("--parallel-out=", 0) == 0) {
            parallel_out = arg.substr(15);
        } else {
            std::cerr << "usage: engine_throughput [--quick] "
                         "[--micro-only] [--prof-overhead] [--nodes=N] "
                         "[--out=<file>] [--parallel-out=<file>]\n";
            return 2;
        }
    }

    const std::uint64_t micro_events = quick ? 400'000 : 4'000'000;
    const unsigned macro_iters = quick ? 16 : 64;

    if (prof_overhead) {
        // Interleave disabled/enabled measurements in one process so
        // frequency scaling and host contention bias both sides the
        // same way; best-of-5 discards the slow outliers.
        MicroBench<sim::Engine>(micro_events / 8).eventsPerSec();
        double best_off = 0.0;
        double best_on = 0.0;
        for (int rep = 0; rep < 5; ++rep) {
            prof::enable(false);
            best_off = std::max(
                best_off,
                MicroBench<sim::Engine>(micro_events).eventsPerSec());
            prof::enable(true);
            best_on = std::max(
                best_on,
                MicroBench<sim::Engine>(micro_events).eventsPerSec());
        }
        prof::enable(false);
        std::ofstream ofs;
        if (!out.empty()) {
            ofs.open(out);
            if (!ofs) {
                std::cerr << "cannot open " << out << "\n";
                return 1;
            }
        }
        std::ostream& os = out.empty() ? std::cout : ofs;
        os << "{\n"
           << "  \"bench\": \"engine_throughput_prof_overhead\",\n"
           << "  \"offEventsPerSec\": " << best_off << ",\n"
           << "  \"onEventsPerSec\": " << best_on << ",\n"
           << "  \"overheadPct\": "
           << 100.0 * (1.0 - best_on / best_off) << "\n}\n";
        return 0;
    }

    printHeader("Engine throughput",
                "simulator performance (no paper table; see docs/PERF.md)");

    // Warm-up pass so first-touch page faults don't bill the baseline.
    MicroBench<BaselinePq>(micro_events / 8).eventsPerSec();

    const double baseline =
        MicroBench<BaselinePq>(micro_events).eventsPerSec();
    const double wheel =
        MicroBench<sim::Engine>(micro_events).eventsPerSec();
    // The heap reference backend still benefits from Event + the slab;
    // the gap between it and the wheel isolates the data structure.
    setenv("PLUS_ENGINE", "heap", 1);
    const double heap =
        MicroBench<sim::Engine>(micro_events).eventsPerSec();
    setenv("PLUS_ENGINE", "", 1);

    MacroResult macro_wheel;
    MacroResult macro_heap;
    MacroResult par_serial;
    std::vector<std::pair<unsigned, MacroResult>> par_axis;
    std::vector<std::pair<unsigned, ParProfile>> par_prof;
    const unsigned par_nodes = std::max(nodes, 64u);
    if (!micro_only) {
        macro_wheel = macroRun(Engine::Wheel, nodes, macro_iters);
        macro_heap = macroRun(Engine::Heap, nodes, macro_iters);

        // The parallel backend's threads axis, on the larger harness
        // the perf gate watches (64 nodes unless --nodes says
        // otherwise). An explicit --threads narrows the axis.
        par_serial = macroRun(Engine::Wheel, par_nodes, macro_iters);
        std::vector<unsigned> counts{1u, 2u, 4u, 8u};
        if (args.threads != 0) {
            counts.assign(1, args.threads);
        }
        for (unsigned t : counts) {
            if (t > par_nodes) {
                break;
            }
            // Isolate each axis point's profile: reset before, collect
            // after, so the rollup describes exactly this run.
            if (prof::enabled()) {
                prof::reset();
            }
            par_axis.emplace_back(
                t, macroRun(Engine::Parallel, par_nodes, macro_iters, t));
            if (prof::enabled()) {
                const prof::Summary s = prof::collect();
                ParProfile p;
                p.agg = prof::aggregateRollup(s);
                p.windows = s.windows;
                p.mailSum = s.windowMailSum;
                p.batches = s.batches;
                if (s.batches > 0) {
                    p.windowsPerBatch =
                        static_cast<double>(s.batchWindowsSum) /
                        static_cast<double>(s.batches);
                    p.eventsPerBatch =
                        static_cast<double>(s.batchEventsSum) /
                        static_cast<double>(s.batches);
                }
                if (s.windows > 0) {
                    p.widthMean = static_cast<double>(s.windowWidthSum) /
                                  static_cast<double>(s.windows);
                    p.eventsMean =
                        static_cast<double>(s.windowEventsSum) /
                        static_cast<double>(s.windows);
                }
                for (const prof::Summary::Thread& st : s.threads) {
                    p.threads.emplace_back(
                        st.label, prof::rollupOf(st, s.runWallTicks));
                }
                par_prof.emplace_back(t, p);
            }
        }
    }

    TablePrinter table;
    table.setHeader({"scheduler", "micro events/s", "harness events/s",
                     "harness cycles/s"});
    table.addRow({"baseline pq", TablePrinter::num(baseline), "-", "-"});
    table.addRow({"engine/heap", TablePrinter::num(heap),
                  TablePrinter::num(macro_heap.eventsPerSec),
                  TablePrinter::num(macro_heap.cyclesPerSec)});
    table.addRow({"engine/wheel", TablePrinter::num(wheel),
                  TablePrinter::num(macro_wheel.eventsPerSec),
                  TablePrinter::num(macro_wheel.cyclesPerSec)});
    for (const auto& [t, r] : par_axis) {
        table.addRow({"parallel x" + std::to_string(t), "-",
                      TablePrinter::num(r.eventsPerSec),
                      TablePrinter::num(r.cyclesPerSec)});
    }
    finishTable(table, "speedup vs baseline: " +
                           TablePrinter::num(wheel / baseline, 2) + "x");

    if (!out.empty()) {
        std::ofstream os(out);
        if (!os) {
            std::cerr << "cannot open " << out << "\n";
            return 1;
        }
        writeJson(os, quick, nodes, baseline, wheel, heap, macro_wheel,
                  macro_heap);
    } else {
        writeJson(std::cout, quick, nodes, baseline, wheel, heap,
                  macro_wheel, macro_heap);
    }
    if (!parallel_out.empty() && !micro_only) {
        std::ofstream os(parallel_out);
        if (!os) {
            std::cerr << "cannot open " << parallel_out << "\n";
            return 1;
        }
        writeParallelJson(os, quick, par_nodes, par_serial, par_axis,
                          par_prof);
    }
    return exportProf() ? 0 : 1;
}
