/**
 * @file
 * Reproduces Figure 2-1(b): efficiency and utilization of the parallel
 * shortest-path algorithm with and without replication as the number of
 * processors grows.
 *
 * Paper's qualitative result: "With no replication, the utilization
 * decreases substantially when more than 2 processors are used; while
 * with replication it remains high until the number of processors
 * exceeds 32. When more than 32 processors are used, most processors
 * are idle waiting for work, since the problem is not large enough to
 * occupy all processors."
 */

#include <iostream>

#include "bench/bench_util.hpp"
#include "workloads/sssp.hpp"

namespace {

struct Sample {
    double efficiency;
    double utilization;
};

Sample
runOnce(unsigned nodes, unsigned replication, plus::Cycles t1)
{
    using namespace plus;
    using namespace plus::bench;
    auto machine_ptr = machineBuilder(nodes).build();
    core::Machine& machine = *machine_ptr;
    workloads::SsspConfig cfg;
    cfg.vertices = 8192;
    cfg.kind = workloads::SsspGraphKind::Grid;
    cfg.shortcutFrac = 0.05;
    cfg.seed = 20260708;
    cfg.replication = replication;
    const workloads::SsspResult r = runSssp(machine, cfg);
    if (!r.correct) {
        std::cerr << "FAILED: incorrect distances at N=" << nodes
                  << " k=" << replication << "\n";
        std::exit(1);
    }
    Sample s;
    s.efficiency = t1 == 0 ? 1.0 : efficiency(t1, nodes, r.elapsed);
    s.utilization = r.report.utilization(nodes);
    exportTelemetry(machine);
    return s;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace plus;
    using namespace plus::bench;
    parseHarnessArgs(argc, argv);

    printHeader("Figure 2-1(b): SSSP efficiency and utilization",
                "efficiency/utilization vs processors, replication off/on");

    // One-processor baseline for the efficiency curves.
    auto base_ptr = machineBuilder(1).build();
    core::Machine& base = *base_ptr;
    workloads::SsspConfig cfg;
    cfg.vertices = 8192;
    cfg.kind = workloads::SsspGraphKind::Grid;
    cfg.shortcutFrac = 0.05;
    cfg.seed = 20260708;
    const workloads::SsspResult r1 = runSssp(base, cfg);
    if (!r1.correct) {
        std::cerr << "FAILED: baseline incorrect\n";
        return 1;
    }
    const Cycles t1 = r1.elapsed;

    TablePrinter table;
    table.setHeader({"Procs", "Eff(no-repl)", "Util(no-repl)",
                     "Eff(repl)", "Util(repl)"});
    table.addRow({"1", "1.00", TablePrinter::num(
                                   r1.report.utilization(1)),
                  "1.00",
                  TablePrinter::num(r1.report.utilization(1))});

    for (unsigned nodes : {2u, 4u, 8u, 16u, 32u, 64u}) {
        const Sample none = runOnce(nodes, 1, t1);
        const unsigned k = std::min(nodes, 4u);
        const Sample repl = runOnce(nodes, k, t1);
        table.addRow({std::to_string(nodes),
                      TablePrinter::num(none.efficiency),
                      TablePrinter::num(none.utilization),
                      TablePrinter::num(repl.efficiency),
                      TablePrinter::num(repl.utilization)});
    }
    finishTable(table,
                "Expected shape: the no-replication utilization decays "
                "past a few processors;\nthe replicated curves stay high "
                "until ~32 processors, then fall as the fixed-size\n"
                "problem runs out of parallelism.");
    return 0;
}
