/**
 * @file
 * Ablation F: node-bus snoop policy. Section 2.2 argues for update-
 * style protocols in distributed-memory systems ("using a protocol that
 * does not invalidate other copies, but instead updates them, is very
 * useful"); on the node bus PLUS accordingly snoop-*updates* the
 * processor cache when the coherence manager writes local memory. This
 * harness compares that against an invalidating snoop on a workload
 * where processors repeatedly re-read words that remote writers keep
 * updating.
 */

#include <iostream>

#include "bench/bench_util.hpp"
#include "core/context.hpp"

namespace {

using namespace plus;
using namespace plus::bench;

struct Outcome {
    Cycles elapsed;
    std::uint64_t hits;
    std::uint64_t misses;
};

Outcome
runPingPong(bool invalidate)
{
    auto machine_ptr =
        machineBuilder(8)
            .tune([&](MachineConfig& mc) {
                mc.cost.snoopInvalidate = invalidate;
            })
            .build();
    core::Machine& machine = *machine_ptr;

    // Each node owns a page its processor keeps re-reading while the
    // next node writes fresh values into it.
    std::vector<Addr> pages(8);
    for (NodeId n = 0; n < 8; ++n) {
        pages[n] = machine.alloc(kPageBytes, n);
    }
    for (NodeId n = 0; n < 8; ++n) {
        const Addr own = pages[n];
        const Addr neighbour = pages[(n + 1) % 8];
        machine.spawn(n, [own, neighbour](core::Context& ctx) {
            for (int i = 0; i < 300; ++i) {
                // Re-read a hot local window (cached; snooped on every
                // remote update)...
                for (Word w = 0; w < 8; ++w) {
                    ctx.read(own + 4 * w);
                }
                ctx.compute(20);
                // ...and occasionally write into the neighbour's window
                // (sparse enough that reads, not write bandwidth, set
                // the pace).
                if (i % 4 == 0) {
                    ctx.write(neighbour + 4 * (i % 8), i);
                }
            }
            ctx.fence();
        });
    }
    machine.run();

    Outcome out{machine.now(), 0, 0};
    for (NodeId n = 0; n < 8; ++n) {
        out.hits += machine.nodeAt(n).cache()->stats().hits;
        out.misses += machine.nodeAt(n).cache()->stats().misses;
    }
    return out;
}

} // namespace

int
main()
{
    printHeader("Ablation F: node-bus snoop policy",
                "write-update (PLUS) vs invalidate on re-read-heavy load");

    const Outcome update = runPingPong(false);
    const Outcome invalidate = runPingPong(true);

    TablePrinter table;
    table.setHeader({"Snoop policy", "cycles", "cache hits",
                     "cache misses"});
    table.addRow({"update (PLUS)", TablePrinter::num(update.elapsed),
                  TablePrinter::num(update.hits),
                  TablePrinter::num(update.misses)});
    table.addRow({"invalidate", TablePrinter::num(invalidate.elapsed),
                  TablePrinter::num(invalidate.hits),
                  TablePrinter::num(invalidate.misses)});
    table.print(std::cout);
    std::cout << "\nExpected: the invalidating snoop evicts the hot lines "
                 "on every remote update,\nturning re-reads into "
                 "line fills (more misses, more cycles) — the ping-pong\n"
                 "Section 2.2 credits DRAGON-style update protocols with "
                 "avoiding.\n\n";
    return update.elapsed <= invalidate.elapsed ? 0 : 1;
}
