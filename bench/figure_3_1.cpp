/**
 * @file
 * Reproduces Figure 3-1, "Efficiency of the Beam Search Application with
 * Different Synchronization Costs": the sync-heavy beam-search inner
 * loop under (a) blocking synchronization, (b) PLUS's delayed
 * operations, and (c) context switching with 16-, 40- and 140-cycle
 * switch costs.
 *
 * Paper's qualitative result: very fast (16-cycle) context switching is
 * best, delayed operations beat 40-cycle context switching, and
 * 140-cycle switching is down with (or below) blocking.
 */

#include <iostream>

#include "bench/bench_util.hpp"
#include "workloads/beam.hpp"

namespace {

using namespace plus;
using namespace plus::bench;

workloads::BeamConfig
beamConfig()
{
    workloads::BeamConfig cfg;
    cfg.layers = 16;
    cfg.width = 256;
    cfg.avgDegree = 3.0;
    cfg.maxWeight = 50;
    cfg.seed = 20260708;
    return cfg;
}

Cycles
runOnce(unsigned nodes, ProcessorMode mode, Cycles ctx_cost,
        unsigned threads_per_proc)
{
    auto machine_ptr =
        machineBuilder(nodes, mode)
            .tune([&](MachineConfig& mc) {
                mc.cost.ctxSwitchCycles = ctx_cost;
            })
            .build();
    core::Machine& machine = *machine_ptr;
    workloads::BeamConfig cfg = beamConfig();
    cfg.threadsPerProcessor = threads_per_proc;
    const workloads::BeamResult r = runBeam(machine, cfg);
    if (!r.correct) {
        std::cerr << "FAILED: beam result incorrect (nodes=" << nodes
                  << " mode=" << toString(mode) << ")\n";
        std::exit(1);
    }
    return r.elapsed;
}

} // namespace

int
main(int argc, char** argv)
{
    parseHarnessArgs(argc, argv);
    printHeader("Figure 3-1: beam-search efficiency vs sync cost",
                "blocking vs delayed ops vs context switching 16/40/140");

    // Common baseline: the one-processor blocking run.
    const Cycles t1 = runOnce(1, ProcessorMode::Blocking, 0, 1);

    TablePrinter table;
    table.setHeader({"Procs", "blocking", "delayed", "ctx-16", "ctx-40",
                     "ctx-140"});
    for (unsigned nodes : {1u, 2u, 4u, 8u, 16u}) {
        auto eff = [&](Cycles tn) {
            return TablePrinter::num(efficiency(t1, nodes, tn));
        };
        const Cycles blocking =
            runOnce(nodes, ProcessorMode::Blocking, 0, 1);
        const Cycles delayed =
            runOnce(nodes, ProcessorMode::Delayed, 0, 1);
        const Cycles ctx16 =
            runOnce(nodes, ProcessorMode::ContextSwitch, 16, 2);
        const Cycles ctx40 =
            runOnce(nodes, ProcessorMode::ContextSwitch, 40, 2);
        const Cycles ctx140 =
            runOnce(nodes, ProcessorMode::ContextSwitch, 140, 2);
        table.addRow({std::to_string(nodes), eff(blocking), eff(delayed),
                      eff(ctx16), eff(ctx40), eff(ctx140)});
    }
    finishTable(table,
                "Expected ordering at scale: ctx-16 >= delayed > "
                "ctx-40 > blocking >= ctx-140.");
    return 0;
}
