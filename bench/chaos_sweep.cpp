/**
 * @file
 * Chaos sweep: the reliable-delivery layer must make injected network
 * faults invisible to the memory system. A fault-free oracle run fixes
 * the expected final memory image (the workload is built from disjoint
 * per-node writes and commutative fetch-and-adds, so the image is
 * timing-independent); every chaos run — drop / duplicate / corrupt /
 * transient link-kill schedules across several injector seeds — must
 * reproduce it word for word. The sweep ends with a watchdog
 * demonstration: a permanent partition with an unbounded retransmit
 * budget must be converted into a forward-progress panic, not a hang.
 *
 *   chaos_sweep [--nodes=N] [--seeds=K] [--kill-node=<id>@<cycle>]
 *
 * --kill-node appends a fail-stop section: the named node is crashed
 * mid-run (cycle is relative to workload start), recovery re-masters
 * its pages, and the run must end with every surviving replica
 * byte-identical and the survivor image matching the oracle. Recovery
 * latency percentiles are reported from the telemetry histograms, and
 * a combined image hash is printed for cross-backend identity checks
 * (scripts/ci.sh `recovery` stage). Fail-stop runs use a 1xN linear
 * mesh and should kill an end node: a crashed node's *router* also
 * dies, so a mid-mesh victim would black-hole survivor-to-survivor
 * transit traffic (see docs/ROBUSTNESS.md "Crash recovery").
 *
 * Exits non-zero on any image mismatch or if the watchdog fails to
 * fire. See docs/ROBUSTNESS.md.
 */

#include <cstdint>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/panic.hpp"
#include "common/stats.hpp"
#include "core/context.hpp"
#include "net/fault_injector.hpp"
#include "net/reliable_link.hpp"
#include "proto/recovery_manager.hpp"

namespace {

using namespace plus;
using namespace plus::bench;

constexpr unsigned kCopies = 3;    ///< replicas per page (incl. master)
constexpr unsigned kWordsUsed = 16; ///< words written per page
constexpr Word kIters = 24;         ///< write rounds per thread

struct RunResult {
    std::vector<Word> image; ///< final memory: pages then the counter
    Cycles cycles = 0;
    net::FaultStats faults;
    net::LinkStats link;
    // Fail-stop runs only (FaultConfig::recover armed):
    proto::RecoveryStats rec;            ///< epoch outcome counters
    telemetry::DistSummary recLatency;   ///< recovery.latency snapshot
    bool survivorsConsistent = true;     ///< replicas byte-identical
};

/**
 * Run the workload once and return the final memory image. The image
 * is timing-independent by construction: each node writes only its own
 * page's words (last value per word is fixed by program order) and the
 * shared counter only ever sees commutative increments.
 */
RunResult
runOnce(unsigned nodes, const FaultConfig* fault)
{
    MachineBuilder builder = machineBuilder(nodes);
    if (fault) {
        builder.faults(*fault);
        const bool fail_stop = fault->recover;
        builder.tune([nodes, fail_stop](MachineConfig& c) {
            c.watchdog.enabled = true; // a hung chaos run should diagnose
            if (fail_stop) {
                // A crashed node's router dies with it. On a 1xN line
                // the end node is never a transit hop for survivor
                // pairs, so killing it cannot black-hole live traffic.
                c.network.meshWidth = nodes;
            }
        });
    }
    auto machine_ptr = builder.build();
    core::Machine& machine = *machine_ptr;

    std::vector<Addr> pages(nodes);
    for (NodeId n = 0; n < nodes; ++n) {
        pages[n] = machine.alloc(kPageBytes, n);
        for (unsigned c = 1; c < kCopies && c < nodes; ++c) {
            machine.replicate(pages[n], (n + c) % nodes);
        }
    }
    const Addr counter = machine.alloc(kPageBytes, 0);
    machine.settle();

    for (NodeId n = 0; n < nodes; ++n) {
        machine.spawn(n, [&pages, counter, nodes, n](core::Context& ctx) {
            const Addr own = pages[n];
            const Addr peer = pages[(n + 1) % nodes];
            for (Word i = 0; i < kIters; ++i) {
                // Disjoint writes: update chains through every replica.
                ctx.write(own + 8 * (i % kWordsUsed), n * 1000 + i);
                // Remote reads keep request/response traffic flowing.
                ctx.read(peer + 8 * (i % kWordsUsed));
                if (i % 6 == 0) {
                    ctx.fadd(counter, 1); // commutative shared traffic
                }
                ctx.compute(20);
            }
            ctx.fence();
        });
    }
    machine.run();
    machine.settle();

    RunResult r;
    r.cycles = machine.now();
    // A page whose every copy died is gone from the directory; report
    // the degraded-mode value in its place instead of peeking.
    auto peekWord = [&machine](Addr addr) {
        return machine.pageIsLost(pageOf(addr)) ? kPageLostValue
                                                : machine.peek(addr);
    };
    for (NodeId n = 0; n < nodes; ++n) {
        for (unsigned w = 0; w < kWordsUsed; ++w) {
            r.image.push_back(peekWord(pages[n] + 8 * w));
        }
    }
    r.image.push_back(peekWord(counter));
    if (const net::FaultInjector* inj =
            machine.network().faultInjector()) {
        r.faults = inj->stats();
    }
    if (const net::LinkLayer* link = machine.network().linkLayer()) {
        r.link = link->stats();
    }
    if (const proto::RecoveryManager* rm = machine.recovery()) {
        r.rec = rm->stats();
        for (const auto& [name, dist] :
             machine.metricsSnapshot().distributions) {
            if (name == "recovery.latency") {
                r.recLatency = dist;
            }
        }
        // Surviving-replica consistency: after copy-list repair every
        // remaining copy of a page must be byte-identical.
        std::vector<Addr> bases = pages;
        bases.push_back(counter);
        for (const Addr base : bases) {
            if (machine.pageIsLost(pageOf(base))) {
                continue;
            }
            const mem::CopyList& list = machine.copyListOf(base);
            const PhysPage master = list.master();
            for (const PhysPage& copy : list.copies()) {
                for (Addr w = 0; w < kPageWords; ++w) {
                    if (machine.nodeAt(copy.node).memory().read(
                            copy.frame, w) !=
                        machine.nodeAt(master.node).memory().read(
                            master.frame, w)) {
                        r.survivorsConsistent = false;
                    }
                }
            }
        }
    }
    return r;
}

/** A permanent partition must end in a watchdog panic, not a hang. */
bool
watchdogConvertsPartitionToPanic(unsigned nodes)
{
    FaultConfig fault;
    fault.maxRetransmits = 0; // leave the hang to the dog
    fault.script.push_back({1, FaultScriptEntry::Kind::LinkDown, 0, 1});
    auto machine_ptr = machineBuilder(nodes)
                           .faults(fault)
                           .watchdog(1u << 15)
                           .build();
    core::Machine& machine = *machine_ptr;
    const Addr a = machine.alloc(kPageBytes, 0);
    machine.spawn(1, [a](core::Context& ctx) { ctx.read(a); });
    try {
        machine.run();
    } catch (const PanicError& e) {
        return std::string(e.what()).find("watchdog") !=
               std::string::npos;
    }
    return false;
}

/** One --kill-node=<id>@<cycle> request (cycle relative to run start). */
struct KillSpec {
    NodeId node = 0;
    Cycles at = 0;
};

/**
 * Check a fail-stop run's image against the fault-free oracle. A
 * surviving node's page must match the oracle word for word (its
 * writer ran to completion; recovery replays anything the crash
 * tore). A crashed node's words stop at whatever round its writer
 * reached, so each must be zero or some round's value for that word.
 * The commutative counter loses only the dead nodes' increments.
 */
bool
imageOkAfterKill(const std::vector<Word>& oracle,
                 const RunResult& run,
                 const std::vector<KillSpec>& kills,
                 unsigned nodes)
{
    auto killed = [&kills](NodeId n) {
        for (const KillSpec& k : kills) {
            if (k.node == n) {
                return true;
            }
        }
        return false;
    };
    for (NodeId n = 0; n < nodes; ++n) {
        for (unsigned w = 0; w < kWordsUsed; ++w) {
            const Word got = run.image[n * kWordsUsed + w];
            if (!killed(n)) {
                if (got != oracle[n * kWordsUsed + w]) {
                    return false;
                }
                continue;
            }
            if (got == 0 || got == kPageLostValue) {
                continue; // round never reached, or page lost outright
            }
            const Word round = got - n * 1000;
            if (round >= kIters || round % kWordsUsed != w) {
                return false;
            }
        }
    }
    // i % 6 == 0 rounds increment the shared counter.
    Word fadds = 0;
    for (Word i = 0; i < kIters; ++i) {
        fadds += (i % 6 == 0) ? 1 : 0;
    }
    const Word got = run.image.back();
    if (got == kPageLostValue) {
        return killed(0); // counter master is node 0
    }
    const auto dead = static_cast<Word>(kills.size());
    return got >= fadds * (nodes - dead) && got <= fadds * nodes;
}

} // namespace

int
main(int argc, char** argv)
{
    const HarnessArgs& args = parseHarnessArgs(argc, argv);
    const unsigned nodes = args.nodesOr(8);
    unsigned seeds = 3;
    std::vector<KillSpec> kills;
    for (const std::string& arg : args.rest) {
        if (arg.rfind("--seeds=", 0) == 0) {
            seeds = static_cast<unsigned>(std::stoul(arg.substr(8)));
        } else if (arg.rfind("--kill-node=", 0) == 0) {
            const std::string spec = arg.substr(12);
            const std::size_t sep = spec.find('@');
            if (sep == std::string::npos) {
                std::cerr << "malformed " << arg
                          << " (want --kill-node=<id>@<cycle>)\n";
                return 2;
            }
            KillSpec k;
            k.node = static_cast<NodeId>(std::stoul(spec.substr(0, sep)));
            k.at = std::stoull(spec.substr(sep + 1));
            kills.push_back(k);
        } else {
            std::cerr << "usage: chaos_sweep [--nodes=N] [--seeds=K] "
                         "[--kill-node=<id>@<cycle>]\n";
            return 2;
        }
    }

    // Fail-stop recovery re-masters from a replica, which under
    // write-invalidate may hold invalidated words (the same reason
    // MachineConfig::validate rejects invalidate + fault.recover).
    // Report the unsupported combination instead of tripping it.
    bool invalidate = args.protocol == Protocol::WriteInvalidate;
    if (args.protocol == Protocol::Auto) {
        if (const char* name = envRead("PLUS_PROTOCOL")) {
            Protocol env = Protocol::Auto;
            invalidate = protocolFromString(name, env) &&
                         env == Protocol::WriteInvalidate;
        }
    }
    if (!kills.empty() && invalidate) {
        std::cout << "chaos_sweep: --kill-node is unsupported under the "
                     "write-invalidate protocol (re-mastering would "
                     "promote a replica that may hold invalidated words; "
                     "see docs/PROTOCOLS.md). Skipping the sweep.\n";
        return 0;
    }

    const RunResult oracle = runOnce(nodes, nullptr);

    struct Scenario {
        const char* name;
        FaultConfig fault;
    };
    std::vector<Scenario> scenarios;
    {
        Scenario s;
        s.name = "drop 1%";
        s.fault.dropRate = 0.01;
        scenarios.push_back(s);
    }
    {
        Scenario s;
        s.name = "dup 1%";
        s.fault.duplicateRate = 0.01;
        scenarios.push_back(s);
    }
    {
        Scenario s;
        s.name = "corrupt 0.5%";
        s.fault.corruptRate = 0.005;
        scenarios.push_back(s);
    }
    {
        Scenario s;
        s.name = "mixed+kill";
        s.fault.dropRate = 0.01;
        s.fault.duplicateRate = 0.01;
        s.fault.corruptRate = 0.005;
        // One transient partition in the middle of the run.
        s.fault.script.push_back(
            {2000, FaultScriptEntry::Kind::LinkDown, 0, 1});
        s.fault.script.push_back(
            {12000, FaultScriptEntry::Kind::LinkUp, 0, 1});
        scenarios.push_back(s);
    }

    TablePrinter table;
    table.setHeader({"scenario", "seed", "cycles", "injected",
                     "retransmits", "image"});
    bool allOk = true;
    for (const Scenario& s : scenarios) {
        for (unsigned seed = 1; seed <= seeds; ++seed) {
            FaultConfig fault = s.fault;
            fault.seed = seed;
            const RunResult run = runOnce(nodes, &fault);
            const bool ok = run.image == oracle.image;
            allOk = allOk && ok;
            const std::uint64_t injected =
                run.faults.dropped + run.faults.corrupted +
                run.faults.duplicated + run.faults.delayed;
            table.addRow({s.name, std::to_string(seed),
                          TablePrinter::num(run.cycles),
                          TablePrinter::num(injected),
                          TablePrinter::num(run.link.retransmits),
                          ok ? "ok" : "MISMATCH"});
        }
    }
    std::cout << "chaos sweep: " << nodes << " nodes, oracle "
              << TablePrinter::num(oracle.cycles) << " cycles, "
              << oracle.image.size() << "-word image\n\n";
    table.print(std::cout);

    bool killsOk = true;
    if (!kills.empty()) {
        TablePrinter kt;
        kt.setHeader({"scenario", "seed", "cycles", "epochs",
                      "remastered", "lost", "latency", "image"});
        Histogram latencies;
        std::uint64_t hash = 1469598103934665603ull; // FNV-1a offset
        auto mix = [&hash](std::uint64_t v) {
            for (unsigned b = 0; b < 8; ++b) {
                hash ^= (v >> (8 * b)) & 0xffu;
                hash *= 1099511628211ull;
            }
        };
        for (unsigned seed = 1; seed <= seeds; ++seed) {
            FaultConfig fault;
            fault.recover = true;
            fault.maxRetransmits = 4; // small budget = fast detection
            fault.seed = seed;
            // Stagger the crash per seed so the latency distribution
            // samples detection at different protocol phases.
            const Cycles shift = (seed - 1) * 800;
            std::string name = "fail-stop";
            for (const KillSpec& k : kills) {
                fault.script.push_back({k.at + shift,
                                        FaultScriptEntry::Kind::CrashNode,
                                        k.node});
                name += " n" + std::to_string(k.node) + "@" +
                        std::to_string(k.at + shift);
            }
            const RunResult run = runOnce(nodes, &fault);
            const bool ok = imageOkAfterKill(oracle.image, run, kills,
                                             nodes) &&
                            run.survivorsConsistent &&
                            run.rec.nodeRecoveries == kills.size();
            killsOk = killsOk && ok;
            if (run.recLatency.count > 0) {
                // One seal per epoch; the per-run mean degrades to the
                // exact sample for the common single-crash case.
                for (std::uint64_t i = 0; i < run.recLatency.count; ++i) {
                    latencies.record(run.recLatency.mean);
                }
            }
            for (const Word w : run.image) {
                mix(w);
            }
            mix(run.cycles);
            mix(run.rec.pagesRemastered);
            mix(run.rec.copyListsRepaired);
            mix(run.rec.pagesLost);
            kt.addRow({name, std::to_string(seed),
                       TablePrinter::num(run.cycles),
                       std::to_string(run.rec.nodeRecoveries),
                       std::to_string(run.rec.pagesRemastered),
                       std::to_string(run.rec.pagesLost),
                       TablePrinter::num(run.recLatency.mean, 0),
                       ok ? "ok" : "MISMATCH"});
        }
        std::cout << "\nfail-stop recovery (1x" << nodes
                  << " line, cycle relative to workload start):\n\n";
        kt.print(std::cout);
        std::cout << "\nrecovery latency cycles: p50 "
                  << TablePrinter::num(latencies.percentile(50.0), 0)
                  << ", p90 "
                  << TablePrinter::num(latencies.percentile(90.0), 0)
                  << ", p99 "
                  << TablePrinter::num(latencies.percentile(99.0), 0)
                  << " over " << latencies.count() << " epoch(s)\n";
        std::cout << "fail-stop image hash: 0x" << std::hex
                  << std::setw(16) << std::setfill('0') << hash
                  << std::dec << std::setfill(' ') << "\n";
    }

    const bool dogOk = watchdogConvertsPartitionToPanic(nodes);
    std::cout << "\nwatchdog partition demo: "
              << (dogOk ? "panicked as expected" : "FAILED TO FIRE")
              << "\n";

    if (!allOk || !killsOk || !dogOk) {
        std::cerr << "\nchaos sweep FAILED\n";
        return 1;
    }
    std::cout << "\nall chaos runs reproduced the fault-free image\n";
    return 0;
}
