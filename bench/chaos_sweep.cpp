/**
 * @file
 * Chaos sweep: the reliable-delivery layer must make injected network
 * faults invisible to the memory system. A fault-free oracle run fixes
 * the expected final memory image (the workload is built from disjoint
 * per-node writes and commutative fetch-and-adds, so the image is
 * timing-independent); every chaos run — drop / duplicate / corrupt /
 * transient link-kill schedules across several injector seeds — must
 * reproduce it word for word. The sweep ends with a watchdog
 * demonstration: a permanent partition with an unbounded retransmit
 * budget must be converted into a forward-progress panic, not a hang.
 *
 *   chaos_sweep [--nodes=N] [--seeds=K]
 *
 * Exits non-zero on any image mismatch or if the watchdog fails to
 * fire. See docs/ROBUSTNESS.md.
 */

#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/panic.hpp"
#include "core/context.hpp"
#include "net/fault_injector.hpp"
#include "net/reliable_link.hpp"

namespace {

using namespace plus;
using namespace plus::bench;

constexpr unsigned kCopies = 3;    ///< replicas per page (incl. master)
constexpr unsigned kWordsUsed = 16; ///< words written per page
constexpr Word kIters = 24;         ///< write rounds per thread

struct RunResult {
    std::vector<Word> image; ///< final memory: pages then the counter
    Cycles cycles = 0;
    net::FaultStats faults;
    net::LinkStats link;
};

/**
 * Run the workload once and return the final memory image. The image
 * is timing-independent by construction: each node writes only its own
 * page's words (last value per word is fixed by program order) and the
 * shared counter only ever sees commutative increments.
 */
RunResult
runOnce(unsigned nodes, const FaultConfig* fault)
{
    MachineBuilder builder = machineBuilder(nodes);
    if (fault) {
        builder.faults(*fault);
        builder.tune([](MachineConfig& c) {
            c.watchdog.enabled = true; // a hung chaos run should diagnose
        });
    }
    auto machine_ptr = builder.build();
    core::Machine& machine = *machine_ptr;

    std::vector<Addr> pages(nodes);
    for (NodeId n = 0; n < nodes; ++n) {
        pages[n] = machine.alloc(kPageBytes, n);
        for (unsigned c = 1; c < kCopies && c < nodes; ++c) {
            machine.replicate(pages[n], (n + c) % nodes);
        }
    }
    const Addr counter = machine.alloc(kPageBytes, 0);
    machine.settle();

    for (NodeId n = 0; n < nodes; ++n) {
        machine.spawn(n, [&pages, counter, nodes, n](core::Context& ctx) {
            const Addr own = pages[n];
            const Addr peer = pages[(n + 1) % nodes];
            for (Word i = 0; i < kIters; ++i) {
                // Disjoint writes: update chains through every replica.
                ctx.write(own + 8 * (i % kWordsUsed), n * 1000 + i);
                // Remote reads keep request/response traffic flowing.
                ctx.read(peer + 8 * (i % kWordsUsed));
                if (i % 6 == 0) {
                    ctx.fadd(counter, 1); // commutative shared traffic
                }
                ctx.compute(20);
            }
            ctx.fence();
        });
    }
    machine.run();
    machine.settle();

    RunResult r;
    r.cycles = machine.now();
    for (NodeId n = 0; n < nodes; ++n) {
        for (unsigned w = 0; w < kWordsUsed; ++w) {
            r.image.push_back(machine.peek(pages[n] + 8 * w));
        }
    }
    r.image.push_back(machine.peek(counter));
    if (const net::FaultInjector* inj =
            machine.network().faultInjector()) {
        r.faults = inj->stats();
    }
    if (const net::LinkLayer* link = machine.network().linkLayer()) {
        r.link = link->stats();
    }
    return r;
}

/** A permanent partition must end in a watchdog panic, not a hang. */
bool
watchdogConvertsPartitionToPanic(unsigned nodes)
{
    FaultConfig fault;
    fault.maxRetransmits = 0; // leave the hang to the dog
    fault.script.push_back({1, FaultScriptEntry::Kind::LinkDown, 0, 1});
    auto machine_ptr = machineBuilder(nodes)
                           .faults(fault)
                           .watchdog(1u << 15)
                           .build();
    core::Machine& machine = *machine_ptr;
    const Addr a = machine.alloc(kPageBytes, 0);
    machine.spawn(1, [a](core::Context& ctx) { ctx.read(a); });
    try {
        machine.run();
    } catch (const PanicError& e) {
        return std::string(e.what()).find("watchdog") !=
               std::string::npos;
    }
    return false;
}

} // namespace

int
main(int argc, char** argv)
{
    const HarnessArgs& args = parseHarnessArgs(argc, argv);
    const unsigned nodes = args.nodesOr(8);
    unsigned seeds = 3;
    for (const std::string& arg : args.rest) {
        if (arg.rfind("--seeds=", 0) == 0) {
            seeds = static_cast<unsigned>(std::stoul(arg.substr(8)));
        } else {
            std::cerr << "usage: chaos_sweep [--nodes=N] [--seeds=K]\n";
            return 2;
        }
    }

    const RunResult oracle = runOnce(nodes, nullptr);

    struct Scenario {
        const char* name;
        FaultConfig fault;
    };
    std::vector<Scenario> scenarios;
    {
        Scenario s;
        s.name = "drop 1%";
        s.fault.dropRate = 0.01;
        scenarios.push_back(s);
    }
    {
        Scenario s;
        s.name = "dup 1%";
        s.fault.duplicateRate = 0.01;
        scenarios.push_back(s);
    }
    {
        Scenario s;
        s.name = "corrupt 0.5%";
        s.fault.corruptRate = 0.005;
        scenarios.push_back(s);
    }
    {
        Scenario s;
        s.name = "mixed+kill";
        s.fault.dropRate = 0.01;
        s.fault.duplicateRate = 0.01;
        s.fault.corruptRate = 0.005;
        // One transient partition in the middle of the run.
        s.fault.script.push_back(
            {2000, FaultScriptEntry::Kind::LinkDown, 0, 1});
        s.fault.script.push_back(
            {12000, FaultScriptEntry::Kind::LinkUp, 0, 1});
        scenarios.push_back(s);
    }

    TablePrinter table;
    table.setHeader({"scenario", "seed", "cycles", "injected",
                     "retransmits", "image"});
    bool allOk = true;
    for (const Scenario& s : scenarios) {
        for (unsigned seed = 1; seed <= seeds; ++seed) {
            FaultConfig fault = s.fault;
            fault.seed = seed;
            const RunResult run = runOnce(nodes, &fault);
            const bool ok = run.image == oracle.image;
            allOk = allOk && ok;
            const std::uint64_t injected =
                run.faults.dropped + run.faults.corrupted +
                run.faults.duplicated + run.faults.delayed;
            table.addRow({s.name, std::to_string(seed),
                          TablePrinter::num(run.cycles),
                          TablePrinter::num(injected),
                          TablePrinter::num(run.link.retransmits),
                          ok ? "ok" : "MISMATCH"});
        }
    }
    std::cout << "chaos sweep: " << nodes << " nodes, oracle "
              << TablePrinter::num(oracle.cycles) << " cycles, "
              << oracle.image.size() << "-word image\n\n";
    table.print(std::cout);

    const bool dogOk = watchdogConvertsPartitionToPanic(nodes);
    std::cout << "\nwatchdog partition demo: "
              << (dogOk ? "panicked as expected" : "FAILED TO FIRE")
              << "\n";

    if (!allOk || !dogOk) {
        std::cerr << "\nchaos sweep FAILED\n";
        return 1;
    }
    std::cout << "\nall chaos runs reproduced the fault-free image\n";
    return 0;
}
