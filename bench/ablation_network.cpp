/**
 * @file
 * Ablation B: network contention and update flooding.
 *
 * Section 2.5 warns that "uncontrolled replication can result in the
 * system getting flooded with update requests, slowing down useful
 * computation". This harness drives a write-heavy synthetic load
 * against pages replicated on every node and compares the contention-
 * modelling mesh against the ideal (infinite-bandwidth) network, for
 * growing replication degrees.
 */

#include <iostream>

#include "bench/bench_util.hpp"
#include "core/context.hpp"

namespace {

using namespace plus;
using namespace plus::bench;

struct Outcome {
    Cycles elapsed;
    double meanQueueing;
    std::uint64_t messages;
};

/** Every node hammers writes at its own page, replicated @p copies ways. */
Outcome
runFlood(unsigned nodes, unsigned copies, bool ideal)
{
    auto machine_ptr = machineBuilder(nodes).idealNetwork(ideal).build();
    core::Machine& machine = *machine_ptr;

    std::vector<Addr> pages(nodes);
    for (NodeId n = 0; n < nodes; ++n) {
        pages[n] = machine.alloc(kPageBytes, n);
        for (unsigned c = 1; c < copies; ++c) {
            machine.replicate(pages[n], (n + c) % nodes);
        }
    }
    machine.settle();

    constexpr unsigned kWrites = 200;
    for (NodeId n = 0; n < nodes; ++n) {
        const Addr page = pages[n];
        machine.spawn(n, [page](core::Context& ctx) {
            for (unsigned i = 0; i < kWrites; ++i) {
                ctx.write(page + 4 * (i % 64), i);
                ctx.compute(10);
            }
            ctx.fence();
        });
    }
    machine.run();
    exportTelemetry(machine);
    const auto net = machine.network().stats();
    return {machine.now(), machine.network().queueingHistogram().mean(),
            net.packets};
}

} // namespace

int
main(int argc, char** argv)
{
    parseHarnessArgs(argc, argv);
    printHeader("Ablation B: mesh contention vs ideal network",
                "update flooding as replication grows (Section 2.5)");

    constexpr unsigned kNodes = 16;
    TablePrinter table;
    table.setHeader({"Copies", "mesh cycles", "ideal cycles", "slowdown",
                     "mesh queueing (avg cyc)", "messages"});
    for (unsigned copies : {1u, 2u, 4u, 8u, 16u}) {
        const Outcome mesh = runFlood(kNodes, copies, false);
        const Outcome ideal = runFlood(kNodes, copies, true);
        table.addRow(
            {std::to_string(copies), TablePrinter::num(mesh.elapsed),
             TablePrinter::num(ideal.elapsed),
             TablePrinter::num(ratioOf(static_cast<double>(mesh.elapsed),
                                       static_cast<double>(ideal.elapsed))),
             TablePrinter::num(mesh.meanQueueing),
             TablePrinter::num(mesh.messages)});
    }
    finishTable(table,
                "Expected: with few copies the mesh tracks the ideal "
                "network; at full replication\nthe update fan-out "
                "saturates links and the mesh falls behind.");
    return 0;
}
