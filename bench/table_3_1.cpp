/**
 * @file
 * Reproduces Table 3-1, "PLUS's Delayed Operations", together with the
 * cost narrative of Section 3.1: the coherence manager executes simple
 * interlocked operations in 39 cycles and queue/dequeue/min-xchng in 52;
 * issuing costs ~25 processor cycles, reading an available result ~10;
 * the round trip between adjacent nodes is 24 cycles, each extra hop
 * adds 4; a remote blocking read costs about 32 cycles plus the round
 * trip.
 *
 * The harness measures every operation end to end on an otherwise idle
 * machine and checks the measurement against the paper's arithmetic:
 *   latency(h) = 25 + (10 + 2h) + occupancy + (10 + 2h) + 10.
 */

#include <iostream>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/context.hpp"
#include "core/sync.hpp"
#include "proto/rmw.hpp"

namespace {

using namespace plus;
using namespace plus::bench;
using core::Context;
using core::Machine;
using proto::RmwOp;

struct Probe {
    RmwOp op;
    const char* description;
};

/** Measure one blocking interlocked op against a master @p hops away. */
Cycles
measureOp(RmwOp op, unsigned hops)
{
    MachineBuilder builder = machineBuilder(16);
    const MachineConfig& cfg = builder.config();
    auto machine_ptr = builder.build();
    Machine& machine = *machine_ptr;

    // On the 4x4 mesh, node h is h hops from node 0 along the X axis.
    const NodeId target = hops;
    const Addr page = machine.alloc(kPageBytes, target);
    if (op == RmwOp::Queue || op == RmwOp::Dequeue) {
        const Word base =
            static_cast<Word>(cfg.cost.queueBaseOffset);
        machine.poke(page, base);              // QP
        machine.poke(page + kWordBytes, base); // DQP
        if (op == RmwOp::Dequeue) {
            machine.poke(page + 8, 5 | kTopBit); // one queued item
        }
    }

    Cycles measured = 0;
    machine.spawn(0, [&](Context& ctx) {
        // Warm the page table (and, for dequeue, address the DQP word).
        const Addr addr =
            op == RmwOp::Dequeue ? page + kWordBytes : page;
        ctx.read(addr);
        ctx.fence();
        const Cycles before = ctx.machine().now();
        ctx.rmw(op, addr, 1);
        measured = ctx.machine().now() - before;
    });
    machine.run();
    return measured;
}

Cycles
measureRemoteRead(unsigned hops, bool export_telemetry = false)
{
    auto machine_ptr = machineBuilder(16).build();
    Machine& machine = *machine_ptr;
    const Addr page = machine.alloc(kPageBytes, hops);
    Cycles measured = 0;
    machine.spawn(0, [&](Context& ctx) {
        ctx.read(page); // page-table warm-up
        const Cycles before = ctx.machine().now();
        ctx.read(page);
        measured = ctx.machine().now() - before;
    });
    machine.run();
    if (export_telemetry) {
        exportTelemetry(machine);
    }
    return measured;
}

} // namespace

int
main(int argc, char** argv)
{
    plus::bench::parseHarnessArgs(argc, argv);
    printHeader("Table 3-1: PLUS's delayed operations",
                "per-op coherence-manager occupancy and end-to-end cost");

    const CostModel cost; // paper defaults
    const Probe probes[] = {
        {RmwOp::Xchng, "return value, write word"},
        {RmwOp::CondXchng, "write if top bit set"},
        {RmwOp::FetchAdd, "return value, add"},
        {RmwOp::FetchSet, "return value, set top bit"},
        {RmwOp::Queue, "enqueue at tail"},
        {RmwOp::Dequeue, "dequeue at head"},
        {RmwOp::MinXchng, "store if smaller"},
        {RmwOp::DelayedRead, "read, no modification"},
    };

    TablePrinter table;
    table.setHeader({"Operation", "CM cycles", "(paper)", "1-hop",
                     "(model)", "2-hop", "3-hop"});
    bool ok = true;
    for (const Probe& p : probes) {
        const Cycles occ = proto::isComplexOp(p.op) ? cost.cmRmwComplex
                                                    : cost.cmRmwSimple;
        const Cycles paper_occ = proto::isComplexOp(p.op) ? 52 : 39;
        std::vector<Cycles> measured;
        for (unsigned h = 1; h <= 3; ++h) {
            measured.push_back(measureOp(p.op, h));
        }
        const Cycles predicted1 =
            cost.procIssueOp + 2 * (10 + 2 * 1) + occ +
            cost.procReadResult;
        if (measured[0] != predicted1) {
            ok = false;
        }
        table.addRow({toString(p.op), TablePrinter::num(occ),
                      TablePrinter::num(paper_occ),
                      TablePrinter::num(measured[0]),
                      TablePrinter::num(predicted1),
                      TablePrinter::num(measured[1]),
                      TablePrinter::num(measured[2])});
    }
    table.print(std::cout);

    std::cout << "\nNetwork calibration (paper: 24-cycle adjacent round "
                 "trip, +4 per extra hop;\nremote blocking read = 32 + "
                 "round trip):\n\n";
    TablePrinter net;
    net.setHeader({"Hops", "Read latency", "(model 32+RTT)"});
    for (unsigned h = 1; h <= 3; ++h) {
        const Cycles rtt = 2 * (10 + 2 * h);
        const Cycles got = measureRemoteRead(h, h == 3);
        if (got != 32 + rtt) {
            ok = false;
        }
        net.addRow({std::to_string(h), TablePrinter::num(got),
                    TablePrinter::num(Cycles{32} + rtt)});
    }
    net.print(std::cout);

    std::cout << (ok ? "\nAll measurements match the paper's arithmetic.\n"
                     : "\nMISMATCH against the paper's arithmetic!\n");
    return ok ? 0 : 1;
}
