/**
 * @file
 * General-purpose simulation harness for telemetry capture: a small
 * mixed workload (replicated-page writes and their update chains,
 * remote reads, delayed interlocked operations, fences) on a
 * configurable mesh, exporting the cycle-stamped event trace and the
 * metrics snapshot requested on the command line:
 *
 *   sim_harness [--nodes=N] [--trace-out=trace.json]
 *               [--stats-out=stats.json] [--out=harness.json]
 *
 * The trace loads in Perfetto / chrome://tracing with one track per
 * node and per mesh link; copy-list update chains appear as flow
 * arrows (see docs/OBSERVABILITY.md).
 *
 * --out writes host-throughput numbers (events/s, cycles/s) as JSON —
 * the committed BENCH_harness.json tracking ROADMAP's serial-harness
 * throughput item is produced this way. With profiling enabled
 * (--prof-out or PLUS_PROF=1) the file embeds the host-time phase
 * breakdown under "prof".
 */

#include <chrono>
#include <deque>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/context.hpp"

namespace {

using namespace plus;
using namespace plus::bench;

/** Copies (including the master) each shared page gets. */
constexpr unsigned kCopies = 4;

} // namespace

int
main(int argc, char** argv)
{
    const HarnessArgs& args = parseHarnessArgs(argc, argv);
    std::string out;
    for (const std::string& arg : args.rest) {
        if (arg.rfind("--out=", 0) == 0) {
            out = arg.substr(6);
        } else {
            std::cerr << "usage: sim_harness [--nodes=N] [--threads=T] "
                         "[--engine=NAME] [--trace-out=<file>] "
                         "[--stats-out=<file>] [--prof-out=<file>] "
                         "[--out=<file>]\n";
            return 2;
        }
    }
    const unsigned nodes = args.nodesOr(16);

    auto machine_ptr = machineBuilder(nodes).build();
    core::Machine& machine = *machine_ptr;

    // One page per node, replicated on the next kCopies-1 nodes so
    // every write walks a multi-copy update chain.
    std::vector<Addr> pages(nodes);
    for (NodeId n = 0; n < nodes; ++n) {
        pages[n] = machine.alloc(kPageBytes, n);
        for (unsigned c = 1; c < kCopies && c < nodes; ++c) {
            machine.replicate(pages[n], (n + c) % nodes);
        }
    }
    // A shared counter on node 0 for the interlocked-op traffic.
    const Addr counter = machine.alloc(kPageBytes, 0);
    machine.settle();

    for (NodeId n = 0; n < nodes; ++n) {
        machine.spawn(n, [&pages, counter, nodes, n](core::Context& ctx) {
            const Addr own = pages[n];
            const Addr peer = pages[(n + 1) % nodes];
            std::deque<core::OpHandle> window;
            for (Word i = 0; i < 32; ++i) {
                // Writes to the replicated page drive update chains.
                ctx.write(own + 4 * (i % 16), n * 1000 + i);
                // Remote reads of the neighbour's page.
                ctx.read(peer + 4 * (i % 16));
                ctx.compute(25);
                // Delayed interlocked ops: issue now, verify later.
                if (i % 8 == 0) {
                    window.push_back(ctx.issueFadd(counter, 1));
                }
                if (window.size() > 2) {
                    ctx.verify(window.front());
                    window.pop_front();
                }
            }
            while (!window.empty()) {
                ctx.verify(window.front());
                window.pop_front();
            }
            ctx.fence();
        });
    }
    const auto start = std::chrono::steady_clock::now();
    machine.run();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    const auto rep = machine.report();
    TablePrinter table;
    table.setHeader({"nodes", "cycles", "messages", "updates",
                     "remote reads", "rmw ops"});
    table.addRow({std::to_string(nodes), TablePrinter::num(machine.now()),
                  TablePrinter::num(rep.totalMessages),
                  TablePrinter::num(rep.updateMessages),
                  TablePrinter::num(rep.remoteReads),
                  TablePrinter::num(rep.localRmws + rep.remoteRmws)});
    finishTable(table);

    if (const telemetry::Telemetry* t = machine.telemetry()) {
        std::cout << "telemetry: " << t->events().recorded()
                  << " events recorded, " << t->events().dropped()
                  << " dropped\n";
    }

    if (!out.empty()) {
        std::ofstream os(out);
        if (!os) {
            std::cerr << "cannot open " << out << "\n";
            return 1;
        }
        const std::uint64_t events = machine.engine().executedEvents();
        os << "{\n"
           << "  \"bench\": \"sim_harness\",\n"
           << "  \"nodes\": " << nodes << ",\n"
           << "  \"cycles\": " << machine.now() << ",\n"
           << "  \"events\": " << events << ",\n"
           << "  \"messages\": " << rep.totalMessages << ",\n"
           << "  \"eventsPerSec\": "
           << (seconds > 0 ? static_cast<double>(events) / seconds : 0.0)
           << ",\n"
           << "  \"cyclesPerSec\": "
           << (seconds > 0
                   ? static_cast<double>(machine.now()) / seconds
                   : 0.0);
        if (prof::enabled()) {
            os << ",\n  \"prof\": ";
            prof::writeJson(os);
        }
        os << "\n}\n";
    }
    // Host-time attribution table on stderr: stdout stays byte-stable
    // for the CI determinism diffs.
    if (prof::enabled()) {
        std::cerr << prof::summaryTable();
    }
    return exportTelemetry(machine) ? 0 : 1;
}
