/**
 * @file
 * Protocol shootout: write-update (the paper's protocol) vs
 * write-invalidate across four canonical sharing patterns. Section 2.2
 * argues update protocols suit distributed shared memory because
 * readers keep hitting locally; the MSI-flavoured counterpart
 * (docs/PROTOCOLS.md) instead pays one invalidation chain per first
 * write and then skips the chain entirely while nobody re-reads. The
 * patterns are chosen so each regime shows up:
 *
 *   read-mostly        many replicated readers, rare writes — the
 *                      update chain is cheap, refetch storms are not
 *   write-hot          concurrent writers hammer a replicated page
 *                      that is almost never read — per-write chains
 *                      vs invalidate-once-then-skip
 *   migratory          a small record handed node to node in
 *                      overlapping write bursts, each owner reading
 *                      the predecessor's values first
 *   producer-consumer  one producer pushes rounds of values that
 *                      every consumer reads several times
 *
 *   protocol_shootout [--nodes=N] [--out=<file>]
 *
 * --out writes the numbers as JSON (the committed BENCH_protocols.json
 * is a run of this bench). The protocol-invariant checker stays on in
 * both configurations, so every cell is also a correctness run under
 * that protocol's invariants.
 */

#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/context.hpp"
#include "node/node.hpp"

namespace {

using namespace plus;
using namespace plus::bench;

constexpr unsigned kNodes = 8;
constexpr unsigned kWindow = 16; ///< words per shared window

struct Cell {
    Cycles cycles = 0;
    std::uint64_t updates = 0;       ///< UpdateReq messages sent
    std::uint64_t invalidations = 0; ///< words invalidated at sharers
    std::uint64_t refetches = 0;     ///< invalid-word reads re-fetched
    std::uint64_t remoteReads = 0;
};

struct PatternResult {
    std::string name;
    Cell update;
    Cell invalidate;
};

Cell
collect(core::Machine& machine, unsigned nodes)
{
    Cell c;
    c.cycles = machine.now();
    for (NodeId n = 0; n < nodes; ++n) {
        const proto::CmStats& s = machine.nodeAt(n).cm().stats();
        c.updates += s.sentOf(proto::MsgType::UpdateReq);
        c.invalidations += s.invalidations;
        c.refetches += s.refetches;
        c.remoteReads += s.remoteReads;
    }
    return c;
}

/** Shared-window machine: one page homed on node 0, a copy everywhere. */
std::unique_ptr<core::Machine>
sharedWindowMachine(Protocol p, unsigned nodes, Addr& page)
{
    auto machine = machineBuilder(nodes).protocol(p).build();
    page = machine->alloc(kPageBytes, 0);
    for (NodeId n = 1; n < nodes; ++n) {
        machine->replicate(page, n);
    }
    machine->settle();
    return machine;
}

/**
 * Read-mostly: every node loops over its local copy of the window;
 * node 0 occasionally writes one word. Update pushes the rare write to
 * the copies and the readers never leave their node; invalidate turns
 * each written word into a refetch for every reader that touches it.
 */
Cell
runReadMostly(Protocol p, unsigned nodes)
{
    Addr page = 0;
    auto machine = sharedWindowMachine(p, nodes, page);
    for (NodeId n = 0; n < nodes; ++n) {
        machine->spawn(n, [page, n](core::Context& ctx) {
            for (Word r = 0; r < 60; ++r) {
                for (Word w = 0; w < kWindow; ++w) {
                    ctx.read(page + 8 * w);
                }
                if (n == 0 && r % 12 == 0) {
                    ctx.write(page + 8 * (r % kWindow), r);
                }
                ctx.compute(20);
            }
            ctx.fence();
        });
    }
    machine->run();
    return collect(*machine, nodes);
}

/**
 * Write-hot: four writers hammer disjoint word slices of the same
 * replicated page and read back only once at the end. Update chains
 * every write through all the copies; invalidate pays one chain per
 * word and then retires every further write at the master alone.
 */
Cell
runWriteHot(Protocol p, unsigned nodes)
{
    Addr page = 0;
    auto machine = sharedWindowMachine(p, nodes, page);
    const unsigned writers = nodes < 4 ? nodes : 4;
    for (NodeId n = 0; n < writers; ++n) {
        machine->spawn(n, [page, n](core::Context& ctx) {
            const Addr base = page + 8 * (n * (kWindow / 4));
            for (Word r = 0; r < 80; ++r) {
                for (Word w = 0; w < kWindow / 4; ++w) {
                    ctx.write(base + 8 * w, n * 1000 + r);
                }
                ctx.compute(10);
            }
            ctx.fence();
            for (Word w = 0; w < kWindow / 4; ++w) {
                ctx.read(base + 8 * w);
            }
        });
    }
    machine->run();
    return collect(*machine, nodes);
}

/**
 * Migratory: a four-word record is handed node to node; each owner
 * reads the record and then rewrites it many times before the next
 * owner takes over, with the handoff overlapping the predecessor's
 * tail (real migratory sharing is never perfectly sequential). Update
 * pushes every rewrite through the whole copy-list, so the overlapping
 * owners saturate the sharers' coherence managers; invalidate pays one
 * chain per word per handoff and retires the rest at the master.
 */
Cell
runMigratory(Protocol p, unsigned nodes)
{
    Addr page = 0;
    auto machine = sharedWindowMachine(p, nodes, page);
    const Word record = 4; ///< the migratory record, words
    for (NodeId n = 0; n < nodes; ++n) {
        machine->spawn(n, [page, n](core::Context& ctx) {
            ctx.compute(1 + n * 4000); // overlapping ownership bursts
            for (Word w = 0; w < record; ++w) {
                ctx.read(page + 8 * w); // take over the record
            }
            for (Word r = 0; r < 60; ++r) {
                for (Word w = 0; w < record; ++w) {
                    ctx.write(page + 8 * w, n * 1000 + r);
                }
                ctx.compute(5);
            }
            ctx.fence();
        });
    }
    machine->run();
    return collect(*machine, nodes);
}

/**
 * Producer-consumer: node 0 produces a round of values; every other
 * node reads each round's window several times. Update delivers the
 * values to the consumers' copies as a side effect of the write;
 * invalidate makes every consumer refetch every word every round.
 */
Cell
runProducerConsumer(Protocol p, unsigned nodes)
{
    Addr page = 0;
    auto machine = sharedWindowMachine(p, nodes, page);
    machine->spawn(0, [page](core::Context& ctx) {
        for (Word r = 0; r < 40; ++r) {
            for (Word w = 0; w < kWindow; ++w) {
                ctx.write(page + 8 * w, r * 100 + w);
            }
            ctx.compute(200); // let the consumers drain the round
        }
        ctx.fence();
    });
    for (NodeId n = 1; n < nodes; ++n) {
        machine->spawn(n, [page](core::Context& ctx) {
            for (Word r = 0; r < 40; ++r) {
                for (Word rep = 0; rep < 3; ++rep) {
                    for (Word w = 0; w < kWindow; ++w) {
                        ctx.read(page + 8 * w);
                    }
                }
                ctx.compute(20);
            }
            ctx.fence();
        });
    }
    machine->run();
    return collect(*machine, nodes);
}

void
writeJson(std::ostream& os, unsigned nodes,
          const std::vector<PatternResult>& results)
{
    os << "{\n  \"nodes\": " << nodes << ",\n  \"patterns\": {\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const PatternResult& r = results[i];
        auto cell = [&os](const char* name, const Cell& c, const char* end) {
            os << "      \"" << name << "\": {\"cycles\": " << c.cycles
               << ", \"updateMsgs\": " << c.updates
               << ", \"invalidations\": " << c.invalidations
               << ", \"refetches\": " << c.refetches
               << ", \"remoteReads\": " << c.remoteReads << "}" << end
               << "\n";
        };
        os << "    \"" << r.name << "\": {\n";
        cell("writeUpdate", r.update, ",");
        cell("writeInvalidate", r.invalidate, ",");
        os << "      \"winner\": \""
           << (r.update.cycles <= r.invalidate.cycles ? "write-update"
                                                      : "write-invalidate")
           << "\"\n    }" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  }\n}\n";
}

} // namespace

int
main(int argc, char** argv)
{
    const HarnessArgs& args = parseHarnessArgs(argc, argv);
    const unsigned nodes = args.nodesOr(kNodes);
    std::string jsonOut;
    for (const std::string& arg : args.rest) {
        if (arg.rfind("--out=", 0) == 0) {
            jsonOut = arg.substr(6);
        } else {
            std::cerr << "usage: protocol_shootout [--nodes=N] "
                         "[--out=<file>]\n";
            return 2;
        }
    }

    printHeader("Protocol shootout: write-update vs write-invalidate",
                "Section 2.2's protocol argument, quantified per "
                "sharing pattern");

    struct Pattern {
        const char* name;
        Cell (*run)(Protocol, unsigned);
    };
    const Pattern patterns[] = {
        {"read-mostly", runReadMostly},
        {"write-hot", runWriteHot},
        {"migratory", runMigratory},
        {"producer-consumer", runProducerConsumer},
    };

    std::vector<PatternResult> results;
    TablePrinter table;
    table.setHeader({"pattern", "update cyc", "inval cyc", "winner",
                     "upd msgs (u/i)", "refetches"});
    unsigned updateWins = 0;
    unsigned invalidateWins = 0;
    for (const Pattern& pat : patterns) {
        PatternResult r;
        r.name = pat.name;
        r.update = pat.run(Protocol::WriteUpdate, nodes);
        r.invalidate = pat.run(Protocol::WriteInvalidate, nodes);
        const bool updateWon = r.update.cycles <= r.invalidate.cycles;
        (updateWon ? updateWins : invalidateWins) += 1;
        table.addRow({r.name, TablePrinter::num(r.update.cycles),
                      TablePrinter::num(r.invalidate.cycles),
                      updateWon ? "update" : "invalidate",
                      TablePrinter::num(r.update.updates) + "/" +
                          TablePrinter::num(r.invalidate.updates),
                      TablePrinter::num(r.invalidate.refetches)});
        results.push_back(std::move(r));
    }
    finishTable(table,
                "Expected: update wins where reads dominate (the chain "
                "doubles as a data push);\ninvalidate wins where "
                "rewrites dominate (one chain per word, then the master "
                "retires\nwrites alone).");

    if (!jsonOut.empty()) {
        std::ofstream os(jsonOut);
        if (!os) {
            std::cerr << "cannot open " << jsonOut << "\n";
            return 1;
        }
        writeJson(os, nodes, results);
    }
    exportProf();

    if (updateWins == 0 || invalidateWins == 0) {
        std::cerr << "shootout FAILED: expected each protocol to win at "
                     "least one pattern (update "
                  << updateWins << ", invalidate " << invalidateWins
                  << ")\n";
        return 1;
    }
    std::cout << "each protocol won at least one pattern (update "
              << updateWins << ", invalidate " << invalidateWins
              << ")\n";
    return 0;
}
