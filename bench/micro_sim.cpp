/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrate itself:
 * event-queue throughput, fiber context switches, network transit, and
 * end-to-end simulated operations per wall-clock second. These measure
 * the reproduction's own speed, not the PLUS machine.
 */

#include <benchmark/benchmark.h>

#include "core/context.hpp"
#include "net/network.hpp"
#include "plus/plus.hpp"
#include "sim/engine.hpp"
#include "sim/fiber.hpp"

namespace {

using namespace plus;

void
BM_EngineScheduleDispatch(benchmark::State& state)
{
    sim::Engine engine;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        engine.schedule(1, [&fired] { ++fired; });
        engine.step();
    }
    benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EngineScheduleDispatch);

void
BM_EngineDeepQueue(benchmark::State& state)
{
    const auto depth = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        sim::Engine engine;
        std::uint64_t fired = 0;
        for (std::size_t i = 0; i < depth; ++i) {
            engine.schedule(i % 97, [&fired] { ++fired; });
        }
        state.ResumeTiming();
        engine.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(depth));
}
BENCHMARK(BM_EngineDeepQueue)->Arg(1024)->Arg(16384);

void
BM_FiberSwitch(benchmark::State& state)
{
    std::uint64_t count = 0;
    bool stop = false;
    sim::Fiber fiber(
        [&] {
            while (!stop) {
                ++count;
                sim::Fiber::yield();
            }
        },
        64 * 1024);
    for (auto _ : state) {
        fiber.resume();
    }
    stop = true;
    fiber.resume();
    benchmark::DoNotOptimize(count);
}
BENCHMARK(BM_FiberSwitch);

void
BM_MeshTransit(benchmark::State& state)
{
    sim::Engine engine;
    net::Topology topo(16, 4, 4);
    NetworkConfig cfg;
    net::MeshNetwork network(engine, topo, cfg);
    std::uint64_t delivered = 0;
    for (NodeId n = 0; n < 16; ++n) {
        network.setDeliveryHandler(
            n, [&delivered](net::Packet) { ++delivered; });
    }
    NodeId dst = 1;
    for (auto _ : state) {
        net::Packet packet;
        packet.src = 0;
        packet.dst = dst;
        packet.payloadBytes = 16;
        network.send(std::move(packet));
        dst = (dst % 15) + 1;
        engine.run();
    }
    benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_MeshTransit);

void
BM_SimulatedRemoteFadd(benchmark::State& state)
{
    // Wall-clock cost of simulating one remote interlocked operation,
    // measured across whole machine lifetimes.
    for (auto _ : state) {
        auto machine_ptr =
            MachineBuilder().nodes(4).framesPerNode(16).build();
        core::Machine& machine = *machine_ptr;
        const Addr page = machine.alloc(kPageBytes, 3);
        machine.spawn(0, [&](core::Context& ctx) {
            for (int i = 0; i < 100; ++i) {
                ctx.fadd(page, 1);
            }
        });
        machine.run();
        benchmark::DoNotOptimize(machine.peek(page));
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_SimulatedRemoteFadd);

} // namespace

BENCHMARK_MAIN();
