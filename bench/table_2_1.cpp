/**
 * @file
 * Reproduces Table 2-1, "Effect of Replication on Messages": the
 * single-point shortest-path problem on 16 processors with the vertex
 * data and work queues replicated at levels 1 through 5.
 *
 * Paper's rows (copies: reads local/remote, writes local/remote,
 * total/update):
 *   1: 1.25  3.40  6.18
 *   2: 1.70  1.18  2.91
 *   3: 1.64  0.70  2.24
 *   4: 2.14  0.45  1.89
 *   5: 2.32  0.36  1.68
 *
 * Expected trends: the local/remote read ratio rises with copies, the
 * local/remote write ratio falls (every write to a replicated page must
 * visit the network), and the total/update message ratio falls toward 1
 * as updates dominate the traffic.
 */

#include <iostream>

#include "bench/bench_util.hpp"
#include "workloads/sssp.hpp"

int
main(int argc, char** argv)
{
    using namespace plus;
    using namespace plus::bench;
    parseHarnessArgs(argc, argv);

    printHeader("Table 2-1: Effect of Replication on Messages",
                "SSSP, 16 processors, replication level 1-5");

    struct PaperRow {
        double reads, writes, ratio;
    };
    const PaperRow paper[5] = {{1.25, 3.40, 6.18},
                               {1.70, 1.18, 2.91},
                               {1.64, 0.70, 2.24},
                               {2.14, 0.45, 1.89},
                               {2.32, 0.36, 1.68}};

    TablePrinter table;
    table.setHeader({"Copies", "Reads L/R", "(paper)", "Writes L/R",
                     "(paper)", "Total/Update", "(paper)"});

    for (unsigned copies = 1; copies <= 5; ++copies) {
        auto machine_ptr = machineBuilder(16).build();
        core::Machine& machine = *machine_ptr;
        workloads::SsspConfig cfg;
        cfg.vertices = 2048;
        cfg.kind = workloads::SsspGraphKind::Grid;
        cfg.shortcutFrac = 0.25;
        cfg.seed = 20260708;
        cfg.replication = copies;
        const workloads::SsspResult r = runSssp(machine, cfg);
        if (!r.correct) {
            std::cerr << "FAILED: distances incorrect at replication "
                      << copies << "\n";
            return 1;
        }
        const auto& rep = r.report;
        const double reads =
            localRemoteRatio(rep.localReads, rep.remoteReads);
        const double writes =
            localRemoteRatio(rep.localWrites + rep.localRmws,
                             rep.remoteWrites + rep.remoteRmws);
        // "Update" counts the write-carrying messages (write requests
        // travelling to the master plus copy-list updates).
        const double ratio =
            ratioOf(static_cast<double>(rep.totalMessages),
                    static_cast<double>(rep.writeCarryingMessages));
        if (copies == 5) {
            exportTelemetry(machine);
        }
        table.addRow({std::to_string(copies),
                      TablePrinter::num(reads),
                      TablePrinter::num(paper[copies - 1].reads),
                      TablePrinter::num(writes),
                      TablePrinter::num(paper[copies - 1].writes),
                      TablePrinter::num(ratio),
                      TablePrinter::num(paper[copies - 1].ratio)});
    }
    finishTable(table);
    return 0;
}
