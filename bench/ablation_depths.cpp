/**
 * @file
 * Ablation C: architectural capacities. The 1990 implementation lets
 * each node have up to 8 writes and 8 delayed operations in progress;
 * this harness sweeps both depths and shows where the paper's choice
 * sits on the latency-hiding curve.
 */

#include <deque>
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/context.hpp"

namespace {

using namespace plus;
using namespace plus::bench;

/**
 * Remote write burst: time to issue+drain 64 writes spread over three
 * remote nodes (a single destination would serialize at its coherence
 * manager regardless of window depth).
 */
Cycles
writeBurst(unsigned pending_entries)
{
    auto machine_ptr =
        machineBuilder(16)
            .tune([&](MachineConfig& mc) {
                mc.cost.pendingWriteEntries = pending_entries;
            })
            .build();
    core::Machine& machine = *machine_ptr;
    Addr pages[3] = {machine.alloc(kPageBytes, 5),
                     machine.alloc(kPageBytes, 10),
                     machine.alloc(kPageBytes, 15)};
    Cycles elapsed = 0;
    machine.spawn(0, [&](core::Context& ctx) {
        for (Addr page : pages) {
            ctx.read(page);
        }
        const Cycles before = ctx.machine().now();
        for (Word i = 0; i < 64; ++i) {
            ctx.write(pages[i % 3] + 4 * (i / 3), i);
        }
        ctx.fence();
        elapsed = ctx.machine().now() - before;
    });
    machine.run();
    return elapsed;
}

/** Remote fadd stream with a sliding window of delayed operations. */
Cycles
opStream(unsigned op_entries)
{
    auto machine_ptr =
        machineBuilder(4)
            .tune([&](MachineConfig& mc) {
                mc.cost.delayedOpEntries = op_entries;
            })
            .build();
    core::Machine& machine = *machine_ptr;
    const Addr page = machine.alloc(kPageBytes, 3);
    Cycles elapsed = 0;
    machine.spawn(0, [&](core::Context& ctx) {
        ctx.read(page);
        const Cycles before = ctx.machine().now();
        std::deque<core::OpHandle> window;
        for (Word i = 0; i < 64; ++i) {
            if (window.size() == op_entries) {
                ctx.verify(window.front());
                window.pop_front();
            }
            window.push_back(ctx.issueFadd(page, 1));
        }
        while (!window.empty()) {
            ctx.verify(window.front());
            window.pop_front();
        }
        elapsed = ctx.machine().now() - before;
    });
    machine.run();
    return elapsed;
}

} // namespace

int
main()
{
    printHeader("Ablation C: pending-write / delayed-op cache depths",
                "the 1990 implementation chose 8 of each");

    TablePrinter writes;
    writes.setHeader({"Pending-write entries", "64-write burst (cycles)"});
    for (unsigned d : {1u, 2u, 4u, 8u, 16u, 32u}) {
        writes.addRow({std::to_string(d),
                       TablePrinter::num(writeBurst(d))});
    }
    writes.print(std::cout);

    std::cout << "\n";
    TablePrinter ops;
    ops.setHeader({"Delayed-op entries", "64-fadd stream (cycles)"});
    for (unsigned d : {1u, 2u, 4u, 8u}) {
        ops.addRow({std::to_string(d), TablePrinter::num(opStream(d))});
    }
    ops.print(std::cout);

    std::cout << "\nExpected: throughput saturates once the window covers "
                 "the round-trip latency;\ndepth 8 sits at (or past) the "
                 "knee for adjacent-node traffic.\n\n";
    return 0;
}
