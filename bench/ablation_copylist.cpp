/**
 * @file
 * Ablation A: copy-list ordering. "The operating system kernel orders
 * the copy-list to minimize the network path length through all the
 * nodes in the list" (Section 2.3). This harness quantifies why: the
 * total path length of the update chain is the network cost every write
 * to the page pays, and the time until the originator's acknowledgement
 * arrives grows with it.
 *
 * Part 1 compares the greedy nearest-neighbour ordering against the
 * worst ordering found by shuffling, at the data-structure level.
 * Part 2 measures end-to-end write-fence latency on a machine where a
 * page is replicated across the whole mesh.
 */

#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "core/context.hpp"
#include "mem/copy_list.hpp"

namespace {

using namespace plus;
using namespace plus::bench;

/** Build a copy-list over the first @p copies nodes of a mesh. */
mem::CopyList
listOver(const net::Topology& topo, unsigned copies, Xoshiro256& rng)
{
    std::vector<NodeId> nodes(topo.nodes());
    std::iota(nodes.begin(), nodes.end(), NodeId{0});
    // Random placement of the copies across the mesh.
    for (std::size_t i = nodes.size() - 1; i > 0; --i) {
        std::swap(nodes[i], nodes[rng.below(i + 1)]);
    }
    mem::CopyList cl(PhysPage{nodes[0], 0});
    for (unsigned i = 1; i < copies; ++i) {
        cl.append(PhysPage{nodes[i], 0});
    }
    return cl;
}

} // namespace

int
main()
{
    printHeader("Ablation A: copy-list ordering",
                "greedy nearest-neighbour chain vs unordered placement");

    const net::Topology topo(64, 8, 8);
    Xoshiro256 rng(99);

    TablePrinter table;
    table.setHeader({"Copies", "unordered hops", "ordered hops",
                     "saving"});
    for (unsigned copies : {4u, 8u, 16u, 32u, 64u}) {
        double unordered = 0;
        double ordered = 0;
        constexpr int kTrials = 50;
        for (int t = 0; t < kTrials; ++t) {
            mem::CopyList cl = listOver(topo, copies, rng);
            unordered += cl.pathLength(topo);
            cl.orderForPathLength(topo);
            ordered += cl.pathLength(topo);
        }
        unordered /= kTrials;
        ordered /= kTrials;
        table.addRow({std::to_string(copies),
                      TablePrinter::num(unordered),
                      TablePrinter::num(ordered),
                      TablePrinter::num(100.0 * (1 - ordered / unordered),
                                        1) +
                          "%"});
    }
    table.print(std::cout);

    std::cout << "\nEnd-to-end: write + fence latency to a page "
                 "replicated on every node of a 4x4 mesh\n(the chain the "
                 "machine builds is the greedy one):\n\n";

    auto machine_ptr = machineBuilder(16).build();
    core::Machine& machine = *machine_ptr;
    const Addr page = machine.alloc(kPageBytes, 0);
    for (NodeId n = 1; n < 16; ++n) {
        machine.replicate(page, n);
    }
    machine.settle();

    Cycles fence_latency = 0;
    machine.spawn(0, [&](core::Context& ctx) {
        ctx.read(page); // warm translation
        const Cycles before = ctx.machine().now();
        ctx.write(page, 1);
        ctx.fence();
        fence_latency = ctx.machine().now() - before;
    });
    machine.run();

    TablePrinter t2;
    t2.setHeader({"Chain copies", "write+fence cycles",
                  "chain path hops"});
    t2.addRow({"16", TablePrinter::num(fence_latency),
               TablePrinter::num(static_cast<std::uint64_t>(
                   machine.copyListOf(page).pathLength(
                       machine.network().topology())))});
    t2.print(std::cout);
    std::cout << "\n";
    return 0;
}
