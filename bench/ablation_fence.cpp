/**
 * @file
 * Ablation D: fence policy. PLUS gives the programmer an explicit write
 * fence and does NOT enforce full fences as part of synchronization
 * operations (unlike DASH, Section 2.3). This harness runs beam search
 * both ways: selective explicit fences vs an implicit fence before
 * every interlocked operation.
 */

#include <iostream>

#include "bench/bench_util.hpp"
#include "workloads/beam.hpp"

int
main(int argc, char** argv)
{
    using namespace plus;
    using namespace plus::bench;
    parseHarnessArgs(argc, argv);

    printHeader("Ablation D: explicit vs implicit (DASH-style) fences",
                "beam search, delayed operations, 2-16 processors");

    workloads::BeamConfig cfg;
    cfg.layers = 16;
    cfg.width = 96;
    cfg.seed = 77;

    TablePrinter table;
    table.setHeader({"Procs", "explicit-fence cycles",
                     "implicit-fence cycles", "overhead"});
    for (unsigned nodes : {2u, 4u, 8u, 16u}) {
        auto m1 = machineBuilder(nodes).build();
        const auto r1 = runBeam(*m1, cfg);

        auto m2 = machineBuilder(nodes)
                      .tune([](MachineConfig& c) {
                          c.cost.implicitFenceOnSync = true;
                      })
                      .build();
        const auto r2 = runBeam(*m2, cfg);

        if (!r1.correct || !r2.correct) {
            std::cerr << "FAILED: beam incorrect\n";
            return 1;
        }
        table.addRow(
            {std::to_string(nodes), TablePrinter::num(r1.elapsed),
             TablePrinter::num(r2.elapsed),
             percentDelta(r1.elapsed, r2.elapsed)});
    }
    finishTable(table,
                "Expected: forcing strong ordering at every "
                "synchronization operation costs cycles that\nPLUS's "
                "selective explicit fence avoids.");
    return 0;
}
