/**
 * @file
 * Section 2.4's three ways of using replication and migration, compared
 * on one skewed workload:
 *
 *  1. programmer-directed: the access pattern is known, so the layout
 *     is requested up front;
 *  2. measurement-driven: one profiling run, then the measured remote-
 *     reference counts drive the placement of the next run;
 *  3. competitive: hardware reference counters interrupt on overflow
 *     and the OS replicates hot pages *during* the run.
 *
 * Baseline: no policy at all.
 */

#include <iostream>

#include "bench/bench_util.hpp"
#include "core/context.hpp"
#include "core/placement.hpp"

namespace {

using namespace plus;
using namespace plus::bench;
using core::Context;
using core::Machine;

constexpr unsigned kNodes = 16;
constexpr unsigned kPages = 8;

/**
 * The workload: pages live on node 0; each page has one heavy consumer
 * elsewhere on the mesh plus light uniform readers.
 */
std::vector<Addr>
allocate(Machine& m)
{
    std::vector<Addr> pages;
    for (unsigned p = 0; p < kPages; ++p) {
        pages.push_back(m.alloc(kPageBytes, 0));
    }
    return pages;
}

Cycles
runWorkload(Machine& m, const std::vector<Addr>& pages)
{
    for (NodeId n = 1; n < kNodes; ++n) {
        m.spawn(n, [&pages, n](Context& ctx) {
            // Heavy affinity: node n mostly reads page n % kPages.
            const Addr hot = pages[n % kPages];
            for (int i = 0; i < 300; ++i) {
                ctx.read(hot + 4 * (i % 256));
                ctx.compute(15);
                if (i % 10 == 0) {
                    ctx.read(pages[(n + i) % kPages]);
                }
            }
        });
    }
    const Cycles start = m.now();
    m.run();
    return m.now() - start;
}

} // namespace

int
main()
{
    printHeader("Placement policies (Section 2.4)",
                "programmer-directed vs measurement-driven vs competitive");

    // Baseline: everything stays on node 0.
    auto baseline_ptr = machineBuilder(kNodes).build();
    core::Machine& baseline = *baseline_ptr;
    const auto pages_b = allocate(baseline);
    const Cycles t_baseline = runWorkload(baseline, pages_b);

    // 1. Programmer-directed: replicate each page to its known heavy
    //    consumers up front.
    auto directed_ptr = machineBuilder(kNodes).build();
    core::Machine& directed = *directed_ptr;
    const auto pages_d = allocate(directed);
    for (NodeId n = 1; n < kNodes; ++n) {
        directed.replicate(pages_d[n % kPages], n);
    }
    directed.settle();
    const Cycles t_directed = runWorkload(directed, pages_d);

    // 2. Measurement-driven: profile the baseline run, derive a plan,
    //    apply it to a fresh machine.
    core::PlacementPolicy policy;
    policy.replicateThreshold = 64;
    policy.maxCopies = 4;
    const core::AccessProfile profile =
        core::AccessProfile::collect(baseline);
    const core::PlacementPlan plan =
        core::derivePlan(baseline, profile, policy);
    auto measured_ptr = machineBuilder(kNodes).build();
    core::Machine& measured = *measured_ptr;
    const auto pages_m = allocate(measured);
    core::applyPlan(measured, plan);
    const Cycles t_measured = runWorkload(measured, pages_m);

    // 3. Competitive: counters overflow mid-run and replicate online.
    auto competitive_ptr = machineBuilder(kNodes).build();
    core::Machine& competitive = *competitive_ptr;
    const auto pages_c = allocate(competitive);
    competitive.enableCompetitiveReplication(/*threshold=*/48,
                                             /*max_copies=*/4);
    const Cycles t_competitive = runWorkload(competitive, pages_c);

    TablePrinter table;
    table.setHeader({"Policy", "cycles", "speedup", "plan actions"});
    auto speedup = [&](Cycles t) {
        return TablePrinter::num(static_cast<double>(t_baseline) /
                                 static_cast<double>(t));
    };
    table.addRow({"none (all pages on node 0)",
                  TablePrinter::num(t_baseline), "1.00", "-"});
    table.addRow({"programmer-directed", TablePrinter::num(t_directed),
                  speedup(t_directed), "-"});
    table.addRow({"measurement-driven", TablePrinter::num(t_measured),
                  speedup(t_measured),
                  TablePrinter::num(
                      static_cast<std::uint64_t>(plan.actions()))});
    table.addRow({"competitive (online)",
                  TablePrinter::num(t_competitive),
                  speedup(t_competitive), "-"});
    table.print(std::cout);
    std::cout << "\nExpected: directed ~= measured > competitive > none "
                 "(the online policy pays its\ncopies during the run; "
                 "the offline ones pay nothing).\n\n";
    return 0;
}
