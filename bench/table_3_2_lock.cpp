/**
 * @file
 * Exercises Table 3-2, "Lock with Queue": the queued lock built from
 * fetch-and-add plus the hardware queue/dequeue operations, compared
 * against a plain test-and-test-and-set spin lock under contention.
 *
 * The queued lock's point is that a contended release hands the lock
 * directly to the oldest sleeper through its node-local mailbox instead
 * of letting every waiter hammer the lock word.
 */

#include <iostream>

#include "bench/bench_util.hpp"
#include "core/context.hpp"
#include "core/sync.hpp"

namespace {

using namespace plus;
using namespace plus::bench;
using core::Context;
using core::Machine;

struct LockStats {
    Cycles elapsed;
    std::uint64_t rmwMessages;
};

template <typename AcquireFn, typename ReleaseFn>
LockStats
runLockBench(unsigned nodes, unsigned acquisitions_per_thread,
             Machine& machine, Addr counter, AcquireFn acquire,
             ReleaseFn release)
{
    for (NodeId n = 0; n < nodes; ++n) {
        machine.spawn(n, [=](Context& ctx) mutable {
            for (unsigned i = 0; i < acquisitions_per_thread; ++i) {
                acquire(ctx, n);
                // Short critical section: bump a shared counter.
                const Word v = ctx.read(counter);
                ctx.compute(20);
                ctx.write(counter, v + 1);
                release(ctx, n);
            }
        });
    }
    machine.run();
    const auto rep = machine.report();
    return {machine.now(), rep.localRmws + rep.remoteRmws};
}

} // namespace

int
main(int argc, char** argv)
{
    parseHarnessArgs(argc, argv);
    printHeader("Table 3-2: lock with queue",
                "queued lock (fadd + queue/dequeue) vs test-and-set lock");

    constexpr unsigned kAcquisitions = 25;
    TablePrinter table;
    table.setHeader({"Procs", "spin-lock cycles", "queued-lock cycles",
                     "spin rmw-ops", "queued rmw-ops"});

    for (unsigned nodes : {2u, 4u, 8u, 16u}) {
        LockStats spin{};
        {
            auto machine_ptr = machineBuilder(nodes).build();
            Machine& machine = *machine_ptr;
            const Addr counter = machine.alloc(kPageBytes, 0);
            core::SpinLock lock = core::SpinLock::create(machine, 0);
            spin = runLockBench(
                nodes, kAcquisitions, machine, counter,
                [lock](Context& ctx, unsigned) mutable {
                    lock.acquire(ctx);
                },
                [lock](Context& ctx, unsigned) mutable {
                    lock.release(ctx);
                });
            const Word got = machine.peek(counter);
            if (got != nodes * kAcquisitions) {
                std::cerr << "FAILED: spin lock lost updates (" << got
                          << ")\n";
                return 1;
            }
        }
        LockStats queued{};
        {
            auto machine_ptr = machineBuilder(nodes).build();
            Machine& machine = *machine_ptr;
            const Addr counter = machine.alloc(kPageBytes, 0);
            std::vector<NodeId> homes(nodes);
            for (NodeId n = 0; n < nodes; ++n) {
                homes[n] = n;
            }
            core::QueuedLock lock =
                core::QueuedLock::create(machine, 0, homes);
            core::QueuedLock* lockp = &lock;
            queued = runLockBench(
                nodes, kAcquisitions, machine, counter,
                [lockp](Context& ctx, unsigned me) {
                    lockp->acquire(ctx, me);
                },
                [lockp](Context& ctx, unsigned) {
                    lockp->release(ctx);
                });
            const Word got = machine.peek(counter);
            if (got != nodes * kAcquisitions) {
                std::cerr << "FAILED: queued lock lost updates (" << got
                          << ")\n";
                return 1;
            }
            if (nodes == 16) {
                exportTelemetry(machine);
            }
        }
        table.addRow({std::to_string(nodes),
                      TablePrinter::num(spin.elapsed),
                      TablePrinter::num(queued.elapsed),
                      TablePrinter::num(spin.rmwMessages),
                      TablePrinter::num(queued.rmwMessages)});
    }
    finishTable(table,
                "Both locks preserve mutual exclusion; the queued "
                "lock trades spinning rmw traffic\nfor one queue/dequeue "
                "pair per contended handoff.");
    return 0;
}
