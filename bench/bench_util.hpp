/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses.
 */

#ifndef PLUS_BENCH_BENCH_UTIL_HPP_
#define PLUS_BENCH_BENCH_UTIL_HPP_

#include <iostream>
#include <string>

#include "common/config.hpp"
#include "common/table.hpp"
#include "core/machine.hpp"

namespace plus {
namespace bench {

/** Machine configuration used by the reproduction experiments. */
inline MachineConfig
machineConfig(unsigned nodes, ProcessorMode mode = ProcessorMode::Delayed)
{
    MachineConfig cfg;
    cfg.nodes = nodes;
    cfg.framesPerNode = 4096;
    cfg.mode = mode;
    return cfg;
}

/** Ratio of local to remote operations as Table 2-1 prints it. */
inline double
localRemoteRatio(std::uint64_t local, std::uint64_t remote)
{
    return remote == 0 ? static_cast<double>(local)
                       : static_cast<double>(local) /
                             static_cast<double>(remote);
}

inline void
printHeader(const std::string& what, const std::string& paper_ref)
{
    std::cout << "\n=== " << what << " ===\n"
              << "Reproduces: " << paper_ref << "\n"
              << "(absolute numbers differ from the 1990 testbed; the "
                 "trends are the result)\n\n";
}

} // namespace bench
} // namespace plus

#endif // PLUS_BENCH_BENCH_UTIL_HPP_
